"""Vendor presets for the testbed adapters.

The paper runs its main testbed on Intellon INT6300 (HomePlug AV) miniPCI
cards and validates with Netgear XAVB5101 (Atheros QCA7400, HPAV500)
adapters. The presets bundle the PHY spec with the vendor estimation quirk
the paper uncovers in §6.2 (the AV500 estimator collapses on bursty errors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.plc.spec import HPAV, HPAV500, PlcSpec


@dataclass(frozen=True)
class VendorPreset:
    """Adapter model used when building a testbed."""

    name: str
    chip: str
    spec: PlcSpec
    #: §6.2 vendor quirk: over-reaction of the channel estimator to bursty
    #: errors (observed on the HPAV500 devices, Fig. 10 link 18-15).
    overreact_to_bursts: bool


#: Intellon INT6300 — the main 19-station testbed (§3.1).
HPAV_PRESET = VendorPreset(name="HPAV", chip="Intellon INT6300", spec=HPAV,
                           overreact_to_bursts=False)

#: Netgear XAVB5101 / Atheros QCA7400 — the validation devices.
HPAV500_PRESET = VendorPreset(name="HPAV500", chip="Atheros QCA7400",
                              spec=HPAV500, overreact_to_bursts=True)


@dataclass(frozen=True)
class TestbedPreset:
    """A named, buildable testbed configuration.

    Campaign specs reference testbeds by preset name (a string survives the
    process-pool pickle boundary; a built testbed does not), so every named
    configuration an experiment may want lives here. ``stations=None`` means
    the full 19-station floor; a tuple restricts the build to that subset
    (the floor wiring and appliance population are unchanged — only which
    outlets carry a station).
    """

    name: str
    vendor: VendorPreset
    stations: Optional[Tuple[int, ...]] = None
    description: str = ""


#: Registry the CLI and campaign layer resolve preset names against.
TESTBED_PRESETS: Dict[str, TestbedPreset] = {
    preset.name: preset for preset in (
        TestbedPreset(
            name="office", vendor=HPAV_PRESET,
            description="full 19-station floor, Intellon INT6300 (§3.1)"),
        TestbedPreset(
            name="office-av500", vendor=HPAV500_PRESET,
            description="full floor on the HPAV500 validation devices"),
        TestbedPreset(
            name="wing-b2", vendor=HPAV_PRESET,
            stations=(12, 13, 14, 15, 16, 17, 18),
            description="west wing only (board B2, 7 stations)"),
        TestbedPreset(
            name="mini3", vendor=HPAV_PRESET, stations=(0, 1, 2),
            description="3-station smoke-test subset of board B1"),
    )
}


def resolve_testbed_preset(name: str) -> TestbedPreset:
    """Look up a preset by name, with a helpful error on a miss."""
    try:
        return TESTBED_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(TESTBED_PRESETS))
        raise KeyError(
            f"unknown testbed preset {name!r} (known: {known})") from None
