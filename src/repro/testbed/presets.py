"""Vendor presets for the testbed adapters.

The paper runs its main testbed on Intellon INT6300 (HomePlug AV) miniPCI
cards and validates with Netgear XAVB5101 (Atheros QCA7400, HPAV500)
adapters. The presets bundle the PHY spec with the vendor estimation quirk
the paper uncovers in §6.2 (the AV500 estimator collapses on bursty errors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plc.spec import HPAV, HPAV500, PlcSpec


@dataclass(frozen=True)
class VendorPreset:
    """Adapter model used when building a testbed."""

    name: str
    chip: str
    spec: PlcSpec
    #: §6.2 vendor quirk: over-reaction of the channel estimator to bursty
    #: errors (observed on the HPAV500 devices, Fig. 10 link 18-15).
    overreact_to_bursts: bool


#: Intellon INT6300 — the main 19-station testbed (§3.1).
HPAV_PRESET = VendorPreset(name="HPAV", chip="Intellon INT6300", spec=HPAV,
                           overreact_to_bursts=False)

#: Netgear XAVB5101 / Atheros QCA7400 — the validation devices.
HPAV500_PRESET = VendorPreset(name="HPAV500", chip="Atheros QCA7400",
                              spec=HPAV500, overreact_to_bursts=True)
