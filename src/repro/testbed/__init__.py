"""The simulated EPFL testbed (paper §3.1, Fig. 2).

19 stations on one office floor (70 m × 40 m), fed by two distribution
boards whose only interconnection runs through the basement — so the testbed
forms two PLC networks: board B1 hosts stations 0–11 (CCo pinned at 11),
board B2 hosts stations 12–18 (CCo pinned at 15).

:func:`repro.testbed.builder.build_testbed` assembles grid + appliances +
stations + PLC networks + WiFi links; :mod:`repro.testbed.experiments` holds
the measurement runners the benchmarks share.
"""

from repro.testbed.builder import Testbed, build_preset_testbed, build_testbed  # noqa: TID251 — package re-export
from repro.testbed.presets import (
    HPAV500_PRESET,
    HPAV_PRESET,
    TESTBED_PRESETS,
    TestbedPreset,
    VendorPreset,
    resolve_testbed_preset,
)

__all__ = [
    "Testbed",
    "build_testbed",
    "build_preset_testbed",
    "VendorPreset",
    "HPAV_PRESET",
    "HPAV500_PRESET",
    "TestbedPreset",
    "TESTBED_PRESETS",
    "resolve_testbed_preset",
]
