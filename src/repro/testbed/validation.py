"""Calibration report: how closely the simulated testbed matches the paper.

The substitution contract of `DESIGN.md` is that the simulator preserves the
paper's *shapes*. This module measures those shapes on a built testbed and
scores each against its paper target — the same checks the benchmark suite
enforces, packaged as a reusable report (run it after changing any channel
constant, or from the CLI/docs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.analysis.asymmetry import asymmetry_report
from repro.analysis.stats import linear_fit, pearson
from repro.units import MBPS


@dataclass(frozen=True)
class CalibrationCheck:
    """One shape check against a paper target."""

    name: str
    paper_value: str
    measured: float
    lo: float
    hi: float

    @property
    def ok(self) -> bool:
        return self.lo <= self.measured <= self.hi


@dataclass(frozen=True)
class CalibrationReport:
    """All checks for one testbed instant."""

    checks: Tuple[CalibrationCheck, ...]

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> List[CalibrationCheck]:
        return [c for c in self.checks if not c.ok]

    def as_rows(self) -> List[list]:
        return [[c.name, c.paper_value, c.measured,
                 "ok" if c.ok else "OUT OF BAND"] for c in self.checks]


def calibrate(testbed, t: float, samples: int = 5) -> CalibrationReport:
    """Measure the headline shapes at time ``t`` (working hours expected)."""
    plc_thr = {}
    wifi_thr = {}
    ble = {}
    pberr = {}
    for i, j in testbed.same_board_pairs():
        link = testbed.plc_link(i, j)
        plc_thr[(i, j)] = np.mean(
            [link.throughput_bps(t + k, measured=False)
             for k in range(samples)]) / MBPS
        wifi_thr[(i, j)] = np.mean(
            [testbed.wifi_link(i, j).throughput_bps(t + k * 0.4,
                                                    measured=False)
             for k in range(3 * samples)]) / MBPS
        ble[(i, j)] = link.avg_ble_bps(t) / MBPS
        pberr[(i, j)] = link.pb_err(t)

    pt = np.array(list(plc_thr.values()))
    wt = np.array(list(wifi_thr.values()))
    alive = pt > 1.0

    # Shape 1: BLE = 1.7 T.
    fit = linear_fit(pt[alive], np.array(list(ble.values()))[alive])
    # Shape 2: asymmetry fraction.
    asym = asymmetry_report(plc_thr, threshold=1.5)
    # Shape 3: PLC-better share.
    connected = (pt > 1.0) | (wt > 1.0)
    plc_better = float(np.mean(pt[connected] > wt[connected]))
    # Shape 4: distance correlation.
    dist = np.array([testbed.cable_distance(i, j)
                     for (i, j) in plc_thr])
    dist_corr = pearson(dist, pt)
    # Shape 5: PBerr anti-correlates with throughput.
    pbe = np.array(list(pberr.values()))
    pberr_corr = pearson(pt[alive], pbe[alive])
    # Shape 6: formed-link census.
    formed = int(alive.sum())

    checks = (
        CalibrationCheck("BLE/T slope", "1.7", fit.slope, 1.5, 1.9),
        CalibrationCheck(">1.5x asymmetric pairs", "~0.30",
                         asym.severe_fraction, 0.15, 0.55),
        CalibrationCheck("pairs faster on PLC", "0.52", plc_better,
                         0.35, 0.85),
        CalibrationCheck("corr(cable distance, T)", "strongly negative",
                         dist_corr, -1.0, -0.45),
        CalibrationCheck("corr(T, PBerr)", "negative", pberr_corr,
                         -1.0, -0.2),
        CalibrationCheck("formed PLC links", "144 of 174", float(formed),
                         120.0, 174.0),
        CalibrationCheck("max PLC throughput (Mbps)", "~80",
                         float(pt.max()), 55.0, 100.0),
    )
    return CalibrationReport(checks=checks)
