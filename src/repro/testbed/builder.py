"""Assemble the full testbed: grid + appliances + PLC networks + WiFi."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.medium.registry import get_medium
from repro.plc.link import PlcLink
from repro.plc.mm import MmClient
from repro.plc.network import PlcNetwork
from repro.plc.station import PlcStation
from repro.powergrid.activity import OfficeActivityModel
from repro.powergrid.load import ElectricalLoad
from repro.sim.random import RandomStreams
from repro.wifi import WifiChannel  # package re-export, not channel internals
from repro.testbed.floorplan import (
    CCO_BY_BOARD,
    StationSite,
    build_floor_grid,
    populate_appliances,
)
from repro.testbed.presets import (
    HPAV_PRESET,
    VendorPreset,
    resolve_testbed_preset,
)
from repro.units import MBPS
from repro.wifi.link import WifiLink


@dataclass
class Testbed:
    """The assembled 19-station hybrid testbed."""

    streams: RandomStreams
    load: ElectricalLoad
    sites: Dict[int, StationSite]
    networks: Dict[str, PlcNetwork]
    preset: VendorPreset
    _wifi_links: Dict[Tuple[int, int], WifiLink] = field(default_factory=dict)
    _mm_clients: Dict[str, MmClient] = field(default_factory=dict)
    #: WiFi channel objects, separately from the link facades: a channel
    #: only replays named fresh streams (pure functions of the seed), so
    #: :meth:`fork` shares this dict and each channel is built once per
    #: compiled testbed, never per task.
    _wifi_channels: Dict[Tuple[int, int], WifiChannel] = field(
        default_factory=dict)

    # --- station / pair enumeration ------------------------------------------

    def station_indices(self) -> List[int]:
        return sorted(self.sites)

    def board_of(self, index: int) -> str:
        return self.sites[index].board

    def same_board(self, i: int, j: int) -> bool:
        return self.board_of(i) == self.board_of(j)

    def same_board_pairs(self) -> List[Tuple[int, int]]:
        """All directed same-AVLN pairs — the paper's 174 candidate links."""
        ids = self.station_indices()
        return [(i, j) for i in ids for j in ids
                if i != j and self.same_board(i, j)]

    def all_pairs(self) -> List[Tuple[int, int]]:
        ids = self.station_indices()
        return [(i, j) for i in ids for j in ids if i != j]

    # --- links -------------------------------------------------------------------

    def plc_link(self, i: int, j: int) -> Optional[PlcLink]:
        """Directed PLC link i→j, or ``None`` across boards (separate AVLNs)."""
        if not self.same_board(i, j):
            return None
        network = self.networks[self.board_of(i)]
        return network.link(str(i), str(j))

    def wifi_link(self, i: int, j: int) -> WifiLink:
        """Directed WiFi link i→j (WiFi ignores the electrical wiring)."""
        key = (i, j)
        if key not in self._wifi_links:
            channel = self._wifi_channels.get(key)
            if channel is None:
                link = WifiLink.between(self.sites[i].position,
                                        self.sites[j].position,
                                        self.streams, name=f"{i}->{j}")
                self._wifi_channels[key] = link.channel
            else:
                link = WifiLink(channel, self.streams)
            self._wifi_links[key] = link
        return self._wifi_links[key]

    def fork(self) -> "Testbed":
        """A fresh-RNG view of this testbed sharing its compiled state.

        Everything deterministic is shared: the electrical load (with its
        distance/geometry/noise memoisation), the station sites, and both
        media's channel caches — all of it state that only ever replays
        ``streams.fresh*`` draws, i.e. pure functions of the seed. The
        monotonic state is rebuilt fresh: a new :class:`RandomStreams` at
        the same seed, and new link facades / channel estimators whose
        measurement-noise generators start at their initial state. The
        fork is bit-identical to ``build_testbed`` with the same
        arguments (see ``tests/test_compile.py``) at a fraction of the
        cost — the seam :mod:`repro.compile` builds its per-task
        checkouts on.
        """
        streams = RandomStreams(seed=self.streams.seed)
        networks = {board: network.fork(streams)
                    for board, network in self.networks.items()}
        return Testbed(streams=streams, load=self.load, sites=self.sites,
                       networks=networks, preset=self.preset,
                       _wifi_channels=self._wifi_channels)

    def link(self, medium: str, i: int, j: int):
        """Medium-agnostic link lookup: dispatches through the medium
        registry, so consumers never branch on the tag themselves."""
        return get_medium(medium).get_link(self, i, j)

    def mm_client(self, board: str) -> MmClient:
        """The management-message client for one AVLN (§3.2 tooling)."""
        if board not in self._mm_clients:
            self._mm_clients[board] = MmClient(self.networks[board])
        return self._mm_clients[board]

    # --- distances -------------------------------------------------------------------

    def cable_distance(self, i: int, j: int) -> float:
        """Cable metres between two stations (Fig. 7's x-axis)."""
        return self.load.cable_distance(self.sites[i].outlet_id,
                                        self.sites[j].outlet_id)

    def air_distance(self, i: int, j: int) -> float:
        """Straight-line metres between two stations (Fig. 3's x-axis)."""
        (x1, y1), (x2, y2) = self.sites[i].position, self.sites[j].position
        return float(np.hypot(x1 - x2, y1 - y2))

    # --- connectivity census --------------------------------------------------------------

    def formed_plc_links(self, t: float,
                         min_throughput_bps: float = 1.0 * MBPS
                         ) -> List[Tuple[int, int]]:
        """Directed pairs with usable PLC connectivity (the paper's
        'links formed' census — 144 in their testbed)."""
        formed = []
        for i, j in self.same_board_pairs():
            link = self.plc_link(i, j)
            if link is not None and link.is_connected(t, min_throughput_bps):
                formed.append((i, j))
        return formed


def build_testbed(seed: int = 7,
                  preset: VendorPreset = HPAV_PRESET,
                  stations: Optional[Iterable[int]] = None) -> Testbed:
    """Build the testbed with the given adapter preset.

    ``stations`` restricts the build to a subset of the 19 floor stations
    (e.g. a 3-station smoke-test world). The floor wiring, appliance
    population and activity model are always the full office — a subset
    changes who measures, not the electrical environment — so metrics for
    the surviving stations are identical to their full-floor values.
    """
    streams = RandomStreams(seed=seed)
    grid, all_sites = build_floor_grid()
    appliances = populate_appliances(grid, all_sites)
    activity = OfficeActivityModel(streams)
    load = ElectricalLoad(grid, appliances, activity)

    if stations is None:
        sites = all_sites
    else:
        wanted = set(stations)
        unknown = wanted - set(all_sites)
        if unknown:
            raise ValueError(f"unknown station indices {sorted(unknown)}")
        sites = {idx: site for idx, site in all_sites.items()
                 if idx in wanted}

    networks: Dict[str, PlcNetwork] = {}
    boards = sorted({site.board for site in sites.values()})
    for board in boards:
        network = PlcNetwork(network_key=f"AVLN-{board}", load=load,
                             streams=streams,
                             overreact_to_bursts=preset.overreact_to_bursts)
        members = [idx for idx, site in sorted(sites.items())
                   if site.board == board]
        for idx in members:
            network.add_station(PlcStation(
                station_id=str(idx), outlet_id=sites[idx].outlet_id,
                spec=preset.spec))
        # The paper pins the CCo; on a subset build the pinned station may
        # be absent, in which case the lowest-index member takes the role.
        cco = CCO_BY_BOARD[board]
        network.set_cco(str(cco if cco in members else members[0]))
        networks[board] = network
    return Testbed(streams=streams, load=load, sites=sites,
                   networks=networks, preset=preset)


def build_preset_testbed(preset_name: str, seed: int = 7) -> Testbed:
    """Build a testbed from a named :class:`TestbedPreset`.

    This is the campaign layer's constructor: specs carry ``(preset_name,
    seed)`` across the worker-process boundary and every worker rebuilds an
    identical world from them.
    """
    preset = resolve_testbed_preset(preset_name)
    return build_testbed(seed=seed, preset=preset.vendor,
                         stations=preset.stations)
