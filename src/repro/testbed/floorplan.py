"""The floor layout: wiring, station placement, appliance population.

Geometry follows Fig. 2 of the paper: a 70 m × 40 m office floor; board B1
feeds stations 0–11 over two corridor legs, board B2 feeds stations 12–18.
Distances and room contents are chosen so the *statistics* match the paper:

* cable distances between same-board stations span ~13–80 m;
* over-the-air distances span ~4–45 m (so WiFi blind spots exist);
* a kitchen and printer corners create the noisy neighbourhoods that make
  links such as 6-5, 11-4 (B1) and 17-16, 18-15 (B2) bad and asymmetric;
* corridor lighting produces the building-wide 9 pm event of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.powergrid.appliances import ApplianceInstance
from repro.powergrid.topology import GridTopology, Outlet

#: Stub length (m) from a room junction to the station outlet.
STATION_STUB_M = 4.0
#: Stub length (m) from a room junction to appliance outlets.
APPLIANCE_STUB_M = 2.0
#: Corridor spacing (m) between consecutive room junctions.
ROOM_SPACING_M = 6.5
#: Riser from the distribution board to the first junction of each leg.
RISER_M = 9.0
#: Basement tie between the two boards (makes cross-board PLC hopeless).
INTER_BOARD_M = 220.0


@dataclass(frozen=True)
class StationSite:
    """Where a testbed station lives."""

    index: int
    board: str
    outlet_id: str
    position: Tuple[float, float]


#: Station -> (board, leg, slot-on-leg, floor position). Legs: each board
#: runs a north (0) and south (1) corridor leg; slot k sits k rooms from the
#: riser. Positions approximate Fig. 2.
_STATION_PLAN: Dict[int, Tuple[str, int, int, Tuple[float, float]]] = {
    # B1 — east wing, stations 0–11, CCo 11.
    0: ("B1", 0, 0, (28.0, 14.0)),
    1: ("B1", 0, 1, (36.0, 16.0)),
    2: ("B1", 0, 2, (44.0, 14.0)),
    3: ("B1", 0, 3, (52.0, 16.0)),
    4: ("B1", 0, 4, (60.0, 14.0)),
    5: ("B1", 0, 5, (68.0, 16.0)),
    6: ("B1", 1, 0, (28.0, 0.0)),
    7: ("B1", 1, 1, (36.0, 2.0)),
    8: ("B1", 1, 2, (44.0, 0.0)),
    9: ("B1", 1, 3, (52.0, 2.0)),
    10: ("B1", 1, 4, (60.0, 0.0)),
    11: ("B1", 1, 5, (68.0, 2.0)),
    # B2 — west wing, stations 12–18, CCo 15.
    12: ("B2", 0, 0, (6.0, 30.0)),
    13: ("B2", 0, 1, (12.0, 32.0)),
    14: ("B2", 0, 2, (18.0, 30.0)),
    15: ("B2", 1, 0, (6.0, 38.0)),
    16: ("B2", 1, 1, (12.0, 40.0)),
    17: ("B2", 1, 2, (18.0, 38.0)),
    18: ("B2", 1, 3, (24.0, 40.0)),
}

#: Paper-pinned CCos (§3.1): stations 11 (B1) and 15 (B2).
CCO_BY_BOARD = {"B1": 11, "B2": 15}

#: Extra appliances by room: (station index, appliance kind) — the noisy
#: neighbourhoods. Kitchen next to 5 (and its leg-mate 4/6 area), printers
#: near 2 and 7 on B1; kitchen corner near 17/18 and printer near 16 on B2.
_NOISY_ROOMS: List[Tuple[int, str]] = [
    (5, "microwave"),
    (4, "lab_equipment"),
    (16, "lab_equipment"),
    (5, "coffee_machine"),
    (5, "fridge"),
    (4, "fluorescent_lighting"),
    (6, "printer"),
    (2, "printer"),
    (7, "vacuum_cleaner"),
    (11, "fluorescent_lighting"),
    (17, "microwave"),
    (17, "coffee_machine"),
    (16, "printer"),
    (18, "fridge"),
]

#: Standard office bundle present in every station room.
_OFFICE_BUNDLE = ("desktop_pc", "monitor", "laptop_charger", "led_lighting")


def _board_positions() -> Dict[str, Tuple[float, float]]:
    return {"B1": (30.0, 6.0), "B2": (2.0, 34.0)}


def build_floor_grid() -> Tuple[GridTopology, Dict[int, StationSite]]:
    """Wire the floor and return the grid plus station sites."""
    grid = GridTopology()
    boards = _board_positions()
    for board_id, pos in boards.items():
        grid.add_outlet(Outlet(board_id, pos, board_id, is_board=True))
    grid.add_cable("B1", "B2", INTER_BOARD_M)

    # Build corridor legs with room junctions holding station + appliance
    # outlets. Junction ids: "<board>/leg<l>/j<k>".
    legs: Dict[Tuple[str, int], List[str]] = {}
    for (board, leg) in sorted({(b, l) for b, l, _, _ in
                                _STATION_PLAN.values()}):
        max_slot = max(slot for b, l, slot, _ in _STATION_PLAN.values()
                       if b == board and l == leg)
        prev = board
        junctions = []
        for k in range(max_slot + 1):
            jid = f"{board}/leg{leg}/j{k}"
            # Junction floor position: interpolate from the stations.
            grid.add_outlet(Outlet(jid, _junction_pos(board, leg, k), board))
            seg = RISER_M if k == 0 else ROOM_SPACING_M
            grid.add_cable(prev, jid, seg)
            junctions.append(jid)
            prev = jid
        legs[(board, leg)] = junctions

    sites: Dict[int, StationSite] = {}
    for index, (board, leg, slot, pos) in sorted(_STATION_PLAN.items()):
        jid = legs[(board, leg)][slot]
        outlet_id = f"{board}/st{index}"
        grid.add_outlet(Outlet(outlet_id, pos, board))
        grid.add_cable(jid, outlet_id, STATION_STUB_M)
        sites[index] = StationSite(index=index, board=board,
                                   outlet_id=outlet_id, position=pos)
    return grid, sites


def _junction_pos(board: str, leg: int, slot: int) -> Tuple[float, float]:
    """Approximate corridor coordinates for a junction."""
    if board == "B1":
        x = 30.0 + 7.0 * slot
        y = 11.0 if leg == 0 else 4.0
    else:
        x = 4.0 + 6.0 * slot
        y = 32.0 if leg == 0 else 36.0
    return (x, y)


def populate_appliances(grid: GridTopology,
                        sites: Dict[int, StationSite]
                        ) -> List[ApplianceInstance]:
    """Plug the office population into the grid.

    Every station room gets the standard office bundle on dedicated outlets
    hanging off the station's junction; the noisy rooms get their extras;
    every corridor junction carries a fluorescent fixture (building
    lighting — the 9 pm signal).
    """
    appliances: List[ApplianceInstance] = []

    def room_junction(site: StationSite) -> str:
        board, leg, slot, _ = _STATION_PLAN[site.index]
        return f"{board}/leg{leg}/j{slot}"

    for index, site in sorted(sites.items()):
        jid = room_junction(site)
        for k, kind in enumerate(_OFFICE_BUNDLE):
            outlet_id = f"{site.board}/st{index}/a{k}"
            pos = (site.position[0] + 0.5 + 0.3 * k, site.position[1] + 0.5)
            grid.add_outlet(Outlet(outlet_id, pos, site.board))
            grid.add_cable(jid, outlet_id, APPLIANCE_STUB_M + 0.5 * k)
            appliances.append(ApplianceInstance.make(
                f"st{index}-{kind}", kind, outlet_id))

    for n, (index, kind) in enumerate(_NOISY_ROOMS):
        site = sites[index]
        jid = room_junction(site)
        outlet_id = f"{site.board}/st{index}/x{n}"
        pos = (site.position[0] - 0.8, site.position[1] + 1.0)
        grid.add_outlet(Outlet(outlet_id, pos, site.board))
        grid.add_cable(jid, outlet_id, APPLIANCE_STUB_M)
        appliances.append(ApplianceInstance.make(
            f"noisy{n}-st{index}-{kind}", kind, outlet_id))

    # Corridor lighting on every junction outlet.
    for outlet in grid.outlets():
        if "/j" in outlet.outlet_id.split("/")[-1]:
            appliances.append(ApplianceInstance.make(
                f"corridor-{outlet.outlet_id}", "fluorescent_lighting",
                outlet.outlet_id))
    return appliances
