"""Measurement runners the benchmarks share.

Each function mirrors one of the paper's experimental protocols so the
per-figure benchmarks stay short and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import MetricSeries
from repro.sim.clock import MainsClock
from repro.testbed.builder import Testbed
from repro.traffic.iperf import run_udp_test
from repro.units import MBPS, MINUTE


@dataclass(frozen=True)
class PairSurveyRow:
    """One directed pair of the Fig. 3 survey."""

    src: int
    dst: int
    air_distance_m: float
    cable_distance_m: float
    plc_mean_mbps: float
    plc_std_mbps: float
    wifi_mean_mbps: float
    wifi_std_mbps: float

    @property
    def plc_connected(self) -> bool:
        return self.plc_mean_mbps > 1.0

    @property
    def wifi_connected(self) -> bool:
        return self.wifi_mean_mbps > 1.0


def survey_pairs(testbed: Testbed, t_start: float,
                 duration: float = 5 * MINUTE,
                 report_interval: float = 0.1,
                 pairs: Optional[List[Tuple[int, int]]] = None
                 ) -> List[PairSurveyRow]:
    """§4.1's protocol: back-to-back saturated tests on both media.

    For every directed same-board pair, measure PLC then WiFi for
    ``duration`` at ``report_interval`` and record mean and std.
    """
    rows: List[PairSurveyRow] = []
    for i, j in (pairs if pairs is not None
                 else testbed.same_board_pairs()):
        plc = testbed.plc_link(i, j)
        wifi = testbed.wifi_link(i, j)
        plc_series = run_udp_test(plc, t_start, duration, report_interval)
        wifi_series = run_udp_test(wifi, t_start + duration, duration,
                                   report_interval)
        rows.append(PairSurveyRow(
            src=i, dst=j,
            air_distance_m=testbed.air_distance(i, j),
            cable_distance_m=testbed.cable_distance(i, j),
            plc_mean_mbps=plc_series.mean / MBPS,
            plc_std_mbps=plc_series.std / MBPS,
            wifi_mean_mbps=wifi_series.mean / MBPS,
            wifi_std_mbps=wifi_series.std / MBPS))
    return rows


def poll_ble_series(testbed: Testbed, src: int, dst: int, t_start: float,
                    duration: float, interval: float = 0.05
                    ) -> MetricSeries:
    """§6.2's protocol: request average BLE by MM every 50 ms.

    Uses a fresh MM session (experiments jump around in simulated time; the
    per-device rate limit is meaningful only within one session).
    """
    from repro.plc.mm import MmClient

    board = testbed.board_of(src)
    mm = MmClient(testbed.networks[board])
    link = testbed.plc_link(src, dst)
    assert link is not None
    times = np.arange(t_start, t_start + duration, interval)
    # The MM client enforces its own rate limit; a direct link read models
    # the same data path without double-counting MM bookkeeping per sample.
    values = [mm.int6krate(str(src), str(dst), float(t)) * MBPS
              for t in times]
    return MetricSeries(times, values, name=f"BLE-{src}-{dst}")


def long_run_series(testbed: Testbed, src: int, dst: int, t_start: float,
                    duration: float, interval: float = 60.0,
                    metric: str = "ble") -> MetricSeries:
    """Random-scale sampling (Figs. 12–14): one sample per ``interval``."""
    link = testbed.plc_link(src, dst)
    assert link is not None
    times = np.arange(t_start, t_start + duration, interval)
    if metric == "ble":
        values = [link.avg_ble_bps(float(t)) for t in times]
    elif metric == "throughput":
        values = [link.throughput_bps(float(t)) for t in times]
    elif metric == "pberr":
        values = [link.pb_err(float(t)) for t in times]
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return MetricSeries(times, values, name=f"{metric}-{src}-{dst}")


def working_hours_start(clock: MainsClock = MainsClock(),
                        day: int = 2, hour: float = 14.0) -> float:
    """A canonical 'during working hours' measurement start (Wed 2 pm)."""
    return clock.at(day=day, hour=hour)


def night_start(clock: MainsClock = MainsClock(), day: int = 2,
                hour: float = 23.5) -> float:
    """A canonical quiet-hours start (§6.2 runs at night/weekends)."""
    return clock.at(day=day, hour=hour)
