"""Measurement runners the benchmarks share.

Each function mirrors one of the paper's experimental protocols so the
per-figure benchmarks stay short and declarative.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import MetricSeries
from repro.sim.clock import MainsClock
from repro.testbed.builder import Testbed
from repro.traffic.iperf import run_udp_test
from repro.units import MBPS, MINUTE


@dataclass(frozen=True)
class PairSurveyRow:
    """One directed pair of the Fig. 3 survey."""

    src: int
    dst: int
    air_distance_m: float
    cable_distance_m: float
    plc_mean_mbps: float
    plc_std_mbps: float
    wifi_mean_mbps: float
    wifi_std_mbps: float

    @property
    def plc_connected(self) -> bool:
        return self.plc_mean_mbps > 1.0

    @property
    def wifi_connected(self) -> bool:
        return self.wifi_mean_mbps > 1.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form (campaign artifact records, CSV export)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "PairSurveyRow":
        return cls(**data)


def measure_pair(testbed: Testbed, src: int, dst: int, t_start: float,
                 duration: float = 5 * MINUTE,
                 report_interval: float = 0.1) -> PairSurveyRow:
    """Measure one directed pair on both media (§4.1, back-to-back).

    This is the single implementation of the survey protocol: both the
    serial :func:`survey_pairs` and the parallel campaign engine's
    ``survey_pair`` task execute pairs through it.
    """
    plc = testbed.plc_link(src, dst)
    wifi = testbed.wifi_link(src, dst)
    plc_series = run_udp_test(plc, t_start, duration, report_interval)
    wifi_series = run_udp_test(wifi, t_start + duration, duration,
                               report_interval)
    return PairSurveyRow(
        src=src, dst=dst,
        air_distance_m=testbed.air_distance(src, dst),
        cable_distance_m=testbed.cable_distance(src, dst),
        plc_mean_mbps=plc_series.mean / MBPS,
        plc_std_mbps=plc_series.std / MBPS,
        wifi_mean_mbps=wifi_series.mean / MBPS,
        wifi_std_mbps=wifi_series.std / MBPS)


def survey_pairs(testbed: Testbed, t_start: float,
                 duration: float = 5 * MINUTE,
                 report_interval: float = 0.1,
                 pairs: Optional[List[Tuple[int, int]]] = None
                 ) -> List[PairSurveyRow]:
    """§4.1's protocol: back-to-back saturated tests on both media.

    For every directed same-board pair, measure PLC then WiFi for
    ``duration`` at ``report_interval`` and record mean and std. Runs
    through the campaign engine's inline path (one process, prebuilt
    testbed) so the serial and parallel surveys share one code path; use
    ``repro.campaign.survey_campaign`` to fan the same measurements out
    across worker processes.
    """
    from repro.campaign.tasks import run_survey_inline

    return run_survey_inline(
        testbed, t_start, duration, report_interval,
        pairs if pairs is not None else testbed.same_board_pairs())


def poll_ble_series(testbed: Testbed, src: int, dst: int, t_start: float,
                    duration: float, interval: float = 0.05
                    ) -> MetricSeries:
    """§6.2's protocol: request average BLE by MM every 50 ms.

    The whole poll sequence is one ``sample_series`` batch over the link's
    medium contract — the MM floor of one request per 50 ms is still
    enforced up front, because §6.2's measurement design depends on it.
    """
    from repro.plc.mm import MM_MIN_INTERVAL_S, MmRateLimitError

    if interval < MM_MIN_INTERVAL_S - 1e-9:
        raise MmRateLimitError(
            f"polling every {interval:.3f}s is below the MM floor of "
            f"{MM_MIN_INTERVAL_S}s")
    link = testbed.plc_link(src, dst)
    assert link is not None
    times = np.arange(t_start, t_start + duration, interval)
    # int6krate reports in Mbps; mirror its round-trip scaling exactly.
    values = link.sample_series(times,
                                measured=False).column("avg_ble_bps")
    return MetricSeries(times, values / MBPS * MBPS,
                        name=f"BLE-{src}-{dst}")


#: Figs. 12–14 metric names → medium-contract series columns.
_LONG_RUN_COLUMNS = {"ble": "avg_ble_bps", "throughput": "throughput_bps",
                     "pberr": "pb_err"}


def long_run_series(testbed: Testbed, src: int, dst: int, t_start: float,
                    duration: float, interval: float = 60.0,
                    metric: str = "ble") -> MetricSeries:
    """Random-scale sampling (Figs. 12–14): one sample per ``interval``."""
    link = testbed.plc_link(src, dst)
    assert link is not None
    try:
        column = _LONG_RUN_COLUMNS[metric]
    except KeyError:
        raise ValueError(f"unknown metric {metric!r}") from None
    times = np.arange(t_start, t_start + duration, interval)
    # Only throughput carries measurement noise; BLE/PBerr are MM reads.
    series = link.sample_series(times,
                                measured=(metric == "throughput"))
    return MetricSeries(times, series.column(column),
                        name=f"{metric}-{src}-{dst}")


def working_hours_start(clock: Optional[MainsClock] = None,
                        day: int = 2, hour: float = 14.0) -> float:
    """A canonical 'during working hours' measurement start (Wed 2 pm).

    ``clock=None`` builds a fresh default clock per call — a mutable
    default instance here would be shared by every caller (the classic
    mutable-default-argument hazard).
    """
    return (clock if clock is not None else MainsClock()).at(day=day,
                                                            hour=hour)


def night_start(clock: Optional[MainsClock] = None, day: int = 2,
                hour: float = 23.5) -> float:
    """A canonical quiet-hours start (§6.2 runs at night/weekends)."""
    return (clock if clock is not None else MainsClock()).at(day=day,
                                                            hour=hour)
