"""Link-asymmetry analysis (§5, Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class AsymmetryReport:
    """Asymmetry statistics over a set of bidirectional measurements."""

    n_pairs: int
    ratios: np.ndarray            # max(fwd,rev)/min(fwd,rev) per pair
    severe_fraction: float        # share of pairs above the threshold
    threshold: float

    def worst_pairs(self, pair_names: List[str], k: int = 10
                    ) -> List[Tuple[str, float]]:
        order = np.argsort(-self.ratios)[:k]
        return [(pair_names[i], float(self.ratios[i])) for i in order]


def asymmetry_report(fwd: Dict[Tuple[int, int], float],
                     threshold: float = 1.5,
                     min_value: float = 0.5) -> AsymmetryReport:
    """Compute pairwise asymmetry from directed measurements.

    ``fwd`` maps directed pairs (i, j) to a metric (throughput, BLE).
    Pairs where both directions fall below ``min_value`` are skipped (dead
    links have no meaningful ratio). The paper's headline: ~30 % of pairs
    exceed 1.5× (§5).
    """
    ratios: List[float] = []
    seen = set()
    for (i, j), value in sorted(fwd.items()):
        if (j, i) in seen or (j, i) not in fwd:
            continue
        seen.add((i, j))
        reverse = fwd[(j, i)]
        hi, lo = max(value, reverse), min(value, reverse)
        if hi < min_value:
            continue
        ratios.append(hi / max(lo, min_value))
    arr = np.asarray(ratios)
    severe = float((arr > threshold).mean()) if len(arr) else 0.0
    return AsymmetryReport(n_pairs=len(arr), ratios=arr,
                           severe_fraction=severe, threshold=threshold)
