"""Time-series tools: recover the paper's three timescales from raw traces.

§6 asserts that PLC channel quality varies on three separable timescales.
These estimators *detect* that structure from measurements alone:

* :func:`detect_periodicity_s` — phase-folding periodogram; applied to a
  SoF capture it finds the 10 ms invariance-scale period (half the 50 Hz
  mains cycle) without being told the mains frequency;
* :func:`autocorrelation_time_s` — the cycle-scale memory of a BLE trace
  (long for good links, short for bad ones — Fig. 11's α in
  correlation form);
* :func:`cusum_changepoints` — random-scale regime shifts (appliance
  switching, the 9 pm lights-off event of Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.metrics import MetricSeries


def autocorrelation(values: Sequence[float], max_lag: int) -> np.ndarray:
    """Normalised autocorrelation for lags 0..max_lag."""
    x = np.asarray(values, dtype=float)
    if len(x) < 3:
        raise ValueError("need at least three samples")
    if max_lag < 1 or max_lag >= len(x):
        raise ValueError("max_lag must be in [1, len(values))")
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom == 0:
        return np.ones(max_lag + 1)
    return np.array([np.dot(x[: len(x) - k], x[k:]) / denom
                     for k in range(max_lag + 1)])


def autocorrelation_time_s(series: MetricSeries,
                           max_lag_s: Optional[float] = None) -> float:
    """Integrated autocorrelation time of a uniformly-sampled series (s).

    The cycle-scale "memory" of a link: how long a BLE reading stays
    informative — directly the quantity §7.3's probing intervals chase.
    """
    if len(series) < 8:
        raise ValueError("series too short")
    dt = float(np.median(np.diff(series.times)))
    if dt <= 0:
        raise ValueError("non-increasing timestamps")
    max_lag = len(series) // 2
    if max_lag_s is not None:
        max_lag = min(max_lag, max(1, int(max_lag_s / dt)))
    acf = autocorrelation(series.values, max_lag)
    # Integrate until the first zero crossing (standard truncation rule).
    total = 0.5
    for rho in acf[1:]:
        if rho <= 0:
            break
        total += rho
    return float(2.0 * total * dt)


def detect_periodicity_s(times: Sequence[float], values: Sequence[float],
                         candidate_periods_s: Sequence[float]
                         ) -> tuple:
    """Find the period that best phase-folds the samples.

    For each candidate period, samples are folded into phase bins; the
    score is 1 − (mean within-bin variance / total variance): near 1 for
    the true period of a periodic signal, near 0 otherwise. Returns
    ``(best_period_s, score)``.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or len(t) < 12:
        raise ValueError("need at least 12 aligned samples")
    total_var = float(v.var())
    if total_var == 0:
        raise ValueError("constant signal has no detectable period")
    best = (float(candidate_periods_s[0]), -np.inf)
    n_bins = 6
    for period in candidate_periods_s:
        if period <= 0:
            raise ValueError("periods must be positive")
        phases = (t % period) / period
        bins = np.minimum((phases * n_bins).astype(int), n_bins - 1)
        within = 0.0
        counted = 0
        for b in range(n_bins):
            mask = bins == b
            if mask.sum() >= 2:
                within += float(v[mask].var()) * mask.sum()
                counted += int(mask.sum())
        if counted == 0:
            continue
        score = 1.0 - (within / counted) / total_var
        if score > best[1]:
            best = (float(period), score)
    return best


@dataclass(frozen=True)
class Changepoint:
    """One detected regime shift."""

    time: float
    direction: int  # +1 upward shift, -1 downward


def cusum_changepoints(series: MetricSeries, threshold_sigmas: float = 5.0,
                       drift_sigmas: float = 0.5) -> List[Changepoint]:
    """Two-sided CUSUM changepoint detector.

    ``threshold_sigmas``/``drift_sigmas`` are in units of the series' local
    (first-difference) noise scale, so the detector adapts to the link's
    own cycle-scale jitter and reports only random-scale shifts.
    """
    if len(series) < 10:
        raise ValueError("series too short")
    v = series.values.astype(float)
    noise = float(np.std(np.diff(v))) / np.sqrt(2.0)
    if noise == 0:
        noise = max(1e-12, float(np.std(v)) / 10 or 1e-12)
    threshold = threshold_sigmas * noise
    drift = drift_sigmas * noise
    # Robust initial regime estimate — anchoring to v[0] alone would flag a
    # spurious shift whenever the first sample is an outlier.
    mean = float(np.median(v[: min(10, len(v))]))
    up = 0.0
    down = 0.0
    out: List[Changepoint] = []
    for t, x in zip(series.times[1:], v[1:]):
        up = max(0.0, up + (x - mean) - drift)
        down = max(0.0, down - (x - mean) - drift)
        if up > threshold:
            out.append(Changepoint(time=float(t), direction=+1))
            mean = x
            up = down = 0.0
        elif down > threshold:
            out.append(Changepoint(time=float(t), direction=-1))
            mean = x
            up = down = 0.0
        else:
            # Slow tracking of the current regime mean.
            mean += 0.01 * (x - mean)
    return out
