"""Statistics used in the paper's analysis: linear fits with residual
normality (Fig. 15), empirical CDFs (Fig. 19), summary stats (Fig. 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class LinearFit:
    """y = slope · x + intercept with fit diagnostics."""

    slope: float
    intercept: float
    r_squared: float
    residual_normality_pvalue: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    @property
    def residuals_normal(self) -> bool:
        """Paper's check on the BLE–throughput fit: residuals are normal."""
        return self.residual_normality_pvalue > 0.05


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares line plus a Shapiro normality test on the residuals."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or len(x) < 3:
        raise ValueError("need at least three paired samples")
    slope, intercept, r_value, _, _ = scipy_stats.linregress(x, y)
    residuals = y - (slope * x + intercept)
    if len(residuals) >= 8 and float(np.std(residuals)) > 0:
        # Shapiro caps at 5000 samples; subsample deterministically.
        sample = residuals[:: max(1, len(residuals) // 5000)]
        _, pvalue = scipy_stats.shapiro(sample)
    else:
        pvalue = 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=float(r_value ** 2),
                     residual_normality_pvalue=float(pvalue))


def empirical_cdf(samples: Sequence[float],
                  grid: Sequence[float]) -> np.ndarray:
    """F(x) evaluated on ``grid``."""
    s = np.sort(np.asarray(samples, dtype=float))
    if len(s) == 0:
        raise ValueError("no samples")
    return np.searchsorted(s, np.asarray(grid, dtype=float),
                           side="right") / len(s)


@dataclass(frozen=True)
class Summary:
    """Mean/std/min/max of a sample set."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(samples: Sequence[float]) -> Summary:
    a = np.asarray(samples, dtype=float)
    if len(a) == 0:
        raise ValueError("no samples")
    return Summary(n=len(a), mean=float(a.mean()), std=float(a.std()),
                   minimum=float(a.min()), maximum=float(a.max()))


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or len(x) < 3:
        raise ValueError("need at least three paired samples")
    return float(np.corrcoef(x, y)[0, 1])
