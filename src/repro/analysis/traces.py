"""Measurement-campaign persistence (JSONL).

The paper's campaigns span a year of repeated experiments; anything built on
this library needs to save measurement runs and reload them for analysis
without re-simulating. The format is line-delimited JSON: one header line
(campaign metadata) followed by one line per record — append-friendly,
diff-able, and stream-parseable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.core.metrics import LinkMetricRecord, MetricSeries

FORMAT_VERSION = 1


@dataclass
class Campaign:
    """A named collection of link-metric records."""

    name: str
    description: str = ""
    seed: Optional[int] = None
    records: List[LinkMetricRecord] = field(default_factory=list)

    def add(self, record: LinkMetricRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # --- queries -------------------------------------------------------------

    def links(self) -> List[tuple]:
        """Distinct (src, dst, medium) triples, sorted."""
        return sorted({(r.src, r.dst, r.medium) for r in self.records})

    def series(self, src: str, dst: str, medium: str,
               value: str = "capacity_bps") -> MetricSeries:
        """Extract one link's records as a time series of one field."""
        rows = sorted(
            ((r.time, getattr(r, value)) for r in self.records
             if (r.src, r.dst, r.medium) == (src, dst, medium)
             and getattr(r, value) is not None),
            key=lambda p: p[0])
        return MetricSeries([t for t, _ in rows], [v for _, v in rows],
                            name=f"{src}->{dst}/{medium}/{value}")


def save_campaign(campaign: Campaign, path: Union[str, Path]) -> None:
    """Write a campaign as JSONL (header line + one line per record)."""
    path = Path(path)
    header = {"format": "repro-campaign", "version": FORMAT_VERSION,
              "name": campaign.name, "description": campaign.description,
              "seed": campaign.seed, "n_records": len(campaign)}
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for record in campaign.records:
            fh.write(json.dumps(asdict(record), sort_keys=True) + "\n")


def iter_records(path: Union[str, Path]) -> Iterator[LinkMetricRecord]:
    """Stream records from a campaign file without loading it whole."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        _validate_header(header_line, path)
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                yield LinkMetricRecord(**data)
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: bad record: {exc}") from exc


def load_campaign(path: Union[str, Path]) -> Campaign:
    """Read a campaign file back into memory."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = _validate_header(fh.readline(), path)
    campaign = Campaign(name=header.get("name", path.stem),
                        description=header.get("description", ""),
                        seed=header.get("seed"))
    for record in iter_records(path):
        campaign.add(record)
    return campaign


def _validate_header(line: str, path: Path) -> Dict:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a campaign file "
                         f"(bad header)") from exc
    if not isinstance(header, dict) or header.get(
            "format") != "repro-campaign":
        raise ValueError(f"{path}: not a campaign file")
    if header.get("version", 0) > FORMAT_VERSION:
        raise ValueError(
            f"{path}: campaign format v{header['version']} is newer than "
            f"this library understands (v{FORMAT_VERSION})")
    return header


def record_survey(testbed, t: float, pairs=None,
                  campaign_name: str = "survey") -> Campaign:
    """Snapshot both media of (a subset of) the testbed into a campaign."""
    campaign = Campaign(name=campaign_name, seed=testbed.streams.seed,
                        description=f"dual-medium survey at t={t:.0f}s")
    for i, j in (pairs if pairs is not None else testbed.same_board_pairs()):
        plc = testbed.plc_link(i, j)
        if plc is not None:
            campaign.add(LinkMetricRecord(
                time=t, src=str(i), dst=str(j), medium="plc",
                capacity_bps=plc.avg_ble_bps(t),
                pb_err=plc.pb_err(t),
                throughput_bps=plc.throughput_bps(t, measured=False)))
        wifi = testbed.wifi_link(i, j)
        campaign.add(LinkMetricRecord(
            time=t, src=str(i), dst=str(j), medium="wifi",
            capacity_bps=wifi.phy_rate_bps(t),
            throughput_bps=wifi.throughput_bps(t, measured=False)))
    return campaign
