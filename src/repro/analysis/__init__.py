"""Statistics and reporting helpers shared by tests and benchmarks."""

from repro.analysis.stats import (
    LinearFit,
    empirical_cdf,
    linear_fit,
    summarize,
)
from repro.analysis.asymmetry import AsymmetryReport, asymmetry_report
from repro.analysis.timeseries import (
    autocorrelation_time_s,
    cusum_changepoints,
    detect_periodicity_s,
)
from repro.analysis.traces import Campaign, load_campaign, save_campaign

__all__ = [
    "LinearFit",
    "linear_fit",
    "empirical_cdf",
    "summarize",
    "AsymmetryReport",
    "asymmetry_report",
    "autocorrelation_time_s",
    "detect_periodicity_s",
    "cusum_changepoints",
    "Campaign",
    "save_campaign",
    "load_campaign",
]
