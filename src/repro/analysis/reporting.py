"""Plain-text tables for benchmark output (the paper's rows and series)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; numbers rendered with sensible precision."""
    def cell(value) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.1f}"
            return f"{value:.3g}"
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, value in enumerate(row):
            widths[k] = max(widths[k], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 24) -> str:
    """A compact (x, y) series dump for figure benchmarks."""
    n = len(xs)
    stride = max(1, n // max_points)
    rows = [(xs[k], ys[k]) for k in range(0, n, stride)]
    return format_table([x_label, y_label], rows, title=name)


def summarize_artifacts(path: Union[str, Path],
                        top: int = 15) -> Tuple[str, Dict[str, int]]:
    """Summarise a campaign-artifact JSONL file for ``repro report``.

    Returns the formatted text plus a per-kind task census. Survey tasks
    get a per-link throughput table; other kinds are counted.
    """
    from repro.campaign.artifacts import read_artifacts

    header, tasks = read_artifacts(path)
    census: Dict[str, int] = {}
    for task in tasks:
        kind = task.spec.get("kind", "?")
        census[kind] = census.get(kind, 0) + 1
    lines = [f"campaign {header.get('name')!r}: {len(tasks)} tasks "
             f"(root seed {header.get('root_seed')})"]
    lines.append(format_table(
        ["task kind", "tasks"], sorted(census.items()),
        title="task census"))

    survey_rows = []
    for task in tasks:
        if task.spec.get("kind") != "survey_pair":
            continue
        for rec in task.records:
            survey_rows.append([
                f"{rec['src']}->{rec['dst']}",
                task.spec.get("seed"),
                rec["cable_distance_m"],
                rec["plc_mean_mbps"], rec["wifi_mean_mbps"]])
    if survey_rows:
        survey_rows.sort(key=lambda r: -r[3])
        lines.append("")
        lines.append(format_table(
            ["link", "seed", "cable (m)", "PLC (Mbps)", "WiFi (Mbps)"],
            survey_rows[:top],
            title=f"survey results — top {min(top, len(survey_rows))} "
                  f"of {len(survey_rows)}"))

    flow_rows = []
    for task in tasks:
        if task.spec.get("kind") != "scenario":
            continue
        for rec in task.records:
            flow_rows.append([
                task.spec["params"].get("scenario", "?"),
                task.spec.get("seed"), rec["flow"], rec["kind"],
                rec["mean_rate_bps"] / 1e6,
                "done" if rec["finished"] else "running"])
    if flow_rows:
        lines.append("")
        lines.append(format_table(
            ["scenario", "seed", "flow", "kind", "rate (Mbps)", "state"],
            flow_rows[:top], title="scenario flows"))
    return "\n".join(lines), census
