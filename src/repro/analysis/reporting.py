"""Plain-text tables for benchmark output (the paper's rows and series)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; numbers rendered with sensible precision."""
    def cell(value) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.1f}"
            return f"{value:.3g}"
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, value in enumerate(row):
            widths[k] = max(widths[k], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 24) -> str:
    """A compact (x, y) series dump for figure benchmarks."""
    n = len(xs)
    stride = max(1, n // max_points)
    rows = [(xs[k], ys[k]) for k in range(0, n, stride)]
    return format_table([x_label, y_label], rows, title=name)
