"""Plain-text tables for benchmark output (the paper's rows and series),
plus the campaign timeline view (``repro report --timeline``)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

#: Width of the ASCII utilisation bars in the timeline view.
_BAR_WIDTH = 30


def format_bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    """``0.4 -> '############..................'`` — clamped for display
    only (the underlying numbers are never clamped)."""
    filled = int(round(max(0.0, min(fraction, 1.0)) * width))
    return "#" * filled + "." * (width - filled)


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; numbers rendered with sensible precision."""
    def cell(value) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.1f}"
            return f"{value:.3g}"
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, value in enumerate(row):
            widths[k] = max(widths[k], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 24) -> str:
    """A compact (x, y) series dump for figure benchmarks."""
    n = len(xs)
    stride = max(1, n // max_points)
    rows = [(xs[k], ys[k]) for k in range(0, n, stride)]
    return format_table([x_label, y_label], rows, title=name)


def summarize_artifacts(path: Union[str, Path],
                        top: int = 15) -> Tuple[str, Dict[str, int]]:
    """Summarise a campaign-artifact JSONL file for ``repro report``.

    Returns the formatted text plus a per-kind task census. Survey tasks
    get a per-link throughput table; other kinds are counted.
    """
    from repro.campaign.artifacts import read_artifacts

    header, tasks = read_artifacts(path)
    census: Dict[str, int] = {}
    for task in tasks:
        kind = task.spec.get("kind", "?")
        census[kind] = census.get(kind, 0) + 1
    lines = [f"campaign {header.get('name')!r}: {len(tasks)} tasks "
             f"(root seed {header.get('root_seed')})"]
    lines.append(format_table(
        ["task kind", "tasks"], sorted(census.items()),
        title="task census"))

    survey_rows = []
    for task in tasks:
        if task.spec.get("kind") != "survey_pair":
            continue
        for rec in task.records:
            survey_rows.append([
                f"{rec['src']}->{rec['dst']}",
                task.spec.get("seed"),
                rec["cable_distance_m"],
                rec["plc_mean_mbps"], rec["wifi_mean_mbps"]])
    if survey_rows:
        survey_rows.sort(key=lambda r: -r[3])
        lines.append("")
        lines.append(format_table(
            ["link", "seed", "cable (m)", "PLC (Mbps)", "WiFi (Mbps)"],
            survey_rows[:top],
            title=f"survey results — top {min(top, len(survey_rows))} "
                  f"of {len(survey_rows)}"))

    flow_rows = []
    for task in tasks:
        if task.spec.get("kind") != "scenario":
            continue
        for rec in task.records:
            flow_rows.append([
                task.spec["params"].get("scenario", "?"),
                task.spec.get("seed"), rec["flow"], rec["kind"],
                rec["mean_rate_bps"] / 1e6,
                "done" if rec["finished"] else "running"])
    if flow_rows:
        lines.append("")
        lines.append(format_table(
            ["scenario", "seed", "flow", "kind", "rate (Mbps)", "state"],
            flow_rows[:top], title="scenario flows"))
    return "\n".join(lines), census


def summarize_timeline(path: Union[str, Path], top: int = 15,
                       buckets: int = 12) -> str:
    """The ``repro report --timeline`` view of a campaign artifact.

    Re-merges every task's runner stats through the campaign's exact
    quanta-weighted merge (:meth:`CampaignStats.merge_task_stats`) and
    renders per-domain utilisation as ASCII bars; if the run left a trace
    sidecar next to the artifact, adds a sim-time event census and a
    bucketed activity strip from the deterministic event stream.
    """
    from repro.campaign.artifacts import read_artifacts
    from repro.campaign.stats import CampaignStats
    from repro.obs.trace import read_trace, trace_path_for

    header, tasks = read_artifacts(path)
    stats = CampaignStats(total_specs=len(tasks))
    with_stats = 0
    for task in tasks:
        if task.stats:
            stats.merge_task_stats(task.stats)
            with_stats += 1
    lines = [f"campaign {header.get('name')!r}: {len(tasks)} tasks, "
             f"{with_stats} with runner stats"]

    utilisation = stats.domain_utilisation()
    if utilisation:
        quanta = stats.registry.counters_with_prefix(
            "runner.domain_quanta.")
        rows = [[domain, quanta.get(domain, 0), f"{util:.3f}",
                 format_bar(util)]
                for domain, util in sorted(utilisation.items())]
        lines.append(format_table(
            ["domain", "quanta", "utilisation", ""], rows,
            title="per-domain airtime utilisation "
                  "(quanta-weighted across tasks)"))
    elif with_stats:
        lines.append("(no per-domain airtime in task stats)")

    sidecar = trace_path_for(path)
    if sidecar.exists():
        trace_header, events = read_trace(sidecar)
        census: Dict[str, List[float]] = {}
        for ev in events:
            entry = census.setdefault(ev["name"], [0, float("inf"),
                                                   float("-inf")])
            entry[0] += 1
            entry[1] = min(entry[1], ev["sim_time"])
            end = ev["sim_time"] + ev.get("duration_s", 0.0)
            entry[2] = max(entry[2], end)
        lines.append("")
        lines.append(format_table(
            ["event", "count", "sim start", "sim end"],
            [[name, int(c[0]), c[1], c[2]]
             for name, c in sorted(census.items())][:top],
            title=f"trace events ({sidecar.name}, "
                  f"{len(events)} events)"))
        if events:
            t_lo = min(ev["sim_time"] for ev in events)
            t_hi = max(ev["sim_time"] + ev.get("duration_s", 0.0)
                       for ev in events)
            span = max(t_hi - t_lo, 1e-12)
            counts = [0] * buckets
            for ev in events:
                k = min(int((ev["sim_time"] - t_lo) / span * buckets),
                        buckets - 1)
                counts[k] += 1
            peak = max(counts)
            strip = "".join(
                "#" if c and peak and c / peak > 0.5
                else ("+" if c else ".") for c in counts)
            lines.append(f"sim-time activity [{t_lo:g}s .. {t_hi:g}s]: "
                         f"|{strip}|")
    else:
        lines.append("")
        lines.append(f"(no trace sidecar at {sidecar.name}; rerun the "
                     f"campaign with --trace to record one)")
    return "\n".join(lines)
