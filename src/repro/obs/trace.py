"""Span/event tracing keyed on sim-time, persisted as a JSONL sidecar.

The determinism rule: a trace event carries **sim-time only**, so the
event stream of a task is a pure function of its spec — identical at any
worker count, stable across seeds of the *scheduler* (task seeds still
shape the simulated behaviour, as they should). Wall-clock may be added
as an optional annotation for local debugging (``Tracer(wall_clock=...)``)
at the cost of that identity; it is off by default and campaign tracing
never enables it.

Traces are a **sidecar** (``<artifact>.trace.jsonl``), never part of the
result artifact: turning tracing on must not move a single byte of
results. The sidecar has its own canonical form — header line, then one
line per event sorted by ``(task_key, seq)`` — so two traced runs of the
same campaign produce byte-identical sidecars too.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.obs.clock import Clock

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class TraceEvent:
    """One point (or span) on the sim-time axis.

    ``duration_s`` distinguishes spans (>= 0) from point events (None);
    both are anchored at ``sim_time``. ``wall`` is the optional wall-clock
    annotation and MUST stay None for any trace meant to be deterministic.
    """

    name: str
    sim_time: float
    duration_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    wall: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name,
                                "sim_time": self.sim_time}
        if self.duration_s is not None:
            data["duration_s"] = self.duration_s
        if self.attrs:
            data["attrs"] = self.attrs
        if self.wall is not None:
            data["wall"] = self.wall
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        return cls(name=data["name"], sim_time=data["sim_time"],
                   duration_s=data.get("duration_s"),
                   attrs=dict(data.get("attrs", {})),
                   wall=data.get("wall"))


class Tracer:
    """Collects :class:`TraceEvent` values; a disabled tracer is free.

    Instrumented code guards with ``if tracer.enabled:`` so the hot path
    pays one attribute read when tracing is off.
    """

    def __init__(self, enabled: bool = True,
                 wall_clock: Optional[Clock] = None):
        self.enabled = enabled
        self.wall_clock = wall_clock
        self.events: List[TraceEvent] = []

    def event(self, name: str, sim_time: float, **attrs: Any) -> None:
        """Record a point event at ``sim_time``."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(
            name=name, sim_time=float(sim_time), attrs=attrs,
            wall=self.wall_clock.now() if self.wall_clock else None))

    def span(self, name: str, sim_start: float, sim_end: float,
             **attrs: Any) -> None:
        """Record a span covering ``[sim_start, sim_end]`` in sim-time."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(
            name=name, sim_time=float(sim_start),
            duration_s=float(sim_end) - float(sim_start), attrs=attrs,
            wall=self.wall_clock.now() if self.wall_clock else None))

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Events as plain dicts, in emission order (which is itself
        deterministic for sim-driven code)."""
        return [event.to_dict() for event in self.events]

    def clear(self) -> None:
        self.events.clear()


#: Shared no-op tracer for call sites without one injected.
NULL_TRACER = Tracer(enabled=False)


# --- the per-task current tracer ----------------------------------------------

#: Thread-local slot: the ``thread`` execution backend runs several
#: tasks concurrently in one process, so a process-global here would let
#: overlapping :func:`task_trace` installs capture each other's events.
_CURRENT = threading.local()


def current_tracer() -> Tracer:
    """The tracer of the currently executing task (disabled by default).

    Campaign task executors cannot grow a ``tracer`` parameter without
    breaking every registered kind, so the engine's worker shim installs
    one around :func:`repro.campaign.tasks.execute_spec` via
    :func:`task_trace`; executors just read this.
    """
    return getattr(_CURRENT, "tracer", NULL_TRACER)


@contextmanager
def task_trace(enabled: bool) -> Iterator[Tracer]:
    """Install a fresh tracer as :func:`current_tracer` for one task."""
    previous = getattr(_CURRENT, "tracer", NULL_TRACER)
    _CURRENT.tracer = Tracer(enabled=enabled)
    try:
        yield _CURRENT.tracer
    finally:
        _CURRENT.tracer = previous


# --- sidecar persistence ------------------------------------------------------


def trace_path_for(artifact_path: Union[str, Path]) -> Path:
    """``campaign.jsonl`` -> ``campaign.trace.jsonl`` (next to the
    artifact, mirroring the quarantine sidecar convention)."""
    path = Path(artifact_path)
    return path.with_name(f"{path.stem}.trace.jsonl")


def write_trace(path: Union[str, Path],
                events_by_task: Mapping[str, List[Dict[str, Any]]],
                name: str = "trace") -> Path:
    """Write the canonical trace sidecar.

    One header line, then every event as ``{"task_key", "seq", ...}``
    sorted by ``(task_key, seq)`` — per-task emission order is preserved
    (it is sim-deterministic), task order is canonicalised, so the bytes
    are identical at any worker count.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(_canonical({"format": TRACE_FORMAT,
                             "version": TRACE_VERSION,
                             "name": name}) + "\n")
        for task_key in sorted(events_by_task):
            for seq, event in enumerate(events_by_task[task_key]):
                line = dict(event)
                line["task_key"] = task_key
                line["seq"] = seq
                fh.write(_canonical(line) + "\n")
    tmp.replace(path)
    return path


def read_trace(path: Union[str, Path]
               ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a trace sidecar: (header, event lines in file order)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a trace sidecar") from exc
        if not (isinstance(header, dict)
                and header.get("format") == TRACE_FORMAT):
            raise ValueError(f"{path}: not a trace sidecar")
        events = [json.loads(line) for line in fh if line.strip()]
    return header, events
