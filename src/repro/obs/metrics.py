"""A process-safe metrics registry with an *exact* merge.

Three metric kinds, chosen so that merging two registries is associative
and commutative:

* **counters** — monotonic sums (``inc``); merge adds;
* **gauges** — high-watermark values with a sim-time stamp (``watermark``);
  merge keeps the larger ``(value, sim_time)`` pair, so "max over the
  campaign" survives any merge order;
* **histograms** — **fixed bucket edges** declared at first observation;
  merge adds bucket counts elementwise. Fixed edges are the point: two
  histograms over the same edges merge exactly, where adaptive-bucket
  schemes would have to re-bin and lose counts.

Exactness, precisely: everything *discrete* — integer counters, bucket
counts and totals, gauge picks, histogram min/max — merges bit-for-bit
in any grouping or order. *Float* accumulations (wall-seconds counters,
histogram value sums) are correctly-rounded IEEE additions: commutative
bit-for-bit, associative only to within an ulp per merge — regrouping
can move the last bit, never a count. Ratios are therefore always
derived from the discrete parts at read time, never stored.

Per-process safety is a ``threading.Lock`` around every mutation; *cross*-
process flow is explicit — a worker serialises its registry with
:meth:`MetricsRegistry.to_dict`, the parent folds it in with
:meth:`MetricsRegistry.merge`. No shared memory, no partial reads.

``RunnerStats`` and ``CampaignStats`` are thin views over a registry:
every ``*_rate``-style figure is *derived* from counters at read time,
never stored, so merged registries can't carry stale ratios.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Serialised registry: {"counters": ..., "gauges": ..., "histograms": ...}
RegistryDict = Dict[str, Dict[str, object]]


class Histogram:
    """Fixed-edge histogram: ``len(edges) + 1`` buckets (last = overflow)."""

    __slots__ = ("edges", "counts", "total", "sum", "min", "max")

    def __init__(self, edges: Sequence[float]):
        edges = tuple(float(e) for e in edges)
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram edges must be strictly increasing")
        if not edges:
            raise ValueError("histogram needs at least one edge")
        self.edges: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        k = 0
        while k < len(self.edges) and value > self.edges[k]:
            k += 1
        self.counts[k] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.sum += other.sum
        for attr in ("min", "max"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is None:
                continue
            if mine is None:
                setattr(self, attr, theirs)
            else:
                pick = min if attr == "min" else max
                setattr(self, attr, pick(mine, theirs))

    def to_dict(self) -> Dict[str, object]:
        return {"edges": list(self.edges), "counts": list(self.counts),
                "sum": self.sum, "min": self.min, "max": self.max}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        hist = cls(data["edges"])
        hist.counts = [int(c) for c in data["counts"]]
        hist.total = sum(hist.counts)
        hist.sum = float(data.get("sum", 0.0))
        hist.min = data.get("min")
        hist.max = data.get("max")
        return hist


class MetricsRegistry:
    """Named counters, watermark gauges and fixed-edge histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        #: name -> (value, sim_time); merge keeps the lexicographic max.
        self._gauges: Dict[str, Tuple[float, float]] = {}
        self._histograms: Dict[str, Histogram] = {}

    # --- mutation -------------------------------------------------------------

    def inc(self, name: str, delta: Union[int, float] = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def set_counter(self, name: str, value: Union[int, float]) -> None:
        """Assign a counter outright (for set-once figures like
        ``wall_seconds``; merging still sums)."""
        with self._lock:
            self._counters[name] = value

    def watermark(self, name: str, value: float,
                  sim_time: float = 0.0) -> None:
        """Raise the high-watermark gauge ``name`` to ``value`` if higher."""
        with self._lock:
            current = self._gauges.get(name)
            candidate = (float(value), float(sim_time))
            if current is None or candidate > current:
                self._gauges[name] = candidate

    def observe(self, name: str, value: float,
                edges: Sequence[float]) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(edges)
            hist.observe(value)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # --- reads ----------------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            entry = self._gauges.get(name)
            return entry[0] if entry is not None else default

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """``{suffix: value}`` for every counter named ``prefix<suffix>``."""
        with self._lock:
            return {name[len(prefix):]: value
                    for name, value in self._counters.items()
                    if name.startswith(prefix)}

    # --- merge / serialisation ------------------------------------------------

    def merge(self, other: Union["MetricsRegistry", RegistryDict]) -> None:
        """Fold ``other`` in. Counters add, gauges keep the max
        ``(value, sim_time)``, histograms add counts (same edges
        required) — commutative, and associative bit-for-bit in the
        discrete parts (float sums to within an ulp; see module doc)."""
        data = other.to_dict() if isinstance(other, MetricsRegistry) \
            else other
        with self._lock:
            for name, value in data.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, entry in data.get("gauges", {}).items():
                candidate = (float(entry[0]), float(entry[1]))
                current = self._gauges.get(name)
                if current is None or candidate > current:
                    self._gauges[name] = candidate
            for name, hist_data in data.get("histograms", {}).items():
                incoming = Histogram.from_dict(hist_data)
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = incoming
                else:
                    mine.merge(incoming)

    def to_dict(self) -> RegistryDict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": {n: [v, t] for n, (v, t)
                           in self._gauges.items()},
                "histograms": {n: h.to_dict()
                               for n, h in self._histograms.items()},
            }

    @classmethod
    def from_dict(cls, data: RegistryDict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(data)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"MetricsRegistry(counters={len(self._counters)}, "
                    f"gauges={len(self._gauges)}, "
                    f"histograms={len(self._histograms)})")


# --- the process-wide default registry ----------------------------------------

_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry instruments publish into by default.

    Components take an optional ``metrics`` argument; ``None`` means this
    registry. It never crosses a process boundary implicitly — a campaign
    worker that wants its numbers aggregated returns ``to_dict()`` in its
    payload.
    """
    return _GLOBAL


def reset_global_registry() -> None:
    """Clear the process-wide registry (test isolation)."""
    _GLOBAL.reset()
