"""Per-stage profiling hooks publishing into the metrics registry.

A :class:`Profiler` wraps named stages (``with profiler.stage("..."):``)
and accumulates wall-clock time and call counts into a
:class:`~repro.obs.metrics.MetricsRegistry` under ``profile.<stage>.*``,
plus a fixed-edge latency histogram per stage. Profiles are *metrics*,
never results: they ride the registry across process boundaries and show
up in ``repro report --timeline`` / operator summaries, but no artifact
or trace line ever contains one.

The disabled :data:`NULL_PROFILER` costs one attribute check per stage,
so hot paths (per-quantum cache lookups, ``sample_series`` batches) can
be instrumented unconditionally.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.clock import Clock, SystemClock
from repro.obs.metrics import MetricsRegistry, global_registry

#: Stage-latency bucket edges (seconds): fixed so merges stay exact.
STAGE_EDGES = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class _NullStage:
    """Free context manager for disabled profilers (no allocation)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_STAGE = _NullStage()


class _Stage:
    """One stage's reusable timer — metric names are precomputed so the
    per-entry cost is two clock reads plus the registry updates."""

    __slots__ = ("_profiler", "_calls", "_seconds", "_latency", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._calls = f"{profiler.prefix}{name}.calls"
        self._seconds = f"{profiler.prefix}{name}.seconds"
        self._latency = f"{profiler.prefix}{name}.latency"
        self._start = 0.0

    def __enter__(self):
        self._start = self._profiler._clock.now()
        return None

    def __exit__(self, *exc):
        elapsed = self._profiler._clock.now() - self._start
        registry = self._profiler.metrics
        registry.inc(self._calls)
        registry.inc(self._seconds, elapsed)
        registry.observe(self._latency, elapsed, edges=STAGE_EDGES)
        return False


class Profiler:
    """Accumulates per-stage wall time into a registry."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Clock] = None, enabled: bool = True,
                 prefix: str = "profile."):
        self.enabled = enabled
        self.prefix = prefix
        self._metrics = metrics
        self._clock = clock or SystemClock()
        self._stages: Dict[str, _Stage] = {}

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None \
            else global_registry()

    def stage(self, name: str):
        """Time one pass through stage ``name`` (a context manager)."""
        if not self.enabled:
            return _NULL_STAGE
        timer = self._stages.get(name)
        if timer is None:
            timer = self._stages[name] = _Stage(self, name)
        return timer

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{stage: {"calls": n, "seconds": s, "mean_s": s/n}}`` — the
        mean is derived at read time, never stored."""
        registry = self.metrics
        stages: Dict[str, Dict[str, float]] = {}
        for key, value in registry.counters_with_prefix(
                self.prefix).items():
            stage, _, field = key.rpartition(".")
            if field not in ("calls", "seconds"):
                continue
            stages.setdefault(stage, {})[field] = value
        for entry in stages.values():
            calls = entry.get("calls", 0)
            entry["mean_s"] = (entry.get("seconds", 0.0) / calls
                               if calls else 0.0)
        return stages


#: Shared disabled profiler: instrument freely, pay nothing.
NULL_PROFILER = Profiler(enabled=False)
