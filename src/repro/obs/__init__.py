"""Unified observability: metrics, traces and profiling for the stack.

Three concerns, three modules, one determinism rule:

* :mod:`repro.obs.metrics` — a process-safe :class:`MetricsRegistry` of
  counters, high-watermark gauges and fixed-bucket histograms whose merge
  is *exact* (associative and commutative), so per-worker registries fold
  into one campaign-wide view without drift;
* :mod:`repro.obs.trace` — span/event tracing keyed on **sim-time**
  (deterministic, seed-stable), persisted as a ``.trace.jsonl`` sidecar so
  result artifacts stay byte-identical whether tracing is on or off;
* :mod:`repro.obs.profile` — lightweight per-stage wall-clock timers that
  publish into the registry (`profile.<stage>.seconds` / ``.calls``);
* :mod:`repro.obs.clock` — the single wall-clock seam: every monotonic
  read outside this package goes through an injected :class:`Clock`
  (``SystemClock`` in production, ``FakeClock`` in tests).

The determinism rule: **results and traces carry sim-time only**.
Wall-clock readings exist solely in metrics, profiles and operator
summaries — never in artifact or sidecar lines (a tracer *can* annotate
wall time for local debugging, which forfeits cross-run sidecar identity
and is off by default).
"""

from repro.obs.clock import Clock, FakeClock, SystemClock
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.trace import (
    NULL_TRACER,
    TraceEvent,
    Tracer,
    current_tracer,
    read_trace,
    task_trace,
    trace_path_for,
    write_trace,
)

__all__ = [
    "Clock",
    "FakeClock",
    "SystemClock",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
    "Profiler",
    "NULL_PROFILER",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "current_tracer",
    "task_trace",
    "trace_path_for",
    "read_trace",
    "write_trace",
]
