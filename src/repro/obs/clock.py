"""The wall-clock seam: one injectable monotonic clock for the stack.

Mixing clock domains is how the old engine grew its retry-deadline bug:
backoff deadlines were computed from ``time.perf_counter()`` epochs in the
parent process while task durations came from in-worker timers, and
nothing marked which numbers were comparable. The rule now is:

* **epochs** (``now()`` readings used for deadlines, budgets, elapsed
  intervals) come from exactly one :class:`Clock` instance per component,
  injected at construction — so a test can swap in a :class:`FakeClock`
  and drive the retry heap, timeouts and the circuit breaker without
  sleeping;
* **durations** (an in-worker ``elapsed_s``) may cross process boundaries,
  epochs may not;
* this module is the only place in ``src/repro`` allowed to touch
  ``time.perf_counter`` / ``time.time`` (enforced by a static scan and a
  ruff banned-API rule).
"""

from __future__ import annotations

import time as _time
from typing import List, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Monotonic clock surface every timed component depends on."""

    def now(self) -> float:
        """Seconds on a monotonic axis (epoch is instance-private)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        ...


class SystemClock:
    """The production clock: ``time.perf_counter`` + ``time.sleep``."""

    def now(self) -> float:
        return _time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class FakeClock:
    """Deterministic test clock: ``sleep`` advances, nothing blocks.

    ``sleeps`` records every requested sleep so tests can assert backoff
    schedules exactly (e.g. exponential retry delays) instead of timing
    them.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        if seconds > 0:
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds


#: Shared default so call sites can write ``clock or DEFAULT_CLOCK``.
DEFAULT_CLOCK = SystemClock()
