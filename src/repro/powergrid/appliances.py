"""Appliance models: impedance, noise and switching behaviour.

Appliances matter to PLC in two ways (paper §5, Fig. 5, and ref [9]):

* their **impedance** differs from the line's characteristic impedance, so
  every plugged-in (and especially every powered-on) appliance is a
  reflection point that shapes the multipath transfer function;
* their power electronics inject **noise** that is non-Gaussian and, for most
  device classes, periodic with the mains: each tone-map slot of the half
  cycle sees a different noise level (§6.1), and switching events add
  impulsive noise (§6.3).

The catalog below encodes device classes with parameters chosen from the PLC
noise-measurement literature ([9] in the paper). Values are deliberately
coarse — the paper's conclusions depend on the *diversity* of appliance
behaviour, not on exact PSDs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

#: Characteristic impedance of in-wall mains cable at PLC frequencies (ohms).
LINE_IMPEDANCE = 85.0


class ScheduleClass(enum.Enum):
    """How an appliance's on/off state evolves (drives the random scale)."""

    ALWAYS_ON = "always_on"       # fridges, network gear, standby bricks
    LIGHTING = "lighting"         # building lighting: hard 9 pm cut-off
    OFFICE_HOURS = "office_hours" # PCs, monitors, printers
    INTERMITTENT = "intermittent" # kettles, microwaves, vacuum cleaners


@dataclass(frozen=True)
class ApplianceType:
    """Static electrical description of an appliance class.

    Attributes
    ----------
    name:
        Catalog key.
    impedance_on / impedance_off:
        Magnitude of the appliance impedance (ohms) at PLC frequencies when
        powered on / in standby. The reflection coefficient at its tap is
        ``(Z - Z0) / (Z + Z0)``.
    noise_psd_dbm_hz:
        Broadband noise injection at the appliance terminals when on,
        in dBm/Hz (receiver-side contribution before cable attenuation).
    slot_profile:
        Relative (linear) noise multipliers for the 6 tone-map slots of the
        half mains cycle — the mains-synchronous component. Normalised to
        mean 1 at construction sites.
    impulsive_rate_hz:
        Rate of impulsive-noise bursts while on (switching transients).
    schedule:
        Which :class:`ScheduleClass` drives its on/off state.
    duty_cycle:
        For :attr:`ScheduleClass.INTERMITTENT`, the fraction of time on
        during active hours.
    """

    name: str
    impedance_on: float
    impedance_off: float
    noise_psd_dbm_hz: float
    slot_profile: Tuple[float, ...]
    impulsive_rate_hz: float
    schedule: ScheduleClass
    duty_cycle: float = 1.0

    def reflection_coefficient(self, powered_on: bool) -> float:
        """|Γ| of the tap with this appliance at its end."""
        z = self.impedance_on if powered_on else self.impedance_off
        return abs((z - LINE_IMPEDANCE) / (z + LINE_IMPEDANCE))

    def slot_noise_multipliers(self) -> np.ndarray:
        """Per-slot noise multipliers normalised to mean 1."""
        profile = np.asarray(self.slot_profile, dtype=float)
        if profile.ndim != 1 or len(profile) == 0:
            raise ValueError("slot_profile must be a non-empty 1-D sequence")
        return profile / profile.mean()


def _flat(n: int = 6) -> Tuple[float, ...]:
    return tuple([1.0] * n)


#: Device classes found in an office building. Impedances in ohms; noise PSDs
#: in dBm/Hz at the appliance. Slot profiles encode mains-synchronous noise:
#: e.g. phase-controlled dimmers and switched-mode supplies are loudest near
#: the zero crossings / peaks of the cycle.
APPLIANCE_CATALOG: Dict[str, ApplianceType] = {
    "led_lighting": ApplianceType(
        name="led_lighting", impedance_on=35.0, impedance_off=900.0,
        noise_psd_dbm_hz=-89.0,
        slot_profile=(1.8, 1.0, 0.6, 0.6, 1.0, 1.8),
        impulsive_rate_hz=0.0, schedule=ScheduleClass.LIGHTING),
    "fluorescent_lighting": ApplianceType(
        name="fluorescent_lighting", impedance_on=22.0, impedance_off=1200.0,
        noise_psd_dbm_hz=-83.0,
        slot_profile=(2.6, 1.2, 0.5, 0.5, 1.2, 2.6),
        impulsive_rate_hz=0.05, schedule=ScheduleClass.LIGHTING),
    "desktop_pc": ApplianceType(
        name="desktop_pc", impedance_on=55.0, impedance_off=600.0,
        noise_psd_dbm_hz=-87.0,
        slot_profile=(1.3, 1.0, 0.8, 0.8, 1.0, 1.3),
        impulsive_rate_hz=0.02, schedule=ScheduleClass.OFFICE_HOURS),
    "monitor": ApplianceType(
        name="monitor", impedance_on=140.0, impedance_off=800.0,
        noise_psd_dbm_hz=-92.0,
        slot_profile=(1.2, 1.0, 0.9, 0.9, 1.0, 1.2),
        impulsive_rate_hz=0.01, schedule=ScheduleClass.OFFICE_HOURS),
    "laptop_charger": ApplianceType(
        name="laptop_charger", impedance_on=200.0, impedance_off=1500.0,
        noise_psd_dbm_hz=-90.0,
        slot_profile=(1.5, 1.1, 0.7, 0.7, 1.1, 1.5),
        impulsive_rate_hz=0.0, schedule=ScheduleClass.OFFICE_HOURS),
    "printer": ApplianceType(
        name="printer", impedance_on=30.0, impedance_off=700.0,
        noise_psd_dbm_hz=-81.0,
        slot_profile=(2.0, 1.4, 0.6, 0.6, 1.4, 2.0),
        impulsive_rate_hz=0.1, schedule=ScheduleClass.INTERMITTENT,
        duty_cycle=0.25),
    "coffee_machine": ApplianceType(
        name="coffee_machine", impedance_on=18.0, impedance_off=2000.0,
        noise_psd_dbm_hz=-79.0,
        slot_profile=(1.1, 1.0, 0.95, 0.95, 1.0, 1.1),
        impulsive_rate_hz=0.2, schedule=ScheduleClass.INTERMITTENT,
        duty_cycle=0.10),
    "microwave": ApplianceType(
        name="microwave", impedance_on=12.0, impedance_off=2500.0,
        noise_psd_dbm_hz=-77.0,
        slot_profile=(1.4, 1.2, 0.8, 0.8, 1.2, 1.4),
        impulsive_rate_hz=0.3, schedule=ScheduleClass.INTERMITTENT,
        duty_cycle=0.03),
    "fridge": ApplianceType(
        name="fridge", impedance_on=45.0, impedance_off=45.0,
        noise_psd_dbm_hz=-88.0,
        slot_profile=(1.1, 1.0, 0.95, 0.95, 1.0, 1.1),
        impulsive_rate_hz=0.02, schedule=ScheduleClass.ALWAYS_ON),
    "network_switch": ApplianceType(
        name="network_switch", impedance_on=300.0, impedance_off=300.0,
        noise_psd_dbm_hz=-95.0, slot_profile=_flat(),
        impulsive_rate_hz=0.0, schedule=ScheduleClass.ALWAYS_ON),
    "phone_charger": ApplianceType(
        name="phone_charger", impedance_on=450.0, impedance_off=1800.0,
        noise_psd_dbm_hz=-94.0,
        slot_profile=(1.6, 1.0, 0.7, 0.7, 1.0, 1.6),
        impulsive_rate_hz=0.0, schedule=ScheduleClass.OFFICE_HOURS),
    "lab_equipment": ApplianceType(
        name="lab_equipment", impedance_on=10.0, impedance_off=10.0,
        noise_psd_dbm_hz=-83.0,
        slot_profile=(1.5, 1.2, 0.7, 0.7, 1.2, 1.5),
        impulsive_rate_hz=0.15, schedule=ScheduleClass.ALWAYS_ON),
    "vacuum_cleaner": ApplianceType(
        name="vacuum_cleaner", impedance_on=8.0, impedance_off=3000.0,
        noise_psd_dbm_hz=-73.0,
        slot_profile=(1.2, 1.1, 0.9, 0.9, 1.1, 1.2),
        impulsive_rate_hz=1.0, schedule=ScheduleClass.INTERMITTENT,
        duty_cycle=0.01),
}


@dataclass(frozen=True)
class ApplianceInstance:
    """A concrete appliance plugged into a specific outlet.

    ``instance_id`` must be unique per grid: the activity model derives this
    appliance's private random stream from it.
    """

    instance_id: str
    kind: ApplianceType
    outlet_id: str

    @staticmethod
    def make(instance_id: str, kind_name: str,
             outlet_id: str) -> "ApplianceInstance":
        """Create an instance from a catalog key."""
        if kind_name not in APPLIANCE_CATALOG:
            raise KeyError(f"unknown appliance type {kind_name!r}; "
                           f"available: {sorted(APPLIANCE_CATALOG)}")
        return ApplianceInstance(instance_id, APPLIANCE_CATALOG[kind_name],
                                 outlet_id)


def catalog_names() -> Sequence[str]:
    """Sorted catalog keys (stable iteration order for reproducibility)."""
    return sorted(APPLIANCE_CATALOG)
