"""Power-grid substrate: the electrical network PLC signals travel over.

The paper's PLC findings are driven by three physical mechanisms (§5, §6):

1. the *topology* of the electrical wiring (cable distances, two distribution
   boards) — :mod:`repro.powergrid.topology`;
2. the *appliances* plugged into it, whose impedance mismatches create the
   multipath channel and whose electronics inject mains-synchronous noise —
   :mod:`repro.powergrid.appliances`;
3. *human activity* switching those appliances on and off, which produces the
   random-scale channel variation — :mod:`repro.powergrid.activity`.

:mod:`repro.powergrid.load` combines them into a queryable electrical-load
process used by the PLC channel model.
"""

from repro.powergrid.activity import OfficeActivityModel, ScheduleClass
from repro.powergrid.appliances import (
    APPLIANCE_CATALOG,
    ApplianceInstance,
    ApplianceType,
)
from repro.powergrid.load import ElectricalLoad
from repro.powergrid.topology import GridTopology, Outlet

__all__ = [
    "GridTopology",
    "Outlet",
    "ApplianceType",
    "ApplianceInstance",
    "APPLIANCE_CATALOG",
    "ScheduleClass",
    "OfficeActivityModel",
    "ElectricalLoad",
]
