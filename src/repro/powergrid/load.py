"""Electrical-load process: grid + appliances + activity in one object.

:class:`ElectricalLoad` is the single facade the PLC channel model talks to.
It answers, for any simulated time:

* which appliances are on (`state_signature`) — determines the multipath
  structure (random-scale attenuation changes, §6.3);
* the noise each outlet *hears* per tone-map slot (`noise_psd_at`) — the
  invariance-scale structure (§6.1) plus the receiver-local component that
  creates link asymmetry (§5).

Noise propagation uses a simple exponential cable loss so that an appliance
two rooms away contributes far less noise than one sharing the receiver's
power strip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.powergrid.activity import OfficeActivityModel
from repro.powergrid.appliances import ApplianceInstance
from repro.powergrid.topology import GridTopology

#: Noise attenuation per cable metre (dB/m) at PLC frequencies, broadband
#: average. 1.2 dB/m keeps appliance noise *local*: the dominant noise at a
#: receiver comes from appliances within a room or two — which is what makes
#: PLC links asymmetric (§5) and link quality location-dependent.
NOISE_CABLE_LOSS_DB_PER_M = 1.2

#: Ambient noise floor on an in-building line, dBm/Hz. Measured PLC
#: floors sit near -110 dBm/Hz (far above thermal) due to conducted RF and
#: distant loads; an isolated lab cable pair still yields near-max SNR.
BACKGROUND_NOISE_DBM_HZ = -110.0


def dbm_to_mw(dbm: float) -> float:
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    if mw <= 0:
        raise ValueError("power must be positive")
    return 10.0 * np.log10(mw)


@dataclass
class _NoiseCacheEntry:
    signature: Tuple[bool, ...]
    per_slot_dbm_hz: np.ndarray  # shape (num_slots,)


class ElectricalLoad:
    """Queryable state of the electrical environment."""

    def __init__(self, grid: GridTopology,
                 appliances: List[ApplianceInstance],
                 activity: OfficeActivityModel,
                 num_slots: int = 6):
        unknown = [a.instance_id for a in appliances
                   if a.outlet_id not in grid]
        if unknown:
            raise KeyError(f"appliances on unknown outlets: {unknown}")
        self.grid = grid
        self.appliances = list(appliances)
        self.activity = activity
        self.num_slots = num_slots
        self._distance_cache: Dict[Tuple[str, str], float] = {}
        self._noise_cache: Dict[str, _NoiseCacheEntry] = {}
        # Static per-path geometry: (src, dst) -> (appliance, extra_m) pairs.
        self._tap_geometry_cache: Dict[Tuple[str, str],
                                       List[Tuple[ApplianceInstance,
                                                  float]]] = {}
        # Pre-normalised slot profiles, shape (n_appliances, num_slots).
        self._slot_profiles = np.array(
            [a.kind.slot_noise_multipliers() for a in self.appliances]
        ) if self.appliances else np.zeros((0, num_slots))
        self._base_psd_mw = np.array(
            [dbm_to_mw(a.kind.noise_psd_dbm_hz) for a in self.appliances])

    # --- appliance state ------------------------------------------------------

    def state_signature(self, t: float) -> Tuple[bool, ...]:
        """On/off vector of all appliances at ``t`` (sorted by instance)."""
        return self.activity.state_signature(self.appliances, t)

    def active_appliances(self, t: float) -> List[ApplianceInstance]:
        return [a for a in self.appliances if self.activity.is_on(a, t)]

    def active_count(self, t: float) -> int:
        return self.activity.active_count(self.appliances, t)

    # --- noise ------------------------------------------------------------------

    def _distance(self, a: str, b: str) -> float:
        key = (a, b) if a <= b else (b, a)
        if key not in self._distance_cache:
            if self.grid.connected(a, b):
                d = self.grid.electrical_distance(a, b)
            else:
                d = float("inf")
            self._distance_cache[key] = d
        return self._distance_cache[key]

    def cable_distance(self, a: str, b: str) -> float:
        """Cached cable distance in metres (inf when not connected)."""
        return self._distance(a, b)

    def noise_psd_at(self, outlet_id: str, t: float) -> np.ndarray:
        """Noise PSD heard at ``outlet_id``, per tone-map slot, in dBm/Hz.

        Returns an array of shape ``(num_slots,)``. The value is the
        background floor plus every powered-on appliance's injection,
        attenuated by its cable distance to the receiver and shaped by its
        mains-synchronous slot profile.
        """
        if outlet_id not in self.grid:
            raise KeyError(f"unknown outlet {outlet_id!r}")
        signature = self.state_signature(t)
        cached = self._noise_cache.get(outlet_id)
        if cached is not None and cached.signature == signature:
            return cached.per_slot_dbm_hz
        total_mw = np.full(self.num_slots, dbm_to_mw(BACKGROUND_NOISE_DBM_HZ))
        for i, appliance in enumerate(self.appliances):
            if not signature[i]:
                continue
            d = self._distance(appliance.outlet_id, outlet_id)
            if not np.isfinite(d):
                continue
            loss = 10.0 ** (-NOISE_CABLE_LOSS_DB_PER_M * d / 10.0)
            total_mw += self._base_psd_mw[i] * loss * self._slot_profiles[i]
        per_slot = 10.0 * np.log10(total_mw)
        self._noise_cache[outlet_id] = _NoiseCacheEntry(signature, per_slot)
        return per_slot

    def impulsive_event_rate_at(self, outlet_id: str, t: float) -> float:
        """Aggregate impulsive-noise rate (events/s) heard at an outlet.

        Distance-weighted sum of active appliances' impulsive rates; feeds the
        bursty-error model in the channel estimator.
        """
        rate = 0.0
        for appliance in self.active_appliances(t):
            d = self._distance(appliance.outlet_id, outlet_id)
            if not np.isfinite(d):
                continue
            weight = 10.0 ** (-NOISE_CABLE_LOSS_DB_PER_M * d / 20.0)
            rate += appliance.kind.impulsive_rate_hz * weight
        return rate

    # --- taps / reflections ---------------------------------------------------------

    def reflection_taps(self, src_outlet: str, dst_outlet: str, t: float,
                        max_branch_length: float = 25.0
                        ) -> List[Tuple[ApplianceInstance, float, bool]]:
        """Appliances that act as reflection points for the src→dst path.

        Returns ``(appliance, extra_path_metres, powered_on)`` triples where
        ``extra_path_metres`` is the additional cable length of the reflected
        path (twice the branch stub length). The geometry (which appliances
        tap the path, and where) is static and cached; only the powered-on
        flag is re-evaluated per call.
        """
        key = (src_outlet, dst_outlet)
        geometry = self._tap_geometry_cache.get(key)
        if geometry is None:
            branches = self.grid.tap_branches(src_outlet, dst_outlet,
                                              max_branch_length)
            branch_end_len = {br.end_outlet: br.branch_length
                              for br in branches}
            on_path = set(self.grid.signal_path(src_outlet, dst_outlet))
            geometry = []
            for appliance in self.appliances:
                stub = branch_end_len.get(appliance.outlet_id)
                if stub is None:
                    # Appliance on the path itself: reflection with no extra
                    # delay beyond a minimal stub.
                    if appliance.outlet_id in on_path:
                        stub = 1.0
                    else:
                        continue
                geometry.append((appliance, 2.0 * stub))
            self._tap_geometry_cache[key] = geometry
        return [(appliance, extra, self.activity.is_on(appliance, t))
                for appliance, extra in geometry]
