"""Human-activity model: when appliances are on.

The paper's *random scale* (§6.3) is the channel variation caused by people
switching appliances — higher electrical load during working hours, the
building-wide 9 pm lights-off event visible in Fig. 12, quieter weekends in
Fig. 13/14.

Design constraint: long experiments (two simulated weeks sampled every second)
must be cheap, so an appliance's state is a **pure function of time**,
computed in O(1) from hashed per-interval random draws instead of simulating a
global switching event queue. Determinism comes for free: the same seed gives
the same two weeks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.powergrid.appliances import ApplianceInstance, ScheduleClass
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams
from repro.units import HOUR, MINUTE

#: Building lighting is switched off centrally at 21:00 (paper Fig. 12:
#: "Every day at 9pm, all lights are turned off in our building").
LIGHTS_OFF_HOUR = 21.0
LIGHTS_ON_HOUR = 6.5


@dataclass(frozen=True)
class ActivityConfig:
    """Tunable behaviour of the office population."""

    #: Std-dev (hours) of per-day arrival/departure jitter for office gear.
    office_jitter_hours: float = 0.6
    #: Earliest arrival / nominal departure for office appliances.
    office_start_hour: float = 8.0
    office_end_hour: float = 18.0
    #: Fraction of office appliances left running overnight (standby PCs).
    overnight_fraction: float = 0.15
    #: Weekend usage probability for office appliances (somebody came in).
    weekend_use_probability: float = 0.08
    #: Epoch length for intermittent appliances (a kettle run, a print job).
    intermittent_epoch: float = 15 * MINUTE
    #: Activity multiplier for intermittent appliances out of working hours.
    night_activity_factor: float = 0.1


class OfficeActivityModel:
    """Maps (appliance, time) -> powered-on state, deterministically.

    Each appliance gets a private random stream; per-day and per-epoch draws
    are indexed draws from a *fresh* generator seeded by (appliance, index),
    so queries at arbitrary times — in any order — return consistent states.
    """

    def __init__(self, streams: RandomStreams,
                 config: ActivityConfig = ActivityConfig(),
                 clock: MainsClock = MainsClock()):
        self._streams = streams
        self.config = config
        self.clock = clock
        # Draw memo: generator creation is the hot cost; each (appliance,
        # purpose, index) triple is drawn once and reused.
        self._draw_cache: dict = {}
        #: Optional override consulted before the schedule model: returns
        #: True/False to force a state, None to fall through. This is the
        #: fault-injection seam (``repro.faults.powergrid`` schedules
        #: appliance surges through it) — it must stay a pure function of
        #: ``(appliance, t)`` or state signatures lose determinism.
        self.overlay: Optional[
            Callable[[ApplianceInstance, float], Optional[bool]]] = None

    # --- per-appliance deterministic draws -----------------------------------

    def _draw(self, appliance: ApplianceInstance, index: int,
              purpose: str, size: int = 1) -> np.ndarray:
        """Deterministic uniform draws keyed by (appliance, purpose, index)."""
        key = (appliance.instance_id, purpose, index, size)
        cached = self._draw_cache.get(key)
        if cached is None:
            rng = self._streams.fresh(
                f"activity.{purpose}.{appliance.instance_id}.{index}")
            cached = rng.uniform(size=size)
            if len(self._draw_cache) > 200_000:
                self._draw_cache.clear()
            self._draw_cache[key] = cached
        return cached

    # --- schedule classes -------------------------------------------------------

    def _lighting_on(self, appliance: ApplianceInstance, t: float) -> bool:
        hour = self.clock.hour_of_day(t)
        if self.clock.is_weekend(t):
            # Only emergency/corridor lighting: modelled as a small chance the
            # fixture is part of the always-on subset.
            always = self._draw(appliance, 0, "lighting-always")[0]
            return bool(always < 0.1) and LIGHTS_ON_HOUR <= hour < LIGHTS_OFF_HOUR
        return LIGHTS_ON_HOUR <= hour < LIGHTS_OFF_HOUR

    def _office_on(self, appliance: ApplianceInstance, t: float) -> bool:
        cfg = self.config
        day = self.clock.day_index(t)
        hour = self.clock.hour_of_day(t)
        draws = self._draw(appliance, day, "office", size=4)
        if self.clock.is_weekend(t):
            if draws[3] >= cfg.weekend_use_probability:
                return False
            # A short weekend visit around midday.
            start = 10.0 + 4.0 * draws[0]
            return start <= hour < start + 2.0
        # Whether this machine is left running overnight is a property of
        # the machine (a build server stays on every night), not of the day.
        overnight = self._draw(appliance, 0,
                               "office-overnight")[0] < cfg.overnight_fraction
        if overnight:
            return True
        start = cfg.office_start_hour + cfg.office_jitter_hours * (
            2.0 * draws[0] - 1.0)
        end = cfg.office_end_hour + cfg.office_jitter_hours * (
            2.0 * draws[1] - 1.0)
        return start <= hour < end

    def _intermittent_on(self, appliance: ApplianceInstance, t: float) -> bool:
        cfg = self.config
        epoch = int(t // cfg.intermittent_epoch)
        duty = appliance.kind.duty_cycle
        if not self.clock.is_working_hours(t):
            duty *= cfg.night_activity_factor
        draws = self._draw(appliance, epoch, "intermittent", size=2)
        # The appliance runs for a contiguous slice of the epoch whose length
        # matches the duty cycle; epochs are active independently.
        epoch_active_prob = min(1.0, duty * 4.0)
        if draws[0] >= epoch_active_prob:
            return False
        run_fraction = min(1.0, duty / max(epoch_active_prob, 1e-9))
        offset = draws[1] * max(0.0, 1.0 - run_fraction)
        phase = (t % cfg.intermittent_epoch) / cfg.intermittent_epoch
        return offset <= phase < offset + run_fraction

    # --- public API -----------------------------------------------------------------

    def is_on(self, appliance: ApplianceInstance, t: float) -> bool:
        """Powered-on state of ``appliance`` at simulated time ``t``."""
        if self.overlay is not None:
            forced = self.overlay(appliance, t)
            if forced is not None:
                return forced
        schedule = appliance.kind.schedule
        if schedule is ScheduleClass.ALWAYS_ON:
            return True
        if schedule is ScheduleClass.LIGHTING:
            return self._lighting_on(appliance, t)
        if schedule is ScheduleClass.OFFICE_HOURS:
            return self._office_on(appliance, t)
        if schedule is ScheduleClass.INTERMITTENT:
            return self._intermittent_on(appliance, t)
        raise ValueError(f"unhandled schedule class {schedule}")

    def state_signature(self, appliances: List[ApplianceInstance],
                        t: float) -> Tuple[bool, ...]:
        """On/off vector for a list of appliances (channel cache key)."""
        return tuple(self.is_on(a, t) for a in appliances)

    def switching_times(self, appliance: ApplianceInstance, t_start: float,
                        t_end: float, resolution: float = MINUTE
                        ) -> List[float]:
        """Approximate on/off transition times in [t_start, t_end).

        Found by scanning at ``resolution`` then bisecting each change to
        ~1 s accuracy. Used by tests and by the impulsive-noise model (each
        transition injects an impulse).
        """
        if t_end <= t_start:
            return []
        times: List[float] = []
        prev_t = t_start
        prev_state = self.is_on(appliance, prev_t)
        t = t_start + resolution
        while t < t_end:
            state = self.is_on(appliance, t)
            if state != prev_state:
                lo, hi = prev_t, t
                while hi - lo > 1.0:
                    mid = 0.5 * (lo + hi)
                    if self.is_on(appliance, mid) == prev_state:
                        lo = mid
                    else:
                        hi = mid
                times.append(hi)
                prev_state = state
            prev_t = t
            t += resolution
        return times

    def active_count(self, appliances: List[ApplianceInstance],
                     t: float) -> int:
        """Number of powered-on appliances (the 'electrical load' proxy)."""
        return sum(1 for a in appliances if self.is_on(a, t))
