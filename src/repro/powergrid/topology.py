"""Electrical wiring topology.

The grid is an undirected multigraph of *outlets* connected by *cable
segments*. Two special outlet kinds exist: distribution *boards* (the roots of
the in-wall wiring trees) and plain wall outlets. PLC stations and appliances
plug into outlets.

The model needs three queries, all used by :mod:`repro.plc.channel`:

* :meth:`GridTopology.electrical_distance` — cable metres between two outlets
  (the x-axis of the paper's Fig. 7);
* :meth:`GridTopology.signal_path` — the outlet sequence a signal traverses;
* :meth:`GridTopology.tap_branches` — branch points hanging off that path,
  each with its branch length and the outlet at its end. Appliances on taps
  create the impedance mismatches responsible for multipath reflections
  (paper §5, Fig. 5).

Distances follow cable runs, *not* straight lines — the paper stresses that
the two distribution boards of the floor are joined only in the basement,
> 200 m of cable apart, which splits the testbed into two PLC networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


@dataclass(frozen=True)
class Outlet:
    """A point where a station or appliance can plug into the grid.

    Attributes
    ----------
    outlet_id:
        Unique name, e.g. ``"B1/office-3/wall-0"``.
    position:
        (x, y) floor coordinates in metres — used by the *WiFi* model for
        over-the-air distance; PLC uses cable distance instead.
    board:
        Identifier of the distribution board feeding this outlet.
    is_board:
        True for the distribution-board node itself.
    """

    outlet_id: str
    position: Tuple[float, float]
    board: str
    is_board: bool = False


@dataclass(frozen=True)
class TapBranch:
    """A stub branching off a transmission path.

    ``junction`` is the outlet on the path where the branch starts,
    ``end_outlet`` the outlet at the end of the stub and ``branch_length``
    the cable metres of the stub.
    """

    junction: str
    end_outlet: str
    branch_length: float


class GridTopology:
    """The wiring graph of (part of) a building."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._outlets: Dict[str, Outlet] = {}

    # --- construction --------------------------------------------------------

    def add_outlet(self, outlet: Outlet) -> Outlet:
        if outlet.outlet_id in self._outlets:
            raise ValueError(f"duplicate outlet {outlet.outlet_id!r}")
        self._outlets[outlet.outlet_id] = outlet
        self._graph.add_node(outlet.outlet_id)
        return outlet

    def add_cable(self, a: str, b: str, length: float) -> None:
        """Connect outlets ``a`` and ``b`` with ``length`` metres of cable."""
        if length <= 0:
            raise ValueError(f"cable length must be positive, got {length}")
        for end in (a, b):
            if end not in self._outlets:
                raise KeyError(f"unknown outlet {end!r}")
        self._graph.add_edge(a, b, length=float(length))

    # --- lookups --------------------------------------------------------------

    def outlet(self, outlet_id: str) -> Outlet:
        return self._outlets[outlet_id]

    def outlets(self) -> List[Outlet]:
        return list(self._outlets.values())

    def boards(self) -> List[Outlet]:
        return [o for o in self._outlets.values() if o.is_board]

    def __contains__(self, outlet_id: str) -> bool:
        return outlet_id in self._outlets

    def __len__(self) -> int:
        return len(self._outlets)

    # --- signal-path queries ----------------------------------------------------

    def degree(self, outlet_id: str) -> int:
        """Number of cable segments meeting at an outlet (junction order)."""
        return int(self._graph.degree(outlet_id))

    def connected(self, a: str, b: str) -> bool:
        """Whether a conductive path exists between two outlets."""
        return nx.has_path(self._graph, a, b)

    def electrical_distance(self, a: str, b: str) -> float:
        """Shortest cable distance in metres between two outlets."""
        return float(nx.shortest_path_length(
            self._graph, a, b, weight="length"))

    def signal_path(self, a: str, b: str) -> List[str]:
        """Outlet sequence of the shortest cable route from ``a`` to ``b``."""
        return list(nx.shortest_path(self._graph, a, b, weight="length"))

    def tap_branches(self, a: str, b: str,
                     max_branch_length: float = 60.0) -> List[TapBranch]:
        """Branches hanging off the a→b signal path.

        For every outlet *not* on the path, we find its nearest junction on
        the path and the stub length to it; stubs longer than
        ``max_branch_length`` contribute negligible reflections and are
        dropped. Each returned branch is a potential reflection point once an
        appliance with mismatched impedance sits at its end.
        """
        path = self.signal_path(a, b)
        on_path = set(path)
        # Distance from every node to the path: multi-source Dijkstra.
        dist, routes = nx.multi_source_dijkstra(
            self._graph, sources=on_path, weight="length")
        branches: List[TapBranch] = []
        for node, d in dist.items():
            if node in on_path or d > max_branch_length:
                continue
            junction = routes[node][0]
            branches.append(TapBranch(junction=junction, end_outlet=node,
                                      branch_length=float(d)))
        branches.sort(key=lambda br: (br.junction, br.end_outlet))
        return branches

    def distance_along_path(self, path: Iterable[str]) -> List[float]:
        """Cumulative cable distance at each outlet of ``path``."""
        path = list(path)
        out = [0.0]
        for u, v in zip(path, path[1:]):
            out.append(out[-1] + self._graph[u][v]["length"])
        return out

    # --- builders ---------------------------------------------------------------

    @staticmethod
    def office_floor(board_specs: Dict[str, Tuple[float, float]],
                     rooms_per_board: int = 8,
                     outlets_per_room: int = 2,
                     riser_length: float = 12.0,
                     room_spacing: float = 7.0,
                     stub_length: float = 3.0,
                     inter_board_length: float = 220.0,
                     ) -> "GridTopology":
        """Build a two-board office floor like the EPFL testbed (Fig. 2).

        Each board feeds a bus running along a corridor; every ``room_spacing``
        metres a room junction taps off it with ``outlets_per_room`` outlets on
        short stubs. The boards are tied together through a long basement
        cable (``inter_board_length`` metres), which makes cross-board PLC
        communication effectively impossible — as in the paper.
        """
        grid = GridTopology()
        board_ids = sorted(board_specs)
        for board_id in board_ids:
            x0, y0 = board_specs[board_id]
            grid.add_outlet(Outlet(board_id, (x0, y0), board_id,
                                   is_board=True))
            prev = board_id
            prev_pos = (x0, y0)
            direction = 1.0 if x0 < 35 else -1.0
            for room in range(rooms_per_board):
                jx = prev_pos[0] + direction * room_spacing
                jy = y0 + (room % 2) * 4.0
                junction_id = f"{board_id}/junction-{room}"
                grid.add_outlet(Outlet(junction_id, (jx, jy), board_id))
                seg = riser_length if room == 0 else room_spacing
                grid.add_cable(prev, junction_id, seg)
                for k in range(outlets_per_room):
                    ox = jx + 1.0 + 1.5 * k
                    oy = jy + 2.0
                    outlet_id = f"{board_id}/room-{room}/outlet-{k}"
                    grid.add_outlet(Outlet(outlet_id, (ox, oy), board_id))
                    grid.add_cable(junction_id, outlet_id,
                                   stub_length + 1.0 * k)
                prev = junction_id
                prev_pos = (jx, jy)
        if len(board_ids) >= 2:
            grid.add_cable(board_ids[0], board_ids[1], inter_board_length)
        return grid
