"""Baseline-vs-candidate comparison with noise-aware gates.

The old benchmarks gated on hard single-shot thresholds
(``MIN_SPEEDUP = 5.0``): one noisy CI run either flaked a healthy build
red or let a real regression hide under an optimistic floor. The bench
plane gates *relative to a baseline* instead, and only fails when the
slowdown is both large and statistically resolved:

* the headline statistic is the **ratio of min-of-repeats**
  (``min(candidate) / min(baseline)``) — minima estimate the compute
  floor, so the ratio tracks real cost, not scheduler luck;
* a seeded **bootstrap** resamples both repeat sets and rebuilds the
  ratio-of-mins ``BOOTSTRAP_RESAMPLES`` times, yielding a confidence
  band. ``fail`` requires the *entire band* above the fail threshold;
  a slow point estimate with a band straddling the threshold is only a
  ``warn`` — rerun, don't revert;
* benchmarks present in the baseline but absent from the candidate are
  ``missing`` and fail the gate (a benchmark silently dropping out of
  the trajectory is itself a regression); new benchmarks ``pass`` and
  are listed so the baseline gets refreshed.

The bootstrap RNG is seeded (:data:`BOOTSTRAP_SEED`), so a comparison
of two fixed documents is a pure function — re-running CI on the same
artifacts reproduces the same verdicts byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.schema import BenchDocument

#: Candidate/baseline min-ratio above which we *suspect* a regression.
DEFAULT_WARN_RATIO = 1.2
#: Ratio the whole bootstrap band must clear for a hard ``fail``.
#: Generous on purpose: checked-in baselines cross machines, and the
#: per-benchmark smoke floors catch catastrophic breakage regardless.
DEFAULT_FAIL_RATIO = 1.5
#: Bootstrap resamples and two-sided confidence for the ratio band.
BOOTSTRAP_RESAMPLES = 2000
BOOTSTRAP_CONFIDENCE = 0.95
#: Fixed RNG seed: comparisons are deterministic, like everything else.
BOOTSTRAP_SEED = 20151

_STATUS_ORDER = {"fail": 0, "missing": 1, "warn": 2, "new": 3, "pass": 4}


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's verdict."""

    name: str
    status: str                       # pass | warn | fail | new | missing
    ratio: Optional[float] = None     # candidate min / baseline min
    band: Optional[Tuple[float, float]] = None
    baseline_min_s: Optional[float] = None
    candidate_min_s: Optional[float] = None
    detail: str = ""


@dataclass
class BenchComparison:
    """The full verdict set plus the gate decision."""

    rows: List[ComparisonRow]
    warn_ratio: float
    fail_ratio: float

    @property
    def ok(self) -> bool:
        return not any(r.status in ("fail", "missing") for r in self.rows)

    @property
    def warnings(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == "warn"]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self.rows:
            counts[row.status] = counts.get(row.status, 0) + 1
        return counts


def bootstrap_ratio_band(
        baseline_samples: Sequence[float],
        candidate_samples: Sequence[float],
        resamples: int = BOOTSTRAP_RESAMPLES,
        confidence: float = BOOTSTRAP_CONFIDENCE,
        seed: int = BOOTSTRAP_SEED) -> Tuple[float, float]:
    """Two-sided bootstrap band for ``min(cand*) / min(base*)``.

    Each resample draws repeats with replacement from both sides and
    recomputes the ratio of minima; the band is the centred
    ``confidence`` interval of that distribution. With one sample per
    side this degenerates to the point ratio, which is exactly right:
    no repeats, no claimed confidence.
    """
    base = np.asarray(baseline_samples, dtype=float)
    cand = np.asarray(candidate_samples, dtype=float)
    if base.size == 0 or cand.size == 0:
        raise ValueError("bootstrap needs at least one sample per side")
    rng = np.random.default_rng(seed)
    base_mins = base[rng.integers(0, base.size,
                                  size=(resamples, base.size))].min(axis=1)
    cand_mins = cand[rng.integers(0, cand.size,
                                  size=(resamples, cand.size))].min(axis=1)
    ratios = cand_mins / base_mins
    tail = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(ratios, [tail, 1.0 - tail])
    return float(lo), float(hi)


def compare_results(name: str, baseline, candidate,
                    warn_ratio: float = DEFAULT_WARN_RATIO,
                    fail_ratio: float = DEFAULT_FAIL_RATIO,
                    seed: int = BOOTSTRAP_SEED) -> ComparisonRow:
    """Verdict for one benchmark present on both sides."""
    ratio = candidate.min_s / baseline.min_s
    band = bootstrap_ratio_band(baseline.samples_s, candidate.samples_s,
                                seed=seed)
    if band[0] > fail_ratio:
        status = "fail"
        detail = (f"{ratio:.2f}x slower than baseline with the whole "
                  f"{BOOTSTRAP_CONFIDENCE:.0%} band "
                  f"[{band[0]:.2f}, {band[1]:.2f}] above "
                  f"{fail_ratio:.2f}x")
    elif ratio > warn_ratio or band[0] > warn_ratio:
        status = "warn"
        detail = (f"{ratio:.2f}x vs baseline, band "
                  f"[{band[0]:.2f}, {band[1]:.2f}] — suspicious but "
                  f"not resolved above {fail_ratio:.2f}x")
    else:
        status = "pass"
        detail = f"{ratio:.2f}x vs baseline"
    return ComparisonRow(name=name, status=status, ratio=ratio, band=band,
                         baseline_min_s=baseline.min_s,
                         candidate_min_s=candidate.min_s, detail=detail)


def compare_documents(baseline: BenchDocument,
                      candidate: BenchDocument,
                      warn_ratio: float = DEFAULT_WARN_RATIO,
                      fail_ratio: float = DEFAULT_FAIL_RATIO,
                      seed: int = BOOTSTRAP_SEED) -> BenchComparison:
    rows: List[ComparisonRow] = []
    for name, base in sorted(baseline.results.items()):
        cand = candidate.results.get(name)
        if cand is None:
            rows.append(ComparisonRow(
                name=name, status="missing",
                baseline_min_s=base.min_s,
                detail="in the baseline but absent from the candidate "
                       "run — benchmarks may not silently leave the "
                       "trajectory"))
            continue
        rows.append(compare_results(name, base, cand,
                                    warn_ratio=warn_ratio,
                                    fail_ratio=fail_ratio, seed=seed))
    for name, cand in sorted(candidate.results.items()):
        if name not in baseline.results:
            rows.append(ComparisonRow(
                name=name, status="new", candidate_min_s=cand.min_s,
                detail="not in the baseline — refresh "
                       "benchmarks/baselines/ to start tracking it"))
    rows.sort(key=lambda r: (_STATUS_ORDER[r.status], r.name))
    return BenchComparison(rows=rows, warn_ratio=warn_ratio,
                           fail_ratio=fail_ratio)


def format_comparison(comparison: BenchComparison) -> str:
    """Human-readable report: one line per benchmark, verdict first."""
    lines = []
    for row in comparison.rows:
        base = (f"{row.baseline_min_s:.4f}s"
                if row.baseline_min_s is not None else "-")
        cand = (f"{row.candidate_min_s:.4f}s"
                if row.candidate_min_s is not None else "-")
        lines.append(f"{row.status.upper():<7} {row.name:<34} "
                     f"base {base:>10}  cand {cand:>10}  {row.detail}")
    counts = comparison.counts()
    summary = ", ".join(f"{counts[s]} {s}" for s in
                        ("fail", "missing", "warn", "new", "pass")
                        if s in counts)
    lines.append(f"gate: {'OK' if comparison.ok else 'FAIL'} ({summary}; "
                 f"warn >{comparison.warn_ratio:g}x, fail band "
                 f">{comparison.fail_ratio:g}x)")
    return "\n".join(lines)
