"""The bench manifest: every ``benchmarks/test_*.py`` module, accounted.

The manifest maps each pytest module under ``benchmarks/`` to the
harness benchmarks it asserts. Modules in :data:`FIGURE_REGENERATIONS`
are figure/table regenerations — they run once under
``pytest-benchmark`` to price a paper artefact, and deliberately stay
off the regression trajectory (one-shot timings of analysis code, not
hot paths). The exemption is *named and explicit*: a module is either
harness-backed (a non-empty tuple below) or a declared regeneration,
never silently neither.

``tests/test_bench_manifest.py`` closes the loop in both directions:
every file on disk must appear here (a new benchmark module cannot
silently skip trajectory tracking — adding one forces an explicit
entry), every name the manifest claims must exist in the registry (and
vice versa), and the harness/regeneration split must be disjoint and
exhaustive, so the manifest can never drift into fiction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

#: Declared pytest-benchmark-only modules: one-shot regenerations of a
#: paper figure or table, exempt from the regression trajectory. Adding
#: a ``benchmarks/test_*.py`` file puts you here or in
#: :data:`HARNESS_MANIFEST` — the manifest tests reject anything else.
FIGURE_REGENERATIONS: FrozenSet[str] = frozenset({
    "test_ablation_deferral_counter",
    "test_ablation_slot_averaging",
    "test_ablation_tonemap_expiry",
    "test_ablation_two_metric_model",
    "test_fig03_wifi_vs_plc_spatial",
    "test_fig04_temporal_wifi_vs_plc",
    "test_fig06_asymmetry",
    "test_fig07_distance_pberr",
    "test_fig09_invariance_scale",
    "test_fig10_cycle_scale",
    "test_fig11_alpha_vs_quality",
    "test_fig12_random_scale_2days",
    "test_fig13_good_link_2weeks",
    "test_fig14_bad_link_2weeks",
    "test_fig15_ble_throughput_fit",
    "test_fig16_probe_rate_convergence",
    "test_fig17_pause_resume",
    "test_fig18_probe_size",
    "test_fig19_adaptive_probing",
    "test_fig20_hybrid_aggregation",
    "test_fig21_broadcast_loss",
    "test_fig22_uetx",
    "test_fig23_contention_sensitivity",
    "test_fig24_burst_probes",
    "test_table1_findings",
    "test_table2_measurement_methods",
    "test_table3_guidelines",
})

#: Harness-backed performance modules: module stem -> the registered
#: benchmark names that module asserts (all regression-gated).
HARNESS_MANIFEST: Dict[str, Tuple[str, ...]] = {
    "test_bench_harness": ("meta.noop",),
    "test_campaign_backends": (
        "campaign.compile_cold",
        "campaign.compile_warm",
        "campaign.backend_process",
        "campaign.backend_thread",
        "campaign.backend_chunked",
    ),
    "test_medium_sampling_scale": (
        "medium.plc.sample_scalar",
        "medium.plc.sample_series",
        "medium.wifi.sample_scalar",
        "medium.wifi.sample_series",
    ),
    "test_scenario_runner_scale": (
        "runner.nine_flows",
        "obs.runner_untraced",
        "obs.runner_traced",
    ),
    "test_snapshot_slicing": (
        "snapshot.roundtrip",
        "snapshot.fig13_straight",
        "snapshot.fig13_sliced",
    ),
}

#: module stem under ``benchmarks/`` -> harness benchmark names it
#: asserts ( () = declared figure regeneration). Derived: the union of
#: the harness manifest and the regeneration exemptions.
MODULE_MANIFEST: Dict[str, Tuple[str, ...]] = {
    **HARNESS_MANIFEST,
    **{module: () for module in FIGURE_REGENERATIONS},
}


def manifest_names() -> Tuple[str, ...]:
    """Every harness benchmark the manifest claims, sorted."""
    names = set()
    for entries in MODULE_MANIFEST.values():
        names.update(entries)
    return tuple(sorted(names))


def module_for(benchmark_name: str) -> str:
    """The pytest module asserting ``benchmark_name`` (KeyError if the
    benchmark is unclaimed — the manifest test makes that unreachable
    for registered benchmarks)."""
    for module, entries in MODULE_MANIFEST.items():
        if benchmark_name in entries:
            return module
    raise KeyError(f"benchmark {benchmark_name!r} is not claimed by any "
                   f"benchmarks/ module in the manifest")
