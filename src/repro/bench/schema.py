"""The canonical, versioned BENCH document.

One schema replaces the four ad-hoc ``BENCH_*.json`` shapes the repo
accumulated (medium speedups, obs overhead, campaign backend matrix,
verify wall time): a :class:`BenchDocument` is an environment
fingerprint plus a mapping of benchmark name to :class:`BenchResult`
(per-repeat wall-time samples and derived metrics). The format is
versioned and the loader refuses mismatched versions outright — a
baseline written by a future incompatible harness must fail loudly, not
gate silently on reinterpreted numbers.

Round-trip contract (property-tested in ``tests/test_bench_schema.py``):
``load_document(dump_document(doc)) == doc`` for any document built
from finite floats. ``NaN``/``Inf`` are rejected at dump time
(``allow_nan=False``) because JSON cannot represent them portably.

The *trajectory* is the repo's perf history: one compact JSON line per
run (git SHA, environment, min-of-repeats per benchmark), appended by
``repro bench run --trajectory`` and by the CI bench job, so speedup
claims stay comparable across PRs instead of living in commit messages.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

#: Document identity: loaders check both before touching any number.
BENCH_FORMAT = "repro-bench"
BENCH_SCHEMA_VERSION = 1


class SchemaVersionError(ValueError):
    """A BENCH document's format/version does not match this harness."""


@dataclass(frozen=True)
class Environment:
    """Where a run happened — enough to judge baseline affinity."""

    python: str
    platform: str
    cpu_count: int
    numpy: str
    git_sha: Optional[str] = None

    @classmethod
    def capture(cls) -> "Environment":
        import numpy

        return cls(
            python=_platform.python_version(),
            platform=sys.platform,
            cpu_count=os.cpu_count() or 1,
            numpy=numpy.__version__,
            git_sha=_git_sha(),
        )

    def to_dict(self) -> Dict[str, object]:
        return {"python": self.python, "platform": self.platform,
                "cpu_count": self.cpu_count, "numpy": self.numpy,
                "git_sha": self.git_sha}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Environment":
        return cls(python=str(data["python"]),
                   platform=str(data["platform"]),
                   cpu_count=int(data["cpu_count"]),
                   numpy=str(data["numpy"]),
                   git_sha=(None if data.get("git_sha") is None
                            else str(data["git_sha"])))


def _git_sha() -> Optional[str]:
    """HEAD of the repo this package runs from, or None (e.g. an
    installed wheel outside any checkout)."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class BenchResult:
    """One benchmark's record: raw samples first, aggregates derived.

    ``samples_s`` are the recorded repeat wall times *after* warmup
    discard (the discarded count is kept for provenance). ``metrics``
    are benchmark-specific numbers the body returned (sample counts,
    cache hit rates, trace-event counts) — informational and
    smoke-checked, never regression-gated directly.
    """

    name: str
    samples_s: Tuple[float, ...]
    warmup_discarded: int = 0
    metrics: Dict[str, float] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    figure: Optional[str] = None

    def __post_init__(self) -> None:
        self.samples_s = tuple(float(s) for s in self.samples_s)
        self.tags = tuple(self.tags)
        if not self.samples_s:
            raise ValueError(f"{self.name}: need at least one sample")

    @property
    def repeats(self) -> int:
        return len(self.samples_s)

    @property
    def min_s(self) -> float:
        """Min-of-repeats: the compute-floor estimator every comparison
        uses (the minimum converges on true cost; means absorb noise)."""
        return min(self.samples_s)

    @property
    def mean_s(self) -> float:
        return sum(self.samples_s) / len(self.samples_s)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "samples_s": list(self.samples_s),
            "warmup_discarded": self.warmup_discarded,
            "metrics": dict(self.metrics),
            "tags": list(self.tags),
            "figure": self.figure,
            # Derived aggregates ride along for human readers and
            # external tooling; the loader recomputes/ignores them.
            "min_s": self.min_s,
            "mean_s": self.mean_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchResult":
        return cls(
            name=str(data["name"]),
            samples_s=tuple(float(s) for s in data["samples_s"]),
            warmup_discarded=int(data.get("warmup_discarded", 0)),
            metrics=dict(data.get("metrics", {})),
            tags=tuple(str(t) for t in data.get("tags", ())),
            figure=(None if data.get("figure") is None
                    else str(data["figure"])),
        )


@dataclass
class BenchDocument:
    """A full run: environment + every benchmark's result."""

    environment: Environment
    results: Dict[str, BenchResult] = field(default_factory=dict)

    def add(self, result: BenchResult) -> None:
        self.results[result.name] = result

    def domains(self) -> Tuple[str, ...]:
        return tuple(sorted({name.split(".", 1)[0]
                             for name in self.results}))

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": BENCH_FORMAT,
            "version": BENCH_SCHEMA_VERSION,
            "environment": self.environment.to_dict(),
            "results": {name: result.to_dict()
                        for name, result in sorted(self.results.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchDocument":
        fmt = data.get("format")
        version = data.get("version")
        if fmt != BENCH_FORMAT:
            raise SchemaVersionError(
                f"not a {BENCH_FORMAT} document (format={fmt!r})")
        if version != BENCH_SCHEMA_VERSION:
            raise SchemaVersionError(
                f"schema version mismatch: document v{version!r}, "
                f"this harness reads v{BENCH_SCHEMA_VERSION} — "
                f"regenerate the document with `repro bench run`")
        results = {
            name: BenchResult.from_dict(entry)
            for name, entry in dict(data.get("results", {})).items()}
        return cls(environment=Environment.from_dict(data["environment"]),
                   results=results)


# --- (de)serialisation --------------------------------------------------------


def dump_document(doc: BenchDocument) -> str:
    """Canonical JSON text (sorted keys, trailing newline, finite-only)."""
    return json.dumps(doc.to_dict(), indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def load_document(text: str) -> BenchDocument:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a JSON document: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError("not a BENCH document (top level is not an "
                         "object)")
    return BenchDocument.from_dict(data)


def write_document(path: Union[str, Path], doc: BenchDocument) -> None:
    Path(path).write_text(dump_document(doc), encoding="utf-8")


def read_document(path: Union[str, Path]) -> BenchDocument:
    return load_document(Path(path).read_text(encoding="utf-8"))


def find_document(path: Union[str, Path],
                  default_name: str = "BENCH.json") -> Path:
    """Resolve a baseline argument: a file, or a directory holding
    ``BENCH.json`` (the checked-in ``benchmarks/baselines/`` layout)."""
    p = Path(path)
    if p.is_dir():
        return p / default_name
    return p


# --- the trajectory -----------------------------------------------------------


def trajectory_line(doc: BenchDocument) -> str:
    """One compact JSON line: provenance + min-of-repeats per benchmark."""
    record = {
        "format": BENCH_FORMAT,
        "version": BENCH_SCHEMA_VERSION,
        "environment": doc.environment.to_dict(),
        "min_s": {name: result.min_s
                  for name, result in sorted(doc.results.items())},
    }
    return json.dumps(record, sort_keys=True, allow_nan=False,
                      separators=(",", ":"))


def append_trajectory(path: Union[str, Path], doc: BenchDocument) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(trajectory_line(doc) + "\n")


def read_trajectory(path: Union[str, Path]) -> List[Dict[str, object]]:
    """All trajectory records, oldest first (torn tails tolerated, like
    campaign artifacts: a truncated last line is skipped, not fatal)."""
    records: List[Dict[str, object]] = []
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and entry.get("format") == BENCH_FORMAT:
            records.append(entry)
    return records
