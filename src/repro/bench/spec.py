"""Benchmark specs and the process-wide benchmark registry.

A :class:`BenchmarkSpec` is to the bench plane what an
``ExperimentSpec`` is to the campaign plane: a declarative description
of one measurement — a name, a lazy ``setup``, the timed ``fn``, how
many warmup passes to discard and how many repeats to record. Domain
modules under :mod:`repro.bench.domains` register their specs at import
time; the runner, the manifest-completeness test and the ``repro bench``
CLI all read the same registry, so a benchmark cannot exist without
being runnable, comparable and trajectory-tracked.

Timing discipline: benchmark bodies never touch ``time.perf_counter``
directly (the TID251 ban holds in ``src/``). They receive a
:class:`BenchContext` whose clock is injected by the runner — the
production :class:`~repro.obs.clock.SystemClock` normally, a
:class:`~repro.obs.clock.FakeClock` in tests, which is what makes the
regression-gate tests deterministic instead of sleep-and-hope.
"""

from __future__ import annotations

import difflib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

from repro.obs.clock import Clock, DEFAULT_CLOCK

#: Default repeat schedule: enough samples for a min-of-repeats and a
#: bootstrap band, few enough that `repro bench run --all` stays a
#: minutes-scale job.
DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 1


class BenchContext:
    """What a benchmark body gets: an injected clock + a timing helper."""

    __slots__ = ("clock",)

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or DEFAULT_CLOCK

    def timeit(self, fn: Callable[[], Any]) -> Tuple[Any, float]:
        """Run ``fn`` once, returning ``(result, elapsed_s)`` on the
        context's clock — for benchmarks that time sub-phases (e.g. a
        scalar loop inside a speedup measurement)."""
        start = self.clock.now()
        result = fn()
        return result, self.clock.now() - start


#: A benchmark body: ``fn(ctx, state) -> optional {metric: number}``.
#: ``state`` is whatever ``setup`` returned (``None`` without a setup).
BenchFn = Callable[[BenchContext, Any], Optional[Mapping[str, float]]]


@dataclass
class BenchmarkSpec:
    """One registered benchmark.

    ``name`` is dotted ``<domain>.<rest>`` (``medium.plc.sample_series``);
    the leading segment is the benchmark's domain and groups it in
    reports. ``setup`` builds expensive shared state exactly once per
    run, *outside* the timed region. ``figure`` links the benchmark to
    the paper artefact whose regeneration cost it tracks.
    """

    name: str
    fn: BenchFn
    setup: Optional[Callable[[], Any]] = None
    repeats: int = DEFAULT_REPEATS
    warmup: int = DEFAULT_WARMUP
    tags: Tuple[str, ...] = ()
    figure: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or "." not in self.name:
            raise ValueError(
                f"benchmark name must be dotted '<domain>.<rest>', "
                f"got {self.name!r}")
        if self.repeats < 1:
            raise ValueError(f"{self.name}: repeats must be >= 1")
        if self.warmup < 0:
            raise ValueError(f"{self.name}: warmup must be >= 0")
        self.tags = tuple(self.tags)

    @property
    def domain(self) -> str:
        return self.name.split(".", 1)[0]


# --- the registry -------------------------------------------------------------

_REGISTRY: Dict[str, BenchmarkSpec] = {}

#: Smoke checks: generous *absolute* floors evaluated over a whole run
#: document (so a check can relate two benchmarks, e.g. a scalar/batch
#: speedup). ``fn(doc) -> iterable of violation messages``; empty means
#: the floor holds. Real regression gating is baseline-relative
#: (:mod:`repro.bench.compare`); these only catch catastrophic breakage
#: on machines with no baseline affinity.
_SMOKE_CHECKS: Dict[str, Callable[[Any], Iterable[str]]] = {}


def register_benchmark(spec: BenchmarkSpec) -> BenchmarkSpec:
    """Add ``spec`` to the registry (duplicate names are a bug)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"benchmark {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def benchmark(name: str, **kwargs) -> Callable[[BenchFn], BenchFn]:
    """Decorator form: ``@benchmark("medium.plc.sample_series", ...)``."""
    def deco(fn: BenchFn) -> BenchFn:
        register_benchmark(BenchmarkSpec(name=name, fn=fn, **kwargs))
        return fn
    return deco


def register_smoke(name: str,
                   fn: Callable[[Any], Iterable[str]]) -> None:
    """Register a named document-level smoke check (absolute floor)."""
    if name in _SMOKE_CHECKS:
        raise ValueError(f"smoke check {name!r} is already registered")
    _SMOKE_CHECKS[name] = fn


def smoke_checks() -> Dict[str, Callable[[Any], Iterable[str]]]:
    return dict(_SMOKE_CHECKS)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up one benchmark; unknown names get a did-you-mean hint."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = sorted(_REGISTRY)
        close = difflib.get_close_matches(name, known, n=3)
        hint = f" (did you mean {', '.join(close)}?)" if close else ""
        raise KeyError(
            f"unknown benchmark {name!r}{hint}; known: "
            f"{', '.join(known) or '<none registered>'}") from None


def benchmark_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def iter_benchmarks() -> Tuple[BenchmarkSpec, ...]:
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def unregister_benchmark(name: str) -> None:
    _REGISTRY.pop(name, None)
    _SMOKE_CHECKS.pop(name, None)


@contextmanager
def temporary_benchmark(spec: BenchmarkSpec,
                        smoke: Optional[Callable[[Any], Iterable[str]]]
                        = None) -> Iterator[BenchmarkSpec]:
    """Register ``spec`` (and optionally a same-named smoke check) for
    the duration of a ``with`` block — test isolation for harness
    tests that must not leak stubs into the real manifest."""
    register_benchmark(spec)
    if smoke is not None:
        register_smoke(spec.name, smoke)
    try:
        yield spec
    finally:
        unregister_benchmark(spec.name)


_DEFAULTS_LOADED = False


def load_default_benchmarks() -> Tuple[str, ...]:
    """Import every domain module so its specs register (idempotent).

    Returns the registered names. Domain modules keep import-time work
    trivial — testbeds compile lazily inside each spec's ``setup``.
    """
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        from repro.bench import domains  # noqa: F401 — import-for-effect
        domains.load_all()
        _DEFAULTS_LOADED = True
    return benchmark_names()
