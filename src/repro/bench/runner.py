"""Multi-repeat benchmark execution with warmup discard.

The runner is the only component that times benchmark bodies. For each
spec it builds state once (``setup``), throws away ``warmup`` passes
(JIT-warm caches, lazy channel resolution, OS page faults), then records
``repeats`` wall-time samples on an injected
:class:`~repro.obs.clock.Clock`. Repeats are the point: a single-shot
timing — what the old hand-rolled benchmarks did — cannot distinguish a
regression from a scheduler hiccup, while min-of-repeats plus the
bootstrap band in :mod:`repro.bench.compare` can.

Every repeat publishes into :mod:`repro.obs`: a
:class:`~repro.obs.profile.Profiler` with prefix ``bench.`` accumulates
``bench.<name>.calls`` / ``.seconds`` / ``.latency`` in the metrics
registry, and per-repeat samples land in a ``bench.<name>.sample_s``
histogram — the same observation channel the rest of the stack uses, so
``repro report --timeline``-style tooling sees benchmark cost like any
other profiled stage.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bench.schema import BenchDocument, BenchResult, Environment
from repro.bench.spec import (
    BenchContext,
    BenchmarkSpec,
    get_benchmark,
    load_default_benchmarks,
    smoke_checks,
)
from repro.obs.clock import Clock, DEFAULT_CLOCK
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.profile import STAGE_EDGES, Profiler


def run_benchmark(spec: BenchmarkSpec,
                  clock: Optional[Clock] = None,
                  metrics: Optional[MetricsRegistry] = None,
                  repeats: Optional[int] = None,
                  warmup: Optional[int] = None) -> BenchResult:
    """Execute one spec: setup once, warm up, record every repeat.

    ``repeats``/``warmup`` override the spec's own schedule (the CLI
    exposes them so a laptop smoke run can cut the cost). The metrics
    the benchmark body returns are taken from the *fastest* repeat —
    the one whose timing the comparison will use.
    """
    clock = clock or DEFAULT_CLOCK
    registry = metrics if metrics is not None else global_registry()
    profiler = Profiler(metrics=registry, clock=clock, prefix="bench.")
    ctx = BenchContext(clock=clock)
    n_repeats = spec.repeats if repeats is None else max(1, repeats)
    n_warmup = spec.warmup if warmup is None else max(0, warmup)

    state = spec.setup() if spec.setup is not None else None
    for _ in range(n_warmup):
        spec.fn(ctx, state)

    samples = []
    best_metrics: Dict[str, float] = {}
    best_s = float("inf")
    for _ in range(n_repeats):
        with profiler.stage(spec.name):
            start = clock.now()
            extra = spec.fn(ctx, state)
            elapsed = clock.now() - start
        samples.append(elapsed)
        registry.observe(f"bench.{spec.name}.sample_s", elapsed,
                         edges=STAGE_EDGES)
        if elapsed < best_s:
            best_s = elapsed
            best_metrics = dict(extra) if extra else {}
    registry.inc("bench.runs")

    return BenchResult(name=spec.name, samples_s=tuple(samples),
                       warmup_discarded=n_warmup, metrics=best_metrics,
                       tags=spec.tags, figure=spec.figure)


def run_benchmarks(names: Optional[Sequence[str]] = None,
                   clock: Optional[Clock] = None,
                   metrics: Optional[MetricsRegistry] = None,
                   repeats: Optional[int] = None,
                   warmup: Optional[int] = None,
                   environment: Optional[Environment] = None,
                   progress=None) -> BenchDocument:
    """Run ``names`` (default: every registered benchmark) into one
    :class:`BenchDocument` stamped with the environment fingerprint.

    Unknown names raise ``KeyError`` *before* anything runs — a typo
    must not cost a half-finished campaign benchmark. ``progress`` is an
    optional ``fn(name, result)`` callback for CLI feedback.
    """
    load_default_benchmarks()
    if names is None:
        specs = [get_benchmark(name)
                 for name in load_default_benchmarks()]
    else:
        specs = [get_benchmark(name) for name in names]

    doc = BenchDocument(
        environment=environment or Environment.capture())
    for spec in specs:
        result = run_benchmark(spec, clock=clock, metrics=metrics,
                               repeats=repeats, warmup=warmup)
        doc.add(result)
        if progress is not None:
            progress(spec.name, result)
    return doc


def check_smoke(doc: BenchDocument) -> list:
    """Evaluate every registered smoke check whose subject benchmarks
    ran; returns the violation messages (empty = all floors hold)."""
    load_default_benchmarks()
    violations = []
    for name, fn in sorted(smoke_checks().items()):
        try:
            violations.extend(fn(doc))
        except KeyError:
            # The check's subject benchmarks were not part of this run
            # (e.g. a single-domain `repro bench run medium.*` call).
            continue
    return violations
