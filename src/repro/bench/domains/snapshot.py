"""Snapshot-plane benchmarks: codec cost and time-sliced execution.

Two questions the snapshot plane must keep answering cheaply:

* ``snapshot.roundtrip`` — what does freezing a paused mid-campaign
  :class:`~repro.netsim.runner.ScenarioRunner` to the versioned wire
  format (and thawing it back) cost? This is pure codec work — the
  per-slice tax every checkpoint pays.
* ``snapshot.fig13_straight`` / ``snapshot.fig13_sliced`` — the §6
  temporal-study workload (five two-week ``mini3-longhaul`` scenario
  tasks, the Fig. 13/14 long-run shape) on four process workers, run
  monolithically vs time-sliced at K=8. Five tasks on four workers
  leave the straight run with a straggler round (makespan ``2T``);
  slicing pipelines the tail across the idle workers (ideal ``1.25T``).

The pipelining win is a *parallel hardware* property: on a single-core
host the two runs serialize identically and slicing can only add its
checkpoint overhead. The smoke check therefore gates "sliced beats
straight" only where ``os.cpu_count() >= 2`` and bounds the overhead
ratio everywhere — so single-core CI still catches a codec or
scheduling regression, without asserting physics it cannot exhibit.
Byte-identity of sliced artifacts is *not* re-asserted here — that is
the ``diff_slice_equivalence`` oracle's job in the verify suite.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

from repro.bench.spec import benchmark, register_smoke
from repro.campaign import run_campaign
from repro.campaign.spec import ExperimentSpec

#: The Fig. 13 workload: five two-week scenario tasks on four workers.
N_TASKS = 5
WORKERS = 4
SLICES = 8
PRESET = "mini3"
SEED = 7
TWO_WEEKS = 14 * 24 * 3600.0
#: Coarse quantum: 168 quanta per two-week task keeps one task around a
#: second of CPU — long enough to dwarf per-slice checkpoint I/O, short
#: enough that the straight/sliced pair stays a sub-minute benchmark.
QUANTUM_S = 7200.0

#: Smoke bound everywhere: sliced wall-clock may exceed straight by at
#: most this factor (checkpoint encode/decode + one extra dispatch round
#: per slice). Generous — the measured single-core ratio is ~1.02x.
MAX_OVERHEAD_RATIO = 1.35


def _fig13_specs():
    return [ExperimentSpec.make("scenario", PRESET, SEED + k,
                                scenario="mini3-longhaul",
                                horizon_s=TWO_WEEKS, quantum_s=QUANTUM_S)
            for k in range(N_TASKS)]


class _CampaignState:
    """Shared fig13 state: the spec list and a scratch directory."""

    def __init__(self) -> None:
        self.specs = _fig13_specs()
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-bench-")
        self.out_dir = self._tmp.name

    def run(self, name: str, **kwargs):
        from repro.snapshot import snapshot_dir_for

        path = Path(self.out_dir) / f"{name}.jsonl"
        if path.exists():
            path.unlink()
        # Clear the checkpoint sidecar too, or a later repeat would
        # resume the first repeat's slices and time a partial run.
        shutil.rmtree(snapshot_dir_for(path), ignore_errors=True)
        stats = run_campaign(self.specs, path, workers=WORKERS,
                             backend="process", resume=False, **kwargs)
        assert stats.completed == N_TASKS
        return stats


class _PausedRunnerState:
    """A runner paused mid-scenario: the object every slice checkpoints."""

    def __init__(self) -> None:
        from repro.compile import checkout_testbed
        from repro.netsim.runner import ScenarioRunner
        from repro.netsim.scenario import build_scenario

        t0 = 14 * 3600.0
        self.testbed = checkout_testbed(PRESET, seed=SEED)
        self.runner = ScenarioRunner(self.testbed, quantum_s=0.5)
        self.scenario = build_scenario("mini3-mixed", t0)
        self.results = self.runner.run(self.scenario, horizon_s=120.0,
                                       until_s=t0 + 60.0)
        assert self.runner.paused


@benchmark("snapshot.roundtrip", setup=_PausedRunnerState, repeats=5,
           warmup=1, tags=("snapshot", "codec"),
           description="snapshot -> canonical JSON -> parse -> verify "
                       "of a paused mid-scenario runner (per-slice "
                       "checkpoint tax)")
def _roundtrip(ctx, state):
    from repro.snapshot import dump_snapshot, load_snapshot

    snap = state.runner.snapshot(state.scenario, state.results)
    blob = dump_snapshot(snap)
    thawed = load_snapshot(blob)
    assert thawed.payload == snap.payload
    return {"blob_bytes": float(len(blob))}


@benchmark("snapshot.fig13_straight", setup=_CampaignState, repeats=2,
           warmup=0, tags=("snapshot", "campaign"), figure="fig13",
           description=f"{N_TASKS} two-week mini3-longhaul tasks, "
                       f"{WORKERS} process workers, monolithic")
def _fig13_straight(ctx, state):
    state.run("straight")
    return {"n_tasks": float(N_TASKS), "workers": float(WORKERS)}


@benchmark("snapshot.fig13_sliced", setup=_CampaignState, repeats=2,
           warmup=0, tags=("snapshot", "campaign"), figure="fig13",
           description=f"{N_TASKS} two-week mini3-longhaul tasks, "
                       f"{WORKERS} process workers, time-sliced at "
                       f"K={SLICES}")
def _fig13_sliced(ctx, state):
    state.run("sliced", slice_horizon_s=TWO_WEEKS / SLICES)
    return {"n_tasks": float(N_TASKS), "workers": float(WORKERS),
            "slices_per_task": float(SLICES)}


def _smoke_slicing(doc):
    straight = doc.results["snapshot.fig13_straight"]
    sliced = doc.results["snapshot.fig13_sliced"]
    ratio = sliced.min_s / straight.min_s
    if ratio > MAX_OVERHEAD_RATIO:
        yield (f"sliced fig13 run is {ratio:.2f}x the straight "
               f"wall-clock (overhead ceiling: {MAX_OVERHEAD_RATIO}x)")
    cores = os.cpu_count() or 1
    if cores >= 2 and ratio >= 1.0:
        yield (f"sliced fig13 run ({sliced.min_s:.2f}s) did not beat "
               f"the straight run ({straight.min_s:.2f}s) on a "
               f"{cores}-core host — slice pipelining is not winning")


register_smoke("snapshot.fig13_pipelining", _smoke_slicing)
