"""Medium-contract benchmarks: scalar vs vectorized link sampling.

The §4.1 survey window — 5 minutes of 100 ms reports, 3000 samples —
timed through the scalar ``sample`` loop and the vectorized
``sample_series`` path for both media. Scalar and batch are *separate*
benchmarks so the trajectory tracks each path's absolute cost; the
scalar/batch speedup is a derived smoke floor (generous 2x, vs the old
flaky hard 5x) — the real gate is baseline-relative in
:mod:`repro.bench.compare`. Bit-identity of the two paths is not this
module's job: ``tests/test_medium_contract.py`` and the verify oracles
pin that.
"""

from __future__ import annotations

import numpy as np

from repro.bench.spec import benchmark, register_smoke
from repro.compile import checkout_testbed
from repro.testbed.experiments import working_hours_start

#: The §4.1 survey window: 5 minutes of 100 ms reports.
SURVEY_DURATION_S = 300.0
SURVEY_INTERVAL_S = 0.1

#: Generous absolute floor for batch over scalar (smoke only).
SMOKE_MIN_SPEEDUP = 2.0

_FIGURE = "§4.1 dual-medium survey"


def _setup(medium: str):
    testbed = checkout_testbed("office", seed=7)
    ts = working_hours_start() + np.arange(0.0, SURVEY_DURATION_S,
                                           SURVEY_INTERVAL_S)
    link = (testbed.plc_link(0, 1) if medium == "plc"
            else testbed.wifi_link(0, 1))
    return link, ts


def _scalar(ctx, state):
    link, ts = state
    samples = [link.sample(float(t), measured=False) for t in ts]
    return {"n_samples": float(len(samples))}


def _series(ctx, state):
    link, ts = state
    series = link.sample_series(ts, measured=False)
    return {"n_samples": float(len(series))}


for _medium in ("plc", "wifi"):
    benchmark(f"medium.{_medium}.sample_scalar",
              setup=(lambda m=_medium: _setup(m)),
              repeats=3, warmup=1, tags=("medium", _medium, "scalar"),
              figure=_FIGURE,
              description=f"scalar sample() loop, {_medium}, "
                          f"3000-sample survey window")(_scalar)
    benchmark(f"medium.{_medium}.sample_series",
              setup=(lambda m=_medium: _setup(m)),
              repeats=5, warmup=1, tags=("medium", _medium, "batch"),
              figure=_FIGURE,
              description=f"vectorized sample_series(), {_medium}, "
                          f"3000-sample survey window")(_series)


def _smoke_speedup(doc):
    for medium in ("plc", "wifi"):
        scalar = doc.results[f"medium.{medium}.sample_scalar"]
        series = doc.results[f"medium.{medium}.sample_series"]
        speedup = scalar.min_s / series.min_s
        if speedup < SMOKE_MIN_SPEEDUP:
            yield (f"{medium} sample_series is only {speedup:.1f}x "
                   f"faster than the scalar loop "
                   f"(smoke floor: {SMOKE_MIN_SPEEDUP}x)")


register_smoke("medium.speedup", _smoke_speedup)
