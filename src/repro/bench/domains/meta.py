"""Harness self-benchmarks.

``meta.noop`` times an (almost) empty body: its samples are the bench
plane's own per-repeat overhead — clock reads, profiler stages, the
histogram observe. Keeping it on the trajectory means a future harness
change that fattens the measurement loop shows up as a regression in
the one benchmark that measures nothing else. It is also the cheap
benchmark the CLI tests drive end to end.
"""

from __future__ import annotations

from repro.bench.spec import benchmark

#: Enough work that the sample is nonzero on any clock, little enough
#: that the harness dominates.
_SPIN = 1000


@benchmark("meta.noop", repeats=5, warmup=1, tags=("meta",),
           description="near-empty body: the harness's own per-repeat "
                       "overhead")
def _noop(ctx, state):
    acc = 0
    for k in range(_SPIN):
        acc += k
    return {"spin": float(_SPIN)}
