"""Scenario-runner scale benchmark: nine flows, ten minutes.

The fluid runner's hot path — per-quantum link-capacity lookups — on a
nine-flow mixed scenario (saturated PLC on two boards, CBR, a hybrid
bond, WiFi). The seed runner recomputed every capacity from the channel
model each quantum; the windowed cache keeps the loop fast, and this
benchmark keeps that claim on the trajectory. Correctness figures
(cache hit rate, invariant violations, CBR rate cap) ride along as
metrics with smoke floors; wall time is gated baseline-relative.
"""

from __future__ import annotations

from repro.bench.spec import benchmark, register_smoke
from repro.compile import checkout_testbed
from repro.netsim import FlowRequest, Scenario, ScenarioRunner
from repro.testbed.experiments import working_hours_start
from repro.units import MBPS

SATURATED_PAIRS = ((0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (13, 14))

#: Full-scale horizon (1200 quanta at the 0.5 s quantum).
HORIZON_S = 600.0

#: Smoke floor on the windowed cache (5 s window, 0.5 s quantum).
SMOKE_MIN_HIT_RATE = 0.8


def nine_flow_scenario(t0: float,
                       duration_s: float = HORIZON_S) -> Scenario:
    """The shared nine-flow workload (also used by the obs domain)."""
    scenario = Scenario("bench9")
    for k, (i, j) in enumerate(SATURATED_PAIRS):
        scenario.add(FlowRequest(f"sat{k}", i, j, t0,
                                 duration_s=duration_s))
    scenario.add(FlowRequest("cbr0", 6, 7, t0, kind="cbr",
                             rate_bps=2 * MBPS, duration_s=duration_s))
    scenario.add(FlowRequest("hyb", 8, 9, t0, medium="hybrid",
                             duration_s=duration_s))
    scenario.add(FlowRequest("wifi0", 13, 14, t0, medium="wifi",
                             duration_s=duration_s))
    return scenario


def _setup():
    testbed = checkout_testbed("office", seed=7)
    return testbed, nine_flow_scenario(working_hours_start())


@benchmark("runner.nine_flows", setup=_setup, repeats=3, warmup=1,
           tags=("runner", "scale"),
           figure="north star: multi-flow capacity at scale",
           description="fluid runner, 9 mixed flows over 10 simulated "
                       "minutes (1200 quanta)")
def _nine_flows(ctx, state):
    testbed, scenario = state
    runner = ScenarioRunner(testbed, check_invariants=True)
    results = runner.run(scenario, horizon_s=HORIZON_S)
    stats = runner.stats
    return {
        "quanta": float(stats.quanta),
        "cache_hit_rate": float(stats.cache.hit_rate),
        "invariant_violations": float(stats.invariant_violations),
        "max_domain_airtime": float(stats.max_domain_airtime),
        "cbr_mean_rate_bps": float(results["cbr0"].mean_rate_bps),
        "min_delivered_bytes": float(
            min(r.delivered_bytes for r in results.values())),
    }


def _smoke_runner(doc):
    m = doc.results["runner.nine_flows"].metrics
    if m.get("quanta") != HORIZON_S / 0.5:
        yield (f"runner covered {m.get('quanta')} quanta, expected "
               f"{HORIZON_S / 0.5:g}")
    if m.get("cache_hit_rate", 0.0) <= SMOKE_MIN_HIT_RATE:
        yield (f"capacity-cache hit rate {m.get('cache_hit_rate'):.2f} "
               f"below smoke floor {SMOKE_MIN_HIT_RATE}")
    if m.get("invariant_violations", 1.0) != 0.0:
        yield (f"{m.get('invariant_violations'):g} runner invariant "
               f"violation(s) during the benchmark")
    if m.get("max_domain_airtime", 2.0) > 1.0 + 1e-6:
        yield (f"runner over-allocated airtime "
               f"({m.get('max_domain_airtime')})")
    if m.get("cbr_mean_rate_bps", 0.0) > 2 * MBPS * (1 + 1e-9):
        yield "CBR flow exceeded its requested rate"
    if m.get("min_delivered_bytes", 0.0) <= 0.0:
        yield "a flow delivered zero bytes"


register_smoke("runner.nine_flows", _smoke_runner)
