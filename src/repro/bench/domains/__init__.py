"""Benchmark domain modules.

Each module registers its :class:`~repro.bench.spec.BenchmarkSpec`s (and
document-level smoke checks) at import time; :func:`load_all` is called
by :func:`repro.bench.load_default_benchmarks` so the registry, the CLI
and the manifest-completeness test all see the same population. Keep
import-time work trivial — worlds compile lazily inside ``setup``.
"""

from __future__ import annotations


def load_all() -> None:
    from repro.bench.domains import (  # noqa: F401 — import-for-effect
        campaign_backends,
        medium,
        meta,
        obs_overhead,
        runner_scale,
        snapshot,
    )
