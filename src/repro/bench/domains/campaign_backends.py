"""Campaign compile/execute-plane benchmarks.

The acceptance workload of the compile-plane PR — a 50-task single-world
``survey_pair`` campaign on the mini3 preset — timed cold (compile cache
disabled, no precompilation: every task builds its world from scratch),
warm (content-addressed cache + precompiled template), and warm under
each pooled execution backend. The cold/warm speedup smoke floor is a
generous 1.5x (the old hard 3x single-shot assert moved to the
baseline-relative gate); cache accounting (exactly one build, >= one hit
per task) stays exact because it is discrete, not a timing.

Byte-identity across backends is *not* re-asserted here — that is the
``diff_backend_equivalence`` oracle's job in the verify suite.
"""

from __future__ import annotations

import itertools
import tempfile
from pathlib import Path

from repro.bench.spec import benchmark, register_smoke
from repro.campaign import run_campaign, spec_grid
from repro.compile import compile_cache_disabled, reset_compile_cache
from repro.obs.metrics import global_registry

#: The acceptance workload: 50 survey tasks sharing one compiled world.
N_TASKS = 50
PRESET = "mini3"
SEED = 7

#: Generous absolute floor for warm-vs-cold compile cache (smoke only).
SMOKE_MIN_SPEEDUP = 1.5


def _survey_specs():
    """50 distinct ``survey_pair`` specs over one ``(preset, seed)``."""
    pairs = itertools.cycle(
        [(i, j) for i in range(3) for j in range(3) if i != j])
    specs = []
    for k, (src, dst) in zip(range(N_TASKS), pairs):
        specs.extend(spec_grid(
            "survey_pair", [PRESET], [SEED],
            {"hour": [8.0 + k * 0.25]},
            src=src, dst=dst, duration_s=0.5, interval_s=0.5))
    assert len(specs) == N_TASKS
    return specs


def _campaign(specs, out_dir: str, name: str, *, backend: str,
              workers: int, cold: bool = False):
    """One campaign run into a throwaway artifact; stats returned."""
    path = Path(out_dir) / f"{name}.jsonl"
    if path.exists():
        path.unlink()
    reset_compile_cache()
    if cold:
        with compile_cache_disabled():
            stats = run_campaign(specs, path, workers=workers,
                                 backend=backend, precompile=False,
                                 resume=False)
    else:
        stats = run_campaign(specs, path, workers=workers,
                             backend=backend, resume=False)
    assert stats.completed == N_TASKS
    return stats


class _State:
    """Shared benchmark state: the spec list and a scratch directory
    that lives as long as the run (tempdir cleans itself up)."""

    def __init__(self) -> None:
        self.specs = _survey_specs()
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-bench-")
        self.out_dir = self._tmp.name


@benchmark("campaign.compile_cold", setup=_State, repeats=2, warmup=0,
           tags=("campaign", "compile"),
           description=f"{N_TASKS}-task survey, compile cache disabled "
                       "(every task builds its world from scratch)")
def _cold(ctx, state):
    _campaign(state.specs, state.out_dir, "cold", backend="inline",
              workers=0, cold=True)
    return {"n_tasks": float(N_TASKS)}


@benchmark("campaign.compile_warm", setup=_State, repeats=3, warmup=1,
           tags=("campaign", "compile"),
           description=f"{N_TASKS}-task survey through the "
                       "content-addressed compile cache, inline backend")
def _warm(ctx, state):
    reg = global_registry()
    builds_before = reg.counter("compile.builds")
    hits_before = reg.counter("compile.cache.hits")
    _campaign(state.specs, state.out_dir, "warm", backend="inline",
              workers=0)
    return {
        "n_tasks": float(N_TASKS),
        "compile_builds": reg.counter("compile.builds") - builds_before,
        "compile_cache_hits":
            reg.counter("compile.cache.hits") - hits_before,
    }


def _pooled(backend: str):
    def fn(ctx, state):
        _campaign(state.specs, state.out_dir, backend, backend=backend,
                  workers=4)
        return {"n_tasks": float(N_TASKS), "workers": 4.0}
    return fn


for _backend in ("process", "thread", "chunked"):
    benchmark(f"campaign.backend_{_backend}", setup=_State, repeats=2,
              warmup=0, tags=("campaign", "backend", _backend),
              description=f"{N_TASKS}-task survey on the {_backend} "
                          "backend, 4 workers, warm cache")(
        _pooled(_backend))


def _smoke_compile(doc):
    cold = doc.results["campaign.compile_cold"]
    warm = doc.results["campaign.compile_warm"]
    speedup = cold.min_s / warm.min_s
    if speedup < SMOKE_MIN_SPEEDUP:
        yield (f"warm compile cache is only {speedup:.1f}x faster than "
               f"cold (smoke floor: {SMOKE_MIN_SPEEDUP}x)")
    if warm.metrics.get("compile_builds") != 1.0:
        yield (f"expected exactly one compile for the campaign's single "
               f"(preset, seed, fingerprint) world, got "
               f"{warm.metrics.get('compile_builds')!r}")
    if warm.metrics.get("compile_cache_hits", 0.0) < N_TASKS:
        yield (f"warm campaign hit the compile cache only "
               f"{warm.metrics.get('compile_cache_hits'):g} times for "
               f"{N_TASKS} tasks")


register_smoke("campaign.compile_speedup", _smoke_compile)
