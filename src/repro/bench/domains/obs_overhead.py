"""Observability-overhead benchmarks: the runner with and without
tracing + profiling.

Two benchmarks over the same nine-flow scenario at a short horizon:
``obs.runner_untraced`` (bare runner) and ``obs.runner_traced`` (Tracer
and Profiler enabled). Each is repeat-sampled by the shared harness, so
the overhead estimate is a ratio of minima over many interleavable
repeats rather than the old hand-rolled paired loop. The smoke floor is
a generous 15%; the historical <5% claim is enforced baseline-relative —
each side is gated against its own baseline samples, which is exactly
the paired-noise argument the old code rebuilt by hand.
"""

from __future__ import annotations

from repro.bench.domains.runner_scale import nine_flow_scenario
from repro.bench.spec import benchmark, register_smoke
from repro.compile import checkout_testbed
from repro.netsim import ScenarioRunner
from repro.obs import MetricsRegistry, Profiler, Tracer
from repro.testbed.experiments import working_hours_start

#: Horizon of each repeat (240 quanta — long enough that per-run setup
#: is negligible, short enough to afford many repeats).
HORIZON_S = 120.0

#: Generous absolute ceiling for full observability (smoke only; the
#: regression gate on each side's baseline holds the historical <5%).
SMOKE_MAX_OVERHEAD = 0.15


def _setup():
    testbed = checkout_testbed("office", seed=7)
    scenario = nine_flow_scenario(working_hours_start(),
                                  duration_s=HORIZON_S)
    return testbed, scenario


def _run(state, observed: bool):
    testbed, scenario = state
    tracer = Tracer(enabled=observed)
    profiler = Profiler(metrics=MetricsRegistry(), enabled=observed)
    runner = ScenarioRunner(testbed, check_invariants=True,
                            tracer=tracer, profiler=profiler)
    runner.run(scenario, horizon_s=HORIZON_S)
    return runner, tracer, profiler


@benchmark("obs.runner_untraced", setup=_setup, repeats=10, warmup=1,
           tags=("obs", "overhead"),
           description="nine-flow runner, observability disabled "
                       "(240 quanta)")
def _untraced(ctx, state):
    _run(state, observed=False)
    return {"quanta": HORIZON_S / 0.5}


@benchmark("obs.runner_traced", setup=_setup, repeats=10, warmup=1,
           tags=("obs", "overhead"),
           description="nine-flow runner with Tracer + Profiler enabled "
                       "(240 quanta)")
def _traced(ctx, state):
    _, tracer, profiler = _run(state, observed=True)
    summary = profiler.summary()
    return {
        "trace_events": float(len(tracer.events)),
        "profiled_stages": float(len(summary)),
        "allocate_calls": float(
            summary["runner.allocate"]["calls"]),
    }


def _smoke_overhead(doc):
    untraced = doc.results["obs.runner_untraced"]
    traced = doc.results["obs.runner_traced"]
    overhead = traced.min_s / untraced.min_s - 1.0
    if overhead >= SMOKE_MAX_OVERHEAD:
        yield (f"observability overhead {overhead * 100:.1f}% exceeds "
               f"the {SMOKE_MAX_OVERHEAD * 100:.0f}% smoke ceiling")
    quanta = HORIZON_S / 0.5
    if traced.metrics.get("trace_events", 0.0) <= quanta:
        yield (f"traced run recorded "
               f"{traced.metrics.get('trace_events'):g} events, "
               f"expected more than one per quantum ({quanta:g})")
    if traced.metrics.get("allocate_calls") != quanta:
        yield (f"profiler saw "
               f"{traced.metrics.get('allocate_calls')!r} "
               f"runner.allocate calls, expected {quanta:g}")


register_smoke("obs.overhead", _smoke_overhead)
