"""``repro.bench`` — the unified benchmark & perf-regression plane.

Mirrors the campaign compile/execute split for *measurement*: specs
(:mod:`~repro.bench.spec`) declare what to time, the runner
(:mod:`~repro.bench.runner`) executes multi-repeat schedules with
warmup discard and an environment fingerprint, the schema
(:mod:`~repro.bench.schema`) is the one canonical versioned BENCH JSON
document, and compare (:mod:`~repro.bench.compare`) gates candidates
against checked-in baselines with min-of-repeats plus a bootstrap
confidence band. ``repro bench run/compare/report`` is the CLI surface;
``benchmarks/baselines/`` holds the gated baselines; the trajectory
(one JSON line per run) is the repo's permanent perf record.
"""

from repro.bench.compare import (
    BenchComparison,
    ComparisonRow,
    bootstrap_ratio_band,
    compare_documents,
    format_comparison,
)
from repro.bench.manifest import MODULE_MANIFEST, manifest_names
from repro.bench.runner import check_smoke, run_benchmark, run_benchmarks
from repro.bench.schema import (
    BENCH_FORMAT,
    BENCH_SCHEMA_VERSION,
    BenchDocument,
    BenchResult,
    Environment,
    SchemaVersionError,
    append_trajectory,
    dump_document,
    find_document,
    load_document,
    read_document,
    read_trajectory,
    trajectory_line,
    write_document,
)
from repro.bench.spec import (
    BenchContext,
    BenchmarkSpec,
    benchmark,
    benchmark_names,
    get_benchmark,
    iter_benchmarks,
    load_default_benchmarks,
    register_benchmark,
    register_smoke,
    temporary_benchmark,
    unregister_benchmark,
)

__all__ = [
    "BENCH_FORMAT",
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "BenchContext",
    "BenchDocument",
    "BenchResult",
    "BenchmarkSpec",
    "ComparisonRow",
    "Environment",
    "MODULE_MANIFEST",
    "SchemaVersionError",
    "append_trajectory",
    "benchmark",
    "benchmark_names",
    "bootstrap_ratio_band",
    "check_smoke",
    "compare_documents",
    "dump_document",
    "find_document",
    "format_comparison",
    "get_benchmark",
    "iter_benchmarks",
    "load_default_benchmarks",
    "load_document",
    "manifest_names",
    "read_document",
    "read_trajectory",
    "register_benchmark",
    "register_smoke",
    "run_benchmark",
    "run_benchmarks",
    "temporary_benchmark",
    "trajectory_line",
    "unregister_benchmark",
    "write_document",
]
