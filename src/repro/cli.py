"""Command-line interface: the toolkit's shell entry point.

Subcommands mirror the paper's workflows::

    python -m repro survey  [--save FILE]      # §4.1 dual-medium survey
    python -m repro probe SRC DST              # Table 2 metrics + Table 3 advice
    python -m repro route SRC DST              # §4.3 hybrid mesh route
    python -m repro report FILE                # summarise a saved campaign

Common options: ``--seed`` (testbed world), ``--day``/``--hour``
(measurement time), ``--av500`` (validation devices).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.traces import load_campaign, record_survey, save_campaign
from repro.sim.clock import MainsClock
from repro.testbed import HPAV500_PRESET, HPAV_PRESET, build_testbed
from repro.units import MBPS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7,
                        help="testbed world seed (default 7)")
    parser.add_argument("--day", type=int, default=2,
                        help="day index, 0 = Monday (default 2)")
    parser.add_argument("--hour", type=float, default=14.0,
                        help="hour of day (default 14.0 = working hours)")
    parser.add_argument("--av500", action="store_true",
                        help="use HPAV500 validation devices")


def _build(args) -> tuple:
    preset = HPAV500_PRESET if args.av500 else HPAV_PRESET
    testbed = build_testbed(seed=args.seed, preset=preset)
    t = MainsClock.at(day=args.day, hour=args.hour)
    return testbed, t


def cmd_survey(args) -> int:
    testbed, t = _build(args)
    campaign = record_survey(testbed, t)
    rows = []
    for i, j in testbed.same_board_pairs():
        plc = campaign.series(str(i), str(j), "plc",
                              "throughput_bps")
        wifi = campaign.series(str(i), str(j), "wifi",
                               "throughput_bps")
        if len(plc) and len(wifi):
            rows.append([f"{i}->{j}", testbed.cable_distance(i, j),
                         plc.values[0] / MBPS, wifi.values[0] / MBPS])
    rows.sort(key=lambda r: -r[2])
    print(format_table(
        ["link", "cable (m)", "PLC (Mbps)", "WiFi (Mbps)"],
        rows[: args.top],
        title=f"Dual-medium survey (seed {args.seed}, "
              f"day {args.day} {args.hour:g}h) — top {args.top}"))
    plc_thr = np.array([r[2] for r in rows])
    wifi_thr = np.array([r[3] for r in rows])
    print(f"\n{len(rows)} links; PLC faster on "
          f"{100 * np.mean(plc_thr > wifi_thr):.0f}%")
    if args.save:
        save_campaign(campaign, args.save)
        print(f"campaign saved to {args.save}")
    return 0


def cmd_probe(args) -> int:
    testbed, t = _build(args)
    src, dst = args.src, args.dst
    link = testbed.plc_link(src, dst)
    if link is None:
        print(f"stations {src} and {dst} are on different boards: "
              f"no direct PLC link (try `route`)", file=sys.stderr)
        return 1
    rev = testbed.plc_link(dst, src)
    wifi = testbed.wifi_link(src, dst)
    print(format_table(
        ["metric", "value"],
        [
            ["cable distance (m)", testbed.cable_distance(src, dst)],
            ["air distance (m)", testbed.air_distance(src, dst)],
            ["avg BLE (Mbps)", link.avg_ble_bps(t) / MBPS],
            ["PBerr", link.pb_err(t)],
            ["UDP throughput (Mbps)",
             link.throughput_bps(t, measured=False) / MBPS],
            ["U-ETX", link.u_etx(t)],
            ["reverse BLE (Mbps)", rev.avg_ble_bps(t) / MBPS],
            ["WiFi throughput (Mbps)",
             wifi.throughput_bps(t, measured=False) / MBPS],
        ],
        title=f"Link {src} -> {dst}"))
    from repro.core.guidelines import LinkState, recommend
    rec = recommend(LinkState(ble_fwd_bps=link.avg_ble_bps(t),
                              ble_rev_bps=rev.avg_ble_bps(t)))
    print(f"\nprobing advice: every {rec.schedule.interval_s:g}s, "
          f"{rec.schedule.payload_bytes}B unicast, "
          f"burst={rec.schedule.burst_packets}")
    for note in rec.notes:
        print(f"  note: {note}")
    return 0


def cmd_route(args) -> int:
    testbed, t = _build(args)
    from repro.hybrid.ieee1905 import AbstractionLayer
    from repro.hybrid.routing import HybridMeshRouter, populate_from_testbed
    layer = AbstractionLayer()
    populate_from_testbed(layer, testbed, t)
    router = HybridMeshRouter(layer)
    path = router.best_path(str(args.src), str(args.dst))
    if path is None:
        print(f"no route from {args.src} to {args.dst}", file=sys.stderr)
        return 1
    print(f"route {args.src} -> {args.dst} "
          f"(ETT {path.total_ett_s * 1e3:.2f} ms"
          f"{', alternates media' if path.alternates_media else ''}):")
    for hop in path.hops:
        print(f"  {hop.src} -> {hop.dst}  [{hop.medium}]  "
              f"{hop.ett_s * 1e3:.2f} ms")
    return 0


def cmd_report(args) -> int:
    campaign = load_campaign(args.file)
    print(f"campaign {campaign.name!r}: {len(campaign)} records, "
          f"seed={campaign.seed}")
    rows = []
    for (src, dst, medium) in campaign.links()[: args.top]:
        series = campaign.series(src, dst, medium)
        rows.append([f"{src}->{dst}", medium, len(series),
                     series.mean / MBPS, series.std / MBPS])
    print(format_table(
        ["link", "medium", "samples", "mean cap (Mbps)", "std"],
        rows, title="per-link summary"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Electri-Fi reproduction toolkit (IMC'15)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_survey = sub.add_parser("survey", help="dual-medium link survey")
    _add_common(p_survey)
    p_survey.add_argument("--save", help="write campaign JSONL here")
    p_survey.add_argument("--top", type=int, default=15,
                          help="rows to print (default 15)")
    p_survey.set_defaults(func=cmd_survey)

    p_probe = sub.add_parser("probe", help="measure one PLC link")
    _add_common(p_probe)
    p_probe.add_argument("src", type=int)
    p_probe.add_argument("dst", type=int)
    p_probe.set_defaults(func=cmd_probe)

    p_route = sub.add_parser("route", help="hybrid mesh route")
    _add_common(p_route)
    p_route.add_argument("src", type=int)
    p_route.add_argument("dst", type=int)
    p_route.set_defaults(func=cmd_route)

    p_report = sub.add_parser("report", help="summarise a saved campaign")
    p_report.add_argument("file")
    p_report.add_argument("--top", type=int, default=15)
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
