"""Command-line interface: the toolkit's shell entry point.

Subcommands mirror the paper's workflows::

    python -m repro survey  [--save FILE]      # §4.1 dual-medium survey
    python -m repro probe SRC DST              # Table 2 metrics + Table 3 advice
    python -m repro route SRC DST              # §4.3 hybrid mesh route
    python -m repro campaign --out FILE        # parallel experiment campaign
    python -m repro campaign ... --check       # + invariant sweep of artifact
    python -m repro report FILE                # summarise a saved campaign
    python -m repro report FILE --timeline     # per-domain utilisation view
    python -m repro trace FILE                 # inspect a trace sidecar
    python -m repro verify --suite smoke       # verification suites / fuzzer
    python -m repro bench run --all            # benchmark plane: measure
    python -m repro bench compare BASELINE     # ... and regression-gate
    python -m repro bench report FILE          # inspect a BENCH document

Common options: ``--seed`` (testbed world), ``--day``/``--hour``
(measurement time), ``--av500`` (validation devices).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.reporting import (
    format_table,
    summarize_artifacts,
    summarize_timeline,
)
from repro.analysis.traces import load_campaign, record_survey, save_campaign
from repro.sim.clock import MainsClock
from repro.testbed import HPAV500_PRESET, HPAV_PRESET, build_testbed
from repro.units import MBPS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7,
                        help="testbed world seed (default 7)")
    parser.add_argument("--day", type=int, default=2,
                        help="day index, 0 = Monday (default 2)")
    parser.add_argument("--hour", type=float, default=14.0,
                        help="hour of day (default 14.0 = working hours)")
    parser.add_argument("--av500", action="store_true",
                        help="use HPAV500 validation devices")


def _build(args) -> tuple:
    preset = HPAV500_PRESET if args.av500 else HPAV_PRESET
    testbed = build_testbed(seed=args.seed, preset=preset)
    t = MainsClock.at(day=args.day, hour=args.hour)
    return testbed, t


def _parse_pairs(text: Optional[str]) -> Optional[List[Tuple[int, int]]]:
    """Parse ``"0-1,1-0,2-5"`` into directed pairs (None passes through)."""
    if text is None:
        return None
    pairs: List[Tuple[int, int]] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            src, dst = token.split("-")
            pairs.append((int(src), int(dst)))
        except ValueError:
            raise ValueError(
                f"bad pair {token!r} (expected SRC-DST, e.g. 0-1)") \
                from None
    return pairs


def cmd_survey(args) -> int:
    testbed, t = _build(args)
    try:
        pairs = _parse_pairs(args.pairs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    survey_pairs = (pairs if pairs is not None
                    else testbed.same_board_pairs())
    if not survey_pairs:
        print("error: empty survey (no pairs selected)", file=sys.stderr)
        return 1
    campaign = record_survey(testbed, t, pairs=survey_pairs)
    rows = []
    for i, j in survey_pairs:
        plc = campaign.series(str(i), str(j), "plc",
                              "throughput_bps")
        wifi = campaign.series(str(i), str(j), "wifi",
                               "throughput_bps")
        if len(plc) and len(wifi):
            rows.append([f"{i}->{j}", testbed.cable_distance(i, j),
                         plc.values[0] / MBPS, wifi.values[0] / MBPS])
    rows.sort(key=lambda r: -r[2])
    print(format_table(
        ["link", "cable (m)", "PLC (Mbps)", "WiFi (Mbps)"],
        rows[: args.top],
        title=f"Dual-medium survey (seed {args.seed}, "
              f"day {args.day} {args.hour:g}h) — top {args.top}"))
    plc_thr = np.array([r[2] for r in rows])
    wifi_thr = np.array([r[3] for r in rows])
    print(f"\n{len(rows)} links; PLC faster on "
          f"{100 * np.mean(plc_thr > wifi_thr):.0f}%")
    if args.save:
        try:
            save_campaign(campaign, args.save)
        except OSError as exc:
            print(f"error: cannot write {args.save}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"campaign saved to {args.save}")
    return 0


def cmd_probe(args) -> int:
    testbed, t = _build(args)
    src, dst = args.src, args.dst
    link = testbed.plc_link(src, dst)
    if link is None:
        print(f"stations {src} and {dst} are on different boards: "
              f"no direct PLC link (try `route`)", file=sys.stderr)
        return 1
    rev = testbed.plc_link(dst, src)
    wifi = testbed.wifi_link(src, dst)
    print(format_table(
        ["metric", "value"],
        [
            ["cable distance (m)", testbed.cable_distance(src, dst)],
            ["air distance (m)", testbed.air_distance(src, dst)],
            ["avg BLE (Mbps)", link.avg_ble_bps(t) / MBPS],
            ["PBerr", link.pb_err(t)],
            ["UDP throughput (Mbps)",
             link.throughput_bps(t, measured=False) / MBPS],
            ["U-ETX", link.u_etx(t)],
            ["reverse BLE (Mbps)", rev.avg_ble_bps(t) / MBPS],
            ["WiFi throughput (Mbps)",
             wifi.throughput_bps(t, measured=False) / MBPS],
        ],
        title=f"Link {src} -> {dst}"))
    from repro.core.guidelines import LinkState, recommend
    rec = recommend(LinkState(ble_fwd_bps=link.avg_ble_bps(t),
                              ble_rev_bps=rev.avg_ble_bps(t)))
    print(f"\nprobing advice: every {rec.schedule.interval_s:g}s, "
          f"{rec.schedule.payload_bytes}B unicast, "
          f"burst={rec.schedule.burst_packets}")
    for note in rec.notes:
        print(f"  note: {note}")
    return 0


def cmd_route(args) -> int:
    testbed, t = _build(args)
    from repro.hybrid.ieee1905 import AbstractionLayer
    from repro.hybrid.routing import HybridMeshRouter, populate_from_testbed
    layer = AbstractionLayer()
    populate_from_testbed(layer, testbed, t)
    router = HybridMeshRouter(layer)
    path = router.best_path(str(args.src), str(args.dst))
    if path is None:
        print(f"no route from {args.src} to {args.dst}", file=sys.stderr)
        return 1
    print(f"route {args.src} -> {args.dst} "
          f"(ETT {path.total_ett_s * 1e3:.2f} ms"
          f"{', alternates media' if path.alternates_media else ''}):")
    for hop in path.hops:
        print(f"  {hop.src} -> {hop.dst}  [{hop.medium}]  "
              f"{hop.ett_s * 1e3:.2f} ms")
    return 0


def cmd_campaign(args) -> int:
    """Run a parallel experiment campaign to a JSONL artifact file."""
    from repro.campaign import (
        CampaignAborted,
        run_campaign,
        scenario_specs,
        survey_specs,
    )
    from repro.compile import compiled_testbed
    from repro.testbed import resolve_testbed_preset

    try:
        resolve_testbed_preset(args.preset)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        pairs = _parse_pairs(args.pairs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not seeds:
        print("error: empty campaign (no seeds)", file=sys.stderr)
        return 1

    if args.kind == "survey":
        if pairs is None:
            # Read-only pair enumeration on the compiled template — the
            # same cached world the survey tasks will check out.
            world = compiled_testbed(args.preset, seed=seeds[0]).template
            pairs = world.same_board_pairs()
            if args.max_pairs:
                pairs = pairs[: args.max_pairs]
        if not pairs:
            print("error: empty campaign (no pairs to survey)",
                  file=sys.stderr)
            return 1
        specs = survey_specs(args.preset, seeds, pairs, day=args.day,
                             hour=args.hour, duration_s=args.duration,
                             interval_s=args.interval)
    else:
        from repro.netsim.scenario import SCENARIO_LIBRARY
        scenarios = [s for s in args.scenarios.split(",") if s.strip()]
        if not scenarios:
            print("error: empty campaign (no scenarios)", file=sys.stderr)
            return 1
        unknown = [s for s in scenarios if s not in SCENARIO_LIBRARY]
        if unknown:
            print(f"error: unknown scenario(s) {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(SCENARIO_LIBRARY))})",
                  file=sys.stderr)
            return 1
        specs = scenario_specs(args.preset, seeds, scenarios,
                               day=args.day, hour=args.hour,
                               horizon_s=args.horizon)

    def progress(event: str, detail: str, stats) -> None:
        if args.quiet:
            return
        print(f"[{stats.done}/{stats.total_specs}] {event}: {detail}")

    try:
        stats = run_campaign(
            specs, args.out, name=f"{args.kind}-{args.preset}",
            workers=args.workers, progress=progress,
            backend=args.backend, chunk_size=args.chunk_size,
            timeout_s=args.timeout, retries=args.retries,
            max_failures=args.max_failures, resume=not args.no_resume,
            quarantine=args.quarantine, trace=args.trace,
            slice_horizon_s=args.slice_horizon)
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    except (CampaignAborted, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    summary = stats.to_dict()
    print(format_table(
        ["stat", "value"],
        [["specs", summary["total_specs"]],
         ["completed", summary["completed"]],
         ["resumed (skipped)", summary["resumed"]],
         ["failed", summary["failed"]],
         ["retries", summary["retries"]],
         ["timeouts", summary["timeouts"]],
         ["workers", summary["workers"]],
         ["quarantined", summary["quarantined"]],
         ["wall (s)", summary["wall_seconds"]],
         ["worker utilisation", summary["worker_utilisation"]]],
        title=f"campaign {args.kind}-{args.preset} -> {args.out}"))
    if stats.quarantined:
        from repro.campaign.artifacts import quarantine_path_for
        print(f"{stats.quarantined} poison task(s) quarantined in "
              f"{quarantine_path_for(args.out)}")
    if stats.runner:
        rows = sorted((k, v) for k, v in stats.runner.items()
                      if isinstance(v, (int, float)))
        print(format_table(["runner stat", "value"], rows,
                           title="aggregated scenario-runner stats"))
    if args.trace:
        from repro.obs.trace import trace_path_for
        print(f"trace sidecar written to {trace_path_for(args.out)}")
    if args.check:
        return _check_artifact(args.out)
    return 0


def _check_artifact(path: str) -> int:
    """Sweep a finalized campaign artifact with the registered
    ``artifact_task`` invariants (``repro campaign --check``)."""
    from repro.campaign.artifacts import read_artifacts
    from repro.verify.invariants import check_invariants

    try:
        _, artifacts = read_artifacts(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot check {path}: {exc}", file=sys.stderr)
        return 1
    violations = []
    for artifact in artifacts:
        violations.extend(check_invariants(
            "artifact_task", artifact, subject_name=artifact.task_key))
    if violations:
        print(f"--check: {len(violations)} invariant violation(s) in "
              f"{path}:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"--check: {len(artifacts)} task artifact(s) satisfy all "
          f"invariants")
    return 0


def cmd_verify(args) -> int:
    """Run a verification suite (or replay a fuzz-failure artifact)."""
    from repro.obs.clock import SystemClock
    from repro.verify import replay_repro, run_suite, write_report

    if args.replay:
        try:
            spec, results = replay_repro(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot replay {args.replay}: {exc}",
                  file=sys.stderr)
            return 1
        failures = [r for r in results if not r.passed]
        print(f"replayed {spec.task_key()}: {len(results)} check(s), "
              f"{len(failures)} failing")
        for r in failures:
            print(f"  FAIL {r.check} [{r.subject}]: {r.detail}")
        return 1 if failures else 0

    clock = SystemClock()
    started = clock.now()
    report = run_suite(args.suite, preset=args.preset, seed=args.seed,
                       budget_s=args.budget_s, max_cases=args.max_cases,
                       repro_dir=args.repro_dir)
    wall_s = clock.now() - started
    summary = report.summary()
    for r in report.failures:
        print(f"  FAIL {r.check} [{r.subject}]: {r.detail}")
    print(f"suite {report.suite!r} on preset {report.preset!r} "
          f"(seed {report.seed}): {summary['passed']}/"
          f"{summary['checks']} checks passed in {wall_s:.1f}s")
    if args.report:
        try:
            write_report(args.report, report)
        except OSError as exc:
            print(f"error: cannot write {args.report}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"report written to {args.report}")
    bench_path = os.environ.get("BENCH_VERIFY_JSON")
    if bench_path:
        # Suite wall time in the unified BENCH schema (one sample — a
        # timing record, not a gated multi-repeat benchmark).
        from repro import bench

        doc = bench.BenchDocument(environment=bench.Environment.capture())
        doc.add(bench.BenchResult(
            name=f"verify.{report.suite}", samples_s=(wall_s,),
            metrics={k: float(v) for k, v in summary.items()
                     if isinstance(v, (int, float))},
            tags=("verify", report.preset)))
        try:
            bench.write_document(bench_path, doc)
        except OSError as exc:
            print(f"error: cannot write {bench_path}: {exc}",
                  file=sys.stderr)
            return 1
    if not report.ok:
        print(f"error: {summary['failed']} verification check(s) "
              f"failed", file=sys.stderr)
        return 1
    return 0


def cmd_bench_run(args) -> int:
    """Run registered benchmarks into one unified BENCH document."""
    from repro import bench

    bench.load_default_benchmarks()
    if args.names and args.all:
        print("error: give benchmark names or --all, not both",
              file=sys.stderr)
        return 2
    if not args.names and not args.all:
        print("error: name at least one benchmark or pass --all "
              "(see `repro bench list`)", file=sys.stderr)
        return 2
    try:
        names = (list(bench.benchmark_names()) if args.all
                 else [bench.get_benchmark(n).name for n in args.names])
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    def progress(name, result):
        if not args.quiet:
            print(f"{name}: min {result.min_s:.4f}s "
                  f"mean {result.mean_s:.4f}s "
                  f"({result.repeats} repeats, "
                  f"{result.warmup_discarded} warmup)")

    doc = bench.run_benchmarks(names, repeats=args.repeats,
                               warmup=args.warmup, progress=progress)
    if args.out:
        try:
            bench.write_document(args.out, doc)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"BENCH document written to {args.out}")
    if args.trajectory:
        try:
            bench.append_trajectory(args.trajectory, doc)
        except OSError as exc:
            print(f"error: cannot append to {args.trajectory}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"trajectory appended to {args.trajectory}")
    env = doc.environment
    print(f"{len(doc.results)} benchmark(s) over domains "
          f"{', '.join(doc.domains())} "
          f"(python {env.python}, {env.cpu_count} cpu, "
          f"git {env.git_sha[:12] if env.git_sha else 'n/a'})")
    if not args.no_smoke:
        violations = bench.check_smoke(doc)
        if violations:
            print(f"error: {len(violations)} smoke-floor violation(s):",
                  file=sys.stderr)
            for v in violations:
                print(f"  {v}", file=sys.stderr)
            return 1
        print("smoke floors: all hold")
    return 0


def cmd_bench_compare(args) -> int:
    """Gate a candidate run (file, or live) against a baseline."""
    from repro import bench

    bench.load_default_benchmarks()
    baseline_path = bench.find_document(args.baseline)
    try:
        baseline = bench.read_document(baseline_path)
    except OSError as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 1
    except bench.SchemaVersionError as exc:
        print(f"error: baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1

    if args.candidate:
        try:
            candidate = bench.read_document(args.candidate)
        except OSError as exc:
            print(f"error: cannot read candidate {args.candidate}: "
                  f"{exc}", file=sys.stderr)
            return 1
        except ValueError as exc:  # includes SchemaVersionError
            print(f"error: candidate {args.candidate}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        registered = set(bench.benchmark_names())
        names = [n for n in sorted(baseline.results) if n in registered]
        if not names:
            print("error: no benchmark in the baseline is registered "
                  "in this harness", file=sys.stderr)
            return 1
        candidate = bench.run_benchmarks(names)

    thresholds = {}
    if args.warn_ratio is not None:
        thresholds["warn_ratio"] = args.warn_ratio
    if args.fail_ratio is not None:
        thresholds["fail_ratio"] = args.fail_ratio
    comparison = bench.compare_documents(baseline, candidate,
                                         **thresholds)
    print(bench.format_comparison(comparison))
    return 0 if comparison.ok else 1


def cmd_bench_report(args) -> int:
    """Summarise a BENCH document or a trajectory file."""
    from repro import bench

    if args.trajectory:
        records = bench.read_trajectory(args.file)
        if not records:
            print(f"error: no trajectory records in {args.file}",
                  file=sys.stderr)
            return 1
        print(f"trajectory {args.file}: {len(records)} run(s)")
        names = sorted({name for rec in records
                        for name in rec.get("min_s", {})})
        rows = []
        for name in names:
            series = [rec["min_s"][name] for rec in records
                      if name in rec.get("min_s", {})]
            rows.append([name, len(series), series[0], series[-1],
                         series[-1] / series[0]])
        print(format_table(
            ["benchmark", "runs", "first min (s)", "last min (s)",
             "last/first"],
            rows, title="per-benchmark trajectory"))
        return 0

    try:
        doc = bench.read_document(bench.find_document(args.file))
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:  # includes SchemaVersionError
        print(f"error: {args.file}: {exc}", file=sys.stderr)
        return 1
    env = doc.environment
    print(f"BENCH document: {len(doc.results)} benchmark(s), domains "
          f"{', '.join(doc.domains())}")
    print(f"environment: python {env.python} on {env.platform}, "
          f"{env.cpu_count} cpu, numpy {env.numpy}, "
          f"git {env.git_sha or 'n/a'}")
    rows = []
    for name, result in sorted(doc.results.items()):
        rows.append([name, result.repeats, result.min_s, result.mean_s,
                     result.figure or "-"])
    print(format_table(
        ["benchmark", "repeats", "min (s)", "mean (s)", "figure"],
        rows, title="results (min-of-repeats is the gated statistic)"))
    for name, result in sorted(doc.results.items()):
        if result.metrics:
            metrics = ", ".join(f"{k}={v:g}" for k, v
                                in sorted(result.metrics.items()))
            print(f"  {name}: {metrics}")
    return 0


def cmd_bench_list(args) -> int:
    """List registered benchmarks with their manifest modules."""
    from repro import bench
    from repro.bench.manifest import module_for

    bench.load_default_benchmarks()
    rows = []
    for spec in bench.iter_benchmarks():
        try:
            module = module_for(spec.name)
        except KeyError:
            module = "<unclaimed>"
        rows.append([spec.name, spec.repeats, spec.warmup, module])
    print(format_table(
        ["benchmark", "repeats", "warmup", "benchmarks/ module"],
        rows, title=f"{len(rows)} registered benchmark(s)"))
    return 0


def cmd_report(args) -> int:
    from repro.campaign.artifacts import (
        is_artifact_file,
        quarantine_path_for,
        read_quarantine,
    )

    try:
        if args.timeline:
            if not is_artifact_file(args.file):
                print("error: --timeline needs a campaign artifact file",
                      file=sys.stderr)
                return 2
            print(summarize_timeline(args.file, top=args.top))
            return 0
        if is_artifact_file(args.file):
            text, _ = summarize_artifacts(args.file, top=args.top)
        else:
            text, campaign = None, load_campaign(args.file)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if text is not None:
        print(text)
        sidecar = quarantine_path_for(args.file)
        entries = read_quarantine(sidecar)
        if entries:
            print(format_table(
                ["task", "attempts", "error"],
                [[e.task_key, e.attempts, e.error[:60]]
                 for e in entries[: args.top]],
                title=f"quarantined tasks ({sidecar})"))
        return 0
    print(f"campaign {campaign.name!r}: {len(campaign)} records, "
          f"seed={campaign.seed}")
    rows = []
    for (src, dst, medium) in campaign.links()[: args.top]:
        series = campaign.series(src, dst, medium)
        rows.append([f"{src}->{dst}", medium, len(series),
                     series.mean / MBPS, series.std / MBPS])
    print(format_table(
        ["link", "medium", "samples", "mean cap (Mbps)", "std"],
        rows, title="per-link summary"))
    return 0


def cmd_trace(args) -> int:
    """Inspect a trace sidecar: header, event census, raw event lines."""
    from pathlib import Path

    from repro.campaign.artifacts import is_artifact_file
    from repro.obs.trace import read_trace, trace_path_for

    path = Path(args.file)
    try:
        if path.exists() and is_artifact_file(path):
            path = trace_path_for(path)
        header, events = read_trace(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.name:
        events = [e for e in events if args.name in e["name"]]
    if args.task:
        events = [e for e in events if args.task in e["task_key"]]
    print(f"trace {header.get('name')!r} (format "
          f"{header.get('format')} v{header.get('version')}): "
          f"{len(events)} events")

    census: dict = {}
    for ev in events:
        entry = census.setdefault(
            ev["name"], {"count": 0, "tasks": set(),
                         "t_lo": float("inf"), "t_hi": float("-inf")})
        entry["count"] += 1
        entry["tasks"].add(ev["task_key"])
        entry["t_lo"] = min(entry["t_lo"], ev["sim_time"])
        entry["t_hi"] = max(entry["t_hi"],
                            ev["sim_time"] + ev.get("duration_s", 0.0))
    if census:
        print(format_table(
            ["event", "count", "tasks", "sim start", "sim end"],
            [[name, c["count"], len(c["tasks"]), c["t_lo"], c["t_hi"]]
             for name, c in sorted(census.items())],
            title="event census"))
    if args.events:
        for ev in events[: args.events]:
            span = (f" +{ev['duration_s']:g}s"
                    if "duration_s" in ev else "")
            attrs = f"  {ev['attrs']}" if ev.get("attrs") else ""
            # .10g, not :g — absolute sim times run ~2e5 s, where six
            # significant digits would swallow the sub-second quantum.
            print(f"{ev['task_key']}#{ev['seq']}  t={ev['sim_time']:.10g}"
                  f"{span}  {ev['name']}{attrs}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Electri-Fi reproduction toolkit (IMC'15)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_survey = sub.add_parser("survey", help="dual-medium link survey")
    _add_common(p_survey)
    p_survey.add_argument("--save", help="write campaign JSONL here")
    p_survey.add_argument("--top", type=int, default=15,
                          help="rows to print (default 15)")
    p_survey.add_argument("--pairs",
                          help="directed pairs to survey, e.g. 0-1,1-0 "
                               "(default: all same-board pairs)")
    p_survey.set_defaults(func=cmd_survey)

    p_campaign = sub.add_parser(
        "campaign", help="parallel experiment campaign")
    p_campaign.add_argument("--preset", default="office",
                            help="testbed preset name (default office)")
    p_campaign.add_argument("--kind", choices=("survey", "scenario"),
                            default="survey")
    p_campaign.add_argument("--seeds", default="7",
                            help="comma-separated world seeds "
                                 "(default 7)")
    p_campaign.add_argument("--out", required=True,
                            help="JSONL artifact output path")
    p_campaign.add_argument("--workers", type=int, default=1,
                            help="worker processes; 0 = run inline "
                                 "(default 1)")
    p_campaign.add_argument("--backend",
                            choices=("auto", "inline", "process",
                                     "thread", "chunked"),
                            default="auto",
                            help="execution backend (default auto: "
                                 "inline when --workers 0, else "
                                 "process); artifacts are byte-identical "
                                 "across backends")
    p_campaign.add_argument("--chunk-size", type=int, default=8,
                            help="chunked backend: specs per pool "
                                 "round-trip (default 8)")
    p_campaign.add_argument("--pairs",
                            help="survey: directed pairs, e.g. 0-1,1-0")
    p_campaign.add_argument("--max-pairs", type=int, default=0,
                            help="survey: cap auto-enumerated pairs")
    p_campaign.add_argument("--scenarios", default="office-afternoon",
                            help="scenario: comma-separated library "
                                 "names")
    p_campaign.add_argument("--day", type=int, default=2)
    p_campaign.add_argument("--hour", type=float, default=14.0)
    p_campaign.add_argument("--duration", type=float, default=30.0,
                            help="survey: seconds per medium "
                                 "(default 30)")
    p_campaign.add_argument("--interval", type=float, default=1.0,
                            help="survey: report interval (default 1)")
    p_campaign.add_argument("--horizon", type=float, default=900.0,
                            help="scenario: runner horizon (default "
                                 "900)")
    p_campaign.add_argument("--slice-horizon", type=float, default=None,
                            help="scenario: split long tasks into "
                                 "checkpointed slices of this many "
                                 "simulated seconds (time-sliced "
                                 "execution; artifacts stay "
                                 "byte-identical to a straight run)")
    p_campaign.add_argument("--timeout", type=float, default=None,
                            help="per-task timeout in seconds")
    p_campaign.add_argument("--retries", type=int, default=2)
    p_campaign.add_argument("--max-failures", type=int, default=0,
                            help="circuit breaker: permanent failures "
                                 "tolerated (default 0)")
    p_campaign.add_argument("--quarantine", action="store_true",
                            help="park permanently failing tasks in a "
                                 "quarantine sidecar instead of tripping "
                                 "the circuit breaker")
    p_campaign.add_argument("--no-resume", action="store_true",
                            help="ignore existing artifacts and redo "
                                 "everything")
    p_campaign.add_argument("--quiet", action="store_true",
                            help="suppress per-task progress lines")
    p_campaign.add_argument("--trace", action="store_true",
                            help="record a sim-time trace sidecar next "
                                 "to the artifact (never changes the "
                                 "artifact bytes)")
    p_campaign.add_argument("--check", action="store_true",
                            help="after the run, sweep the artifact "
                                 "with the registered invariants and "
                                 "fail on any violation")
    p_campaign.set_defaults(func=cmd_campaign)

    p_probe = sub.add_parser("probe", help="measure one PLC link")
    _add_common(p_probe)
    p_probe.add_argument("src", type=int)
    p_probe.add_argument("dst", type=int)
    p_probe.set_defaults(func=cmd_probe)

    p_route = sub.add_parser("route", help="hybrid mesh route")
    _add_common(p_route)
    p_route.add_argument("src", type=int)
    p_route.add_argument("dst", type=int)
    p_route.set_defaults(func=cmd_route)

    p_report = sub.add_parser("report", help="summarise a saved campaign")
    p_report.add_argument("file")
    p_report.add_argument("--top", type=int, default=15)
    p_report.add_argument("--timeline", action="store_true",
                          help="per-domain utilisation + trace activity "
                               "view of a campaign artifact")
    p_report.set_defaults(func=cmd_report)

    p_trace = sub.add_parser(
        "trace", help="inspect a campaign trace sidecar")
    p_trace.add_argument("file",
                         help="trace sidecar (or its campaign artifact)")
    p_trace.add_argument("--name", help="only events whose name contains "
                                        "this substring")
    p_trace.add_argument("--task", help="only events whose task key "
                                        "contains this substring")
    p_trace.add_argument("--events", type=int, default=0,
                         help="also print the first N raw event lines")
    p_trace.set_defaults(func=cmd_trace)

    p_verify = sub.add_parser(
        "verify", help="run a verification suite (invariants, "
                       "differential oracles, metamorphic relations, "
                       "scenario fuzzer)")
    p_verify.add_argument("--suite", choices=("smoke", "full", "fuzz"),
                          default="smoke",
                          help="which suite to run (default smoke)")
    p_verify.add_argument("--preset", default=None,
                          help="testbed preset (default: the suite's "
                               "own — mini3 for smoke/fuzz, office for "
                               "full)")
    p_verify.add_argument("--seed", type=int, default=7,
                          help="root seed (default 7)")
    p_verify.add_argument("--report",
                          help="write the canonical JSONL report here")
    p_verify.add_argument("--budget-s", type=float, default=None,
                          help="fuzz: wall-clock budget in seconds "
                               "(default 60)")
    p_verify.add_argument("--max-cases", type=int, default=None,
                          help="fuzz: maximum cases (default 64)")
    p_verify.add_argument("--repro-dir", default="verify-failures",
                          help="fuzz: where failure repro artifacts go")
    p_verify.add_argument("--replay",
                          help="replay a fuzz-failure repro artifact "
                               "instead of running a suite")
    p_verify.set_defaults(func=cmd_verify)

    p_bench = sub.add_parser(
        "bench", help="benchmark plane: run registered benchmarks, "
                      "regression-gate against baselines, inspect BENCH "
                      "documents and trajectories")
    bench_sub = p_bench.add_subparsers(dest="bench_command",
                                       required=True)

    pb_run = bench_sub.add_parser(
        "run", help="run benchmarks into one unified BENCH document")
    pb_run.add_argument("names", nargs="*",
                        help="benchmark names (see `repro bench list`)")
    pb_run.add_argument("--all", action="store_true",
                        help="run every registered benchmark")
    pb_run.add_argument("--out",
                        help="write the BENCH JSON document here")
    pb_run.add_argument("--trajectory",
                        help="append a one-line trajectory record here")
    pb_run.add_argument("--repeats", type=int, default=None,
                        help="override every spec's repeat count")
    pb_run.add_argument("--warmup", type=int, default=None,
                        help="override every spec's warmup count")
    pb_run.add_argument("--no-smoke", action="store_true",
                        help="skip the absolute smoke floors")
    pb_run.add_argument("--quiet", action="store_true",
                        help="suppress per-benchmark progress lines")
    pb_run.set_defaults(func=cmd_bench_run)

    pb_compare = bench_sub.add_parser(
        "compare", help="gate a candidate run against a baseline "
                        "(noise-aware: min-of-repeats + bootstrap band)")
    pb_compare.add_argument("baseline",
                            help="baseline BENCH file, or a directory "
                                 "holding BENCH.json (e.g. "
                                 "benchmarks/baselines/)")
    pb_compare.add_argument("candidate", nargs="?",
                            help="candidate BENCH file (default: run "
                                 "the baseline's benchmarks live)")
    pb_compare.add_argument("--warn-ratio", type=float, default=None,
                            help="min-ratio above which to warn "
                                 "(default 1.2)")
    pb_compare.add_argument("--fail-ratio", type=float, default=None,
                            help="ratio the whole bootstrap band must "
                                 "clear to fail (default 1.5)")
    pb_compare.set_defaults(func=cmd_bench_compare)

    pb_report = bench_sub.add_parser(
        "report", help="summarise a BENCH document or trajectory")
    pb_report.add_argument("file",
                           help="BENCH JSON document (or baselines "
                                "directory), or a trajectory file with "
                                "--trajectory")
    pb_report.add_argument("--trajectory", action="store_true",
                           help="treat FILE as a trajectory JSONL file")
    pb_report.set_defaults(func=cmd_bench_report)

    pb_list = bench_sub.add_parser(
        "list", help="list registered benchmarks and their modules")
    pb_list.set_defaults(func=cmd_bench_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro report ... | head`) went away;
        # stdout is unusable, so detach it before interpreter shutdown
        # tries to flush and raises again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
