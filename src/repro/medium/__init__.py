"""Medium-agnostic link contract and the registry of media.

See :mod:`repro.medium.link` for the ``Link`` protocol and the batch
``sample_series`` semantics, and :mod:`repro.medium.registry` for how
consumers resolve medium tags to link facades and contention domains.
"""

from repro.medium.link import (
    BatchSamplingMixin,
    Link,
    LinkSample,
    LinkSeries,
    series_from_samples,
)
from repro.medium.registry import (
    MediumSpec,
    constituent_media,
    get_medium,
    known_media,
    register_composite,
    register_medium,
    registered_media,
)

__all__ = [
    "BatchSamplingMixin",
    "Link",
    "LinkSample",
    "LinkSeries",
    "series_from_samples",
    "MediumSpec",
    "constituent_media",
    "get_medium",
    "known_media",
    "register_composite",
    "register_medium",
    "registered_media",
]
