"""The medium-agnostic link contract.

Every link facade — PLC, WiFi, or a synthetic model — exposes the same
surface: a ``medium`` tag, scalar probes (``sample``, ``capacity_bps``,
``throughput_bps``), and a vectorized ``sample_series`` that evaluates a
whole time grid in one call and returns a :class:`LinkSeries` backed by a
numpy structured array.

The contract is *exact*: ``sample_series(ts)`` must equal the per-``t``
``sample`` loop bit for bit, including consumption of the link's
measurement-noise stream.  ``tests/test_medium_contract.py`` enforces
this for every registered link type.

``measured`` selects between the physical-layer expectation
(``measured=False``, deterministic, consumes no random state) and a
simulated measurement (``measured=True``, adds per-sample noise drawn
from the link's own stateful stream).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.units import MBPS

#: Fields common to every medium; subclasses append their own.
BASE_FIELDS = (("time", "f8"), ("capacity_bps", "f8"),
               ("throughput_bps", "f8"), ("loss", "f8"))


@dataclass(frozen=True)
class LinkSample:
    """One scalar observation of a link at time ``time``.

    ``capacity_bps`` is the medium's instantaneous PHY-derived capacity
    estimate, ``throughput_bps`` the (optionally noise-measured)
    saturated throughput, ``loss`` the dominant loss metric of the
    medium (PB error rate for PLC, MCS-outage indicator for WiFi).
    """

    time: float
    capacity_bps: float
    throughput_bps: float
    loss: float

    @property
    def capacity_mbps(self) -> float:
        return self.capacity_bps / MBPS

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / MBPS


class LinkSeries:
    """A column-oriented batch of link samples.

    Thin wrapper over a numpy structured array: one row per timestamp,
    one field per metric. Medium-specific fields (e.g. PLC's
    ``ble_per_slot_bps``) live alongside the :data:`BASE_FIELDS`.
    """

    def __init__(self, data: np.ndarray, name: str, medium: str):
        self.data = data
        self.name = name
        self.medium = medium

    @classmethod
    def allocate(cls, n: int, extra_fields: Sequence[tuple] = (),
                 name: str = "link", medium: str = "plc") -> "LinkSeries":
        dtype = np.dtype(list(BASE_FIELDS) + list(extra_fields))
        return cls(np.zeros(n, dtype=dtype), name=name, medium=medium)

    def column(self, field: str) -> np.ndarray:
        return self.data[field]

    @property
    def times(self) -> np.ndarray:
        return self.data["time"]

    @property
    def capacity_bps(self) -> np.ndarray:
        return self.data["capacity_bps"]

    @property
    def throughput_bps(self) -> np.ndarray:
        return self.data["throughput_bps"]

    @property
    def loss(self) -> np.ndarray:
        return self.data["loss"]

    def __len__(self) -> int:
        return len(self.data)

    def to_metric_series(self, field: str = "throughput_bps"):
        """Project one column into a :class:`repro.core.metrics.MetricSeries`."""
        from repro.core.metrics import MetricSeries  # avoid import cycle
        return MetricSeries(times=np.asarray(self.times, dtype=float),
                            values=np.asarray(self.column(field),
                                              dtype=float),
                            name=f"{self.name}:{field}")


def _field_dtype(name: str, value) -> tuple:
    if isinstance(value, np.ndarray):
        return (name, "f8", value.shape)
    if isinstance(value, (bool, np.bool_, int, np.integer)):
        return (name, "i8")
    return (name, "f8")


def series_from_samples(samples: Iterable[LinkSample], name: str,
                        medium: str) -> LinkSeries:
    """Pack scalar :class:`LinkSample` objects into a :class:`LinkSeries`.

    Field layout is introspected from the first sample's dataclass
    fields, so medium-specific subclasses round-trip automatically.
    """
    samples = list(samples)
    if not samples:
        return LinkSeries.allocate(0, name=name, medium=medium)
    base_names = {f[0] for f in BASE_FIELDS}
    first = samples[0]
    extra = [_field_dtype(f.name, getattr(first, f.name))
             for f in dataclasses.fields(first) if f.name not in base_names]
    series = LinkSeries.allocate(len(samples), extra_fields=extra,
                                 name=name, medium=medium)
    field_names = [f.name for f in dataclasses.fields(first)]
    for i, sample in enumerate(samples):
        for field in field_names:
            series.data[field][i] = getattr(sample, field)
    return series


@runtime_checkable
class Link(Protocol):
    """Structural type every medium facade satisfies.

    Consumers (traffic generators, experiment runners, the hybrid
    aggregator, the fluid scenario runner) must depend only on this
    surface — never on channel internals.
    """

    name: str
    medium: str

    def sample(self, t: float, measured: bool = True) -> LinkSample: ...

    def sample_series(self, ts: np.ndarray,
                      measured: bool = True) -> LinkSeries: ...

    def capacity_bps(self, t: float) -> float: ...

    def throughput_bps(self, t: float, measured: bool = True) -> float: ...

    def is_connected(self, t: float) -> bool: ...


class BatchSamplingMixin:
    """Derives ``sample_series`` from the scalar ``sample``.

    Correct for any link (the contract *is* the scalar loop); subclasses
    override ``sample_series`` with a vectorized implementation when the
    scalar path is too slow, and the conformance suite checks the
    override against this definition.
    """

    def sample_series(self, ts: np.ndarray,
                      measured: bool = True) -> LinkSeries:
        samples = [self.sample(float(t), measured=measured) for t in ts]
        return series_from_samples(samples, name=getattr(self, "name", "link"),
                                   medium=getattr(self, "medium", "plc"))
