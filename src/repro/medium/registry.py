"""Registry of transmission media.

Maps a medium tag (``"plc"``, ``"wifi"``, composite ``"hybrid"``) to the
operations a consumer needs to stay medium-agnostic: fetching the link
facade for a station pair from a testbed and naming the contention
domain a flow competes in.  ``netsim.runner`` and ``campaign.tasks``
dispatch through this table instead of ``if medium == ...`` ladders, so
adding a third medium is a single :func:`register_medium` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple


@dataclass(frozen=True)
class MediumSpec:
    """One elemental medium: how to get links and contention domains."""

    tag: str
    get_link: Callable[[object, int, int], object]
    contention_domain: Callable[[object, int], str]


_MEDIA: Dict[str, MediumSpec] = {}
_COMPOSITES: Dict[str, Tuple[str, ...]] = {}


def register_medium(spec: MediumSpec) -> None:
    _MEDIA[spec.tag] = spec


def register_composite(tag: str, constituents: Tuple[str, ...]) -> None:
    for constituent in constituents:
        if constituent not in _MEDIA:
            raise KeyError(f"unknown constituent medium {constituent!r}")
    _COMPOSITES[tag] = tuple(constituents)


def get_medium(tag: str) -> MediumSpec:
    try:
        return _MEDIA[tag]
    except KeyError:
        raise KeyError(
            f"unknown medium {tag!r}; registered: {registered_media()}"
        ) from None


def registered_media() -> Tuple[str, ...]:
    """Elemental media, in registration order."""
    return tuple(_MEDIA)


def known_media() -> Tuple[str, ...]:
    """Every valid flow-request medium tag, elemental and composite."""
    return tuple(_MEDIA) + tuple(_COMPOSITES)


def constituent_media(tag: str) -> Tuple[str, ...]:
    """The elemental media a flow on ``tag`` actually occupies."""
    if tag in _MEDIA:
        return (tag,)
    try:
        return _COMPOSITES[tag]
    except KeyError:
        raise KeyError(
            f"unknown medium {tag!r}; known: {known_media()}") from None


def _plc_link(testbed, src: int, dst: int):
    return testbed.plc_link(src, dst)


def _wifi_link(testbed, src: int, dst: int):
    return testbed.wifi_link(src, dst)


def _plc_domain(testbed, src: int) -> str:
    return f"plc:{testbed.board_of(src)}"


def _wifi_domain(testbed, src: int) -> str:
    return "wifi:floor"


register_medium(MediumSpec(tag="plc", get_link=_plc_link,
                           contention_domain=_plc_domain))
register_medium(MediumSpec(tag="wifi", get_link=_wifi_link,
                           contention_domain=_wifi_domain))
# A hybrid flow rides both elemental media; PLC first mirrors the
# aggregator's probing order.
register_composite("hybrid", ("plc", "wifi"))
