"""Physical constants and unit helpers shared across the library.

All simulation times are expressed in **seconds** (floats), frequencies in
**Hz**, data rates in **bits per second** unless a name says otherwise.
Helper constants keep call sites readable (``5 * MINUTE``, ``40.96 * US``).
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY

# --- frequency -------------------------------------------------------------
KHZ = 1e3
MHZ = 1e6

# --- data ------------------------------------------------------------------
BYTE = 8  # bits
KBPS = 1e3
MBPS = 1e6

# European mains (the EPFL testbed): 50 Hz.
MAINS_HZ = 50.0
#: Full mains cycle duration (20 ms at 50 Hz).
MAINS_CYCLE = 1.0 / MAINS_HZ
#: The HPAV tone-map schedule spans half a mains cycle (10 ms at 50 Hz),
#: because noise is (approximately) symmetric across the two half-cycles.
HALF_MAINS_CYCLE = MAINS_CYCLE / 2.0
#: IEEE 1901 beacon period: two mains cycles (40 ms at 50 Hz, 33.3 ms at 60 Hz).
BEACON_PERIOD = 2 * MAINS_CYCLE


def mbps(bits_per_second: float) -> float:
    """Convert bits/s to Mbit/s (for reporting)."""
    return bits_per_second / MBPS


def bits_per_second(mbit_per_second: float) -> float:
    """Convert Mbit/s to bits/s."""
    return mbit_per_second * MBPS
