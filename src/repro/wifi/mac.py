"""802.11n MAC detail: A-MPDU aggregation and Minstrel rate adaptation.

The coarse WiFi model uses a flat DCF efficiency; this module provides the
mechanisms behind that number, for analyses that need them:

* :func:`ampdu_efficiency` — goodput/PHY-rate ratio as a function of the
  aggregation depth: per-exchange overheads (DIFS, backoff, preamble,
  Block ACK) amortise over the A-MPDU, which is why 802.11n needs
  aggregation to be efficient at high MCS (and why the paper's ref [16]
  says MAC enhancements broke classic metrics);
* :class:`MinstrelRateControl` — the Linux rate-control algorithm in
  miniature: per-rate EWMA success probabilities from ACK feedback,
  occasional sampling of other rates, pick by expected throughput. Unlike
  the idealised ``select_mcs`` (which reads the SNR directly), Minstrel
  only sees ACKs — so it lags fading, which is part of WiFi's measured
  throughput variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.wifi.phy import MCS_TABLE_2SS, McsEntry
from repro.units import US

#: Per-exchange constants (802.11n, 20 MHz).
DIFS_S = 34 * US
SIFS_S = 16 * US
SLOT_S = 9 * US
PREAMBLE_S = 40 * US          # PLCP preamble + header (mixed mode)
BLOCK_ACK_S = 32 * US
AVG_BACKOFF_SLOTS = 7.5       # CWmin = 15
MPDU_OVERHEAD_BYTES = 40      # MAC header + FCS + delimiter


def ampdu_airtime_s(phy_rate_bps: float, mpdu_payload_bytes: int,
                    n_mpdus: int) -> float:
    """On-air duration of one A-MPDU exchange (data + Block ACK)."""
    if phy_rate_bps <= 0:
        raise ValueError("PHY rate must be positive")
    if n_mpdus < 1:
        raise ValueError("an A-MPDU aggregates at least one MPDU")
    bits = n_mpdus * (mpdu_payload_bytes + MPDU_OVERHEAD_BYTES) * 8
    return (DIFS_S + AVG_BACKOFF_SLOTS * SLOT_S + PREAMBLE_S
            + bits / phy_rate_bps + SIFS_S + BLOCK_ACK_S)


def ampdu_efficiency(phy_rate_bps: float, mpdu_payload_bytes: int = 1500,
                     n_mpdus: int = 16) -> float:
    """Application goodput / PHY rate for a given aggregation depth."""
    airtime = ampdu_airtime_s(phy_rate_bps, mpdu_payload_bytes, n_mpdus)
    payload_bits = n_mpdus * mpdu_payload_bytes * 8
    return (payload_bits / phy_rate_bps) / airtime * (
        mpdu_payload_bytes / (mpdu_payload_bytes + MPDU_OVERHEAD_BYTES))


@dataclass
class _RateState:
    entry: McsEntry
    success_ewma: float = 0.5
    attempts: int = 0


class MinstrelRateControl:
    """ACK-driven rate control (Minstrel, simplified).

    ``on_result(mcs_index, success)`` feeds transmission feedback;
    ``pick()`` returns the MCS to use next — usually the
    best-expected-throughput rate, but every ``sample_interval`` frames it
    probes a random other rate (how Minstrel discovers recoveries).
    """

    def __init__(self, rng: np.random.Generator, ewma_weight: float = 0.25,
                 sample_interval: int = 12):
        if not 0.0 < ewma_weight <= 1.0:
            raise ValueError("EWMA weight must be in (0, 1]")
        if sample_interval < 2:
            raise ValueError("sample interval must be >= 2")
        self._rng = rng
        self.ewma_weight = ewma_weight
        self.sample_interval = sample_interval
        self._rates = {e.index: _RateState(e) for e in MCS_TABLE_2SS}
        self._frames = 0

    def expected_throughput_bps(self, index: int) -> float:
        state = self._rates[index]
        return state.entry.phy_rate_bps * state.success_ewma

    def best_rate(self) -> int:
        return max(self._rates,
                   key=lambda i: (self.expected_throughput_bps(i), i))

    def pick(self) -> int:
        """The MCS for the next frame (throughput leader or a sample)."""
        self._frames += 1
        if self._frames % self.sample_interval == 0:
            others = [i for i in self._rates if i != self.best_rate()]
            return int(self._rng.choice(others))
        return self.best_rate()

    def on_result(self, mcs_index: int, success: bool) -> None:
        state = self._rates[mcs_index]
        state.attempts += 1
        w = self.ewma_weight
        state.success_ewma = ((1 - w) * state.success_ewma
                              + w * (1.0 if success else 0.0))


def frame_success_probability(snr_db: float, entry: McsEntry,
                              steepness: float = 1.2) -> float:
    """Per-A-MPDU-subframe success probability at a given SNR.

    A logistic around the rate's sensitivity threshold — the smooth
    counterpart of the hard threshold in ``select_mcs``.
    """
    if entry.index < 0:
        return 0.0
    margin = snr_db - entry.min_snr_db
    return float(1.0 / (1.0 + np.exp(-steepness * margin)))


def run_rate_control(channel, rc: MinstrelRateControl,
                     rng: np.random.Generator, t_start: float,
                     duration: float, frame_interval_s: float = 0.002
                     ) -> List[int]:
    """Drive Minstrel against a WifiChannel; returns the chosen MCS trace."""
    choices: List[int] = []
    t = t_start
    while t < t_start + duration:
        index = rc.pick()
        entry = next(e for e in MCS_TABLE_2SS if e.index == index)
        snr = channel.state(t).snr_db
        success = rng.uniform() < frame_success_probability(snr, entry)
        rc.on_result(index, success)
        choices.append(index)
        t += frame_interval_s
    return choices
