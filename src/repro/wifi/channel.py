"""Indoor WiFi channel: link budget + temporally-correlated variability.

Model components:

* **Path loss**: log-distance with wall-rich indoor exponent, so links die
  around 35–40 m — the paper's blind-spot threshold (§4.1);
* **Shadowing**: one static per-link draw (the link's "personality");
* **Fast fading**: block fading re-drawn per coherence interval;
* **Interference/occupancy**: during working hours, people and other traffic
  raise the variability a lot — this is the dominant reason the paper's σ_W
  reaches ~19 Mbps while σ_P stays below 4 (Fig. 3, 4).

Both directions share path loss and shadowing (reciprocity) but draw
independent fading and small per-direction noise-figure offsets, giving the
mild WiFi asymmetry the paper reports (§5: up to 1.5× for good links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams

#: Link-budget constants: 15 dBm TX EIRP, −90 dBm noise+NF over 20 MHz.
TX_POWER_DBM = 15.0
NOISE_FLOOR_DBM = -90.0

#: Log-distance path loss: PL(d) = PL0 + 10·n·log10(d / 1 m).
PATH_LOSS_EXPONENT = 4.3
PATH_LOSS_1M_DB = 38.0

#: Static shadowing std-dev (dB) across links. Positive excursions are
#: capped: indoor links cannot beat free-space-like propagation by much,
#: and the paper observes *no* WiFi connectivity beyond ~35 m.
SHADOWING_STD_DB = 5.0
SHADOWING_MAX_DB = 5.0
SHADOWING_MIN_DB = -12.0

#: Fast-fading block length (coherence time) in seconds.
COHERENCE_TIME_S = 0.12

#: Fading std-dev (dB): quiet vs working hours (people moving, doors, ...).
FADING_STD_QUIET_DB = 1.5
FADING_STD_BUSY_DB = 4.5

#: Airtime availability during working hours dips when neighbours transmit.
BUSY_AVAILABILITY_MEAN = 0.92
QUIET_AVAILABILITY_MEAN = 0.97


@dataclass(frozen=True)
class WifiChannelState:
    """Instantaneous channel snapshot for one direction."""

    snr_db: float
    availability: float


class WifiChannel:
    """A directed over-the-air channel between two floor positions."""

    def __init__(self, src_pos: Tuple[float, float],
                 dst_pos: Tuple[float, float], streams: RandomStreams,
                 name: str, clock: MainsClock = MainsClock()):
        self.src_pos = src_pos
        self.dst_pos = dst_pos
        self.name = name
        self.clock = clock
        self._streams = streams
        rng = streams.fresh(f"wifi.structure.{_pair_key(name)}")
        #: Shadowing is reciprocal: drawn once per unordered pair.
        self._shadowing_db = float(np.clip(
            rng.normal(0.0, SHADOWING_STD_DB),
            SHADOWING_MIN_DB, SHADOWING_MAX_DB))
        rng_dir = streams.fresh(f"wifi.direction.{name}")
        #: Small per-direction noise-figure offset (asymmetry, §5).
        self._direction_offset_db = float(rng_dir.normal(0.0, 0.8))
        self._mean_snr_db: Optional[float] = None

    def distance_m(self) -> float:
        dx = self.src_pos[0] - self.dst_pos[0]
        dy = self.src_pos[1] - self.dst_pos[1]
        return float(np.hypot(dx, dy))

    def mean_snr_db(self) -> float:
        """Long-term average SNR from the link budget."""
        if self._mean_snr_db is None:
            d = max(self.distance_m(), 1.0)
            pl = PATH_LOSS_1M_DB + 10 * PATH_LOSS_EXPONENT * np.log10(d)
            self._mean_snr_db = (TX_POWER_DBM - pl - NOISE_FLOOR_DBM
                                 + self._shadowing_db
                                 + self._direction_offset_db)
        return self._mean_snr_db

    def _draw_block_state(self, rng: np.random.Generator,
                          busy: bool) -> WifiChannelState:
        """One coherence block's draws from its (re)played stream."""
        sigma = FADING_STD_BUSY_DB if busy else FADING_STD_QUIET_DB
        fading = float(rng.normal(0.0, sigma))
        # Occasional deep fade (person crossing the LoS).
        if busy and rng.uniform() < 0.04:
            fading -= float(rng.uniform(4.0, 12.0))
        mean_avail = (BUSY_AVAILABILITY_MEAN if busy
                      else QUIET_AVAILABILITY_MEAN)
        availability = float(rng.normal(mean_avail, 0.10 if busy else 0.02))
        if availability < 0.2:
            availability = 0.2
        elif availability > 1.0:
            availability = 1.0
        return WifiChannelState(snr_db=self.mean_snr_db() + fading,
                                availability=availability)

    def state(self, t: float) -> WifiChannelState:
        """Instantaneous SNR + airtime availability at simulated time ``t``.

        Deterministic per (link, coherence interval): hashed block fading.
        """
        busy = self.clock.is_working_hours(t)
        block = int(t / COHERENCE_TIME_S)
        rng = self._streams.fresh(f"wifi.fading.{self.name}.{block}")
        return self._draw_block_state(rng, busy)

    def state_series(self, ts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`state` → ``(snr_db, availability)`` arrays.

        Bit-identical to the scalar path: unique (coherence block, busy)
        pairs are drawn once through the batched stream seeder
        (:meth:`RandomStreams.fresh_batch`) and broadcast back to every
        timestamp; the scalar draw helper is shared, so the values agree
        by construction.
        """
        ts = np.asarray(ts, dtype=float)
        busy = self.clock.is_working_hours_series(ts)
        blocks = (ts / COHERENCE_TIME_S).astype(np.int64)
        # Key by (block, busy): a block straddling the working-hours edge
        # replays the same stream with either sigma, as the scalar does.
        keys = blocks * 2 + busy.astype(np.int64)
        uniq, inverse = np.unique(keys, return_inverse=True)
        snr = np.empty(len(uniq))
        avail = np.empty(len(uniq))
        names = [f"wifi.fading.{self.name}.{int(k) >> 1}" for k in uniq]
        for i, rng in self._streams.fresh_batch(names):
            state = self._draw_block_state(rng, bool(uniq[i] & 1))
            snr[i] = state.snr_db
            avail[i] = state.availability
        return snr[inverse], avail[inverse]


def _pair_key(name: str) -> str:
    """Order-independent key so both directions share reciprocal draws."""
    if "->" in name:
        a, b = name.split("->", 1)
        return "<->".join(sorted((a, b)))
    return name
