"""WiFi link facade: MCS and throughput measurements at time t."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.random import RandomStreams
from repro.units import MBPS
from repro.wifi import phy
from repro.wifi.channel import WifiChannel


@dataclass(frozen=True)
class WifiSample:
    """One measurement instant of a WiFi link."""

    time: float
    mcs_index: int
    phy_rate_bps: float
    throughput_bps: float

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / MBPS

    @property
    def phy_rate_mbps(self) -> float:
        return self.phy_rate_bps / MBPS


class WifiLink:
    """One direction of an 802.11n link."""

    def __init__(self, channel: WifiChannel, streams: RandomStreams,
                 name: Optional[str] = None):
        self.channel = channel
        self.name = name or channel.name
        self._rng = streams.get(f"wifi.link.{self.name}")

    def mcs_index(self, t: float) -> int:
        """MCS the rate-adaptation picks at ``t`` (−1 = no association).

        This is the frame-control field the paper reads for WiFi capacity
        estimation (Table 2).
        """
        return phy.select_mcs(self.channel.state(t).snr_db).index

    def phy_rate_bps(self, t: float) -> float:
        """Instantaneous PHY rate — the WiFi capacity metric of Fig. 4."""
        return phy.select_mcs(self.channel.state(t).snr_db).phy_rate_bps

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        """Saturated UDP throughput at ``t``."""
        state = self.channel.state(t)
        thr = phy.throughput_from_snr(state.snr_db, state.availability)
        if thr <= 0:
            return 0.0
        if measured:
            thr += self._rng.normal(0.0, 0.4 * MBPS)
        return max(thr, 0.0)

    def is_connected(self, t: float) -> bool:
        """Associated and passing traffic (paper's WiFi connectivity test)."""
        return phy.select_mcs(self.channel.state(t).snr_db).index >= 0

    def sample(self, t: float) -> WifiSample:
        state = self.channel.state(t)
        entry = phy.select_mcs(state.snr_db)
        return WifiSample(
            time=t,
            mcs_index=entry.index,
            phy_rate_bps=entry.phy_rate_bps,
            throughput_bps=self.throughput_bps(t),
        )
