"""WiFi link facade: MCS and throughput measurements at time t.

Implements the :class:`repro.medium.Link` contract (``medium == "wifi"``),
including the vectorized ``sample_series`` batch path, which draws each
coherence block's fading once and broadcasts it across the grid —
bit-identical to the scalar loop (enforced by ``tests/test_medium_contract``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.medium.link import BatchSamplingMixin, LinkSample, LinkSeries
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.sim.random import RandomStreams
from repro.units import MBPS
from repro.wifi import phy
from repro.wifi.channel import WifiChannel

#: The §7.4 capacity probe: MCS/availability observed over the last second.
CAPACITY_WINDOW_S = 1.0
CAPACITY_PROBE_COUNT = 10

#: Measurement noise of a 100 ms saturated throughput reading.
MEASUREMENT_NOISE_BPS = 0.4 * MBPS


@dataclass(frozen=True)
class WifiSample(LinkSample):
    """One measurement instant of a WiFi link.

    ``capacity_bps`` is the instantaneous airtime-scaled PHY capacity;
    ``loss`` is the no-association indicator (1.0 below MCS0 sensitivity,
    else 0.0 — WiFi's MAC retries hide per-frame loss from iperf).
    """

    mcs_index: int = -1
    phy_rate_bps: float = 0.0

    @property
    def phy_rate_mbps(self) -> float:
        return self.phy_rate_bps / MBPS


class WifiLink(BatchSamplingMixin):
    """One direction of an 802.11n link."""

    medium = "wifi"

    def __init__(self, channel: WifiChannel, streams: RandomStreams,
                 name: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.channel = channel
        self.name = name or channel.name
        self._rng = streams.get(f"wifi.link.{self.name}")
        #: ``medium.wifi.*`` sampling counters (process-global by default).
        self.metrics = metrics if metrics is not None \
            else global_registry()

    @classmethod
    def between(cls, src_pos: Tuple[float, float],
                dst_pos: Tuple[float, float], streams: RandomStreams,
                name: str) -> "WifiLink":
        """Build link + channel in one step (keeps channel internals here)."""
        return cls(WifiChannel(src_pos, dst_pos, streams, name=name),
                   streams)

    def mcs_index(self, t: float) -> int:
        """MCS the rate-adaptation picks at ``t`` (−1 = no association).

        This is the frame-control field the paper reads for WiFi capacity
        estimation (Table 2).
        """
        return phy.select_mcs(self.channel.state(t).snr_db).index

    def phy_rate_bps(self, t: float) -> float:
        """Instantaneous PHY rate — the WiFi capacity metric of Fig. 4."""
        return phy.select_mcs(self.channel.state(t).snr_db).phy_rate_bps

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        """Saturated UDP throughput at ``t``."""
        state = self.channel.state(t)
        thr = phy.throughput_from_snr(state.snr_db, state.availability)
        if thr <= 0:
            return 0.0
        if measured:
            thr += self._rng.normal(0.0, MEASUREMENT_NOISE_BPS)
        return max(thr, 0.0)

    def capacity_probe_times(self, t: float) -> np.ndarray:
        """The last second's probe instants — always exactly
        ``CAPACITY_PROBE_COUNT`` of them, ending at ``t``.

        (``np.arange(t - 1.0 + 0.1, t + 1e-9, 0.1)`` yielded 9 or 10
        samples depending on float drift in ``t``; a fixed-count linspace
        keeps the estimator's averaging window stable.)
        """
        step = CAPACITY_WINDOW_S / CAPACITY_PROBE_COUNT
        return np.linspace(t - CAPACITY_WINDOW_S + step, t,
                           CAPACITY_PROBE_COUNT)

    def capacity_bps(self, t: float) -> float:
        """§7.4 application-capacity estimate: MCS PHY rate × availability
        averaged over the last second, scaled by DCF efficiency.

        WiFi varies too fast within a second for a point sample (§4.2), so
        unlike the instantaneous ``capacity_bps`` sample field this smooths
        over :attr:`CAPACITY_WINDOW_S`.
        """
        times = self.capacity_probe_times(t)
        snr, avail = self.channel.state_series(times)
        _, rates = phy.select_mcs_series(snr)
        return float(max(np.mean(rates * avail) * phy.DCF_EFFICIENCY, 0.0))

    def is_connected(self, t: float) -> bool:
        """Associated and passing traffic (paper's WiFi connectivity test)."""
        return phy.select_mcs(self.channel.state(t).snr_db).index >= 0

    def sample(self, t: float, measured: bool = True) -> WifiSample:
        self.metrics.inc("medium.wifi.samples")
        state = self.channel.state(t)
        entry = phy.select_mcs(state.snr_db)
        return WifiSample(
            time=t,
            capacity_bps=entry.phy_rate_bps * state.availability
            * phy.DCF_EFFICIENCY,
            throughput_bps=self.throughput_bps(t, measured=measured),
            loss=0.0 if entry.index >= 0 else 1.0,
            mcs_index=entry.index,
            phy_rate_bps=entry.phy_rate_bps,
        )

    def sample_series(self, ts: np.ndarray,
                      measured: bool = True) -> LinkSeries:
        """Vectorized :meth:`sample` over a time grid (same values, one
        fading draw per coherence block instead of per timestamp)."""
        ts = np.asarray(ts, dtype=float)
        self.metrics.inc("medium.wifi.series_calls")
        self.metrics.inc("medium.wifi.samples", len(ts))
        series = LinkSeries.allocate(
            len(ts), extra_fields=[("mcs_index", "i8"),
                                   ("phy_rate_bps", "f8")],
            name=self.name, medium=self.medium)
        data = series.data
        data["time"] = ts
        snr, avail = self.channel.state_series(ts)
        mcs, rates = phy.select_mcs_series(snr)
        data["mcs_index"] = mcs
        data["phy_rate_bps"] = rates
        data["capacity_bps"] = (rates * avail) * phy.DCF_EFFICIENCY
        data["loss"] = np.where(mcs >= 0, 0.0, 1.0)
        thr = (rates * phy.DCF_EFFICIENCY) * avail
        positive = thr > 0
        data["throughput_bps"] = np.where(positive, thr, 0.0)
        if measured:
            k = int(positive.sum())
            if k:
                noisy = (thr[positive]
                         + self._rng.normal(0.0, MEASUREMENT_NOISE_BPS,
                                            size=k))
                data["throughput_bps"][positive] = np.maximum(noisy, 0.0)
        return series
