"""802.11n PHY: MCS table and rate adaptation.

The paper's setup (§4.1 footnote): 802.11n, 2 spatial streams, 20 MHz, with a
maximum PHY rate of 130 Mbps (MCS 15 at 800 ns guard interval) — picked to
match the HPAV adapters' 150 Mbps nominal rate. Unlike PLC's per-carrier
modulation, a WiFi transmitter picks *one* MCS for all carriers (§2.1), which
is why bursty narrowband errors force the whole link down — the mechanism the
paper credits for WiFi's higher throughput variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.units import MBPS


@dataclass(frozen=True)
class McsEntry:
    """One row of the MCS table."""

    index: int
    streams: int
    phy_rate_bps: float
    min_snr_db: float


def _table() -> Tuple[McsEntry, ...]:
    # 20 MHz, 800 ns GI. Single-stream MCS 0-7 then dual-stream MCS 8-15.
    one_ss = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0]
    two_ss = [13.0, 26.0, 39.0, 52.0, 78.0, 104.0, 117.0, 130.0]
    # SNR needed: standard receiver-sensitivity ladder (~BPSK1/2 at 4 dB up
    # to 64-QAM 5/6 at 27 dB; dual-stream needs ~3 dB more).
    snr_1ss = [4.0, 7.0, 9.5, 12.5, 16.0, 20.0, 22.5, 25.0]
    snr_2ss = [7.0, 10.0, 12.5, 15.5, 19.0, 23.0, 25.5, 28.0]
    rows: List[McsEntry] = []
    for i, (rate, snr) in enumerate(zip(one_ss, snr_1ss)):
        rows.append(McsEntry(i, 1, rate * MBPS, snr))
    for i, (rate, snr) in enumerate(zip(two_ss, snr_2ss)):
        rows.append(McsEntry(8 + i, 2, rate * MBPS, snr))
    return tuple(rows)


#: Full MCS 0–15 table (1 and 2 spatial streams).
MCS_TABLE_2SS: Tuple[McsEntry, ...] = _table()

#: DCF + A-MPDU aggregation efficiency: UDP goodput / PHY rate for 802.11n
#: with aggregation (~0.65 measured in clean channels).
DCF_EFFICIENCY = 0.65


def select_mcs(snr_db: float) -> McsEntry:
    """Best MCS sustainable at ``snr_db`` (rate-maximising adaptation)."""
    best = None
    for entry in MCS_TABLE_2SS:
        if snr_db >= entry.min_snr_db:
            if best is None or entry.phy_rate_bps > best.phy_rate_bps:
                best = entry
    if best is None:
        # Below MCS0 sensitivity: no association / no throughput.
        return McsEntry(index=-1, streams=0, phy_rate_bps=0.0,
                        min_snr_db=-np.inf)
    return best


def throughput_from_snr(snr_db: float,
                        availability: float = 1.0) -> float:
    """UDP throughput (bits/s) at a given instantaneous SNR.

    ``availability`` ∈ [0, 1] scales for airtime lost to co-channel
    contention (other networks, §4.1 runs during working hours).
    """
    if not 0.0 <= availability <= 1.0:
        raise ValueError(f"availability must be in [0,1]: {availability}")
    entry = select_mcs(snr_db)
    return entry.phy_rate_bps * DCF_EFFICIENCY * availability


def _selection_breakpoints() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Breakpoint form of :func:`select_mcs` for vectorized lookup.

    The winning entry is piecewise constant in SNR with breakpoints at the
    table's thresholds; evaluating the scalar selector once per threshold
    yields a lookup table that agrees with it everywhere by construction.
    """
    thresholds = np.array(sorted({e.min_snr_db for e in MCS_TABLE_2SS}))
    winners = [select_mcs(float(snr)) for snr in thresholds]
    return (thresholds,
            np.array([w.index for w in winners], dtype=np.int64),
            np.array([w.phy_rate_bps for w in winners]))


_MCS_THRESHOLDS, _MCS_BEST_INDEX, _MCS_BEST_RATE = _selection_breakpoints()


def select_mcs_series(snr_db: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`select_mcs` → ``(index, phy_rate_bps)`` arrays.

    Index −1 / rate 0.0 below MCS0 sensitivity, exactly like the scalar
    selector's no-association sentinel.
    """
    snr = np.asarray(snr_db, dtype=float)
    pos = np.searchsorted(_MCS_THRESHOLDS, snr, side="right") - 1
    valid = pos >= 0
    safe = np.maximum(pos, 0)
    return (np.where(valid, _MCS_BEST_INDEX[safe], -1),
            np.where(valid, _MCS_BEST_RATE[safe], 0.0))
