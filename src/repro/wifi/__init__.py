"""802.11n WiFi substrate.

The paper's WiFi side (§4) uses 802.11n with 2 spatial streams, 20 MHz
channels and a PHY peak of 130 Mbps, chosen to match the nominal capacity of
the HPAV adapters. We model the indoor link budget (path loss + shadowing),
temporally-correlated fast fading with a busy-hours interference component,
MCS rate adaptation and DCF efficiency — enough to reproduce the qualitative
contrast the paper draws: WiFi is faster at short range but far more variable
(Fig. 3, 4), and dies beyond ~35 m where PLC still delivers (blind spots).
"""

from repro.wifi.channel import WifiChannel
from repro.wifi.link import WifiLink
from repro.wifi.phy import MCS_TABLE_2SS, McsEntry, select_mcs

__all__ = [
    "WifiChannel",
    "WifiLink",
    "MCS_TABLE_2SS",
    "McsEntry",
    "select_mcs",
]
