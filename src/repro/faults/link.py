"""`FaultyLink`: plan-driven fault injection behind the ``Link`` contract.

Wraps any :class:`repro.medium.Link` and applies the link-level windows of
a :class:`~repro.faults.plan.FaultPlan` as a deterministic post-transform:

* ``link_outage`` — the medium is dead: capacity and throughput drop to
  zero and ``loss`` saturates to 1;
* ``link_degradation`` — rates are scaled by the event's ``severity``
  (the fraction of the rate that survives);
* ``snr_collapse`` — rates are scaled by ``10**(-severity_db / 10)``,
  the first-order rate cost of losing ``severity_db`` of SNR.

The wrapper always *delegates first* — the inner link consumes its
measurement-noise stream exactly as it would unfaulted — then multiplies
the base columns. Because the transform is a pure function of time applied
identically in the scalar and batch paths (same event order, same float64
operations), ``sample_series`` stays bit-identical to the ``sample`` loop
whenever the wrapped link honours that contract, which is what lets a
FaultyLink ride through every consumer of the medium API unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.medium.link import LinkSample, LinkSeries
from repro.obs.metrics import MetricsRegistry, global_registry

#: Fault kinds FaultyLink consumes, in the canonical multiply order.
_LINK_KINDS = ("link_outage", "link_degradation", "snr_collapse")


def _event_factor(kind: str, severity: float) -> float:
    if kind == "link_outage":
        return 0.0
    if kind == "link_degradation":
        return float(min(max(severity, 0.0), 1.0))
    return float(10.0 ** (-max(severity, 0.0) / 10.0))  # snr_collapse


class FaultyLink:
    """A :class:`repro.medium.Link` with plan-scheduled outages.

    ``target`` defaults to the inner link's name; events may also address
    the whole medium by its tag or everything via ``"*"``.
    """

    def __init__(self, inner, plan: FaultPlan,
                 target: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.medium = inner.medium
        self.target = target if target is not None else inner.name
        #: ``faults.*`` counters: how often samples were actually hit.
        self.metrics = metrics if metrics is not None \
            else global_registry()
        #: (event, factor) pairs that can hit this link, in plan order —
        #: precomputed so the scalar and batch paths share one chain.
        self._chain = [
            (e, _event_factor(e.kind, e.severity))
            for e in plan.events
            if e.kind in _LINK_KINDS
            and (e.matches(self.target) or e.matches(self.medium))]

    # --- the fault transform --------------------------------------------------

    def fault_factor(self, t: float) -> float:
        """Multiplicative rate factor at ``t`` (0 = dead, 1 = untouched)."""
        factor = 1.0
        for event, event_factor in self._chain:
            if event.active(t):
                factor = factor * event_factor
        return factor

    def fault_factor_series(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fault_factor`: same chain, same order, so
        the per-timestamp float products match the scalar path bit for
        bit."""
        ts = np.asarray(ts, dtype=float)
        factors = np.ones(ts.shape, dtype=float)
        for event, event_factor in self._chain:
            mask = (ts >= event.t_start) & (ts < event.t_end)
            factors[mask] = factors[mask] * event_factor
        return factors

    # --- Link contract --------------------------------------------------------

    def sample(self, t: float, measured: bool = True) -> LinkSample:
        sample = self.inner.sample(t, measured=measured)
        factor = self.fault_factor(t)
        if factor == 1.0:
            return sample
        self.metrics.inc("faults.samples_faulted")
        return dataclasses.replace(
            sample,
            capacity_bps=sample.capacity_bps * factor,
            throughput_bps=sample.throughput_bps * factor,
            loss=1.0 if factor == 0.0 else sample.loss)

    def sample_series(self, ts: np.ndarray,
                      measured: bool = True) -> LinkSeries:
        series = self.inner.sample_series(ts, measured=measured)
        factors = self.fault_factor_series(ts)
        if np.all(factors == 1.0):
            return series
        self.metrics.inc("faults.series_faulted")
        self.metrics.inc("faults.samples_faulted",
                         int(np.count_nonzero(factors != 1.0)))
        data = series.data
        data["capacity_bps"] = data["capacity_bps"] * factors
        data["throughput_bps"] = data["throughput_bps"] * factors
        data["loss"] = np.where(factors == 0.0, 1.0, data["loss"])
        return series

    def capacity_bps(self, t: float) -> float:
        return self.inner.capacity_bps(t) * self.fault_factor(t)

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        return (self.inner.throughput_bps(t, measured=measured)
                * self.fault_factor(t))

    def is_connected(self, t: float) -> bool:
        return self.fault_factor(t) > 0.0 and self.inner.is_connected(t)


def faulty_link_decorator(plan: FaultPlan):
    """A ``ScenarioRunner`` link decorator injecting ``plan``'s faults.

    ``ScenarioRunner(testbed, link_decorator=faulty_link_decorator(plan))``
    wraps every link the runner resolves, so scenario flows experience
    the plan's outages; events target links by name (``"0->1"``), medium
    tag, or ``"*"``.
    """
    def decorate(link, medium: str, src: int, dst: int):
        if link is None:
            return None
        return FaultyLink(link, plan)
    return decorate
