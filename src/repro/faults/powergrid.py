"""Appliance-surge injection for the power grid.

The paper's "random scale" (§6.3) is channel variation caused by people
switching appliances; a *surge burst* is the adversarial version — a
plan-scheduled window during which chosen appliances are forced on, all
at once, so the PLC channel sees their impedance discontinuities and
noise simultaneously (the microwave-plus-vacuum worst case of Fig. 5).

Surges ride the :attr:`OfficeActivityModel.overlay` seam: the overlay is
a pure function of ``(appliance, t)`` built from the plan's
``appliance_surge`` windows, so state signatures — and with them every
downstream channel cache — stay deterministic and replayable.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan
from repro.powergrid.activity import OfficeActivityModel
from repro.powergrid.appliances import ApplianceInstance


def surge_overlay(plan: FaultPlan):
    """Build an activity overlay forcing surge targets on.

    Events with kind ``appliance_surge`` target an appliance instance id
    (or ``"*"`` for every appliance). Outside any matching window the
    overlay returns ``None`` and the normal schedule model decides.
    """
    events = plan.events_for("appliance_surge")

    def overlay(appliance: ApplianceInstance,
                t: float) -> Optional[bool]:
        for event in events:
            if event.matches(appliance.instance_id) and event.active(t):
                return True
        return None
    return overlay


def inject_surges(activity: OfficeActivityModel, plan: FaultPlan) -> None:
    """Attach ``plan``'s surge windows to a live activity model.

    Composes with an already-installed overlay (the new one is consulted
    first; on ``None`` the old overlay, then the schedule model, decide).
    """
    surge = surge_overlay(plan)
    previous = activity.overlay

    if previous is None:
        activity.overlay = surge
        return

    def stacked(appliance: ApplianceInstance, t: float) -> Optional[bool]:
        forced = surge(appliance, t)
        if forced is not None:
            return forced
        return previous(appliance, t)
    activity.overlay = stacked
