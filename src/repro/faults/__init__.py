"""Deterministic fault injection (`repro.faults`).

The failure half of the paper's story: PLC and WiFi fail differently,
and a hybrid stack must survive either medium dying (§5, Fig. 20–22).
This package schedules *seeded, replayable* faults across every layer —
link outages and SNR collapses behind the medium contract, appliance
surges in the power grid, worker crashes and poison tasks in the
campaign engine, reorder/loss storms at the hybrid packet layer — and
``tests/chaos/`` asserts the stack degrades gracefully under them.
"""

from repro.faults.link import FaultyLink, faulty_link_decorator
from repro.faults.plan import (
    ANY_TARGET,
    EVENT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanConfig,
)
from repro.faults.powergrid import inject_surges, surge_overlay
from repro.faults.storm import apply_storm
from repro.faults.tasks import ChaosPoisonError, classify_task

__all__ = [
    "ANY_TARGET",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanConfig",
    "FaultyLink",
    "faulty_link_decorator",
    "inject_surges",
    "surge_overlay",
    "apply_storm",
    "ChaosPoisonError",
    "classify_task",
]
