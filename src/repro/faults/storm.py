"""Reorder / loss storms at the hybrid packet layer.

A storm perturbs a delivered-packet stream the way a misbehaving bonded
path would: a ``loss_storm`` window drops packets with the event's
probability, a ``reorder_storm`` window adds random per-packet delay (so
deliveries cross each other and the destination's
:class:`~repro.hybrid.reorder.ReorderBuffer` sees interleaved holes).

Determinism: draws come from a stream derived from the plan seed and the
storm target, consumed in packet-sequence order — the same plan produces
the same storm, packet for packet.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.traffic.packet import Packet


def apply_storm(packets: Sequence[Packet], plan: FaultPlan,
                target: str = "bond") -> Tuple[List[Packet], List[int]]:
    """Apply ``plan``'s storm windows to a packet stream.

    ``packets`` must carry ``delivered_at`` times (the pre-storm
    delivery schedule). Returns ``(survivors, dropped_seqs)`` where the
    survivors — possibly delayed by reorder windows — are sorted by their
    new delivery time, ready to be pushed through a reorder buffer.
    """
    rng = plan.task_streams(f"storm.{target}").get("storm")
    loss_events = plan.events_for("loss_storm", target)
    reorder_events = plan.events_for("reorder_storm", target)
    survivors: List[Packet] = []
    dropped: List[int] = []
    for packet in sorted(packets, key=lambda p: p.seq):
        t = packet.delivered_at
        if t is None:
            raise ValueError(
                f"packet seq={packet.seq} has no delivery time")
        # One loss draw and one delay draw per packet, always consumed —
        # the stream position is a function of seq alone, so editing a
        # window never shifts the draws of packets outside it.
        loss_draw = float(rng.uniform())
        delay_draw = float(rng.uniform())
        drop_p = 0.0
        for event in loss_events:
            if event.active(t):
                drop_p = max(drop_p, event.severity)
        if drop_p > 0.0 and loss_draw < drop_p:
            dropped.append(packet.seq)
            continue
        delay_scale = 0.0
        for event in reorder_events:
            if event.active(t):
                delay_scale = max(delay_scale, event.severity)
        if delay_scale > 0.0:
            packet.delivered_at = t + delay_scale * delay_draw
        survivors.append(packet)
    survivors.sort(key=lambda p: (p.delivered_at, p.seq))
    return survivors, dropped
