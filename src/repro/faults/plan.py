"""Deterministic fault plans: *what* breaks, *where*, and *when*.

A :class:`FaultPlan` is a frozen, replayable schedule of typed
:class:`FaultEvent` windows, derived from a root seed via
:func:`repro.sim.random.derive_seed` — the same contract the campaign
engine builds on, so a chaos run's entire failure schedule is a pure
function of ``(seed, name, config)``.  Printing a failing test's plan
seed is enough to reproduce the identical schedule (see
``docs/testing.md``).

Event kinds and the layer that consumes them:

========================  =====================================================
``link_outage``           :class:`repro.faults.link.FaultyLink` — medium dead
``link_degradation``      FaultyLink — rates scaled by ``severity`` (0..1 kept)
``snr_collapse``          FaultyLink — rates scaled by ``10**(-severity/10)``
``appliance_surge``       :func:`repro.faults.powergrid.surge_overlay`
``loss_storm``            :func:`repro.faults.storm.apply_storm`
``reorder_storm``         :func:`repro.faults.storm.apply_storm`
========================  =====================================================

Campaign-level faults (worker crash / task hang / poison tasks) are not
window-scheduled — tasks are classified per task key in
:mod:`repro.faults.tasks`, because task keys are not known when a plan is
built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.random import RandomStreams, derive_seed

#: Every window-scheduled fault kind a plan may contain.
EVENT_KINDS = ("link_outage", "link_degradation", "snr_collapse",
               "appliance_surge", "loss_storm", "reorder_storm")

#: Wildcard target: the event applies to every candidate.
ANY_TARGET = "*"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window.

    ``target`` names what the fault hits (a link name, an appliance
    instance id, a medium tag, or :data:`ANY_TARGET`); ``severity`` is
    kind-specific: fraction of rate kept for ``link_degradation``, dB of
    SNR lost for ``snr_collapse``, drop probability for ``loss_storm``,
    added-delay scale (seconds) for ``reorder_storm``. Outages and
    surges ignore it.
    """

    kind: str
    target: str
    t_start: float
    t_end: float
    severity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(known: {EVENT_KINDS})")
        if self.t_end <= self.t_start:
            raise ValueError(f"empty fault window [{self.t_start}, "
                             f"{self.t_end})")

    def matches(self, target: str) -> bool:
        return self.target == ANY_TARGET or self.target == target

    def active(self, t: float) -> bool:
        return self.t_start <= t < self.t_end

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "target": self.target,
                "t_start": self.t_start, "t_end": self.t_end,
                "severity": self.severity}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(kind=data["kind"], target=data["target"],
                   t_start=float(data["t_start"]),
                   t_end=float(data["t_end"]),
                   severity=float(data.get("severity", 0.0)))


@dataclass(frozen=True)
class FaultPlanConfig:
    """How many faults of each kind a generated plan schedules.

    Counts are exact (not rates), so a plan's event census is stable
    across seeds — only *where* and *when* the windows land varies.
    Window lengths are drawn uniformly from the given (lo, hi) ranges.
    """

    outages: int = 0
    degradations: int = 0
    snr_collapses: int = 0
    surges: int = 0
    loss_storms: int = 0
    reorder_storms: int = 0
    outage_s: Tuple[float, float] = (5.0, 30.0)
    degradation_s: Tuple[float, float] = (10.0, 60.0)
    #: Fraction of the rate a degraded link keeps.
    degradation_keep: Tuple[float, float] = (0.1, 0.6)
    #: dB of SNR lost during a collapse.
    snr_drop_db: Tuple[float, float] = (6.0, 20.0)
    surge_s: Tuple[float, float] = (20.0, 120.0)
    storm_s: Tuple[float, float] = (2.0, 10.0)
    #: Drop probability during a loss storm.
    loss_probability: Tuple[float, float] = (0.05, 0.4)
    #: Added-delay scale (seconds) during a reorder storm.
    reorder_delay_s: Tuple[float, float] = (0.005, 0.05)


class FaultPlan:
    """A seeded, immutable schedule of fault events.

    Build one with :meth:`generate` (randomized-but-seeded) or directly
    from explicit events; both round-trip through :meth:`to_dict` /
    :meth:`from_dict` so a failing chaos test can print its plan and a
    replay can reconstruct it bit-identically.
    """

    def __init__(self, seed: int, events: Iterable[FaultEvent] = (),
                 name: str = "plan"):
        self.seed = int(seed)
        self.name = name
        #: Events in a canonical order: schedule comparisons and the
        #: FaultyLink factor chain both depend on a stable ordering.
        self.events: Tuple[FaultEvent, ...] = tuple(sorted(
            events, key=lambda e: (e.t_start, e.kind, e.target, e.t_end)))

    # --- generation -----------------------------------------------------------

    @classmethod
    def generate(cls, root_seed: int, name: str, horizon_s: float,
                 targets: Dict[str, Sequence[str]],
                 config: FaultPlanConfig = FaultPlanConfig(),
                 t0: float = 0.0) -> "FaultPlan":
        """Derive a randomized plan that is a pure function of its inputs.

        ``targets`` maps a target class to its candidates:
        ``"links"`` (link names for outage/degradation/SNR events),
        ``"appliances"`` (instance ids for surges), ``"bonds"``
        (hybrid bond names for storms). Missing classes simply get no
        events of the corresponding kinds.
        """
        seed = derive_seed(root_seed, "faults", name)
        streams = RandomStreams(seed=seed)
        events: List[FaultEvent] = []

        def windows(kind: str, count: int, candidates: Sequence[str],
                    span: Tuple[float, float],
                    severities: Optional[Tuple[float, float]]) -> None:
            if count <= 0 or not candidates:
                return
            rng = streams.get(f"plan.{kind}")
            ordered = sorted(candidates)
            for _ in range(count):
                target = ordered[int(rng.integers(len(ordered)))]
                length = float(rng.uniform(*span))
                start = t0 + float(rng.uniform(
                    0.0, max(horizon_s - length, 1e-9)))
                severity = (float(rng.uniform(*severities))
                            if severities is not None else 0.0)
                events.append(FaultEvent(kind=kind, target=target,
                                         t_start=start,
                                         t_end=start + length,
                                         severity=severity))

        cfg = config
        links = targets.get("links", ())
        windows("link_outage", cfg.outages, links, cfg.outage_s, None)
        windows("link_degradation", cfg.degradations, links,
                cfg.degradation_s, cfg.degradation_keep)
        windows("snr_collapse", cfg.snr_collapses, links,
                cfg.degradation_s, cfg.snr_drop_db)
        windows("appliance_surge", cfg.surges,
                targets.get("appliances", ()), cfg.surge_s, None)
        bonds = targets.get("bonds", ())
        windows("loss_storm", cfg.loss_storms, bonds, cfg.storm_s,
                cfg.loss_probability)
        windows("reorder_storm", cfg.reorder_storms, bonds, cfg.storm_s,
                cfg.reorder_delay_s)
        return cls(seed=seed, events=events, name=name)

    # --- queries --------------------------------------------------------------

    def events_for(self, kind: Optional[str] = None,
                   target: Optional[str] = None) -> Tuple[FaultEvent, ...]:
        """Events filtered by kind and/or target, in canonical order."""
        out = self.events
        if kind is not None:
            out = tuple(e for e in out if e.kind == kind)
        if target is not None:
            out = tuple(e for e in out if e.matches(target))
        return out

    def active_at(self, kind: str, target: str, t: float) -> bool:
        """Whether any matching window covers scalar time ``t``."""
        return any(e.active(t) for e in self.events_for(kind, target))

    def active_mask(self, kind: str, target: str,
                    ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`active_at` over a time grid."""
        ts = np.asarray(ts, dtype=float)
        mask = np.zeros(ts.shape, dtype=bool)
        for event in self.events_for(kind, target):
            mask |= (ts >= event.t_start) & (ts < event.t_end)
        return mask

    def task_streams(self, task_key: str) -> RandomStreams:
        """Per-task random streams for task-level fault classification.

        A pure function of ``(plan seed, task_key)``: identical in every
        worker process, at every worker count — the property
        :mod:`repro.faults.tasks` relies on.
        """
        return RandomStreams(seed=derive_seed(self.seed, "task", task_key))

    def __len__(self) -> int:
        return len(self.events)

    # --- replay round trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "name": self.name,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(seed=data["seed"],
                   events=[FaultEvent.from_dict(e)
                           for e in data.get("events", [])],
                   name=data.get("name", "plan"))

    def describe(self) -> str:
        """Human-readable schedule (printed when a chaos test fails)."""
        lines = [f"FaultPlan {self.name!r} seed={self.seed} "
                 f"({len(self.events)} events)"]
        for e in self.events:
            lines.append(f"  [{e.t_start:10.2f}, {e.t_end:10.2f})  "
                         f"{e.kind:<16s}  {e.target}  "
                         f"severity={e.severity:g}")
        return "\n".join(lines)
