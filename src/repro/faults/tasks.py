"""Campaign-level faults: worker crash, task hang, poison tasks.

Task keys are not known when a :class:`~repro.faults.plan.FaultPlan` is
built, so campaign faults are not window-scheduled — each task is
*classified* from draws of a stream derived from ``(fault_seed,
task_key)``. Classification is a pure function of the spec, identical in
every worker process at every worker count, which keeps chaos campaigns
inside the engine's bit-identical-artifact contract.

Fault classes, checked in order:

* **poison** — fails every attempt with a deterministic error: the
  quarantine path's food;
* **crash** — raises on the first ``crashes`` attempts, then succeeds
  (a worker dying mid-task, modelled as an exception: a real ``SIGKILL``
  would break the whole ``ProcessPoolExecutor``, which is the
  torn-artifact test's job, not this one's);
* **hang** — sleeps ``hang_s`` wall-clock seconds before succeeding,
  exercising the engine's timeout/abandon machinery.

``chaos_probe`` is registered in the campaign task registry via the
plugin hook in :func:`repro.campaign.tasks.execute_spec`, so worker
processes resolve it regardless of start method.
"""

from __future__ import annotations

from typing import Dict

from repro.campaign.spec import ExperimentSpec
from repro.campaign.tasks import TaskOutput, register_task
from repro.sim.random import RandomStreams, derive_seed


class ChaosPoisonError(RuntimeError):
    """A task classified as poison: it fails on every attempt."""


def classify_task(fault_seed: int, task_key: str,
                  poison_rate: float, crash_rate: float,
                  hang_rate: float) -> str:
    """Deterministically classify one task: poison/crash/hang/clean.

    One independent uniform per class keeps a class's membership stable
    when another class's rate is tuned (editing ``crash_rate`` never
    changes *which* tasks are poisoned).
    """
    streams = RandomStreams(seed=derive_seed(fault_seed, "task", task_key))
    draws = streams.get("classify").uniform(size=3)
    if draws[0] < poison_rate:
        return "poison"
    if draws[1] < crash_rate:
        return "crash"
    if draws[2] < hang_rate:
        return "hang"
    return "clean"


@register_task("chaos_probe",
               params=("fault_seed", "poison_rate", "crash_rate",
                       "hang_rate", "crashes", "hang_s", "draws", "idx"))
def _chaos_probe(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """A cheap task whose failure behaviour follows its classification.

    ``params``: ``fault_seed`` (classification root), ``poison_rate``,
    ``crash_rate``, ``hang_rate``, ``crashes`` (failing attempts for
    crash tasks), ``hang_s`` (wall-clock sleep for hang tasks) and
    ``draws`` (record size). The *records* of a surviving task are
    independent of attempt count and wall clock, so artifacts stay
    byte-identical however the faults interleave.
    """
    p: Dict[str, object] = spec.params_dict
    key = spec.task_key()
    fate = classify_task(int(p.get("fault_seed", spec.seed)), key,
                         float(p.get("poison_rate", 0.0)),
                         float(p.get("crash_rate", 0.0)),
                         float(p.get("hang_rate", 0.0)))
    if fate == "poison":
        raise ChaosPoisonError(f"poisoned task {key}")
    if fate == "crash" and attempt < int(p.get("crashes", 1)):
        raise RuntimeError(
            f"injected worker crash (attempt {attempt}) for {key}")
    if fate == "hang":
        import time
        time.sleep(float(p.get("hang_s", 0.5)))
    streams = RandomStreams(seed=spec.task_seed())
    draws = int(p.get("draws", 4))
    return TaskOutput(records=[{
        "task_seed": spec.task_seed(), "fate": fate,
        "values": [float(x) for x in
                   streams.get("probe").uniform(size=draws)]}])
