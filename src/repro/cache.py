"""Shared windowed link-metric cache with LRU eviction.

Both fluid-level and frame-level simulation read link metrics that are
effectively constant over short time windows: the scenario runner's
capacity lookups (channel drift is minutes-scale) and the CSMA simulator's
per-frame BLE/PBerr reads (tone maps hold for ~100 ms). Recomputing them
from the channel model on every access is the hot path of both loops.

:class:`WindowedLruCache` memoises ``compute()`` results under a
``(key, window_index)`` pair, where ``window_index = floor(t / window_s)``.
Eviction is LRU *per entry*: when the cache is full, the least-recently
used window results are dropped one at a time, so the hot (current) window
always survives — unlike a wholesale ``dict.clear()``, which throws away
exactly the entries the next lookup needs.

Hit/miss/eviction counters live in :class:`CacheStats`, surfaced by the
scenario runner's ``RunnerStats`` for observability.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Tuple


@dataclass
class CacheStats:
    """Lookup counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total > 0 else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class WindowedLruCache:
    """Memoise time-dependent values per ``window_s``-wide time window.

    Values are assumed constant within a window; the first lookup in a
    window computes and stores, later lookups (any ``t`` in the same
    window) hit. ``max_entries`` bounds memory; overflow evicts the
    least-recently-used entries only.
    """

    def __init__(self, window_s: float, max_entries: int = 50_000):
        if window_s <= 0:
            raise ValueError("window must be positive")
        if max_entries < 1:
            raise ValueError("need at least one cache entry")
        self.window_s = window_s
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[Hashable, int], Any]" = (
            OrderedDict())

    def window_index(self, t: float) -> int:
        """Index of the window containing ``t`` (floor, not truncation)."""
        return int(math.floor(t / self.window_s))

    def get(self, key: Hashable, t: float,
            compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key`` in ``t``'s window, or
        compute, store and return it."""
        entry_key = (key, self.window_index(t))
        try:
            value = self._entries[entry_key]
        except KeyError:
            self.stats.misses += 1
            value = compute()
            self._entries[entry_key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return value
        self._entries.move_to_end(entry_key)
        self.stats.hits += 1
        return value

    def contains(self, key: Hashable, t: float) -> bool:
        """Whether ``key`` is cached for ``t``'s window (no LRU touch)."""
        return (key, self.window_index(t)) in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
