"""Destination-side packet reordering (§7.4).

The paper reorders on the IP identification sequence with "a simple
algorithm" and verifies that jitter does not worsen versus a single
interface. :class:`ReorderBuffer` releases packets in sequence order,
flushing a hole after a timeout or when the buffer exceeds its window —
bounded memory, bounded added delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, global_registry
from repro.traffic.packet import Packet


@dataclass
class ReorderStats:
    """What the Fig. 20 jitter comparison needs."""

    delivered: int = 0
    reordered_arrivals: int = 0
    holes_flushed: int = 0
    release_times: List[float] = field(default_factory=list)

    def jitter_s(self) -> float:
        """Std of inter-release times — the paper's jitter figure."""
        if len(self.release_times) < 3:
            return 0.0
        return float(np.std(np.diff(np.asarray(self.release_times))))


class ReorderBuffer:
    """In-order release with a hole timeout and a max window.

    Publishes ``reorder.*`` counters into ``metrics`` (the process-wide
    :func:`repro.obs.metrics.global_registry` by default) so campaign-
    and test-level observability sees hole flushes and reordered
    arrivals without touching :attr:`stats`, which stays per-buffer.
    """

    def __init__(self, hole_timeout_s: float = 0.05,
                 max_window: int = 2048,
                 metrics: Optional[MetricsRegistry] = None):
        if hole_timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if max_window < 1:
            raise ValueError("window must be >= 1")
        self.hole_timeout_s = hole_timeout_s
        self.max_window = max_window
        self.metrics = metrics if metrics is not None \
            else global_registry()
        self._pending: Dict[int, Packet] = {}
        self._next_seq = 0
        self._oldest_wait_since: Optional[float] = None
        self.stats = ReorderStats()

    def _note_hole_flushed(self) -> None:
        self.stats.holes_flushed += 1
        self.metrics.inc("reorder.holes_flushed")

    def push(self, packet: Packet, now: float) -> List[Packet]:
        """Accept an arrival; return packets released in order."""
        if packet.seq < self._next_seq:
            # Late duplicate of an already-released (or flushed) packet.
            return []
        if packet.seq != self._next_seq:
            self.stats.reordered_arrivals += 1
            self.metrics.inc("reorder.reordered_arrivals")
        self._pending[packet.seq] = packet
        seq_before = self._next_seq
        released = self._drain(now)
        # The hole timer measures how long the hole at ``_next_seq`` has
        # been the head of the buffer. Whenever ``_next_seq`` advances, a
        # *new* hole is at the head, so its clock restarts at ``now`` —
        # leaving the old baseline (or deferring the restart to the next
        # push, as before) lets a packet behind a second hole wait far
        # past ``hole_timeout_s``.
        self._reset_timer(now, advanced=self._next_seq != seq_before)
        # Hole handling: timeout or window overflow skips the gap.
        if self._pending:
            timed_out = now - self._oldest_wait_since > self.hole_timeout_s
            overflow = len(self._pending) > self.max_window
            if timed_out or overflow:
                self._next_seq = min(self._pending)
                self._note_hole_flushed()
                released.extend(self._drain(now))
                self._reset_timer(now, advanced=True)
        return released

    def poll(self, now: float) -> List[Packet]:
        """Advance the hole timer without an arrival.

        ``push`` only flushes holes when a *new* packet lands, so a buffer
        whose tail medium dies mid-stream would hold its last packets
        forever — a deadlock under a loss storm. Callers with no more
        arrivals (or a quiet period) poll the clock instead; a hole that
        has waited past ``hole_timeout_s`` is skipped exactly as on push.
        """
        released: List[Packet] = []
        while (self._pending
               and now - self._oldest_wait_since > self.hole_timeout_s):
            self._next_seq = min(self._pending)
            self._note_hole_flushed()
            released.extend(self._drain(now))
            self._reset_timer(now, advanced=True)
        return released

    def flush(self, now: float) -> List[Packet]:
        """Release everything still pending, in sequence order.

        End-of-stream drain: any remaining holes are counted as flushed.
        After this the buffer is empty and the next expected sequence sits
        past everything seen so far.
        """
        released: List[Packet] = []
        while self._pending:
            self._next_seq = min(self._pending)
            self._note_hole_flushed()
            released.extend(self._drain(now))
        self._reset_timer(now, advanced=True)
        return released

    def _reset_timer(self, now: float, advanced: bool) -> None:
        if not self._pending:
            self._oldest_wait_since = None
        elif advanced or self._oldest_wait_since is None:
            self._oldest_wait_since = now

    def _drain(self, now: float) -> List[Packet]:
        released: List[Packet] = []
        while self._next_seq in self._pending:
            packet = self._pending.pop(self._next_seq)
            packet.delivered_at = now
            released.append(packet)
            self.stats.delivered += 1
            self.metrics.inc("reorder.delivered")
            self.stats.release_times.append(now)
            self._next_seq += 1
        return released

    @property
    def pending_count(self) -> int:
        return len(self._pending)
