"""Hybrid WiFi+PLC networking (§4.3, §7.4 and IEEE 1905).

* :mod:`repro.hybrid.ieee1905` — the 1905-style abstraction layer: a
  per-station table of link-metric records across media;
* :mod:`repro.hybrid.schedulers` — the capacity-proportional load balancer
  (the paper's Click implementation) and the round-robin baseline;
* :mod:`repro.hybrid.reorder` — destination-side packet reordering on the
  IP identification sequence;
* :mod:`repro.hybrid.aggregator` — :class:`HybridDevice`, which bonds a PLC
  and a WiFi link, estimates their capacities by probing (BLE / MCS), and
  runs saturated tests or file transfers over the bonded pair (Fig. 20).
"""

from repro.hybrid.aggregator import AggregationResult, HybridDevice
from repro.hybrid.ieee1905 import AbstractionLayer
from repro.hybrid.reorder import ReorderBuffer
from repro.hybrid.routing import HybridMeshRouter, HybridPath
from repro.hybrid.schedulers import (
    CapacityProportionalScheduler,
    RoundRobinScheduler,
)

__all__ = [
    "AbstractionLayer",
    "CapacityProportionalScheduler",
    "RoundRobinScheduler",
    "ReorderBuffer",
    "HybridDevice",
    "AggregationResult",
    "HybridMeshRouter",
    "HybridPath",
]
