"""Hybrid mesh routing over PLC+WiFi (§4.3's motivating use case).

The paper argues hybrid networks need mesh routing with accurate per-medium
metrics: "mesh configurations, hence routing and load balancing algorithms,
are needed for seamless connectivity" — and its reference [17] observes that
*alternating* technologies along a multi-hop route performs well. This
module implements that layer on top of the IEEE 1905 abstraction:

* per-link weight = **ETT** (expected transmission time), the classic
  Draves-Padhye-Zill metric ([8] in the paper), computed from the paper's
  PLC metrics: ``ETT = ETX · packet_bits / capacity`` with ETX from PBerr
  (unicast, §8.1 — never from broadcast probes);
* Dijkstra over a multigraph with one edge per (link, medium), so a path
  may hop PLC → WiFi → PLC;
* cross-AVLN pairs (the testbed's two boards) become reachable through
  WiFi relays — the "seamless connectivity" the paper promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.metrics import LinkMetricRecord
from repro.hybrid.ieee1905 import AbstractionLayer


@dataclass(frozen=True)
class PathHop:
    """One hop of a hybrid route."""

    src: str
    dst: str
    medium: str
    ett_s: float


@dataclass(frozen=True)
class HybridPath:
    """A routed path with its total expected transmission time."""

    hops: Tuple[PathHop, ...]
    total_ett_s: float

    @property
    def media(self) -> Tuple[str, ...]:
        return tuple(h.medium for h in self.hops)

    @property
    def alternates_media(self) -> bool:
        """Whether the route switches technology at least once ([17])."""
        return len(set(self.media)) > 1

    def __len__(self) -> int:
        return len(self.hops)


def ett_seconds(record: LinkMetricRecord, packet_bytes: int = 1500) -> float:
    """Expected transmission time of one packet over a measured link."""
    if record.capacity_bps <= 0:
        return float("inf")
    etx = record.etx if record.etx is not None else 1.0
    return etx * packet_bytes * 8 / record.capacity_bps


class HybridMeshRouter:
    """ETT-based shortest-path routing over the 1905 metric table."""

    def __init__(self, layer: AbstractionLayer, packet_bytes: int = 1500,
                 min_capacity_bps: float = 1e6,
                 max_metric_age_s: Optional[float] = None):
        self.layer = layer
        self.packet_bytes = packet_bytes
        self.min_capacity_bps = min_capacity_bps
        #: Records older than this (relative to the ``now`` passed to a
        #: query) are treated as a dead link even if the layer itself has
        #: no staleness limit. This bounds the blackout-detection window:
        #: a medium that stops reporting vanishes from routing within
        #: ``max_metric_age_s`` instead of being trusted forever.
        self.max_metric_age_s = max_metric_age_s

    def _graph(self, now: Optional[float] = None) -> nx.MultiDiGraph:
        graph = nx.MultiDiGraph()
        for (src, dst, medium) in self.layer.links():
            record = self.layer.get(src, dst, medium, now=now)
            if record is None or record.capacity_bps < self.min_capacity_bps:
                continue
            if (now is not None and self.max_metric_age_s is not None
                    and now - record.time > self.max_metric_age_s):
                continue
            graph.add_edge(src, dst, key=medium,
                           weight=ett_seconds(record, self.packet_bytes),
                           medium=medium)
        return graph

    def best_path(self, src: str, dst: str,
                  now: Optional[float] = None) -> Optional[HybridPath]:
        """Minimum-ETT route from ``src`` to ``dst`` (None if unreachable).

        Runs Dijkstra on a collapsed digraph whose edge weight is the best
        medium per hop, then re-expands which medium won each hop.
        """
        multi = self._graph(now)
        if src not in multi or dst not in multi:
            return None
        # Collapse parallel edges to the best medium per (src, dst).
        best_edge: Dict[Tuple[str, str], Tuple[float, str]] = {}
        for u, v, medium, data in multi.edges(keys=True, data=True):
            key = (u, v)
            if key not in best_edge or data["weight"] < best_edge[key][0]:
                best_edge[key] = (data["weight"], medium)
        simple = nx.DiGraph()
        for (u, v), (weight, medium) in best_edge.items():
            simple.add_edge(u, v, weight=weight, medium=medium)
        try:
            nodes = nx.dijkstra_path(simple, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        hops: List[PathHop] = []
        total = 0.0
        for u, v in zip(nodes, nodes[1:]):
            weight, medium = best_edge[(u, v)]
            hops.append(PathHop(src=u, dst=v, medium=medium, ett_s=weight))
            total += weight
        return HybridPath(hops=tuple(hops), total_ett_s=total)

    def reachable_pairs(self, now: Optional[float] = None
                        ) -> List[Tuple[str, str]]:
        """All ordered pairs with a route (the mesh connectivity census)."""
        multi = self._graph(now)
        out: List[Tuple[str, str]] = []
        nodes = sorted(multi.nodes)
        for src in nodes:
            lengths = nx.single_source_dijkstra_path_length(
                multi, src, weight="weight")
            out.extend((src, dst) for dst in sorted(lengths)
                       if dst != src)
        return out


def populate_from_testbed(layer: AbstractionLayer, testbed, t: float,
                          pairs: Optional[List[Tuple[int, int]]] = None
                          ) -> None:
    """Fill a 1905 table from testbed measurements (both media).

    Uses the paper's estimators: PLC capacity from slot-averaged BLE through
    the MAC model, ETX from PBerr; WiFi capacity from the MCS/airtime view.
    """
    from repro.plc.mac import SaturatedThroughputModel

    for i, j in (pairs if pairs is not None else testbed.all_pairs()):
        plc = testbed.plc_link(i, j)
        if plc is not None:
            model = SaturatedThroughputModel(plc.spec)
            capacity = model.throughput_bps(plc.avg_ble_bps(t))
            layer.update(LinkMetricRecord(
                time=t, src=str(i), dst=str(j), medium="plc",
                capacity_bps=capacity, pb_err=plc.pb_err(t),
                etx=min(plc.u_etx(t), 50.0)))
        wifi = testbed.wifi_link(i, j)
        layer.update(LinkMetricRecord(
            time=t, src=str(i), dst=str(j), medium="wifi",
            capacity_bps=wifi.throughput_bps(t, measured=False),
            etx=1.0))
