"""The hybrid device: bandwidth aggregation over PLC + WiFi (§7.4, Fig. 20).

:class:`HybridDevice` bonds one PLC and one WiFi link between the same two
stations. Once per second it probes capacities the paper's way — PLC from
the slot-averaged BLE, WiFi from the MCS observed over the last second —
then splits traffic per the configured scheduler. Saturated runs use a
100 ms fluid quantum (the goodput law of
:func:`repro.hybrid.schedulers.fluid_goodput_bps`); a packet-level mode
exercises the reorder buffer for jitter measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.metrics import MetricSeries
from repro.hybrid.reorder import ReorderBuffer, ReorderStats
from repro.hybrid.schedulers import (
    CapacityProportionalScheduler,
    RoundRobinScheduler,
    fluid_goodput_bps,
)
from repro.medium.link import Link
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.sim.random import RandomStreams
from repro.traffic.packet import Packet
from repro.units import MBPS


#: Media whose estimated capacity falls below this are left out of the
#: split: assigning traffic to a (near-)dead interface stalls a closed-loop
#: source for nothing (§7.4 implicitly assumes both media carry traffic).
MIN_MEDIUM_CAPACITY_BPS = 2e6

#: ``Snapshot.kind`` for a paused saturated hybrid run.
HYBRID_SNAPSHOT_KIND = "hybrid-device"


@dataclass
class AggregationResult:
    """Outcome of a saturated hybrid run."""

    mode: str
    throughput: MetricSeries
    reorder_stats: Optional[ReorderStats] = None
    #: Stall-triggered early re-probes during a saturated hybrid run
    #: (0 unless a medium collapsed between scheduled probes).
    failovers: int = 0

    @property
    def mean_mbps(self) -> float:
        return self.throughput.mean / MBPS


class HybridDevice:
    """Bonded PLC+WiFi path between two stations."""

    def __init__(self, plc_link: Link, wifi_link: Link,
                 streams: RandomStreams,
                 capacity_probe_interval_s: float = 1.0,
                 failover_threshold: float = 0.5,
                 metrics: Optional[MetricsRegistry] = None):
        self.plc_link = plc_link
        self.wifi_link = wifi_link
        #: ``hybrid.*`` counters land here (process-global by default).
        self.metrics = metrics if metrics is not None \
            else global_registry()
        #: A saturated hybrid quantum whose goodput falls below this
        #: fraction of the best single medium's deliverable rate is a
        #: stall (the split was built from probes that predate a medium
        #: dying) and triggers an immediate re-probe — so blackout
        #: detection is bounded by one quantum, not the probe interval.
        self.failover_threshold = failover_threshold
        #: Medium tag → bonded link. Insertion order (PLC first) fixes the
        #: per-medium RNG draw order of the smoothing windows.
        self.links: Dict[str, Link] = {plc_link.medium: plc_link,
                                       wifi_link.medium: wifi_link}
        self.capacity_probe_interval_s = capacity_probe_interval_s
        self._streams = streams
        self._rng = streams.get(f"hybrid.{plc_link.name}|{wifi_link.name}")
        #: Loop state of a saturated run paused at an ``until_s``
        #: boundary; ``None`` when no run is paused.
        self._sat_paused: Optional[Dict[str, object]] = None

    # --- capacity estimation (the §7.4 probing design) -------------------------

    def estimate_capacities_bps(self, t: float) -> Dict[str, float]:
        """Per-medium *application* capacity estimates at ``t``.

        Each link answers through the medium contract's ``capacity_bps``:
        PLC averages BLE over the 6 tone-map slots (invariance-scale
        averaging, §6.1) through the MAC model; WiFi averages the observed
        MCS × availability over the last second — WiFi varies too fast
        within a second for a point sample (§4.2). The device no longer
        needs to know either medium's internals.
        """
        self.metrics.inc("hybrid.capacity_probes")
        return {m: max(link.capacity_bps(t), 0.0)
                for m, link in self.links.items()}

    def _actual_capacities_bps(self, t: float,
                               smooth_s: float = 1.0) -> Dict[str, float]:
        """Per-medium deliverable rate around ``t``.

        Driver queues buffer tens of milliseconds of traffic, so the rate a
        blocking sender actually experiences is the short-window average,
        not the instantaneous fading sample — we average over ``smooth_s``.
        """
        if smooth_s <= 0:
            return {m: link.throughput_bps(t)
                    for m, link in self.links.items()}
        samples = np.arange(t - smooth_s / 2, t + smooth_s / 2 + 1e-9,
                            smooth_s / 5)
        return {m: float(np.mean(link.sample_series(samples).throughput_bps))
                for m, link in self.links.items()}

    def _hybrid_goodput(self, estimated: Dict[str, float],
                        actual: Dict[str, float]) -> float:
        """Capacity-proportional goodput with the dead-medium floor.

        A medium is used only if it is both absolutely usable and carries a
        non-negligible share of the bond: handing 5 % of a closed-loop flow
        to a barely-alive interface just stalls the fast one.
        """
        total_est = sum(estimated.values())
        usable = {m: c for m, c in estimated.items()
                  if c >= MIN_MEDIUM_CAPACITY_BPS
                  and c >= 0.08 * total_est}
        if not usable:
            # Fall back to whatever single medium still moves bits.
            best = max(estimated, key=estimated.get)
            usable = {best: max(estimated[best], 1.0)}
        total = sum(usable.values())
        fractions = {m: c / total for m, c in usable.items()}
        return fluid_goodput_bps(fractions,
                                 {m: actual[m] for m in fractions})

    def hybrid_goodput_bps(self, t: float) -> float:
        """Instantaneous goodput of the capacity-proportional bond at t."""
        return self._hybrid_goodput(self.estimate_capacities_bps(t),
                                    self._actual_capacities_bps(t))

    # --- saturated runs (Fig. 20 left) ---------------------------------------------

    def run_saturated(self, mode: str, t_start: float, duration: float,
                      quantum_s: float = 0.1,
                      until_s: Optional[float] = None
                      ) -> AggregationResult:
        """Saturated UDP over the bonded pair.

        ``mode``: "wifi" | "plc" | "hybrid" (capacity-proportional) |
        "round-robin".

        ``until_s`` pauses the run *before* the first quantum at
        ``t >= until_s`` and returns the partial result; the paused
        state can be serialised with :meth:`snapshot`, pushed into a
        freshly built twin device with :meth:`restore`, and continued
        with :meth:`resume_saturated` — the completed result is then
        bit-identical to an unpaused run (same quantum grid, same RNG
        draws, same probe schedule).
        """
        if mode not in ("wifi", "plc", "hybrid", "round-robin"):
            raise ValueError(f"unknown mode {mode!r}")
        return self._saturated_loop(
            mode=mode, t_start=t_start, duration=duration,
            quantum_s=quantum_s, index=0, values=[], capacities={},
            last_probe=-np.inf, failovers=0, until_s=until_s)

    def _saturated_loop(self, mode: str, t_start: float, duration: float,
                        quantum_s: float, index: int,
                        values: List[float],
                        capacities: Dict[str, float], last_probe: float,
                        failovers: int,
                        until_s: Optional[float]) -> AggregationResult:
        # The grid is always built over the *full* duration: slicing an
        # ``np.arange`` started at an offset would produce subtly
        # different float grid points than indexing into the one grid.
        times = np.arange(t_start, t_start + duration, quantum_s)
        for i in range(index, len(times)):
            t = times[i]
            if until_s is not None and t >= until_s:
                self._sat_paused = {
                    "mode": mode, "t_start": t_start,
                    "duration": duration, "quantum_s": quantum_s,
                    "index": i, "values": values,
                    "capacities": capacities, "last_probe": last_probe,
                    "failovers": failovers,
                }
                series = MetricSeries(times[:i], values,
                                      name=f"hybrid-{mode}")
                return AggregationResult(mode=mode, throughput=series,
                                         failovers=failovers)
            actual = self._actual_capacities_bps(t)
            if mode == "wifi":
                values.append(actual["wifi"])
                continue
            if mode == "plc":
                values.append(actual["plc"])
                continue
            if t - last_probe >= self.capacity_probe_interval_s:
                capacities = self.estimate_capacities_bps(t)
                last_probe = t
            if mode == "hybrid":
                goodput = self._hybrid_goodput(capacities, actual)
                best_single = max(actual.values())
                if (goodput < self.failover_threshold * best_single
                        and t > last_probe):
                    capacities = self.estimate_capacities_bps(t)
                    last_probe = t
                    failovers += 1
                    self.metrics.inc("hybrid.failovers")
                    goodput = self._hybrid_goodput(capacities, actual)
                values.append(goodput)
            else:  # round-robin: capacity-blind equal split
                fractions = {m: 1.0 / len(actual) for m in actual}
                values.append(fluid_goodput_bps(fractions, actual))
        self._sat_paused = None
        series = MetricSeries(times, values, name=f"hybrid-{mode}")
        return AggregationResult(mode=mode, throughput=series,
                                 failovers=failovers)

    # --- snapshot / restore ----------------------------------------------------

    @property
    def paused(self) -> bool:
        return self._sat_paused is not None

    def snapshot(self):
        """Serialise a paused saturated run (see ``until_s`` above)."""
        # Lazy import: repro.snapshot.world imports the reorder buffer
        # from this package, so a module-level import here would cycle.
        from repro.snapshot.codec import Snapshot
        from repro.snapshot.world import snapshot_streams

        if self._sat_paused is None:
            raise RuntimeError(
                "snapshot() requires a paused saturated run — call "
                "run_saturated(..., until_s=...) first")
        state = self._sat_paused
        payload = {
            "plc_link": self.plc_link.name,
            "wifi_link": self.wifi_link.name,
            "mode": state["mode"],
            "t_start": float(state["t_start"]),
            "duration": float(state["duration"]),
            "quantum_s": float(state["quantum_s"]),
            "index": int(state["index"]),
            "values": [float(v) for v in state["values"]],
            "capacities": {m: float(c)
                           for m, c in state["capacities"].items()},
            "last_probe": (None if state["last_probe"] == -np.inf
                           else float(state["last_probe"])),
            "failovers": int(state["failovers"]),
            "streams": snapshot_streams(self._streams),
        }
        return Snapshot(kind=HYBRID_SNAPSHOT_KIND, payload=payload)

    def restore(self, snap) -> None:
        """Load a paused run into this (freshly built) device."""
        from repro.snapshot.world import restore_streams

        if snap.kind != HYBRID_SNAPSHOT_KIND:
            raise ValueError(
                f"cannot restore a {snap.kind!r} snapshot on a "
                f"HybridDevice (need {HYBRID_SNAPSHOT_KIND!r})")
        payload = snap.payload
        if payload["plc_link"] != self.plc_link.name \
                or payload["wifi_link"] != self.wifi_link.name:
            raise ValueError(
                "snapshot bonds "
                f"{payload['plc_link']}|{payload['wifi_link']}, device "
                f"bonds {self.plc_link.name}|{self.wifi_link.name}")
        restore_streams(self._streams, payload["streams"])
        self._sat_paused = {
            "mode": payload["mode"],
            "t_start": payload["t_start"],
            "duration": payload["duration"],
            "quantum_s": payload["quantum_s"],
            "index": int(payload["index"]),
            "values": list(payload["values"]),
            "capacities": dict(payload["capacities"]),
            "last_probe": (-np.inf if payload["last_probe"] is None
                           else payload["last_probe"]),
            "failovers": int(payload["failovers"]),
        }

    def resume_saturated(self, until_s: Optional[float] = None
                         ) -> AggregationResult:
        """Continue the restored (or locally paused) saturated run."""
        if self._sat_paused is None:
            raise RuntimeError("no paused saturated run to resume")
        state, self._sat_paused = self._sat_paused, None
        return self._saturated_loop(
            mode=state["mode"], t_start=state["t_start"],
            duration=state["duration"], quantum_s=state["quantum_s"],
            index=state["index"], values=state["values"],
            capacities=state["capacities"],
            last_probe=state["last_probe"],
            failovers=state["failovers"], until_s=until_s)

    # --- packet-level mode (reordering / jitter) --------------------------------------

    def run_packet_level(self, mode: str, t_start: float, duration: float,
                         packet_bytes: int = 1500,
                         hole_timeout_s: float = 0.05,
                         check_invariants: bool = False) -> ReorderStats:
        """Short packet-level run exercising the reorder buffer.

        Each medium is modelled as a FIFO served at its instantaneous
        capacity; the scheduler assigns packets as they are generated at the
        bonded pair's sustainable rate.

        ``check_invariants=True`` runs the registered ``reorder_release``
        and ``pipeline`` invariants (:mod:`repro.verify.invariants`) over
        the released stream — in-order release, no minted or silently
        dropped packets — and raises
        :class:`~repro.verify.invariants.InvariantViolationError` on any
        breach.
        """
        scheduler = (CapacityProportionalScheduler(self._rng)
                     if mode == "hybrid" else RoundRobinScheduler())
        reorder = ReorderBuffer(hole_timeout_s=hole_timeout_s)
        # Source rate: what the mode can sustain (so queues stay bounded).
        capacities = {m: c
                      for m, c in self.estimate_capacities_bps(
                          t_start).items()
                      if c >= MIN_MEDIUM_CAPACITY_BPS}
        if not capacities:
            capacities = self.estimate_capacities_bps(t_start)
        if mode == "hybrid":
            rate = sum(self._actual_capacities_bps(t_start).values()) * 0.95
        else:
            rate = 2 * min(
                self._actual_capacities_bps(t_start).values()) * 0.95
        interval = packet_bytes * 8 / max(rate, 1e5)
        next_free = {m: t_start for m in self.links}
        t = t_start
        seq = 0
        arrivals: List[Packet] = []
        while t < t_start + duration:
            medium = scheduler.pick(capacities)
            service = packet_bytes * 8 / max(
                self._actual_capacities_bps(t, smooth_s=0.0)[medium], 1e5)
            start = max(t, next_free[medium])
            done = start + service
            next_free[medium] = done
            packet = Packet(seq=seq, size_bytes=packet_bytes, created_at=t,
                            medium=medium)
            packet.delivered_at = done
            arrivals.append(packet)
            seq += 1
            t += interval
        released: List[Packet] = []
        for packet in sorted(arrivals, key=lambda p: p.delivered_at):
            released.extend(reorder.push(packet, packet.delivered_at))
        # End-of-stream drain: without it the tail packets behind the last
        # hole would never be counted (see ReorderBuffer.flush).
        end = max(next_free.values()) if arrivals else t_start
        released.extend(reorder.flush(end))
        if check_invariants:
            # Lazy: the verify layer is optional at runtime and importing
            # it here keeps the hybrid package cycle-free.
            from repro.verify.invariants import enforce_invariants

            subject = f"{self.plc_link.name}|{self.wifi_link.name}"
            seqs = [p.seq for p in released]
            enforce_invariants("reorder_release", seqs,
                               subject_name=subject, metrics=self.metrics)
            enforce_invariants(
                "pipeline",
                {"scheduled": seq, "released": len(released),
                 "pending": reorder.pending_count, "duplicates": 0,
                 "released_unique": len(set(seqs))},
                subject_name=subject, metrics=self.metrics)
        return reorder.stats
