"""IEEE 1905-style abstraction layer.

The 1905 standard (paper ref [2]) defines an abstraction layer holding
topology and per-link metrics across heterogeneous media, but neither the
estimation methods nor forwarding rules — which is exactly the gap the paper
fills. :class:`AbstractionLayer` is that table: media register their links,
measurement paths push :class:`~repro.core.metrics.LinkMetricRecord`
updates, and algorithms (load balancing, routing) read the freshest view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.metrics import LinkMetricRecord

_Key = Tuple[str, str, str]  # (src, dst, medium)


class AbstractionLayer:
    """Per-network table of hybrid link metrics."""

    def __init__(self, staleness_limit_s: Optional[float] = None):
        #: Records older than this are not returned (None = no limit).
        self.staleness_limit_s = staleness_limit_s
        self._records: Dict[_Key, LinkMetricRecord] = {}

    def update(self, record: LinkMetricRecord) -> None:
        """Insert or refresh a link metric (monotonic time enforced)."""
        key = (record.src, record.dst, record.medium)
        old = self._records.get(key)
        if old is not None and record.time < old.time:
            raise ValueError(
                f"stale update for {key}: {record.time} < {old.time}")
        self._records[key] = record

    def get(self, src: str, dst: str, medium: str,
            now: Optional[float] = None) -> Optional[LinkMetricRecord]:
        """Freshest record for a directed link on one medium."""
        record = self._records.get((src, dst, medium))
        if record is None:
            return None
        if (now is not None and self.staleness_limit_s is not None
                and now - record.time > self.staleness_limit_s):
            return None
        return record

    def media_for(self, src: str, dst: str,
                  now: Optional[float] = None) -> List[LinkMetricRecord]:
        """All media records for a station pair, best capacity first."""
        out = [r for (s, d, _), r in self._records.items()
               if s == src and d == dst]
        if now is not None and self.staleness_limit_s is not None:
            out = [r for r in out
                   if now - r.time <= self.staleness_limit_s]
        return sorted(out, key=lambda r: -r.capacity_bps)

    def capacities(self, src: str, dst: str,
                   now: Optional[float] = None) -> Dict[str, float]:
        """{medium: capacity_bps} — the load balancer's input (§7.4)."""
        return {r.medium: r.capacity_bps
                for r in self.media_for(src, dst, now)}

    def links(self) -> List[_Key]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)
