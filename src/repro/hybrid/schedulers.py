"""Packet schedulers for the hybrid pipeline (§7.4).

The paper forwards each IP packet to one medium with probability
proportional to the medium's estimated capacity, and compares against a
round-robin scheduler that — knowing nothing about capacity — is limited to
twice the capacity of the *slowest* medium.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class CapacityProportionalScheduler:
    """Pick a medium with probability ∝ estimated capacity (the paper's
    Click element)."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def pick(self, capacities_bps: Dict[str, float]) -> str:
        """Choose the medium for one packet."""
        media = sorted(capacities_bps)
        weights = np.array([max(capacities_bps[m], 0.0) for m in media])
        total = weights.sum()
        if total <= 0:
            raise ValueError("no medium has positive capacity")
        return media[int(self._rng.choice(len(media), p=weights / total))]

    def split(self, capacities_bps: Dict[str, float],
              n_packets: int) -> Dict[str, int]:
        """Expected packet split for a batch (fluid-level use)."""
        media = sorted(capacities_bps)
        weights = np.array([max(capacities_bps[m], 0.0) for m in media])
        total = weights.sum()
        if total <= 0:
            raise ValueError("no medium has positive capacity")
        counts = np.floor(n_packets * weights / total).astype(int)
        # Hand out the rounding remainder to the largest weights.
        for i in np.argsort(-weights)[: n_packets - counts.sum()]:
            counts[i] += 1
        return dict(zip(media, counts.tolist()))


class RoundRobinScheduler:
    """Alternate media per packet — the capacity-blind baseline."""

    def __init__(self):
        self._cursor = 0

    def pick(self, capacities_bps: Dict[str, float]) -> str:
        media = sorted(capacities_bps)
        if not media:
            raise ValueError("no media registered")
        medium = media[self._cursor % len(media)]
        self._cursor += 1
        return medium

    def split(self, capacities_bps: Dict[str, float],
              n_packets: int) -> Dict[str, int]:
        media = sorted(capacities_bps)
        if not media:
            raise ValueError("no media registered")
        base = n_packets // len(media)
        out = {m: base for m in media}
        for k in range(n_packets - base * len(media)):
            out[media[(self._cursor + k) % len(media)]] += 1
        self._cursor += n_packets
        return out


def fluid_goodput_bps(split_fractions: Dict[str, float],
                      capacities_bps: Dict[str, float]) -> float:
    """Steady-state goodput of a split against per-medium capacities.

    A closed-loop saturated source pushes as hard as the *most congested*
    medium allows: if medium m gets fraction f_m of the packets, the source
    rate λ satisfies λ·f_m ≤ c_m for all m, so λ = min_m c_m / f_m (capped
    at Σ c_m). Round-robin (f = 1/2 each) therefore delivers 2·min(c) while
    a capacity-proportional split delivers Σ c — the Fig. 20 contrast.
    """
    total_fraction = sum(split_fractions.values())
    if not np.isclose(total_fraction, 1.0, atol=1e-6):
        raise ValueError(f"fractions must sum to 1, got {total_fraction}")
    rates = []
    for medium, fraction in split_fractions.items():
        if fraction <= 0:
            continue
        capacity = capacities_bps.get(medium, 0.0)
        rates.append(capacity / fraction)
    if not rates:
        return 0.0
    return min(min(rates), sum(capacities_bps.values()))
