"""Named deterministic random streams.

Every stochastic component draws from its own named stream derived from a
single root seed, so adding randomness to one subsystem never perturbs another
(a classic simulation-reproducibility pitfall). Streams are
``numpy.random.Generator`` instances seeded via ``numpy.random.SeedSequence``
with a stable hash of the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (not Python's salted ``hash``)."""
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """Factory of independent, reproducible random generators.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> noise_rng = streams.get("plc.noise.link-3-8")
    >>> fading_rng = streams.get("wifi.fading.link-3-8")
    >>> float(noise_rng.uniform()) != float(fading_rng.uniform())
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls return the *same* generator object so state advances
        monotonically within a run.
        """
        if name not in self._streams:
            seq = np.random.SeedSequence([self.seed, _name_key(name)])
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` with its initial state.

        Useful for replaying a component's randomness from scratch.
        """
        seq = np.random.SeedSequence([self.seed, _name_key(name)])
        return np.random.Generator(np.random.PCG64(seq))

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        return RandomStreams(seed=(self.seed * 0x9E3779B1 + _name_key(name))
                             % (2 ** 63))
