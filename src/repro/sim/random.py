"""Named deterministic random streams.

Every stochastic component draws from its own named stream derived from a
single root seed, so adding randomness to one subsystem never perturbs another
(a classic simulation-reproducibility pitfall). Streams are
``numpy.random.Generator`` instances seeded via ``numpy.random.SeedSequence``
with a stable hash of the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (not Python's salted ``hash``)."""
    return zlib.crc32(name.encode("utf-8"))


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    The derivation feeds the root seed plus the stable 32-bit key of every
    path component into a :class:`numpy.random.SeedSequence` spawn key, so:

    * it is a pure function of ``(root_seed, names)`` — independent of
      process, platform, worker count, and evaluation order;
    * distinct paths yield statistically independent seeds (SeedSequence's
      entropy mixing, not ad-hoc arithmetic);
    * the result fits in a non-negative 63-bit int, safe for JSON and for
      re-use as another ``RandomStreams``/``SeedSequence`` root.

    This is the contract the parallel campaign engine builds on: every task
    seeds its world with ``derive_seed(spec_seed, task_key)``, which makes
    results bit-identical at any worker count.
    """
    keys = [_name_key(n) for n in names]
    seq = np.random.SeedSequence([int(root_seed) & ((1 << 63) - 1), *keys])
    return int(seq.generate_state(1, np.uint64)[0] >> 1)


class RandomStreams:
    """Factory of independent, reproducible random generators.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> noise_rng = streams.get("plc.noise.link-3-8")
    >>> fading_rng = streams.get("wifi.fading.link-3-8")
    >>> float(noise_rng.uniform()) != float(fading_rng.uniform())
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls return the *same* generator object so state advances
        monotonically within a run.
        """
        if name not in self._streams:
            seq = np.random.SeedSequence([self.seed, _name_key(name)])
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` with its initial state.

        Useful for replaying a component's randomness from scratch.
        """
        seq = np.random.SeedSequence([self.seed, _name_key(name)])
        return np.random.Generator(np.random.PCG64(seq))

    def fresh_batch(self, names: "list[str]"):
        """Yield ``(index, generator)`` replaying each name's stream.

        Equivalent to ``(i, self.fresh(name))`` for every name, but seeds
        one reused generator by direct PCG64 state injection, with the
        seeding hash vectorized across all names
        (:mod:`repro.sim.fastseed`). This makes thousands of fresh
        per-interval streams — the unit of the batch sampling paths —
        cheap, while drawing *bit-identical* values.

        The yielded generator is reused between iterations: consume each
        stream's draws before advancing the loop.
        """
        from repro.sim import fastseed
        try:
            states = fastseed.pcg64_seed_states(
                self.seed, np.array([_name_key(n) for n in names],
                                    dtype=np.uint32))
        except NotImplementedError:
            for i, name in enumerate(names):
                yield i, self.fresh(name)
            return
        bit_gen = np.random.PCG64(0)
        rng = np.random.Generator(bit_gen)
        for i, (state, inc) in enumerate(states):
            bit_gen.state = fastseed.pcg64_state_dict(state, inc)
            yield i, rng

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours.

        Uses :func:`derive_seed`, so the child's seed depends only on
        ``(self.seed, name)`` — never on how many streams were drawn, in
        what order, or in which process the spawn happens.
        """
        return RandomStreams(seed=derive_seed(self.seed, name))
