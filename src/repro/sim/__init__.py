"""Discrete-event simulation kernel.

The kernel is deliberately small: an event queue with a simulated clock
(:class:`~repro.sim.engine.Simulator`), a mains-cycle-aware clock helper
(:mod:`repro.sim.clock`) and named deterministic random streams
(:mod:`repro.sim.random`). Every other subsystem builds on these.
"""

from repro.sim.clock import MainsClock, tone_map_slot_at
from repro.sim.engine import Event, Simulator
from repro.sim.random import RandomStreams

__all__ = [
    "Event",
    "Simulator",
    "MainsClock",
    "tone_map_slot_at",
    "RandomStreams",
]
