"""Minimal discrete-event simulation engine.

The engine keeps a priority queue of timestamped events. Components schedule
callbacks with :meth:`Simulator.schedule` (absolute time) or
:meth:`Simulator.schedule_in` (relative delay) and the main loop delivers them
in time order. Ties are broken by insertion order so runs are fully
deterministic.

The engine is intentionally framework-free — no coroutines, no global state —
because the frame-level MAC simulations in :mod:`repro.plc.csma` need tight
control over event cancellation and because determinism is a hard requirement
for the benchmark suite.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so that simultaneous events fire in
    scheduling order. ``cancelled`` events stay in the heap but are skipped
    when popped (lazy deletion).
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator with a float clock (seconds)."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None],
                 name: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Scheduling in the past raises ``ValueError`` — it is always a bug.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event {name!r} at {time} < now {self._now}")
        event = Event(time, next(self._sequence), callback, name)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None],
                    name: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay} for event {name!r}")
        return self.schedule(self._now + delay, callback, name)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process the next event. Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fires earlier, so periodic samplers observe a
        consistent end time.
        """
        self._running = True
        processed = 0
        try:
            while self._running:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop a ``run`` loop after the current event."""
        self._running = False

    def advance_to(self, time: float) -> None:
        """Jump the clock forward without processing events (testing helper)."""
        if time < self._now:
            raise ValueError(f"cannot move clock backwards to {time}")
        if self.peek() is not None and self.peek() < time:
            raise ValueError("pending events before target time; use run()")
        self._now = time

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def every(self, interval: float, callback: Callable[[], None],
              start: Optional[float] = None, name: str = "") -> "PeriodicTask":
        """Schedule ``callback`` periodically. Returns a cancellable task."""
        return PeriodicTask(self, interval, callback, start, name)


class PeriodicTask:
    """A repeating event created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], None], start: Optional[float],
                 name: str):
        if interval <= 0:
            raise ValueError(f"periodic interval must be positive: {interval}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._name = name
        self._stopped = False
        self._event: Optional[Event] = None
        first = sim.now + interval if start is None else start
        self._event = sim.schedule(first, self._fire, name=name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule_in(
                self.interval, self._fire, name=self._name)

    def stop(self) -> None:
        """Stop repeating; a queued occurrence is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped


def run_sampler(duration: float, interval: float,
                sample: Callable[[float], Any],
                start_time: float = 0.0) -> list:
    """Convenience: sample ``sample(t)`` every ``interval`` for ``duration``.

    Used by the statistical (non-packet) experiments where the only "events"
    are measurement instants. Returns the list of samples.
    """
    sim = Simulator(start_time)
    samples: list = []

    def take() -> None:
        samples.append(sample(sim.now))

    sim.every(interval, take)  # first sample one interval in
    sim.run(until=start_time + duration)
    return samples
