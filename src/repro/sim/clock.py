"""Mains-cycle-aware clock helpers.

IEEE 1901 synchronises its tone-map schedule to the AC line cycle: the half
mains cycle (10 ms at 50 Hz) is divided into ``L`` tone-map *slots* (L = 6 for
HomePlug AV), and a transmission uses the tone map of the slot its start time
falls into (paper §2.1, §6.1). :class:`MainsClock` maps simulated time to
slot indices and also exposes calendar helpers (hour of day, weekday) used by
the human-activity model in :mod:`repro.powergrid.activity`.

Simulated time ``t = 0`` corresponds to **Monday 00:00**; experiments that the
paper ran at a given wall-clock time (e.g. Fig. 4's "4:30 pm") pass an offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import DAY, HALF_MAINS_CYCLE, HOUR, MAINS_CYCLE, WEEK

#: Day-of-week names, index 0 = Monday (t=0 anchor).
WEEKDAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def tone_map_slot_at(t: float, num_slots: int = 6,
                     half_cycle: float = HALF_MAINS_CYCLE) -> int:
    """Tone-map slot index (0-based) in effect at simulated time ``t``.

    The schedule repeats every half mains cycle; slots are equal-length (the
    standard allows unequal ``Ts`` but commercial devices use a uniform split,
    which is what the INT6300 exposes).
    """
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    cycles = t / half_cycle
    phase = cycles - int(cycles)
    if phase < 0:
        phase += 1.0
    # Snap float noise at the period boundary (grows with |t|) back to 0 so
    # t and t + k·half_cycle always land in the same slot.
    eps = 1e-9 * max(1.0, abs(cycles))
    if phase > 1.0 - eps:
        phase = 0.0
    return min(int(phase * num_slots), num_slots - 1)


@dataclass(frozen=True)
class MainsClock:
    """Calendar + mains-cycle view of simulated time.

    Attributes
    ----------
    num_slots:
        Tone-map slots per half mains cycle (6 for HPAV).
    """

    num_slots: int = 6

    def slot(self, t: float) -> int:
        """Tone-map slot index at time ``t``."""
        return tone_map_slot_at(t, self.num_slots)

    def slot_duration(self) -> float:
        """Duration of one tone-map slot in seconds."""
        return HALF_MAINS_CYCLE / self.num_slots

    def cycle_index(self, t: float) -> int:
        """Index of the mains cycle containing ``t`` (cycle scale unit)."""
        return int(t / MAINS_CYCLE)

    # --- calendar helpers (random-scale / activity model) -------------------

    def hour_of_day(self, t: float) -> float:
        """Hour of day in [0, 24) as a float."""
        return (t % DAY) / HOUR

    def day_index(self, t: float) -> int:
        """Number of whole days since t=0 (Monday 00:00)."""
        return int(t // DAY)

    def weekday(self, t: float) -> int:
        """Day of week, 0 = Monday ... 6 = Sunday."""
        return int((t % WEEK) // DAY)

    def weekday_name(self, t: float) -> str:
        return WEEKDAY_NAMES[self.weekday(t)]

    def is_weekend(self, t: float) -> bool:
        """True on Saturday/Sunday."""
        return self.weekday(t) >= 5

    def is_working_hours(self, t: float) -> bool:
        """True on weekdays between 08:00 and 18:00 (office building)."""
        return (not self.is_weekend(t)) and 8.0 <= self.hour_of_day(t) < 18.0

    def is_working_hours_series(self, ts) -> np.ndarray:
        """Vectorized :meth:`is_working_hours` over a time array.

        Matches the scalar method exactly: ``%``/``//`` on float64 arrays
        compute the same values as Python-float arithmetic on each element.
        """
        ts = np.asarray(ts, dtype=float)
        hours = (ts % DAY) / HOUR
        weekdays = (ts % WEEK) // DAY
        return (weekdays < 5) & (hours >= 8.0) & (hours < 18.0)

    @staticmethod
    def at(day: int = 0, hour: float = 0.0) -> float:
        """Simulated time for day-index ``day`` at ``hour`` o'clock.

        ``day=0`` is a Monday. Example: ``MainsClock.at(day=1, hour=16.5)``
        is Tuesday 4:30 pm.
        """
        return day * DAY + hour * HOUR
