"""Bit-exact vectorized replication of numpy's stream seeding.

:meth:`repro.sim.random.RandomStreams.fresh` builds, per name, a
``SeedSequence([seed, crc32(name)])`` and a ``PCG64`` generator from it.
That costs ~13 µs per stream — fine for scalar sampling, but it dominates
the batch sampling paths (``sample_series``), which need thousands of
fresh per-interval streams (WiFi fading blocks, PLC jitter intervals) in
one call.

This module reproduces numpy's seeding arithmetic exactly, but hashes all
names at once with vectorized uint32 operations:

* :func:`seedseq_state_words` — ``SeedSequence([*seed_words, key]).
  generate_state(4, uint64)`` for an array of keys (the entropy-pool hash
  of ``numpy.random.bit_generator.SeedSequence``);
* :func:`pcg64_seed_states` — the 128-bit ``(state, inc)`` pair
  ``PCG64(seed_seq)`` derives from those four words (the reference
  ``pcg64_srandom`` arithmetic).

Bit-identity with numpy is asserted by ``tests/test_medium_contract.py``
(and, transitively, by every golden trace): callers inject the computed
state into a reused ``PCG64`` via its ``.state`` property and draw —
yielding exactly the values a fresh ``Generator`` would produce.

The replicated constants are numpy's published seeding algorithm
(stable across numpy versions by compatibility guarantee: changing it
would break every seeded stream in the ecosystem).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: SeedSequence entropy-pool hash constants (numpy bit_generator.pyx).
_POOL_SIZE = 4
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)

#: PCG64 default 128-bit LCG multiplier and the srandom state derivation.
_PCG_MULT = (0x2360ED051FC65DA4 << 64) | 0x4385DF649FCCF645
_MASK128 = (1 << 128) - 1
_MASK32 = 0xFFFFFFFF


def uint32_words(value: int) -> List[int]:
    """Little-endian 32-bit decomposition of a non-negative int.

    Matches numpy's ``_int_to_uint32_array`` (at least one word, so 0
    contributes one zero word to the entropy pool).
    """
    value = int(value)
    if value < 0:
        raise ValueError("entropy values must be non-negative")
    words = []
    while True:
        words.append(value & _MASK32)
        value >>= 32
        if not value:
            break
    return words


def seedseq_state_words(seed_words: List[int], keys: np.ndarray
                        ) -> Tuple[np.ndarray, ...]:
    """``SeedSequence([*seed_words, key]).generate_state(4, uint64)``,
    vectorized over ``keys``.

    Returns four uint64 arrays ``(w0, w1, w2, w3)`` aligned with ``keys``.
    Raises :class:`NotImplementedError` when the entropy does not fit the
    4-word pool (only possible for seeds wider than 96 bits) — callers
    fall back to the scalar path.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    entropy = [np.full(keys.shape, w, dtype=np.uint32) for w in seed_words]
    entropy.append(keys)
    if len(entropy) > _POOL_SIZE:
        raise NotImplementedError(
            "entropy wider than the SeedSequence pool; use the scalar path")

    # ``hash_const`` evolves identically for every key (its updates do not
    # depend on the data), so it stays a Python scalar threaded through
    # the vectorized hash in numpy's exact operation order.
    hash_const = _INIT_A

    def hashmix(values: np.ndarray) -> np.ndarray:
        nonlocal hash_const
        values = values ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_A) & _MASK32
        values = values * np.uint32(hash_const)
        return values ^ (values >> _XSHIFT)

    def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = x * _MIX_MULT_L - y * _MIX_MULT_R
        return result ^ (result >> _XSHIFT)

    zero = np.zeros(keys.shape, dtype=np.uint32)
    pool = [hashmix(entropy[i]) if i < len(entropy) else hashmix(zero)
            for i in range(_POOL_SIZE)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
    # len(entropy) <= pool size, so there is no remaining-entropy pass.

    hash_const = _INIT_B
    out32 = []
    for i_dst in range(2 * _POOL_SIZE):
        data = pool[i_dst % _POOL_SIZE] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & _MASK32
        data = data * np.uint32(hash_const)
        out32.append(data ^ (data >> _XSHIFT))
    return tuple(out32[2 * i].astype(np.uint64)
                 | (out32[2 * i + 1].astype(np.uint64) << np.uint64(32))
                 for i in range(_POOL_SIZE))


def pcg64_seed_states(seed: int, keys: np.ndarray
                      ) -> List[Tuple[int, int]]:
    """Per-key 128-bit ``(state, inc)`` of ``PCG64(SeedSequence([seed, key]))``.

    The four seed-sequence words map onto PCG64's ``srandom``:
    ``initstate = w0 << 64 | w1``, ``initseq = w2 << 64 | w3``,
    ``inc = initseq << 1 | 1`` and
    ``state = (inc + initstate) * MULT + inc`` (mod 2^128).
    """
    w0, w1, w2, w3 = seedseq_state_words(uint32_words(seed), keys)
    states = []
    for k in range(len(w0)):
        initstate = (int(w0[k]) << 64) | int(w1[k])
        initseq = (int(w2[k]) << 64) | int(w3[k])
        inc = ((initseq << 1) | 1) & _MASK128
        states.append((((inc + initstate) * _PCG_MULT + inc) & _MASK128,
                       inc))
    return states


def pcg64_state_dict(state: int, inc: int) -> dict:
    """The ``.state`` payload that re-seeds a reused ``PCG64`` in place."""
    return {"bit_generator": "PCG64",
            "state": {"state": state, "inc": inc},
            "has_uint32": 0, "uinteger": 0}
