"""repro — reproduction of "Electri-Fi Your Data: Measuring and Combining
Power-Line Communications with WiFi" (Vlachou, Henri, Thiran — IMC 2015).

The package layers, bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel, mains clock, RNG;
* :mod:`repro.powergrid` — wiring topology, appliances, human activity;
* :mod:`repro.plc` — IEEE 1901 / HomePlug AV channel, PHY, MAC, stations;
* :mod:`repro.wifi` — 802.11n link model;
* :mod:`repro.traffic` — iperf-style generators and meters;
* :mod:`repro.core` — the paper's contribution: link metrics (BLE, PBerr,
  U-ETX), capacity estimation, probing policies, temporal-variation
  analysis, the Table 3 guideline engine;
* :mod:`repro.hybrid` — IEEE 1905 abstraction + load balancing (§7.4);
* :mod:`repro.testbed` — the simulated 19-station EPFL floor;
* :mod:`repro.analysis` — stats/reporting helpers.

Quick start::

    from repro.testbed import build_testbed
    from repro.testbed.experiments import working_hours_start

    tb = build_testbed(seed=7)
    t = working_hours_start()
    link = tb.plc_link(3, 8)
    print(link.avg_ble_bps(t) / 1e6, "Mbps BLE")
"""

from repro.testbed import build_testbed
from repro.units import MBPS

__version__ = "1.0.0"

__all__ = ["build_testbed", "MBPS", "__version__"]
