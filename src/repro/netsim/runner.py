"""Quantum-based scenario execution with airtime-fair medium sharing.

The runner advances in fixed quanta (default 0.5 s). In each quantum:

1. flows that have started and not finished are *active*;
2. PLC flows sharing a contention domain (one AVLN/board — CSMA is
   domain-wide) split airtime equally among backlogged flows, so flow i's
   rate is ``capacity_i / n_backlogged`` (the round-based CSMA simulator's
   long-term behaviour, without paying its per-frame cost);
3. WiFi flows share the (single) channel the same way;
4. hybrid flows take their share on both media (§7.4's bond);
5. CBR flows consume at most their offered rate — the *airtime* they do
   not need goes back to the saturated flows in a second pass
   (work-conserving). Accounting is done in airtime fractions, not bits:
   a domain's airtime sums to at most 1, so no pass can mint capacity;
6. file flows retire once their bytes are moved.

Per-quantum link-capacity lookups are memoised in a shared
:class:`~repro.cache.WindowedLruCache` (channel drift is minutes-scale,
so capacities are effectively constant over a few seconds) and the
allocation passes are batched with numpy across all (flow, medium) pairs.
:class:`RunnerStats` exposes cache hit rates, per-domain utilisation and
the work-conservation invariant for observability.

This is deliberately fluid-level: the frame-level dynamics live in
:mod:`repro.plc.csma`; the runner answers capacity-planning questions
("what do these nine flows do to each other for ten minutes?") that the
paper's metrics exist to serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache import CacheStats, WindowedLruCache
from repro.medium.registry import constituent_media, get_medium
from repro.netsim.scenario import FlowRequest, FlowResult, Scenario
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.trace import NULL_TRACER, Tracer
from repro.snapshot.codec import Snapshot
from repro.snapshot.world import (
    restore_cache,
    restore_streams,
    snapshot_cache,
    snapshot_streams,
)

#: ``Snapshot.kind`` for a paused :class:`ScenarioRunner`.
RUNNER_SNAPSHOT_KIND = "scenario-runner"


def results_to_campaign(results: Dict[str, "FlowResult"],
                        name: str = "scenario",
                        stats: Optional["RunnerStats"] = None):
    """Export scenario outcomes as a persistable measurement campaign.

    When ``stats`` (the runner's :class:`RunnerStats`) is given, a summary
    of the run — quanta executed, cache hit rate, invariant violations —
    is recorded in the campaign description so archived campaigns carry
    their execution provenance.
    """
    from repro.analysis.traces import Campaign
    from repro.core.metrics import LinkMetricRecord

    description = "netsim scenario results"
    if stats is not None:
        description += (
            f" [quanta={stats.quanta}"
            f" cache_hit_rate={stats.cache.hit_rate:.3f}"
            f" invariant_violations={stats.invariant_violations}]")
    campaign = Campaign(name=name, description=description)
    for flow_name, result in sorted(results.items()):
        request = result.request
        campaign.add(LinkMetricRecord(
            time=result.completed_at if result.finished
            else request.start_s + result.active_time_s,
            src=str(request.src), dst=str(request.dst),
            # Records are per elemental medium; a composite flow is filed
            # under its primary constituent (PLC for the hybrid bond).
            medium=constituent_media(request.medium)[0],
            capacity_bps=result.mean_rate_bps,
            throughput_bps=result.mean_rate_bps))
    return campaign


class WorkConservationError(RuntimeError):
    """A quantum allocated more airtime in a domain than the domain has."""


@dataclass
class QuantumLog:
    """Per-quantum utilisation snapshot (for time-series inspection)."""

    time: float
    active_flows: int
    domain_load: Dict[str, int]


class RunnerStats:
    """Aggregate observability for one :meth:`ScenarioRunner.run` call.

    A thin **view over a metrics registry** (:mod:`repro.obs.metrics`):
    the runner publishes counters under ``runner.*`` and this class reads
    them back as the familiar attributes, so per-task registries merge
    exactly into campaign-wide aggregates. ``domain_airtime`` sums each
    domain's used airtime fraction over the quanta in which it was
    active; divide by ``domain_quanta`` (see :meth:`domain_utilisation`)
    for its mean utilisation — both raw sums are exported by
    :meth:`to_dict` so downstream merges can stay quanta-weighted. Every
    rate/ratio is derived at read time, never stored.
    """

    def __init__(self, cache: Optional[CacheStats] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.cache = cache if cache is not None else CacheStats()
        self.registry = registry if registry is not None \
            else MetricsRegistry()

    # --- recording (runner-side) ---------------------------------------------

    def note_quantum(self) -> None:
        self.registry.inc("runner.quanta")

    def note_starved(self) -> None:
        self.registry.inc("runner.starved_quanta")

    def note_violation(self) -> None:
        self.registry.inc("runner.invariant_violations")

    def add_domain_airtime(self, domain: str, airtime: float) -> None:
        self.registry.inc(f"runner.domain_airtime.{domain}",
                          float(airtime))
        self.registry.inc(f"runner.domain_quanta.{domain}")

    def note_peak_airtime(self, peak: float, sim_time: float) -> None:
        self.registry.watermark("runner.max_domain_airtime",
                                float(peak), sim_time)

    # --- views ----------------------------------------------------------------

    @property
    def quanta(self) -> int:
        return int(self.registry.counter("runner.quanta"))

    @property
    def starved_quanta(self) -> int:
        return int(self.registry.counter("runner.starved_quanta"))

    @property
    def invariant_violations(self) -> int:
        return int(self.registry.counter("runner.invariant_violations"))

    @property
    def max_domain_airtime(self) -> float:
        return self.registry.gauge("runner.max_domain_airtime", 0.0)

    @property
    def domain_airtime(self) -> Dict[str, float]:
        return self.registry.counters_with_prefix("runner.domain_airtime.")

    @property
    def domain_quanta(self) -> Dict[str, int]:
        return {d: int(n) for d, n in self.registry.counters_with_prefix(
            "runner.domain_quanta.").items()}

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    def domain_utilisation(self) -> Dict[str, float]:
        """Mean airtime fraction used per domain while it was active."""
        airtime, quanta = self.domain_airtime, self.domain_quanta
        return {d: airtime[d] / quanta[d]
                for d in airtime if quanta.get(d)}

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict summary (for reports / JSON export).

        Includes the raw ``domain_airtime`` / ``domain_quanta`` sums:
        they are what makes the campaign-level per-domain merge exact
        (``domain_utilisation`` alone cannot be averaged without its
        weights).
        """
        return {
            "quanta": self.quanta,
            "starved_quanta": self.starved_quanta,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
            "max_domain_airtime": self.max_domain_airtime,
            "invariant_violations": self.invariant_violations,
            "domain_airtime": self.domain_airtime,
            "domain_quanta": self.domain_quanta,
            "domain_utilisation": self.domain_utilisation(),
        }


class ScenarioRunner:
    """Execute a :class:`Scenario` against a testbed.

    ``cache_window_s`` controls how long a link-capacity reading is
    reused before being recomputed from the channel model; the default
    (5 s, ten quanta) tracks the minutes-scale appliance/channel drift
    while cutting the dominant cost of long scenarios. Set it to
    ``quantum_s`` to recompute every quantum.

    ``check_invariants=True`` raises :class:`WorkConservationError` if a
    quantum ever allocates more than ``1 + invariant_epsilon`` of any
    domain's airtime; the violation count is always tracked in
    :attr:`stats` either way.

    ``tracer`` (a :class:`repro.obs.Tracer`) records the sim-time event
    stream — per-quantum domain airtime, flow completions, invariant
    violations — with zero effect on results. ``profiler`` (a
    :class:`repro.obs.Profiler`) times the wall-clock hot stages
    (capacity recompute, allocation) into the metrics registry. Both
    default to the shared no-op instances.
    """

    def __init__(self, testbed, quantum_s: float = 0.5,
                 cache_window_s: float = 5.0,
                 cache_entries: int = 50_000,
                 check_invariants: bool = False,
                 invariant_epsilon: float = 1e-6,
                 link_decorator=None,
                 tracer: Optional[Tracer] = None,
                 profiler: Optional[Profiler] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 legacy_default_horizon: bool = False):
        if quantum_s <= 0:
            raise ValueError("quantum must be positive")
        self.testbed = testbed
        self.quantum_s = quantum_s
        self.check_invariants = check_invariants
        self.invariant_epsilon = invariant_epsilon
        #: Optional ``f(link, medium, src, dst) -> Link`` applied to every
        #: link before its capacity is read — the fault-injection seam
        #: (:func:`repro.faults.faulty_link_decorator`). Note the capacity
        #: cache: a fault edge (outage start/end) is observed at the next
        #: recompute, so detection lag is bounded by ``cache_window_s``.
        self.link_decorator = link_decorator
        #: Test-only: reinstate the pre-fix default deadline
        #: ``t0 + (end_time + 60)`` that double-offset late scenario
        #: starts. Exists solely so `repro.verify` can demonstrate its
        #: oracles catch the historical bug; never set it in real runs.
        self.legacy_default_horizon = legacy_default_horizon
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._metrics = metrics
        self._capacity_cache = WindowedLruCache(cache_window_s,
                                                max_entries=cache_entries)
        self.log: List[QuantumLog] = []
        self.stats = RunnerStats(cache=self._capacity_cache.stats,
                                 registry=self._metrics)
        #: Set while a run is paused at an ``until_s`` boundary:
        #: ``{"t0", "t", "deadline"}``. ``None`` once the run completes
        #: (so callers can tell "paused" from "done").
        self._paused: Optional[Dict[str, object]] = None

    # --- per-flow capacity on one medium at time t ------------------------------

    def _link_capacity(self, flow: FlowRequest, medium: str,
                       t: float) -> float:
        return self._capacity_cache.get(
            (medium, flow.src, flow.dst), t,
            lambda: self._compute_capacity(flow, medium, t))

    def _compute_capacity(self, flow: FlowRequest, medium: str,
                          t: float) -> float:
        with self.profiler.stage("runner.capacity_compute"):
            link = get_medium(medium).get_link(self.testbed, flow.src,
                                               flow.dst)
            if link is None:  # e.g. PLC pairs split across boards
                return 0.0
            if self.link_decorator is not None:
                link = self.link_decorator(link, medium, flow.src,
                                           flow.dst)
            return max(link.throughput_bps(t, measured=False), 0.0)

    def _domain(self, flow: FlowRequest, medium: str) -> str:
        return get_medium(medium).contention_domain(self.testbed,
                                                    flow.src)

    # --- main loop -----------------------------------------------------------------

    def run(self, scenario: Scenario, horizon_s: Optional[float] = None,
            until_s: Optional[float] = None) -> Dict[str, FlowResult]:
        """Run the scenario and return per-flow results.

        ``horizon_s`` is **relative**: the maximum simulated duration
        measured from the first flow's start time. When omitted, the
        runner stops at ``scenario.end_time() + 60.0`` — an *absolute*
        deadline of "last scheduled flow end plus 60 s slack", which
        bounds file flows that never complete (e.g. on a dead link)
        without double-counting a late scenario start.

        ``until_s`` is an **absolute** pause point: the loop stops
        *before* executing the first quantum at ``t >= until_s``,
        records the paused position, and returns the partial results.
        A paused runner can be serialised with :meth:`snapshot` and the
        run continued — on this runner or a freshly built twin — with
        :meth:`resume`. The final ``runner.run`` trace span is emitted
        only when the run actually completes, with the *original* start
        time, so a sliced run's trace is byte-identical to a straight
        one.

        Each call resets :attr:`log` and :attr:`stats` (when no shared
        ``metrics`` registry was injected — an injected registry keeps
        accumulating across runs); the capacity cache persists across
        calls (it is keyed by absolute time).
        """
        if not scenario.flows:
            return {}
        t0 = min(f.start_s for f in scenario.flows)
        if horizon_s is not None:
            deadline = t0 + horizon_s
        elif self.legacy_default_horizon:
            deadline = t0 + (scenario.end_time() + 60.0)
        else:
            deadline = scenario.end_time() + 60.0
        self.log = []
        self._capacity_cache.stats.reset()
        self.stats = RunnerStats(cache=self._capacity_cache.stats,
                                 registry=self._metrics)
        self._paused = None
        results = {f.name: FlowResult(request=f) for f in scenario.flows}
        return self._loop(scenario, results, t0, t0, deadline, until_s)

    def _loop(self, scenario: Scenario,
              results: Dict[str, FlowResult], t0: float, t: float,
              deadline: float,
              until_s: Optional[float]) -> Dict[str, FlowResult]:
        """The quantum loop, resumable at any quantum boundary."""
        tracer = self.tracer
        while t < deadline:
            if until_s is not None and t >= until_s:
                self._paused = {"t0": t0, "t": t, "deadline": deadline}
                return results
            active = [f for f in scenario.flows
                      if f.start_s <= t and not self._done(results[f.name],
                                                           f, t)]
            if not active:
                upcoming = [f.start_s for f in scenario.flows
                            if f.start_s > t]
                if not upcoming:
                    break
                t = min(upcoming)
                continue
            self._step(active, results, t)
            self.log.append(QuantumLog(
                time=t, active_flows=len(active),
                domain_load=self._domain_census(active)))
            t += self.quantum_s
        self._paused = None
        if tracer.enabled:
            tracer.span("runner.run", t0, t, quanta=self.stats.quanta,
                        flows=len(scenario.flows))
        return results

    # --- snapshot / resume ---------------------------------------------------------

    @property
    def paused(self) -> bool:
        """Whether the last :meth:`run`/:meth:`resume` stopped at an
        ``until_s`` boundary rather than completing."""
        return self._paused is not None

    def snapshot(self, scenario: Scenario,
                 results: Dict[str, FlowResult]) -> Snapshot:
        """Serialise a paused run into a restorable :class:`Snapshot`.

        Captures everything the continued loop can observe: the paused
        position, per-flow progress, the quantum log, the testbed's RNG
        stream states, the windowed capacity cache *including its LRU
        order and counters*, and the metrics registry. Restoring into a
        freshly built testbed of the same preset+seed and calling
        :meth:`resume` continues bit-identically.
        """
        if self._paused is None:
            raise RuntimeError(
                "snapshot() requires a paused run — call "
                "run(..., until_s=...) first and only snapshot when "
                "`paused` is True")
        flows: Dict[str, Dict[str, object]] = {}
        for name in sorted(results):
            result = results[name]
            flows[name] = {
                "delivered_bytes": float(result.delivered_bytes),
                "active_time_s": float(result.active_time_s),
                "completed_at": (None if result.completed_at is None
                                 else float(result.completed_at)),
                "starved_quanta": int(result.starved_quanta),
            }
        payload = {
            "quantum_s": float(self.quantum_s),
            "t0": float(self._paused["t0"]),
            "t": float(self._paused["t"]),
            "deadline": float(self._paused["deadline"]),
            "flows": flows,
            "log": [
                {"time": float(entry.time),
                 "active_flows": int(entry.active_flows),
                 "domain_load": {d: int(n) for d, n
                                 in entry.domain_load.items()}}
                for entry in self.log
            ],
            "streams": snapshot_streams(self.testbed.streams),
            "cache": snapshot_cache(self._capacity_cache),
            "registry": self.stats.registry.to_dict(),
        }
        return Snapshot(kind=RUNNER_SNAPSHOT_KIND, payload=payload)

    def resume(self, scenario: Scenario, snap: Snapshot,
               until_s: Optional[float] = None) -> Dict[str, FlowResult]:
        """Continue a snapshotted run on this runner.

        The runner must wrap a *fresh* testbed built from the same
        preset and seed as the one snapshotted (its stream states are
        overwritten wholesale), and ``scenario`` must be the same
        scenario. The injected ``metrics`` registry, if any, is ignored
        for the resumed stats: the snapshot's registry is restored so
        cumulative counters continue exactly.
        """
        if snap.kind != RUNNER_SNAPSHOT_KIND:
            raise ValueError(
                f"cannot resume a {snap.kind!r} snapshot on a "
                f"ScenarioRunner (need {RUNNER_SNAPSHOT_KIND!r})")
        payload = snap.payload
        if float(payload["quantum_s"]) != self.quantum_s:
            raise ValueError(
                f"snapshot was taken at quantum_s="
                f"{payload['quantum_s']}, runner has {self.quantum_s}")
        names = {f.name for f in scenario.flows}
        if names != set(payload["flows"]):
            raise ValueError(
                "snapshot flow set does not match the scenario: "
                f"snapshot has {sorted(payload['flows'])}, scenario "
                f"has {sorted(names)}")
        restore_streams(self.testbed.streams, payload["streams"])
        restore_cache(self._capacity_cache, payload["cache"])
        self.stats = RunnerStats(
            cache=self._capacity_cache.stats,
            registry=MetricsRegistry.from_dict(payload["registry"]))
        self.log = [
            QuantumLog(time=entry["time"],
                       active_flows=int(entry["active_flows"]),
                       domain_load=dict(entry["domain_load"]))
            for entry in payload["log"]
        ]
        results = {}
        for flow in scenario.flows:
            state = payload["flows"][flow.name]
            results[flow.name] = FlowResult(
                request=flow,
                delivered_bytes=state["delivered_bytes"],
                active_time_s=state["active_time_s"],
                completed_at=state["completed_at"],
                starved_quanta=int(state["starved_quanta"]))
        self._paused = None
        return self._loop(scenario, results, payload["t0"],
                          payload["t"], payload["deadline"], until_s)

    def _done(self, result: FlowResult, flow: FlowRequest,
              t: float) -> bool:
        if result.finished:
            return True
        if flow.kind in ("saturated", "cbr"):
            if t >= flow.start_s + flow.duration_s:
                result.completed_at = flow.start_s + flow.duration_s
                return True
        return False

    def _domain_census(self, active: List[FlowRequest]) -> Dict[str, int]:
        census: Dict[str, int] = {}
        for flow in active:
            for medium in self._media(flow):
                key = self._domain(flow, medium)
                census[key] = census.get(key, 0) + 1
        return census

    @staticmethod
    def _media(flow: FlowRequest) -> Tuple[str, ...]:
        return constituent_media(flow.medium)

    # --- one quantum --------------------------------------------------------------

    def _step(self, active: List[FlowRequest],
              results: Dict[str, FlowResult], t: float) -> None:
        with self.profiler.stage("runner.allocate"):
            airtime, rates, fidx, didx, caps, domain_names = (
                self._allocate(active, t))
        n_flows = len(active)
        totals = np.bincount(fidx, weights=rates, minlength=n_flows)
        self._account(active, airtime, didx, domain_names, t)
        tracer = self.tracer
        # Book the quantum.
        for i, flow in enumerate(active):
            result = results[flow.name]
            rate = float(totals[i])
            moved = rate * self.quantum_s / 8.0
            if flow.kind == "file" and flow.size_bytes is not None:
                remaining = flow.size_bytes - result.delivered_bytes
                if moved >= remaining:
                    fraction = remaining / moved if moved > 0 else 0.0
                    result.delivered_bytes = flow.size_bytes
                    result.active_time_s += self.quantum_s * fraction
                    result.completed_at = t + self.quantum_s * fraction
                    if tracer.enabled:
                        tracer.event("runner.flow_done",
                                     result.completed_at,
                                     flow=flow.name,
                                     bytes=float(flow.size_bytes))
                    continue
            result.delivered_bytes += moved
            result.active_time_s += self.quantum_s
            if rate <= 0:
                result.starved_quanta += 1
                self.stats.note_starved()
                if tracer.enabled:
                    tracer.event("runner.flow_starved", t, flow=flow.name)

    def _allocate(self, active: List[FlowRequest], t: float):
        """Two-pass airtime allocation over all (flow, medium) pairs.

        Returns per-pair arrays: airtime fractions, rates (bps), flow
        indices, domain indices, capacities, plus the domain name list.
        """
        pair_flow: List[int] = []
        pair_domain: List[int] = []
        caps_list: List[float] = []
        domain_ids: Dict[str, int] = {}
        with self.profiler.stage("runner.capacity_lookup"):
            for i, flow in enumerate(active):
                for medium in self._media(flow):
                    pair_flow.append(i)
                    domain = self._domain(flow, medium)
                    pair_domain.append(
                        domain_ids.setdefault(domain, len(domain_ids)))
                    caps_list.append(self._link_capacity(flow, medium, t))
        fidx = np.asarray(pair_flow, dtype=np.intp)
        didx = np.asarray(pair_domain, dtype=np.intp)
        caps = np.asarray(caps_list, dtype=float)
        n_domains = len(domain_ids)
        # Pass 1: equal airtime shares per domain.
        members = np.bincount(didx, minlength=n_domains)
        airtime = 1.0 / members[didx]
        rates = caps * airtime
        # Pass 2: CBR flows cap at their offered rate. A capped flow keeps
        # only the airtime fraction it needs on *each* of its media and
        # returns the rest to that medium's domain — returning airtime
        # (not bits) and splitting per medium keeps every domain's total
        # at 1, where the old code credited a hybrid flow's full excess
        # to both domains at once.
        totals = np.bincount(fidx, weights=rates, minlength=len(active))
        spare = np.zeros(n_domains)
        for i, flow in enumerate(active):
            if (flow.kind != "cbr" or flow.rate_bps is None
                    or totals[i] <= flow.rate_bps):
                continue
            mask = fidx == i
            keep = flow.rate_bps / totals[i]
            np.add.at(spare, didx[mask], airtime[mask] * (1.0 - keep))
            airtime[mask] *= keep
            rates[mask] *= keep
        if spare.any():
            greedy_pair = np.array(
                [active[i].kind != "cbr" for i in pair_flow], dtype=bool)
            greedy_members = np.bincount(didx[greedy_pair],
                                         minlength=n_domains)
            bonus = np.divide(spare, greedy_members,
                              out=np.zeros(n_domains),
                              where=greedy_members > 0)
            extra = bonus[didx] * greedy_pair
            airtime = airtime + extra
            rates = rates + extra * caps
        domain_names = [None] * n_domains
        for name, k in domain_ids.items():
            domain_names[k] = name
        return airtime, rates, fidx, didx, caps, domain_names

    def _account(self, active: List[FlowRequest], airtime: np.ndarray,
                 didx: np.ndarray, domain_names: List[str],
                 t: float) -> None:
        """Record per-domain utilisation and check work conservation."""
        stats = self.stats
        tracer = self.tracer
        stats.note_quantum()
        used = np.bincount(didx, weights=airtime,
                           minlength=len(domain_names))
        for k, name in enumerate(domain_names):
            stats.add_domain_airtime(name, float(used[k]))
        if tracer.enabled:
            tracer.event("runner.quantum", t,
                         domains={name: round(float(used[k]), 9)
                                  for k, name in enumerate(domain_names)})
        peak = float(used.max()) if len(used) else 0.0
        stats.note_peak_airtime(peak, t)
        if peak > 1.0 + self.invariant_epsilon:
            stats.note_violation()
            worst = domain_names[int(np.argmax(used))]
            if tracer.enabled:
                tracer.event("runner.violation", t, domain=worst,
                             airtime=peak)
            if self.check_invariants:
                raise WorkConservationError(
                    f"domain {worst} allocated {peak:.6f} airtime at "
                    f"t={t:.3f} (> 1 + {self.invariant_epsilon})")
