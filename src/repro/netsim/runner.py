"""Quantum-based scenario execution with airtime-fair medium sharing.

The runner advances in fixed quanta (default 0.5 s). In each quantum:

1. flows that have started and not finished are *active*;
2. PLC flows sharing a contention domain (one AVLN/board — CSMA is
   domain-wide) split airtime equally among backlogged flows, so flow i's
   rate is ``capacity_i / n_backlogged`` (the round-based CSMA simulator's
   long-term behaviour, without paying its per-frame cost);
3. WiFi flows share the (single) channel the same way;
4. hybrid flows take their share on both media (§7.4's bond);
5. CBR flows consume at most their offered rate — leftover airtime goes
   back to the saturated flows in a second pass (work-conserving);
6. file flows retire once their bytes are moved.

This is deliberately fluid-level: the frame-level dynamics live in
:mod:`repro.plc.csma`; the runner answers capacity-planning questions
("what do these nine flows do to each other for ten minutes?") that the
paper's metrics exist to serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netsim.scenario import FlowRequest, FlowResult, Scenario


def results_to_campaign(results: Dict[str, "FlowResult"],
                        name: str = "scenario"):
    """Export scenario outcomes as a persistable measurement campaign."""
    from repro.analysis.traces import Campaign
    from repro.core.metrics import LinkMetricRecord

    campaign = Campaign(name=name, description="netsim scenario results")
    for flow_name, result in sorted(results.items()):
        request = result.request
        campaign.add(LinkMetricRecord(
            time=result.completed_at if result.finished
            else request.start_s + result.active_time_s,
            src=str(request.src), dst=str(request.dst),
            medium="wifi" if request.medium == "wifi" else "plc",
            capacity_bps=result.mean_rate_bps,
            throughput_bps=result.mean_rate_bps))
    return campaign


@dataclass
class QuantumLog:
    """Per-quantum utilisation snapshot (for time-series inspection)."""

    time: float
    active_flows: int
    domain_load: Dict[str, int]


class ScenarioRunner:
    """Execute a :class:`Scenario` against a testbed."""

    def __init__(self, testbed, quantum_s: float = 0.5):
        if quantum_s <= 0:
            raise ValueError("quantum must be positive")
        self.testbed = testbed
        self.quantum_s = quantum_s
        self.log: List[QuantumLog] = []

    # --- per-flow capacity on one medium at time t ------------------------------

    def _link_capacity(self, flow: FlowRequest, medium: str,
                       t: float) -> float:
        if medium == "plc":
            link = self.testbed.plc_link(flow.src, flow.dst)
            if link is None:
                return 0.0
            return max(link.throughput_bps(t, measured=False), 0.0)
        return max(self.testbed.wifi_link(flow.src, flow.dst)
                   .throughput_bps(t, measured=False), 0.0)

    def _domain(self, flow: FlowRequest, medium: str) -> str:
        if medium == "plc":
            return f"plc:{self.testbed.board_of(flow.src)}"
        return "wifi:floor"  # one shared 20 MHz channel (§4.1 setup)

    # --- main loop -----------------------------------------------------------------

    def run(self, scenario: Scenario, horizon_s: Optional[float] = None
            ) -> Dict[str, FlowResult]:
        """Run to ``horizon_s`` (default: scenario end + 60 s slack)."""
        if not scenario.flows:
            return {}
        t0 = min(f.start_s for f in scenario.flows)
        horizon = horizon_s if horizon_s is not None else (
            scenario.end_time() + 60.0)
        results = {f.name: FlowResult(request=f) for f in scenario.flows}
        t = t0
        while t < t0 + horizon:
            active = [f for f in scenario.flows
                      if f.start_s <= t and not self._done(results[f.name],
                                                           f, t)]
            if not active:
                upcoming = [f.start_s for f in scenario.flows
                            if f.start_s > t]
                if not upcoming:
                    break
                t = min(upcoming)
                continue
            self._step(active, results, t)
            self.log.append(QuantumLog(
                time=t, active_flows=len(active),
                domain_load=self._domain_census(active)))
            t += self.quantum_s
        return results

    def _done(self, result: FlowResult, flow: FlowRequest,
              t: float) -> bool:
        if result.finished:
            return True
        if flow.kind in ("saturated", "cbr"):
            if t >= flow.start_s + flow.duration_s:
                result.completed_at = flow.start_s + flow.duration_s
                return True
        return False

    def _domain_census(self, active: List[FlowRequest]) -> Dict[str, int]:
        census: Dict[str, int] = {}
        for flow in active:
            for medium in self._media(flow):
                key = self._domain(flow, medium)
                census[key] = census.get(key, 0) + 1
        return census

    @staticmethod
    def _media(flow: FlowRequest) -> Tuple[str, ...]:
        return ("plc", "wifi") if flow.medium == "hybrid" else (flow.medium,)

    def _step(self, active: List[FlowRequest],
              results: Dict[str, FlowResult], t: float) -> None:
        # Pass 1: equal airtime shares per domain.
        census = self._domain_census(active)
        allocation: Dict[str, float] = {f.name: 0.0 for f in active}
        spare: Dict[str, float] = {}
        for flow in active:
            for medium in self._media(flow):
                domain = self._domain(flow, medium)
                n = census[domain]
                share = self._link_capacity(flow, medium, t) / n
                allocation[flow.name] += share
        # Pass 2: CBR flows cap at their offered rate; spare airtime is
        # redistributed to saturated/file flows in the same domains.
        for flow in active:
            if flow.kind == "cbr" and flow.rate_bps is not None:
                granted = allocation[flow.name]
                if granted > flow.rate_bps:
                    excess = granted - flow.rate_bps
                    allocation[flow.name] = flow.rate_bps
                    for medium in self._media(flow):
                        domain = self._domain(flow, medium)
                        spare[domain] = spare.get(domain, 0.0) + excess
        greedy = [f for f in active if f.kind != "cbr"]
        for flow in greedy:
            for medium in self._media(flow):
                domain = self._domain(flow, medium)
                if spare.get(domain, 0.0) > 0:
                    bonus = spare[domain] / sum(
                        1 for g in greedy
                        if domain in (self._domain(g, m)
                                      for m in self._media(g)))
                    allocation[flow.name] += bonus
        # Book the quantum.
        for flow in active:
            result = results[flow.name]
            rate = allocation[flow.name]
            moved = rate * self.quantum_s / 8.0
            if flow.kind == "file" and flow.size_bytes is not None:
                remaining = flow.size_bytes - result.delivered_bytes
                if moved >= remaining:
                    fraction = remaining / moved if moved > 0 else 0.0
                    result.delivered_bytes = flow.size_bytes
                    result.active_time_s += self.quantum_s * fraction
                    result.completed_at = t + self.quantum_s * fraction
                    continue
            result.delivered_bytes += moved
            result.active_time_s += self.quantum_s
            if rate <= 0:
                result.starved_quanta += 1
