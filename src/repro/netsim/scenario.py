"""Scenario descriptions: who sends what, when, over which medium."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from repro.medium.registry import known_media
from repro.units import MBPS

VALID_KINDS = ("saturated", "cbr", "file")


@dataclass(frozen=True)
class FlowRequest:
    """One flow in a scenario.

    ``kind``:
      * ``saturated`` — sends as fast as the medium allows for ``duration_s``;
      * ``cbr`` — constant ``rate_bps`` for ``duration_s``;
      * ``file`` — moves ``size_bytes`` then completes.
    ``medium``: which interface(s) carry it ("hybrid" bonds both, §7.4).
    """

    name: str
    src: int
    dst: int
    start_s: float
    kind: str = "saturated"
    medium: str = "plc"
    duration_s: Optional[float] = None
    rate_bps: Optional[float] = None
    size_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown flow kind {self.kind!r}")
        if self.medium not in known_media():
            raise ValueError(f"unknown medium {self.medium!r} "
                             f"(known: {known_media()})")
        if self.kind == "cbr" and not self.rate_bps:
            raise ValueError("cbr flows need rate_bps")
        if self.kind == "file" and not self.size_bytes:
            raise ValueError("file flows need size_bytes")
        if self.kind in ("saturated", "cbr") and not self.duration_s:
            raise ValueError(f"{self.kind} flows need duration_s")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")

    # --- pickle-friendly boundary (campaign workers exchange plain dicts) ----

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form, safe to JSON-serialise and ship to a worker."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FlowRequest":
        return cls(**data)


@dataclass
class FlowResult:
    """Outcome of one flow after the scenario ran."""

    request: FlowRequest
    delivered_bytes: float = 0.0
    active_time_s: float = 0.0
    completed_at: Optional[float] = None
    starved_quanta: int = 0

    @property
    def mean_rate_bps(self) -> float:
        if self.active_time_s <= 0:
            return 0.0
        return self.delivered_bytes * 8 / self.active_time_s

    @property
    def mean_rate_mbps(self) -> float:
        return self.mean_rate_bps / MBPS

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for campaign artifacts (derived fields
        included so artifact consumers never recompute them)."""
        return {
            "flow": self.request.name,
            "src": self.request.src,
            "dst": self.request.dst,
            "kind": self.request.kind,
            "medium": self.request.medium,
            "delivered_bytes": self.delivered_bytes,
            "active_time_s": self.active_time_s,
            "completed_at": self.completed_at,
            "starved_quanta": self.starved_quanta,
            "mean_rate_bps": self.mean_rate_bps,
            "finished": self.finished,
        }


@dataclass
class Scenario:
    """A named set of flows over the testbed."""

    name: str
    flows: List[FlowRequest] = field(default_factory=list)

    def add(self, flow: FlowRequest) -> "Scenario":
        if any(f.name == flow.name for f in self.flows):
            raise ValueError(f"duplicate flow name {flow.name!r}")
        self.flows.append(flow)
        return self

    def end_time(self) -> float:
        """Latest time any flow could still be running (file flows are
        bounded by the runner's horizon)."""
        ends = [f.start_s + (f.duration_s or 0.0) for f in self.flows]
        return max(ends) if ends else 0.0


# --- named scenario library ---------------------------------------------------
#
# Campaign specs reference scenarios by name: a builder takes the measurement
# start time and returns a fresh Scenario, so the same workload can be re-run
# at any point of the simulated week, on any preset that has the stations.

ScenarioBuilder = Callable[[float], Scenario]

SCENARIO_LIBRARY: Dict[str, ScenarioBuilder] = {}


def register_scenario(name: str):
    """Decorator adding a builder to :data:`SCENARIO_LIBRARY`."""
    def wrap(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in SCENARIO_LIBRARY:
            raise ValueError(f"duplicate scenario name {name!r}")
        SCENARIO_LIBRARY[name] = builder
        return builder
    return wrap


def build_scenario(name: str, t_start: float) -> Scenario:
    """Instantiate a library scenario at ``t_start``."""
    try:
        builder = SCENARIO_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_LIBRARY))
        raise KeyError(
            f"unknown scenario {name!r} (known: {known})") from None
    return builder(t_start)


@register_scenario("office-afternoon")
def _office_afternoon(t: float) -> Scenario:
    """The whole-office slice the examples use: a hybrid video stream, two
    contending bulk transfers, a B2 sync and a background probe flow."""
    return (
        Scenario("office-afternoon")
        .add(FlowRequest("video", 0, 2, t, medium="hybrid",
                         kind="cbr", rate_bps=25 * MBPS, duration_s=600))
        .add(FlowRequest("bulk-a", 1, 3, t + 60, kind="file",
                         size_bytes=400e6, medium="plc"))
        .add(FlowRequest("bulk-b", 6, 9, t + 90, kind="file",
                         size_bytes=400e6, medium="plc"))
        .add(FlowRequest("sync", 13, 16, t + 120, kind="file",
                         size_bytes=150e6, medium="plc"))
        .add(FlowRequest("probe", 2, 7, t, kind="cbr",
                         rate_bps=150e3, duration_s=600))
    )


@register_scenario("bulk-contention")
def _bulk_contention(t: float) -> Scenario:
    """Three saturated PLC flows in one contention domain (B1 north leg)."""
    return (
        Scenario("bulk-contention")
        .add(FlowRequest("s0", 0, 1, t, kind="saturated", duration_s=120))
        .add(FlowRequest("s1", 1, 2, t, kind="saturated", duration_s=120))
        .add(FlowRequest("s2", 2, 0, t + 30, kind="saturated",
                         duration_s=120))
    )


@register_scenario("mini3-mixed")
def _mini3_mixed(t: float) -> Scenario:
    """A short mixed workload confined to stations 0-2 — runs on every
    preset, sized for CI smoke tests of the campaign engine."""
    return (
        Scenario("mini3-mixed")
        .add(FlowRequest("cbr", 0, 1, t, kind="cbr", rate_bps=10 * MBPS,
                         duration_s=60))
        .add(FlowRequest("file", 1, 2, t + 10, kind="file",
                         size_bytes=40e6, medium="plc"))
        .add(FlowRequest("wifi", 2, 0, t, kind="saturated", medium="wifi",
                         duration_s=60))
    )


@register_scenario("mini3-longhaul")
def _mini3_longhaul(t: float) -> Scenario:
    """The §6 temporal-study workload on stations 0-2: two weeks of
    continuous traffic (the Fig. 13/14 long-run shape) as three
    always-on flows. Pair it with a coarse runner quantum and
    ``--slice-horizon`` — a single monolithic run of this scenario is
    exactly the slow path time-sliced execution exists to break up."""
    two_weeks = 14 * 24 * 3600.0
    return (
        Scenario("mini3-longhaul")
        .add(FlowRequest("plc-sat", 0, 1, t, kind="saturated",
                         medium="plc", duration_s=two_weeks))
        .add(FlowRequest("cbr", 1, 2, t, kind="cbr", rate_bps=8 * MBPS,
                         duration_s=two_weeks))
        .add(FlowRequest("wifi-sat", 2, 0, t, kind="saturated",
                         medium="wifi", duration_s=two_weeks))
    )
