"""Scenario descriptions: who sends what, when, over which medium."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.units import MBPS

VALID_KINDS = ("saturated", "cbr", "file")
VALID_MEDIA = ("plc", "wifi", "hybrid")


@dataclass(frozen=True)
class FlowRequest:
    """One flow in a scenario.

    ``kind``:
      * ``saturated`` — sends as fast as the medium allows for ``duration_s``;
      * ``cbr`` — constant ``rate_bps`` for ``duration_s``;
      * ``file`` — moves ``size_bytes`` then completes.
    ``medium``: which interface(s) carry it ("hybrid" bonds both, §7.4).
    """

    name: str
    src: int
    dst: int
    start_s: float
    kind: str = "saturated"
    medium: str = "plc"
    duration_s: Optional[float] = None
    rate_bps: Optional[float] = None
    size_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown flow kind {self.kind!r}")
        if self.medium not in VALID_MEDIA:
            raise ValueError(f"unknown medium {self.medium!r}")
        if self.kind == "cbr" and not self.rate_bps:
            raise ValueError("cbr flows need rate_bps")
        if self.kind == "file" and not self.size_bytes:
            raise ValueError("file flows need size_bytes")
        if self.kind in ("saturated", "cbr") and not self.duration_s:
            raise ValueError(f"{self.kind} flows need duration_s")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")


@dataclass
class FlowResult:
    """Outcome of one flow after the scenario ran."""

    request: FlowRequest
    delivered_bytes: float = 0.0
    active_time_s: float = 0.0
    completed_at: Optional[float] = None
    starved_quanta: int = 0

    @property
    def mean_rate_bps(self) -> float:
        if self.active_time_s <= 0:
            return 0.0
        return self.delivered_bytes * 8 / self.active_time_s

    @property
    def mean_rate_mbps(self) -> float:
        return self.mean_rate_bps / MBPS

    @property
    def finished(self) -> bool:
        return self.completed_at is not None


@dataclass
class Scenario:
    """A named set of flows over the testbed."""

    name: str
    flows: List[FlowRequest] = field(default_factory=list)

    def add(self, flow: FlowRequest) -> "Scenario":
        if any(f.name == flow.name for f in self.flows):
            raise ValueError(f"duplicate flow name {flow.name!r}")
        self.flows.append(flow)
        return self

    def end_time(self) -> float:
        """Latest time any flow could still be running (file flows are
        bounded by the runner's horizon)."""
        ends = [f.start_s + (f.duration_s or 0.0) for f in self.flows]
        return max(ends) if ends else 0.0
