"""Network-level scenario simulation.

The paper measures one link (or one contending pair) at a time; a hybrid
network operator needs the next level up — many concurrent flows sharing
the PLC contention domains and the WiFi channel. :mod:`repro.netsim` runs
such scenarios at airtime-share granularity on top of the measured link
models, which is exactly the use the paper projects for its metrics
("routing and load balancing algorithms", §4.3).
"""

from repro.netsim.scenario import (
    SCENARIO_LIBRARY,
    FlowRequest,
    FlowResult,
    Scenario,
    build_scenario,
    register_scenario,
)
from repro.netsim.runner import (
    RunnerStats,
    ScenarioRunner,
    WorkConservationError,
    results_to_campaign,
)

__all__ = ["FlowRequest", "FlowResult", "RunnerStats", "Scenario",
           "ScenarioRunner", "WorkConservationError",
           "results_to_campaign", "SCENARIO_LIBRARY", "build_scenario",
           "register_scenario"]
