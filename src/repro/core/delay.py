"""Delay metrics for delay-sensitive applications (§8's motivation).

§8 opens: capacity "does not take into account interference ... another
metric could be useful for delay sensitive applications that do not
saturate the medium but have low delay requirements. Delay is affected by
retransmissions either due to bursty errors or to contention." This module
assembles the delay picture from the metrics the paper defines:

* **service time** — the MAC exchange at the link's BLE, repeated U-ETX
  times (retransmissions due to errors);
* **contention inflation** — the expected extra backoff/deferral when the
  medium is partly busy (retransmissions/waits due to contention), driven
  by the airtime occupancy of :mod:`repro.core.interference`;
* **queueing** — an M/G/1 term for non-saturating CBR flows;
* **jitter** — the service-time spread implied by the transmission-count
  variance (Fig. 22's error bars, turned into a delay number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.interference import AirtimeReport
from repro.plc import mac
from repro.units import MBPS


@dataclass(frozen=True)
class DelayEstimate:
    """Per-packet delay decomposition (all seconds)."""

    service_s: float       # one error-free MAC exchange
    retx_s: float          # extra exchanges due to channel errors
    contention_s: float    # waiting behind foreign traffic
    queueing_s: float      # own-queue (M/G/1) waiting
    jitter_s: float        # std of the total delay

    @property
    def total_s(self) -> float:
        return (self.service_s + self.retx_s + self.contention_s
                + self.queueing_s)


def service_time_s(link, t: float, payload_bytes: int = 1500,
                   timings: mac.MacTimings = mac.DEFAULT_TIMINGS) -> float:
    """One error-free MAC exchange for a packet on a PLC link."""
    ble = max(link.avg_ble_bps(t), 1 * MBPS)
    n_pbs = mac.pbs_for_payload(payload_bytes, link.spec)
    frame = mac.frame_duration_s(n_pbs, ble, link.spec.target_pb_error,
                                 link.spec, timings)
    return frame + timings.exchange_overhead_s(3.5)


def estimate_delay(link, t: float, payload_bytes: int = 1500,
                   offered_bps: float = 150e3,
                   airtime: Optional[AirtimeReport] = None
                   ) -> DelayEstimate:
    """Full per-packet delay estimate for a CBR flow on a PLC link.

    ``offered_bps`` is the flow's own rate (the paper's probe flows run at
    150 kbps); ``airtime`` describes foreign occupancy when known.
    """
    if offered_bps <= 0:
        raise ValueError("offered load must be positive")
    base = service_time_s(link, t, payload_bytes)
    etx = min(link.u_etx(t, payload_bytes), 25.0)
    etx_std = min(link.u_etx_std(t, payload_bytes), 25.0) \
        if hasattr(link, "u_etx_std") else 0.0
    retx = base * (etx - 1.0)

    # Contention: while foreign traffic holds the medium, our packet waits.
    # Expected residual busy time ≈ busy_fraction × mean busy period.
    foreign_fraction = airtime.foreign_fraction if airtime else 0.0
    mean_busy = base  # foreign frames are comparable exchanges
    contention = foreign_fraction * mean_busy / max(
        1.0 - foreign_fraction, 0.05)

    # Queueing (M/G/1, Pollaczek-Khinchine with squared CV from the
    # retransmission count variance).
    effective_service = base * etx + contention
    arrival_rate = offered_bps / (payload_bytes * 8)
    rho = arrival_rate * effective_service
    if rho >= 1.0:
        queueing = float("inf")
    else:
        cv2 = (etx_std / etx) ** 2 if etx > 0 else 0.0
        queueing = (rho * effective_service * (1 + cv2)
                    / (2 * (1 - rho)))
    jitter = base * etx_std
    return DelayEstimate(service_s=base, retx_s=retx,
                         contention_s=contention, queueing_s=queueing,
                         jitter_s=jitter)


def delay_budget_ok(estimate: DelayEstimate, budget_s: float,
                    jitter_budget_s: Optional[float] = None) -> bool:
    """Whether a link meets an application's delay (and jitter) budget."""
    if budget_s <= 0:
        raise ValueError("budget must be positive")
    if not np.isfinite(estimate.total_s) or estimate.total_s > budget_s:
        return False
    if jitter_budget_s is not None and estimate.jitter_s > jitter_budget_s:
        return False
    return True
