"""Table 3 as an executable policy engine.

The paper closes with guidelines for PLC link-metric estimation (§9,
Table 3). :func:`recommend` turns measured link state into a concrete
:class:`ProbingRecommendation`; :func:`audit_schedule` checks an existing
probing setup against every guideline and reports violations — useful for a
hybrid-network implementation that wants the paper's rules enforced in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.classification import (
    DEFAULT_THRESHOLDS,
    LinkQuality,
    QualityThresholds,
    classify_ble,
)
from repro.core.probing import AdaptiveProbingPolicy, ProbeSchedule
from repro.plc.spec import HPAV, PlcSpec


@dataclass(frozen=True)
class LinkState:
    """What the recommender needs to know about a link."""

    ble_fwd_bps: float
    ble_rev_bps: Optional[float] = None
    contended: bool = False   # is background traffic expected?


@dataclass(frozen=True)
class ProbingRecommendation:
    """A Table 3-compliant probing prescription."""

    metrics: tuple                  # metric names to collect
    unicast: bool
    average_over_slots: bool
    schedule: ProbeSchedule
    probe_both_directions: bool
    notes: tuple = ()


def recommend(state: LinkState, spec: PlcSpec = HPAV,
              policy: Optional[AdaptiveProbingPolicy] = None
              ) -> ProbingRecommendation:
    """Produce the paper's recommended probing setup for one link."""
    policy = policy or AdaptiveProbingPolicy()
    schedule = policy.schedule_for(state.ble_fwd_bps)
    notes: List[str] = []
    # Size guideline (§7.2): strictly more than one PB.
    payload = schedule.payload_bytes
    if payload <= spec.pb_total_bytes:
        payload = spec.pb_total_bytes + 1
        notes.append(
            f"probe payload raised to {payload} B: probes of at most one PB "
            f"pin the estimate at R_1sym ({spec.one_symbol_rate_bps/1e6:.1f} "
            f"Mbps)")
    burst = schedule.burst_packets
    if state.contended and burst < 20:
        burst = 20
        notes.append("background traffic expected: probes grouped into "
                     "20-packet bursts so frame aggregation shields the "
                     "channel estimator (§8.2); the measurement interval "
                     "is kept (the burst costs extra airtime rather than "
                     "sacrificing probing frequency)")
    # Asymmetry guideline (§5): severe asymmetry means the reverse link must
    # be probed on its own schedule.
    both = True
    if state.ble_rev_bps is not None and state.ble_fwd_bps > 0:
        ratio = max(state.ble_fwd_bps, state.ble_rev_bps) / max(
            min(state.ble_fwd_bps, state.ble_rev_bps), 1.0)
        if ratio > 1.5:
            notes.append(f"link is {ratio:.1f}x asymmetric: reverse "
                         "direction carries its own metric state")
    return ProbingRecommendation(
        metrics=("BLE", "PBerr"),
        unicast=True,
        average_over_slots=True,
        schedule=ProbeSchedule(interval_s=schedule.interval_s,
                               payload_bytes=payload,
                               burst_packets=burst),
        probe_both_directions=both,
        notes=tuple(notes))


@dataclass(frozen=True)
class GuidelineViolation:
    """One broken Table 3 rule."""

    guideline: str
    detail: str


def audit_schedule(schedule: ProbeSchedule, *, unicast: bool,
                   averages_over_slots: bool, probes_both_directions: bool,
                   link_quality: LinkQuality,
                   contended: bool = False,
                   spec: PlcSpec = HPAV,
                   thresholds: QualityThresholds = DEFAULT_THRESHOLDS
                   ) -> List[GuidelineViolation]:
    """Check a probing setup against every Table 3 guideline."""
    violations: List[GuidelineViolation] = []
    if not unicast:
        violations.append(GuidelineViolation(
            "unicast probing only",
            "broadcast probes ride ROBO modulation and carry no link-quality "
            "information (§8.1)"))
    if not averages_over_slots:
        violations.append(GuidelineViolation(
            "shortest time-scale",
            "BLE must be averaged over the mains cycle's tone-map slots "
            "(§6.1)"))
    if schedule.payload_bytes <= spec.pb_total_bytes:
        violations.append(GuidelineViolation(
            "size of probes",
            f"payload {schedule.payload_bytes} B fits in one PB; the rate "
            f"adaptation converges to R_1sym instead of capacity (§7.2)"))
    if link_quality is LinkQuality.GOOD and schedule.interval_s < 30.0:
        violations.append(GuidelineViolation(
            "frequency of probes",
            "good links hold their tone maps for tens of seconds; probing "
            f"every {schedule.interval_s:g} s wastes airtime (§6.2, §7.3)"))
    if link_quality is LinkQuality.BAD and schedule.interval_s > 10.0:
        violations.append(GuidelineViolation(
            "frequency of probes",
            "bad links change at ~100 ms scale; probing every "
            f"{schedule.interval_s:g} s misses the variation (§6.2)"))
    if contended and schedule.burst_packets < 10:
        violations.append(GuidelineViolation(
            "burstiness of probes",
            "short probes colliding with long frames corrupt the channel "
            "estimate (capture effect); group probes into bursts (§8.2)"))
    if not probes_both_directions:
        violations.append(GuidelineViolation(
            "asymmetry in probing",
            "PLC links are spatially and temporally asymmetric; both "
            "directions need their own metrics (§5, §6.2)"))
    return violations
