"""Link-quality classification (§7.3's heuristics).

The paper classifies links by average BLE to set probing frequency:
bad < 60 Mbps ≤ average < 100 Mbps ≤ good. The thresholds are
technology-dependent (§6.2 footnote), so they are parameters here with the
paper's HPAV values as defaults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import MBPS


class LinkQuality(enum.Enum):
    """Quality classes used throughout §6–§7."""

    BAD = "bad"
    AVERAGE = "average"
    GOOD = "good"


@dataclass(frozen=True)
class QualityThresholds:
    """BLE thresholds (bits/s) separating the classes."""

    bad_below_bps: float = 60.0 * MBPS
    good_above_bps: float = 100.0 * MBPS

    def __post_init__(self) -> None:
        if self.bad_below_bps >= self.good_above_bps:
            raise ValueError("bad threshold must sit below good threshold")


#: The paper's HPAV thresholds (§7.3).
DEFAULT_THRESHOLDS = QualityThresholds()


def classify_ble(ble_bps: float,
                 thresholds: QualityThresholds = DEFAULT_THRESHOLDS
                 ) -> LinkQuality:
    """Classify a link by its average BLE in bits/s."""
    if ble_bps < 0:
        raise ValueError("BLE cannot be negative")
    if ble_bps < thresholds.bad_below_bps:
        return LinkQuality.BAD
    if ble_bps >= thresholds.good_above_bps:
        return LinkQuality.GOOD
    return LinkQuality.AVERAGE


def classify_ble_mbps(ble_mbps: float,
                      thresholds: QualityThresholds = DEFAULT_THRESHOLDS
                      ) -> LinkQuality:
    """Convenience wrapper taking Mbps (the paper's reporting unit)."""
    return classify_ble(ble_mbps * MBPS, thresholds)
