"""The two-metric PLC abstraction: model a link with only BLE_s and PBerr.

The paper's §2.2 punchline: "the full retransmission and aggregation
process, and, as a result, the MAC and PHY layers, can be modeled using only
two metrics: PBerr and BLE_s" — i.e. a hybrid-network simulator does not
need the channel model, the OFDM grid or the CSMA state machine; a
two-metric stochastic process per link reproduces the end-to-end behaviour.

This module delivers that abstraction:

* :class:`TwoMetricLinkModel` — a synthetic PLC link driven by a per-slot
  BLE process (invariance scale) with cycle-scale jitter and random-scale
  regime switching, plus a coupled PBerr process. It exposes the same
  measurement surface as :class:`repro.plc.link.PlcLink` (``avg_ble_bps``,
  ``ble_per_slot_bps``, ``pb_err``, ``throughput_bps``, ``u_etx``), so
  everything built on links — probing policies, estimators, load balancers
  — runs on it unchanged;
* :func:`fit_two_metric_model` — fits the model's parameters from
  measurements of a real (here: physically-simulated) link, the workflow
  the paper proposes for characterising PLC without re-implementing it.

The validation benchmark (`benchmarks/test_ablation_two_metric_model.py`)
checks that the fitted abstraction reproduces the physical link's
throughput mean/σ and U-ETX — the paper's claim, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.medium.link import BatchSamplingMixin, Link
from repro.plc import mac
from repro.plc.link import PlcSample
from repro.plc.spec import HPAV, PlcSpec
from repro.sim.random import RandomStreams
from repro.units import MBPS


@dataclass(frozen=True)
class TwoMetricParameters:
    """Everything the abstraction needs to know about one directed link.

    Attributes
    ----------
    slot_ble_bps:
        Mean BLE of each tone-map slot (the invariance-scale structure).
    jitter_sigma_rel:
        Relative std of the cycle-scale jitter around the slot means.
    jitter_hold_s:
        Time between jitter re-draws (the link's α scale).
    pb_err_base:
        Median PB error rate.
    pb_err_spread:
        Log-scale spread of PBerr around its base (bursty links are wide).
    """

    slot_ble_bps: tuple
    jitter_sigma_rel: float
    jitter_hold_s: float
    pb_err_base: float
    pb_err_spread: float

    def __post_init__(self) -> None:
        if len(self.slot_ble_bps) == 0:
            raise ValueError("need at least one slot mean")
        if any(b < 0 for b in self.slot_ble_bps):
            raise ValueError("slot BLE means cannot be negative")
        if not 0.0 <= self.pb_err_base < 1.0:
            raise ValueError("pb_err_base must be in [0, 1)")
        if self.jitter_hold_s <= 0:
            raise ValueError("jitter hold must be positive")

    @property
    def mean_ble_bps(self) -> float:
        return float(np.mean(self.slot_ble_bps))


class TwoMetricLinkModel(BatchSamplingMixin):
    """A synthetic PLC link built from :class:`TwoMetricParameters`.

    Deterministic given (parameters, name, seed): the jitter is hashed per
    hold interval exactly like the physical channel's, so experiments are
    replayable.

    Implements the :class:`repro.medium.Link` contract with
    ``medium == "plc"`` — the §2.2 claim made literal: the abstraction is
    a drop-in link for every medium-agnostic consumer. ``sample_series``
    comes from :class:`~repro.medium.link.BatchSamplingMixin` (the model
    is already cheap; the mixin keeps it bit-identical by construction).
    """

    medium = "plc"

    def __init__(self, params: TwoMetricParameters,
                 streams: RandomStreams, name: str = "two-metric",
                 spec: PlcSpec = HPAV):
        self.params = params
        self.name = name
        self.spec = spec
        self._streams = streams
        self._rng = streams.get(f"twometric.meas.{name}")
        self._throughput_model = mac.SaturatedThroughputModel(spec)

    # --- internal processes ----------------------------------------------------

    def _jitter_rel(self, t: float) -> float:
        """Cycle-scale multiplicative jitter, piecewise constant."""
        index = int(t / self.params.jitter_hold_s)
        rng = self._streams.fresh(f"twometric.jitter.{self.name}.{index}")
        return float(1.0 + self.params.jitter_sigma_rel
                     * rng.standard_normal())

    def _pb_err_at(self, t: float) -> float:
        index = int(t / self.params.jitter_hold_s)
        rng = self._streams.fresh(f"twometric.pberr.{self.name}.{index}")
        log_p = (np.log(max(self.params.pb_err_base, 1e-6))
                 + self.params.pb_err_spread * rng.standard_normal())
        return float(np.clip(np.exp(log_p), 0.0, 0.95))

    # --- the PlcLink measurement surface ------------------------------------------

    def ble_per_slot_bps(self, t: float) -> np.ndarray:
        base = np.asarray(self.params.slot_ble_bps, dtype=float)
        return np.maximum(base * self._jitter_rel(t), 0.0)

    def avg_ble_bps(self, t: float) -> float:
        return float(np.mean(self.ble_per_slot_bps(t)))

    def pb_err(self, t: float) -> float:
        return self._pb_err_at(t)

    def capacity_bps(self, t: float) -> float:
        """Slot-averaged BLE through the MAC model, like the physical
        link's §7.4 estimate."""
        return float(max(
            self._throughput_model.throughput_bps(self.avg_ble_bps(t)),
            0.0))

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        residual = max(0.0, self.pb_err(t) - self.spec.target_pb_error)
        thr = self._throughput_model.throughput_bps(self.avg_ble_bps(t),
                                                    residual)
        if thr <= 0:
            return 0.0
        if measured:
            thr += self._rng.normal(0.0, 0.3 * MBPS)
        return max(thr, 0.0)

    def is_connected(self, t: float,
                     min_throughput_bps: float = 1.0 * MBPS) -> bool:
        return self.throughput_bps(t, measured=False) >= min_throughput_bps

    def u_etx(self, t: float, payload_bytes: int = 1500) -> float:
        n_pbs = mac.pbs_for_payload(payload_bytes, self.spec)
        return mac.expected_transmissions(n_pbs, self.pb_err(t))

    def sample(self, t: float, measured: bool = True) -> PlcSample:
        """Full snapshot at ``t`` — same record type as the physical link."""
        per_slot = self.ble_per_slot_bps(t)
        pb = self.pb_err(t)
        return PlcSample(
            time=t,
            capacity_bps=self.capacity_bps(t),
            throughput_bps=self.throughput_bps(t, measured=measured),
            loss=pb,
            ble_per_slot_bps=per_slot,
            avg_ble_bps=float(np.mean(per_slot)),
            pb_err=pb,
        )


def fit_two_metric_model(link: Link, t_start: float,
                         duration: float = 60.0,
                         sample_interval: float = 0.05
                         ) -> TwoMetricParameters:
    """Characterise a link into two-metric parameters (the paper's recipe).

    Samples the link's per-slot BLE and PBerr at MM resolution — one
    ``sample_series`` batch over the medium contract (MM reads carry no
    measurement noise) — and extracts the slot means, the relative
    jitter, its hold time (from the BLE change inter-arrivals, §6.2) and
    the PBerr distribution.
    """
    times = np.arange(t_start, t_start + duration, sample_interval)
    series = link.sample_series(times, measured=False)
    per_slot = series.column("ble_per_slot_bps")
    stride = max(1, len(times) // 200)
    pb_errs = np.minimum(series.column("pb_err")[::stride], 0.95)

    slot_means = per_slot.mean(axis=0)
    avg = per_slot.mean(axis=1)
    mean_ble = float(avg.mean())
    sigma_rel = float(avg.std() / mean_ble) if mean_ble > 0 else 0.0

    # Hold time: mean gap between changes of the slot-average BLE.
    rel_change = np.abs(np.diff(avg)) / max(mean_ble, 1.0)
    change_idx = np.nonzero(rel_change > 1e-4)[0]
    if len(change_idx) >= 2:
        hold = float(np.mean(np.diff(change_idx)) * sample_interval)
    else:
        hold = duration
    hold = float(np.clip(hold, sample_interval, 30.0))

    positive = pb_errs[pb_errs > 0]
    if len(positive):
        base = float(np.median(positive))
        spread = float(np.std(np.log(positive)))
    else:
        base, spread = 1e-4, 0.1
    return TwoMetricParameters(
        slot_ble_bps=tuple(float(b) for b in slot_means),
        jitter_sigma_rel=sigma_rel,
        jitter_hold_s=hold,
        pb_err_base=base,
        pb_err_spread=min(spread, 3.0))


def compare_models(physical: Link, synthetic: TwoMetricLinkModel,
                   t_start: float, duration: float = 60.0,
                   interval: float = 0.1) -> dict:
    """Side-by-side statistics of the physical link and its abstraction."""
    times = np.arange(t_start, t_start + duration, interval)
    phys = physical.sample_series(times).throughput_bps
    synth = synthetic.sample_series(times).throughput_bps
    return {
        "physical_mean_bps": float(phys.mean()),
        "synthetic_mean_bps": float(synth.mean()),
        "physical_std_bps": float(phys.std()),
        "synthetic_std_bps": float(synth.std()),
        "physical_u_etx": float(np.mean(
            [physical.u_etx(float(t)) for t in times[::10]])),
        "synthetic_u_etx": float(np.mean(
            [synthetic.u_etx(float(t)) for t in times[::10]])),
    }
