"""The paper's contribution: PLC link metrics and estimation techniques.

Everything under :mod:`repro.core` is technology-facing *measurement and
estimation* machinery — what a hybrid-network implementer (IEEE 1905) would
lift from the paper:

* :mod:`repro.core.metrics` — metric records (BLE, PBerr, throughput, ETX);
* :mod:`repro.core.classification` — link-quality classes (§7.3 heuristics);
* :mod:`repro.core.capacity` — BLE-based capacity estimation (§7.1);
* :mod:`repro.core.probing` — probe schedules: fixed, quality-adaptive
  (§7.3), bursty (§8.2), with overhead accounting;
* :mod:`repro.core.variation` — the three-timescale variation analysis (§6);
* :mod:`repro.core.etx` — broadcast ETX vs unicast U-ETX (§8.1);
* :mod:`repro.core.estimation_error` — accuracy-vs-overhead evaluation
  (Fig. 19);
* :mod:`repro.core.guidelines` — Table 3 as an executable policy engine.
"""

from repro.core.capacity import CapacityEstimate, estimate_capacity_mbps
from repro.core.classification import LinkQuality, classify_ble_mbps
from repro.core.metrics import LinkMetricRecord, MetricSeries
from repro.core.probing import (
    AdaptiveProbingPolicy,
    FixedProbingPolicy,
    ProbeSchedule,
)

__all__ = [
    "LinkMetricRecord",
    "MetricSeries",
    "LinkQuality",
    "classify_ble_mbps",
    "CapacityEstimate",
    "estimate_capacity_mbps",
    "ProbeSchedule",
    "FixedProbingPolicy",
    "AdaptiveProbingPolicy",
]
