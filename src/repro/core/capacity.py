"""Capacity estimation via BLE (§7).

The paper's technique: send a few unicast probe packets (so the devices keep
estimating tone maps), then either

* capture SoF delimiters and average BLE_s over the tone-map slots of the
  mains cycle (invariance scale, §6.1), or
* request the average BLE with a management message (``int6krate``).

Both are implemented here. :func:`estimate_capacity_from_sofs` also exposes
the *wrong* way (no slot averaging) so the slot-averaging ablation bench can
quantify why §7.1 insists on averaging over the invariance scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.plc.channel_estimation import ChannelEstimator
from repro.plc.frames import SofDelimiter
from repro.plc.mac import SaturatedThroughputModel
from repro.plc.spec import PlcSpec
from repro.units import MBPS


@dataclass(frozen=True)
class CapacityEstimate:
    """A capacity estimate with provenance."""

    time: float
    capacity_bps: float
    method: str          # "sof-slot-average" | "mm-int6krate" | "sof-naive"
    n_samples: int

    @property
    def capacity_mbps(self) -> float:
        return self.capacity_bps / MBPS


def estimate_capacity_from_sofs(sofs: Sequence[SofDelimiter],
                                num_slots: int = 6,
                                slot_average: bool = True
                                ) -> CapacityEstimate:
    """Estimate capacity (average BLE) from captured frame headers.

    With ``slot_average=True`` (the paper's method) BLE readings are first
    averaged per tone-map slot and the slot means are averaged, so uneven
    sampling of the mains cycle cannot bias the estimate. With ``False`` the
    readings are pooled naively — biased whenever the frame cadence beats
    against the 10 ms tone-map period (the ablation's point).
    """
    if not sofs:
        raise ValueError("need at least one captured SoF")
    times = np.array([s.timestamp for s in sofs])
    bles = np.array([s.ble_bps for s in sofs])
    slots = np.array([s.slot for s in sofs])
    if slot_average:
        slot_means = [bles[slots == s].mean()
                      for s in range(num_slots) if np.any(slots == s)]
        capacity = float(np.mean(slot_means))
        method = "sof-slot-average"
    else:
        capacity = float(bles.mean())
        method = "sof-naive"
    return CapacityEstimate(time=float(times.max()), capacity_bps=capacity,
                            method=method, n_samples=len(sofs))


def estimate_capacity_mbps(sofs: Sequence[SofDelimiter],
                           num_slots: int = 6) -> float:
    """Shorthand: the paper's slot-averaged BLE estimate, in Mbps."""
    return estimate_capacity_from_sofs(sofs, num_slots).capacity_mbps


@dataclass(frozen=True)
class ThroughputPrediction:
    """Throughput predicted from a BLE capacity estimate (Fig. 15's fit)."""

    capacity_bps: float
    throughput_bps: float

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / MBPS


def predict_throughput(capacity_bps: float,
                       spec: PlcSpec) -> ThroughputPrediction:
    """Map a BLE estimate to expected UDP throughput via the MAC model.

    This is the practical payoff of Fig. 15: BLE is a linear predictor of
    application throughput (BLE ≈ 1.7 T), so a load balancer can weight
    mediums straight from frame-header fields.
    """
    model = SaturatedThroughputModel(spec)
    return ThroughputPrediction(
        capacity_bps=capacity_bps,
        throughput_bps=model.throughput_bps(capacity_bps))


class ProbingCapacitySession:
    """Drives a reset→probe→converge estimation run (Figs. 16–18).

    Sends probe packets of a given size/rate through the receive-side
    :class:`ChannelEstimator` and records the estimated capacity over time,
    emulating the paper's protocol (device reset, then N packets/s, capacity
    polled by MM).
    """

    def __init__(self, estimator: ChannelEstimator,
                 payload_bytes: int = 1300,
                 packets_per_second: float = 10.0,
                 burst_packets: int = 1):
        if packets_per_second <= 0:
            raise ValueError("probe rate must be positive")
        if burst_packets < 1:
            raise ValueError("burst size must be >= 1")
        self.estimator = estimator
        self.payload_bytes = payload_bytes
        self.packets_per_second = packets_per_second
        self.burst_packets = burst_packets

    def run(self, t_start: float, duration: float,
            sample_interval: float = 10.0,
            pauses: Optional[List[tuple]] = None) -> List[CapacityEstimate]:
        """Probe for ``duration`` seconds; return capacity samples.

        ``pauses`` is a list of (start, end) windows (absolute times) during
        which no probes are sent — the Fig. 17 pause/resume protocol.
        """
        pauses = pauses or []

        def paused(t: float) -> bool:
            return any(a <= t < b for a, b in pauses)

        from repro.plc.mac import pbs_for_payload

        pbs_per_packet = pbs_for_payload(self.payload_bytes,
                                         self.estimator.spec)
        # Multi-PB probes never trigger the one-symbol pathology, so their
        # observations can be bulk-accounted per sample window (fast path).
        fast_path = pbs_per_packet >= 2
        estimates: List[CapacityEstimate] = []
        interval = self.burst_packets / self.packets_per_second
        t = t_start
        next_sample = t_start
        n_sent = 0
        end = t_start + duration
        while t < end:
            step_end = min(next_sample, end)
            if fast_path and step_end - t > interval:
                # Account every probe in [t, step_end) at once.
                n_slots = int(np.ceil((step_end - t) / interval))
                count = n_slots * self.burst_packets
                for a, b in pauses:
                    overlap = min(b, step_end) - max(a, t)
                    if overlap > 0:
                        count -= int(overlap / interval) * self.burst_packets
                count = max(count, 0)
                if count:
                    self.estimator.observe_clean_pbs(
                        step_end, count * pbs_per_packet)
                n_sent += count
                t += n_slots * interval
            else:
                if not paused(t):
                    if self.burst_packets == 1:
                        self.estimator.observe_probe_packet(
                            t, self.payload_bytes)
                    else:
                        # A burst aggregates into one long frame (§8.2).
                        self.estimator.observe_frame(
                            t, pbs_per_packet * self.burst_packets)
                    n_sent += self.burst_packets
                t += interval
            while next_sample <= t:
                estimates.append(CapacityEstimate(
                    time=next_sample,
                    capacity_bps=self.estimator.estimated_capacity_bps(
                        next_sample),
                    method="mm-int6krate", n_samples=n_sent))
                next_sample += sample_interval
        return estimates
