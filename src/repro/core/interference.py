"""Interference-aware metrics: the paper's declared future work (§8.2).

§8 closes with: "estimating the amount of interference is challenging and
should be further investigated. We leave this extension for future work."
This module implements the natural extension using only observables the
paper's tooling already provides:

* **airtime busy fraction** — the SoF sniffer sees every frame on the wire
  (delimiters ride ROBO), so the share of time the medium is busy with
  *other* stations' traffic is directly measurable;
* **available bandwidth** — capacity (from BLE, §7.1) scaled by the idle
  airtime, the quantity a load balancer actually wants (§8's observation
  that capacity "does not take into account interference");
* **contention-aware ETT** — the §4.3 routing metric corrected for the
  measured contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.plc.frames import SofDelimiter


@dataclass(frozen=True)
class AirtimeReport:
    """Occupancy of a contention domain seen by one station's sniffer."""

    window_s: float
    own_airtime_s: float
    foreign_airtime_s: float

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window must be positive")
        if self.own_airtime_s < 0 or self.foreign_airtime_s < 0:
            raise ValueError("airtime cannot be negative")

    @property
    def busy_fraction(self) -> float:
        """Total share of the window the medium was busy."""
        return min(1.0, (self.own_airtime_s + self.foreign_airtime_s)
                   / self.window_s)

    @property
    def foreign_fraction(self) -> float:
        """Share of the window consumed by *other* stations."""
        return min(1.0, self.foreign_airtime_s / self.window_s)

    @property
    def idle_fraction(self) -> float:
        return max(0.0, 1.0 - self.busy_fraction)


def airtime_report(sofs: Sequence[SofDelimiter], window_s: float,
                   own_station: str) -> AirtimeReport:
    """Aggregate a SoF capture into an airtime occupancy report.

    ``own_station`` marks which transmissions belong to the measuring
    station itself (its own traffic is not interference).
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    own = 0.0
    foreign = 0.0
    for sof in sofs:
        if sof.src == own_station:
            own += sof.duration_s
        else:
            foreign += sof.duration_s
    return AirtimeReport(window_s=window_s, own_airtime_s=own,
                         foreign_airtime_s=foreign)


def available_bandwidth_bps(capacity_bps: float,
                            report: AirtimeReport) -> float:
    """Capacity scaled by the airtime others leave free.

    The medium share a new flow can claim is (idle + own): the flow keeps
    whatever it already uses and can grab the idle remainder, but not the
    foreign traffic's share.
    """
    if capacity_bps < 0:
        raise ValueError("capacity cannot be negative")
    return capacity_bps * max(0.0, 1.0 - report.foreign_fraction)


def contention_aware_ett_s(capacity_bps: float, etx: float,
                           report: Optional[AirtimeReport],
                           packet_bytes: int = 1500) -> float:
    """ETT corrected for measured contention (the §4.3 routing metric).

    Without a report this is the plain Draves-Padhye-Zill ETT; with one,
    the effective rate shrinks by the foreign airtime share.
    """
    if etx < 1.0:
        raise ValueError("ETX is at least 1")
    rate = capacity_bps
    if report is not None:
        rate = available_bandwidth_bps(capacity_bps, report)
    if rate <= 0:
        return float("inf")
    return etx * packet_bytes * 8 / rate
