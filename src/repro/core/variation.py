"""Three-timescale temporal-variation analysis (§6).

The decomposition the paper adopts (Fig. 8):

* **invariance scale** — BLE_s varies across the 6 tone-map slots within a
  half mains cycle (periodic, 10 ms at 50 Hz);
* **cycle scale** — over multiples of the mains cycle, BLE_s fluctuates
  around a stationary mean with a variance tied to link quality;
* **random scale** — over minutes/hours, the mean itself moves with the
  electrical load (appliance switching, 9 pm lights-off, weekends).

This module turns raw measurements (SoF captures, MM polling traces,
long-run samples) into the statistics the paper's Figs. 9–14 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.metrics import MetricSeries
from repro.plc.frames import SofDelimiter
from repro.sim.clock import MainsClock
from repro.units import HOUR


# --- invariance scale (Fig. 9) ------------------------------------------------


@dataclass(frozen=True)
class InvarianceScaleStats:
    """Per-slot BLE statistics from a capture window."""

    slot_means_bps: np.ndarray        # shape (num_slots,)
    slot_stds_bps: np.ndarray
    periodicity_s: float              # expected 10 ms at 50 Hz

    @property
    def slot_spread_ratio(self) -> float:
        """max/min of the slot means — how much averaging matters (§6.1)."""
        lo = float(self.slot_means_bps.min())
        return float(self.slot_means_bps.max()) / lo if lo > 0 else np.inf


def invariance_scale_stats(sofs: Sequence[SofDelimiter],
                           num_slots: int = 6,
                           half_cycle_s: float = 0.010
                           ) -> InvarianceScaleStats:
    """Per-slot BLE statistics from captured SoF delimiters."""
    if not sofs:
        raise ValueError("no SoFs captured")
    means = np.zeros(num_slots)
    stds = np.zeros(num_slots)
    bles = np.array([s.ble_bps for s in sofs])
    slots = np.array([s.slot for s in sofs])
    for s in range(num_slots):
        mask = slots == s
        if np.any(mask):
            means[s] = bles[mask].mean()
            stds[s] = bles[mask].std()
    return InvarianceScaleStats(slot_means_bps=means, slot_stds_bps=stds,
                                periodicity_s=half_cycle_s)


# --- cycle scale (Figs. 10, 11) --------------------------------------------------


@dataclass(frozen=True)
class CycleScaleStats:
    """Fig. 11's per-link summary: update inter-arrival α and BLE spread."""

    mean_ble_bps: float
    std_ble_bps: float
    mean_alpha_s: float         # mean time between BLE-value changes
    n_updates: int

    @property
    def coefficient_of_variation(self) -> float:
        return (self.std_ble_bps / self.mean_ble_bps
                if self.mean_ble_bps > 0 else np.inf)


def cycle_scale_stats(series: MetricSeries,
                      change_threshold: float = 0.002) -> CycleScaleStats:
    """Summarise a BLE-polling trace (MM every 50 ms, §6.2).

    ``α`` is the inter-arrival time of consecutive BLE *changes* — a value
    change means the devices regenerated the tone map.
    """
    if len(series) < 2:
        raise ValueError("need at least two samples")
    changes = series.change_times(rel_threshold=change_threshold)
    if len(changes) >= 2:
        alpha = float(np.mean(np.diff(changes)))
    elif len(changes) == 1:
        alpha = float(series.times[-1] - series.times[0])
    else:
        # No change observed: α is at least the window length.
        alpha = float(series.times[-1] - series.times[0])
    return CycleScaleStats(mean_ble_bps=series.mean,
                           std_ble_bps=series.std,
                           mean_alpha_s=alpha,
                           n_updates=len(changes))


def quality_variability_correlation(stats: Sequence[CycleScaleStats]
                                    ) -> float:
    """Pearson correlation between mean BLE and std of BLE across links.

    The paper's headline: strongly *negative* — good links barely move
    (§6.2, Fig. 11 right).
    """
    if len(stats) < 3:
        raise ValueError("need at least three links")
    means = np.array([s.mean_ble_bps for s in stats])
    stds = np.array([s.std_ble_bps for s in stats])
    return float(np.corrcoef(means, stds)[0, 1])


# --- random scale (Figs. 12–14) -----------------------------------------------------


@dataclass(frozen=True)
class HourOfDayProfile:
    """Hourly mean/std of a metric, split weekday vs weekend (Fig. 13/14)."""

    hours: np.ndarray                  # 0..23
    weekday_mean: np.ndarray
    weekday_std: np.ndarray
    weekend_mean: np.ndarray
    weekend_std: np.ndarray


def hour_of_day_profile(series: MetricSeries,
                        clock: MainsClock = MainsClock()
                        ) -> HourOfDayProfile:
    """Aggregate a long-run series into the paper's 2-week hourly view."""
    if not len(series):
        raise ValueError("empty series")
    hours = np.arange(24)
    wk_mean = np.full(24, np.nan)
    wk_std = np.full(24, np.nan)
    we_mean = np.full(24, np.nan)
    we_std = np.full(24, np.nan)
    sample_hours = np.array([int(clock.hour_of_day(t)) for t in series.times])
    weekend = np.array([clock.is_weekend(t) for t in series.times])
    for h in hours:
        for is_we, mean_arr, std_arr in ((False, wk_mean, wk_std),
                                         (True, we_mean, we_std)):
            mask = (sample_hours == h) & (weekend == is_we)
            if np.any(mask):
                mean_arr[h] = series.values[mask].mean()
                std_arr[h] = series.values[mask].std()
    return HourOfDayProfile(hours=hours, weekday_mean=wk_mean,
                            weekday_std=wk_std, weekend_mean=we_mean,
                            weekend_std=we_std)


def detect_daily_event(series: MetricSeries, event_hour: float,
                       clock: MainsClock = MainsClock(),
                       window_h: float = 1.0) -> float:
    """Mean metric shift across a daily event (the 9 pm lights-off, Fig. 12).

    Returns mean(after) − mean(before) pooled over all days in the series.
    """
    before: List[float] = []
    after: List[float] = []
    for t, v in zip(series.times, series.values):
        h = clock.hour_of_day(t)
        if event_hour - window_h <= h < event_hour:
            before.append(v)
        elif event_hour < h <= event_hour + window_h:
            after.append(v)
    if not before or not after:
        raise ValueError("series does not cover the event window")
    return float(np.mean(after) - np.mean(before))


@dataclass(frozen=True)
class TimescaleDecomposition:
    """Variance shares of the three timescales in a BLE measurement set
    (the quantitative form of the paper's Fig. 8 sketch).

    ``invariance`` — variance across tone-map slots (mains-synchronous);
    ``cycle`` — fast residual variance around the local mean;
    ``random`` — variance of the slow (minutes+) trend itself.
    Shares sum to ~1 for any non-constant input.
    """

    invariance_share: float
    cycle_share: float
    random_share: float
    total_variance: float


def decompose_timescales(slot_samples: np.ndarray, times: np.ndarray,
                         trend_window_s: float = 60.0
                         ) -> TimescaleDecomposition:
    """Split BLE variance into the paper's three timescales.

    ``slot_samples`` has shape (n_samples, num_slots): per-slot BLE at each
    sample time. Decomposition: slot-mean deviations → invariance; a
    ``trend_window_s`` rolling mean of the slot average → random scale; the
    residual around that trend → cycle scale.
    """
    samples = np.asarray(slot_samples, dtype=float)
    t = np.asarray(times, dtype=float)
    if samples.ndim != 2 or samples.shape[0] != len(t):
        raise ValueError("slot_samples must be (n_samples, num_slots) "
                         "aligned with times")
    if samples.shape[0] < 4:
        raise ValueError("need at least four samples")
    avg = samples.mean(axis=1)
    # Invariance: average over time of the across-slot variance.
    invariance = float(np.mean(samples.var(axis=1)))
    # Random: variance of the slow trend of the slot average.
    dt = float(np.median(np.diff(t))) if len(t) > 1 else 1.0
    window = max(1, int(trend_window_s / max(dt, 1e-9)))
    kernel = np.ones(window)
    # Edge-corrected rolling mean: divide by how many samples actually
    # fell in the window (plain 'same' convolution dips at the edges).
    trend = (np.convolve(avg, kernel, mode="same")
             / np.convolve(np.ones_like(avg), kernel, mode="same"))
    random_var = float(trend.var())
    # Cycle: residual of the slot average around the trend.
    cycle_var = float((avg - trend).var())
    total = invariance + cycle_var + random_var
    if total <= 0:
        return TimescaleDecomposition(0.0, 0.0, 0.0, 0.0)
    return TimescaleDecomposition(
        invariance_share=invariance / total,
        cycle_share=cycle_var / total,
        random_share=random_var / total,
        total_variance=total)


def probing_interval_suggestion(stats: CycleScaleStats,
                                error_budget: float = 0.02) -> float:
    """How often a link with these cycle-scale stats needs probing (s).

    Heuristic from §6.2/§7.3: probing need scales with the link's relative
    variability per unit time. A link whose BLE moves by less than the error
    budget over an hour can be probed hourly.
    """
    if stats.mean_ble_bps <= 0:
        return 1.0
    cv = stats.coefficient_of_variation
    if cv <= 0:
        return HOUR
    # Rate of relative change per second ≈ cv / α.
    change_rate = cv / max(stats.mean_alpha_s, 1e-3)
    return float(np.clip(error_budget / max(change_rate, 1e-9), 1.0, HOUR))
