"""ETX metrics: broadcast probing vs unicast U-ETX (§8.1).

Classic mesh routing estimates ETX = 1 / (forward × reverse delivery ratio)
from **broadcast** probes ([7], [8] in the paper). The paper shows this is
meaningless on PLC: broadcast rides the ultra-robust ROBO modulation and is
proxy-acknowledged, so nearly every link — good or terrible — shows ~1e-4
loss. The useful metric is the **unicast** expected transmission count
(U-ETX), recovered from SoF timestamps (frames within 10 ms of the previous
one are retransmissions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.medium.link import Link
from repro.plc import mac
from repro.plc.frames import SofDelimiter
from repro.plc.link import PlcLink
from repro.plc.sniffer import capture_probe_flow, classify_retransmissions


@dataclass(frozen=True)
class BroadcastProbeResult:
    """Outcome of a §8.1 broadcast-probe run on one link."""

    probes_sent: int
    probes_lost: int

    @property
    def loss_rate(self) -> float:
        return (self.probes_lost / self.probes_sent
                if self.probes_sent else 0.0)

    @property
    def etx(self) -> float:
        """Classic broadcast ETX = 1 / delivery ratio (one direction)."""
        delivered = self.probes_sent - self.probes_lost
        return self.probes_sent / delivered if delivered else float("inf")


def run_broadcast_probes(link: PlcLink, t_start: float, duration: float,
                         probe_interval: float, rng: np.random.Generator
                         ) -> BroadcastProbeResult:
    """Broadcast 1500 B probes every ``probe_interval`` (paper: 100 ms,
    500 s) and count losses at this receiver.

    The ROBO loss probability moves on the channel's jitter/appliance
    timescales (≫ the probe interval), so probes are drawn in batches per
    ~5 s window — same statistics, far fewer channel evaluations.
    """
    if probe_interval <= 0:
        raise ValueError("probe interval must be positive")
    sent = 0
    lost = 0
    t = t_start
    window = max(probe_interval, 5.0)
    while t < t_start + duration:
        span = min(window, t_start + duration - t)
        n = max(1, int(round(span / probe_interval)))
        p = link.broadcast_loss_probability(t)
        sent += n
        lost += int(rng.binomial(n, p))
        t += span
    return BroadcastProbeResult(probes_sent=sent, probes_lost=lost)


@dataclass(frozen=True)
class UEtxResult:
    """U-ETX measured from a unicast probe flow (Fig. 22).

    ``predicted_u_etx`` is the §8.1 predictor: the SACK retransmission law
    applied to the PBerr samples (averaged over the law, not over PBerr —
    the law is convex, so E[etx(p)] ≠ etx(E[p]) on bursty links).
    """

    u_etx: float
    std: float
    packets: int
    mean_pb_err: float
    predicted_u_etx: float


def u_etx_from_sofs(sofs: Sequence[SofDelimiter],
                    threshold_s: float = 0.010) -> Tuple[float, float, int]:
    """(U-ETX, std, packet count) from a SoF capture via the paper's
    10 ms retransmission heuristic."""
    if not sofs:
        raise ValueError("no frames captured")
    flags = classify_retransmissions(list(sofs), threshold_s)
    counts: List[int] = []
    current = 0
    for is_retx in flags:
        if is_retx and current > 0:
            current += 1
        else:
            if current > 0:
                counts.append(current)
            current = 1
    if current > 0:
        counts.append(current)
    arr = np.asarray(counts, dtype=float)
    return float(arr.mean()), float(arr.std()), len(arr)


def measure_u_etx(link: Link, t_start: float, duration: float,
                  rng: np.random.Generator,
                  rate_bps: float = 150e3,
                  payload_bytes: int = 1500) -> UEtxResult:
    """The §8.1 protocol: 150 kbps unicast for 5 min, SoF capture,
    timestamp-based retransmission classification.

    Works on any :class:`repro.medium.Link` whose ``loss`` column is a
    PB-error probability (PLC links and the two-metric model)."""
    interval = payload_bytes * 8 / rate_bps
    sofs = capture_probe_flow(link, t_start, duration,
                              packet_interval_s=interval,
                              payload_bytes=payload_bytes, rng=rng)
    u_etx, std, packets = u_etx_from_sofs(sofs)
    # PBerr sampled every 500 ms as in the paper — one batch through the
    # medium contract (an MM read: no measurement noise to draw).
    times = np.arange(t_start, t_start + duration, 0.5)
    loss = link.sample_series(times, measured=False).column("loss")
    pb_errs = [float(p) for p in np.minimum(loss, 0.95)]
    n_pbs = mac.pbs_for_payload(payload_bytes, link.spec)
    predicted = float(np.mean([mac.expected_transmissions(n_pbs, p)
                               for p in pb_errs]))
    return UEtxResult(u_etx=u_etx, std=std, packets=packets,
                      mean_pb_err=float(np.mean(pb_errs)),
                      predicted_u_etx=predicted)


def u_etx_predicted_from_pb_err(pb_err: float,
                                payload_bytes: int = 1500,
                                pb_payload_bytes: int = 512) -> float:
    """Analytic U-ETX from PBerr — the paper's point that PBerr predicts
    retransmissions (§8.1 conclusion)."""
    n_pbs = max(1, -(-payload_bytes // pb_payload_bytes))
    return mac.expected_transmissions(n_pbs, pb_err)
