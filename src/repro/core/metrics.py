"""Link-metric records and series containers.

IEEE 1905 (§1, §4.3) requires per-link *capacity* and *loss* metrics but
specifies no estimation method; the paper fills that gap for PLC with BLE and
PBerr (Table 2). These classes are the exchange format between the
measurement layer (:mod:`repro.plc`, :mod:`repro.wifi`) and the algorithms
(:mod:`repro.hybrid`, :mod:`repro.core.probing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.medium.registry import registered_media
from repro.units import MBPS


@dataclass(frozen=True)
class LinkMetricRecord:
    """One link-metric observation, the 1905 abstraction-layer payload.

    Rates in bits/s. ``medium`` is any *elemental* tag in the medium
    registry ("plc" or "wifi" out of the box). Optional fields are
    filled by whichever measurement path produced the record (Table 2).
    """

    time: float
    src: str
    dst: str
    medium: str
    capacity_bps: float
    loss_rate: Optional[float] = None
    pb_err: Optional[float] = None
    etx: Optional[float] = None
    throughput_bps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.medium not in registered_media():
            raise ValueError(f"unknown medium {self.medium!r} "
                             f"(registered: {registered_media()})")
        if self.capacity_bps < 0:
            raise ValueError("capacity cannot be negative")
        for name in ("loss_rate", "pb_err"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability: {value}")

    @property
    def capacity_mbps(self) -> float:
        return self.capacity_bps / MBPS


class MetricSeries:
    """A time series of one scalar metric with the stats the paper reports."""

    def __init__(self, times: Sequence[float], values: Sequence[float],
                 name: str = ""):
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.shape != v.shape:
            raise ValueError("times and values must align")
        if len(t) and np.any(np.diff(t) < 0):
            raise ValueError("times must be non-decreasing")
        self.times = t
        self.values = v
        self.name = name

    def __len__(self) -> int:
        return len(self.times)

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if len(self) else float("nan")

    @property
    def std(self) -> float:
        return float(self.values.std()) if len(self) else float("nan")

    def window(self, t_start: float, t_end: float) -> "MetricSeries":
        """Sub-series in [t_start, t_end)."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return MetricSeries(self.times[mask], self.values[mask], self.name)

    def resample_mean(self, interval: float) -> "MetricSeries":
        """Average into fixed bins (the paper's '1 minute averages')."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not len(self):
            return MetricSeries([], [], self.name)
        start = self.times[0]
        bins = ((self.times - start) / interval).astype(int)
        out_t: List[float] = []
        out_v: List[float] = []
        for b in np.unique(bins):
            mask = bins == b
            out_t.append(start + (b + 0.5) * interval)
            out_v.append(float(self.values[mask].mean()))
        return MetricSeries(out_t, out_v, self.name)

    def change_times(self, rel_threshold: float = 1e-9) -> np.ndarray:
        """Times where the value changes (for α statistics, Fig. 11)."""
        if len(self) < 2:
            return np.array([])
        prev = self.values[:-1]
        rel = np.abs(self.values[1:] - prev) / np.maximum(np.abs(prev), 1e-12)
        return self.times[1:][rel > rel_threshold]

    @staticmethod
    def from_samples(samples: Iterable, time_attr: str = "time",
                     value_attr: str = "throughput_bps",
                     name: str = "") -> "MetricSeries":
        """Build a series from sample objects (e.g. ``LinkSample``)."""
        samples = list(samples)
        return MetricSeries(
            [getattr(s, time_attr) for s in samples],
            [getattr(s, value_attr) for s in samples], name)
