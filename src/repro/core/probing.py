"""Probing policies: when and how to probe each link (§7.2, §7.3, §8.2).

The paper's guidelines (Table 3) constrain probe design:

* probes must be **unicast** (broadcast rides ROBO and says nothing, §8.1);
* probes must exceed **one PB** or the estimate pins at R_1sym (§7.2);
* probe **frequency** should adapt to link quality: the temporal-variation
  study shows good links hold their tone maps orders of magnitude longer
  than bad ones (§6.2), so probing them equally wastes airtime;
* probes should be sent in **bursts** when background traffic may collide
  with them, so frame aggregation protects the channel estimator (§8.2).

:class:`AdaptiveProbingPolicy` is the paper's §7.3 method: bad links probed
every ``base_interval``, average links 8× slower, good links 16× slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.classification import (
    DEFAULT_THRESHOLDS,
    LinkQuality,
    QualityThresholds,
    classify_ble,
)
from repro.units import MBPS


@dataclass(frozen=True)
class ProbeSchedule:
    """A concrete probing prescription for one link."""

    interval_s: float
    payload_bytes: int = 1500
    burst_packets: int = 1

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("probe interval must be positive")
        if self.payload_bytes <= 0:
            raise ValueError("probe payload must be positive")
        if self.burst_packets < 1:
            raise ValueError("burst size must be >= 1")

    def overhead_bps(self) -> float:
        """Average probing load this schedule puts on the medium."""
        return self.payload_bytes * 8 * self.burst_packets / self.interval_s


class FixedProbingPolicy:
    """Probe every link at the same interval (the Fig. 19 baselines)."""

    def __init__(self, interval_s: float, payload_bytes: int = 1500,
                 burst_packets: int = 1):
        self.schedule = ProbeSchedule(interval_s, payload_bytes,
                                      burst_packets)

    def schedule_for(self, ble_bps: float) -> ProbeSchedule:
        return self.schedule


class AdaptiveProbingPolicy:
    """§7.3: probing interval scaled by link quality.

    Bad links get ``base_interval_s``; average links ``average_factor``
    times slower; good links ``good_factor`` times slower (the paper uses
    5 s / ×8 / ×16).
    """

    def __init__(self, base_interval_s: float = 5.0,
                 average_factor: float = 8.0, good_factor: float = 16.0,
                 payload_bytes: int = 1500, burst_packets: int = 1,
                 thresholds: QualityThresholds = DEFAULT_THRESHOLDS):
        if not 1.0 <= average_factor <= good_factor:
            raise ValueError(
                "factors must satisfy 1 <= average_factor <= good_factor")
        self.base_interval_s = base_interval_s
        self.average_factor = average_factor
        self.good_factor = good_factor
        self.payload_bytes = payload_bytes
        self.burst_packets = burst_packets
        self.thresholds = thresholds

    def interval_for(self, ble_bps: float) -> float:
        quality = classify_ble(ble_bps, self.thresholds)
        factor = {LinkQuality.BAD: 1.0,
                  LinkQuality.AVERAGE: self.average_factor,
                  LinkQuality.GOOD: self.good_factor}[quality]
        return self.base_interval_s * factor

    def schedule_for(self, ble_bps: float) -> ProbeSchedule:
        return ProbeSchedule(self.interval_for(ble_bps),
                             self.payload_bytes, self.burst_packets)


def network_overhead_bps(policy, link_bles_bps: Iterable[float]) -> float:
    """Total probing overhead a policy induces across a set of links.

    This is the number behind the paper's "32 % overhead reduction": the
    adaptive policy's overhead relative to probing everything at the base
    interval.
    """
    return sum(policy.schedule_for(ble).overhead_bps()
               for ble in link_bles_bps)


def overhead_reduction(adaptive: AdaptiveProbingPolicy,
                       baseline: FixedProbingPolicy,
                       link_bles_bps: Sequence[float]) -> float:
    """Fractional overhead saved by the adaptive policy vs the baseline."""
    base = network_overhead_bps(baseline, link_bles_bps)
    if base <= 0:
        raise ValueError("baseline overhead must be positive")
    ours = network_overhead_bps(adaptive, link_bles_bps)
    return 1.0 - ours / base


def contention_safe_schedule(schedule: ProbeSchedule,
                             burst_packets: int = 20) -> ProbeSchedule:
    """§8.2's fix: same average overhead, but probes grouped into bursts.

    A burst of ~20 packets aggregates into one maximum-length frame, which
    lets the channel-estimation algorithm attribute collision losses
    correctly and keeps BLE insensitive to background traffic.
    """
    return ProbeSchedule(
        interval_s=schedule.interval_s * burst_packets
        / schedule.burst_packets,
        payload_bytes=schedule.payload_bytes,
        burst_packets=burst_packets)
