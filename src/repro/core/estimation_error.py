"""Accuracy-vs-overhead evaluation of probing policies (§7.3, Fig. 19).

The paper's protocol: take a BLE trace sampled every 50 ms; a policy probes
at instants separated by its interval; the estimate between two probes is
the BLE read at the last probe; the ground truth is the *average* BLE until
the next probe; the error is their absolute difference. The CDF of those
errors over all links, together with the total probing overhead, is the
policy comparison of Fig. 19.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.metrics import MetricSeries
from repro.core.probing import AdaptiveProbingPolicy, FixedProbingPolicy


@dataclass(frozen=True)
class EstimationErrorResult:
    """Error samples + overhead for one policy over a set of links."""

    policy_name: str
    errors_bps: np.ndarray
    overhead_bps: float

    def error_cdf(self, grid_bps: Sequence[float]) -> np.ndarray:
        """CDF of |error| evaluated on a grid (for the Fig. 19 plot)."""
        errs = np.sort(self.errors_bps)
        return np.searchsorted(errs, np.asarray(grid_bps),
                               side="right") / max(len(errs), 1)

    def percentile_bps(self, q: float) -> float:
        return float(np.percentile(self.errors_bps, q))


def estimation_errors_for_interval(series: MetricSeries,
                                   interval_s: float) -> np.ndarray:
    """Error samples for one link probed at a fixed interval.

    ``series`` is the densely-sampled BLE trace (50 ms in the paper). For
    each probe instant t: error = |BLE_t − mean(BLE over [t, t+interval))|.
    """
    if len(series) < 2:
        raise ValueError("trace too short")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    t0 = series.times[0]
    t_end = series.times[-1]
    errors: List[float] = []
    t = t0
    while t + interval_s <= t_end:
        window = series.window(t, t + interval_s)
        if len(window):
            estimate = window.values[0]
            truth = window.mean
            errors.append(abs(estimate - truth))
        t += interval_s
    return np.asarray(errors)


def evaluate_policy(policy, traces: Dict[str, MetricSeries],
                    policy_name: str) -> EstimationErrorResult:
    """Evaluate a probing policy over per-link BLE traces.

    ``policy`` needs ``schedule_for(ble_bps)`` (both fixed and adaptive
    policies qualify). The link's class is decided from its trace mean —
    what the CCo would know from history (§7.3).
    """
    all_errors: List[np.ndarray] = []
    overhead = 0.0
    for name in sorted(traces):
        trace = traces[name]
        schedule = policy.schedule_for(trace.mean)
        all_errors.append(
            estimation_errors_for_interval(trace, schedule.interval_s))
        overhead += schedule.overhead_bps()
    errors = (np.concatenate(all_errors) if all_errors
              else np.array([]))
    return EstimationErrorResult(policy_name=policy_name,
                                 errors_bps=errors,
                                 overhead_bps=overhead)


def compare_policies(traces: Dict[str, MetricSeries],
                     base_interval_s: float = 5.0,
                     slow_interval_s: float = 80.0
                     ) -> Dict[str, EstimationErrorResult]:
    """The Fig. 19 three-way comparison.

    Returns results keyed "ours" (adaptive), "fast" (everything at the base
    interval) and "slow" (everything at the slow interval).
    """
    adaptive = AdaptiveProbingPolicy(base_interval_s=base_interval_s,
                                     good_factor=slow_interval_s
                                     / base_interval_s)
    fast = FixedProbingPolicy(base_interval_s)
    slow = FixedProbingPolicy(slow_interval_s)
    return {
        "ours": evaluate_policy(adaptive, traces, "ours"),
        "fast": evaluate_policy(fast, traces, f"per-{base_interval_s:g}s"),
        "slow": evaluate_policy(slow, traces, f"per-{slow_interval_s:g}s"),
    }
