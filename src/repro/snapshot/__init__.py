"""Versioned, content-addressed snapshots of the simulation world.

The snapshot plane serialises every stateful component of a running
simulation — named RNG streams, the windowed capacity cache, the
metrics registry, PLC tone-map / channel-estimation processes, the
hybrid reorder buffer — into one canonical JSON document that restores
bit-identically. ``ScenarioRunner.snapshot()/resume()`` and
``HybridDevice.snapshot()/restore()`` build on these codecs; the
campaign engine chains them into time-sliced execution
(``repro campaign --slice-horizon``).

Byte-identity is the contract, not an aspiration: the
``diff_slice_equivalence`` verify oracle and the hypothesis round-trip
battery in ``tests/test_snapshot_properties.py`` enforce that a
restored world continues exactly — same artifacts, same trace
sidecars, same goldens — as one that never paused.
"""

from repro.snapshot.codec import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotIntegrityError,
    SnapshotVersionError,
    content_hash,
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.store import SnapshotStore, snapshot_dir_for
from repro.snapshot.world import (
    restore_cache,
    restore_channel_estimator,
    restore_reorder_buffer,
    restore_streams,
    restore_tone_map_process,
    snapshot_cache,
    snapshot_channel_estimator,
    snapshot_reorder_buffer,
    snapshot_streams,
    snapshot_tone_map_process,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "SnapshotStore",
    "content_hash",
    "dump_snapshot",
    "load_snapshot",
    "read_snapshot",
    "restore_cache",
    "restore_channel_estimator",
    "restore_reorder_buffer",
    "restore_streams",
    "restore_tone_map_process",
    "snapshot_cache",
    "snapshot_channel_estimator",
    "snapshot_dir_for",
    "snapshot_reorder_buffer",
    "snapshot_streams",
    "snapshot_tone_map_process",
    "write_snapshot",
]
