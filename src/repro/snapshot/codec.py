"""The snapshot wire format: versioned, content-addressed, canonical.

One document shape for every snapshot kind::

    {
      "format": "repro-snapshot",
      "version": 1,
      "kind": "scenario-runner",          # who produced the payload
      "content_hash": "<sha256 of the canonical payload JSON>",
      "payload": { ... }                  # component state, JSON-safe
    }

Design mirrors :mod:`repro.bench.schema`: an explicit ``format`` /
``version`` header so foreign or future documents are *refused* (a
``SnapshotVersionError``), never half-parsed; dumps are canonical
(sorted keys, NaN-refusing, trailing newline) so identical worlds
produce identical bytes; and the payload is content-addressed — a blob
whose ``content_hash`` no longer matches its payload raises
``SnapshotIntegrityError`` instead of silently restoring a corrupted
world into a "deterministic" run.

Floats survive exactly: ``json`` emits the shortest ``repr`` that
round-trips, so an accumulated simulation time ``t`` restores to the
very same IEEE double and the continued run stays bit-identical.
Payload builders must hand us plain Python scalars — numpy types are
rejected by the encoder, which is the point: an ``np.float64`` smuggled
into a payload would serialise today and desynchronise dtype semantics
on restore.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict

SNAPSHOT_FORMAT = "repro-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotVersionError(ValueError):
    """A blob that is not a current-version repro-snapshot document."""


class SnapshotIntegrityError(ValueError):
    """A snapshot whose payload no longer matches its content hash."""


@dataclass
class Snapshot:
    """A typed payload: ``kind`` names the producer, ``payload`` is its
    JSON-safe state."""

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)


def _canonical_payload(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def content_hash(payload: Dict[str, object]) -> str:
    """sha256 over the canonical payload JSON — the snapshot's address."""
    return hashlib.sha256(
        _canonical_payload(payload).encode("utf-8")).hexdigest()


def dump_snapshot(snap: Snapshot) -> str:
    """Canonical text: same world state, same bytes."""
    body = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "kind": snap.kind,
        "content_hash": content_hash(snap.payload),
        "payload": snap.payload,
    }
    return json.dumps(body, indent=1, sort_keys=True,
                      allow_nan=False) + "\n"


def load_snapshot(text: str) -> Snapshot:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a JSON document: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError("snapshot top level must be an object")
    if data.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotVersionError(
            f"not a {SNAPSHOT_FORMAT} document "
            f"(format={data.get('format')!r}); refusing to guess at an "
            f"unversioned or foreign blob")
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot schema version {version!r} != "
            f"{SNAPSHOT_VERSION}; refusing to restore across versions")
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise SnapshotVersionError("snapshot has no 'kind'")
    payload = data.get("payload")
    if not isinstance(payload, dict):
        raise SnapshotVersionError("snapshot has no 'payload' object")
    expected = data.get("content_hash")
    actual = content_hash(payload)
    if expected != actual:
        raise SnapshotIntegrityError(
            f"snapshot content hash mismatch: header says {expected!r}, "
            f"payload hashes to {actual!r} — blob is corrupt or "
            f"hand-edited")
    return Snapshot(kind=kind, payload=payload)


def write_snapshot(path: Path, snap: Snapshot) -> None:
    """Atomic write (tmp + rename): a crash mid-checkpoint leaves the
    previous checkpoint intact, never a torn file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = dump_snapshot(snap)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_snapshot(path: Path) -> Snapshot:
    return load_snapshot(Path(path).read_text(encoding="utf-8"))
