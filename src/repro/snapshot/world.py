"""Component codecs: JSON-safe state capture for every stateful part.

Each ``snapshot_*`` function turns one live component into a plain-JSON
payload fragment; the matching ``restore_*`` pushes that fragment back
into a *freshly constructed* component of the same shape. The contract
is bit-identity going forward: after restore, every subsequent draw,
lookup or update produces exactly the bytes the un-snapshotted original
would have produced.

What gets captured, and what deliberately does not:

* **RNG streams** — the full PCG64 ``bit_generator.state`` per named
  stream. Restoring via ``streams.get(name)`` works because components
  hold the *same* generator object the factory handed out.
* **Windowed capacity cache** — entries in LRU order (eviction order is
  part of observable behaviour) plus hit/miss/eviction counters.
* **Tone-map process** — the current :class:`~repro.plc.tonemap.ToneMap`
  (bits grid, FEC, PBerr), the update history, clock and TMI counter.
  The ``(signature, jitter-window)`` evaluation memo is *dropped*: it
  memoises a pure function of channel state, so recomputing it on the
  other side yields identical values.
* **Channel estimator** — observed-PB count, collision penalty,
  one-symbol pin, burst-collapse deadline and its private RNG state.
* **Reorder buffer** — pending packets by field, the next expected
  sequence, the hole timer, and delivery statistics.

Pure functions of ``(seed, t)`` — powergrid appliance activity, channel
attenuation/fading, the mains clock — carry no state and need no codec;
the world they describe is reconstructed from the testbed preset.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cache import WindowedLruCache
from repro.hybrid.reorder import ReorderBuffer
from repro.plc.channel_estimation import ChannelEstimator
from repro.plc.tonemap import ToneMap, ToneMapProcess, ToneMapUpdate
from repro.sim.random import RandomStreams
from repro.traffic.packet import Packet

# --- RNG streams --------------------------------------------------------------


def snapshot_streams(streams: RandomStreams) -> Dict[str, object]:
    """Root seed plus the PCG64 state of every stream drawn so far.

    Streams never drawn carry no entry: on the restore side they are
    lazily re-created at their initial state, which is exactly where the
    original would have created them.
    """
    return {
        "seed": int(streams.seed),
        "streams": {
            name: _jsonify_bitgen_state(gen.bit_generator.state)
            for name, gen in sorted(streams._streams.items())
        },
    }


def restore_streams(streams: RandomStreams,
                    payload: Dict[str, object]) -> None:
    if int(payload["seed"]) != streams.seed:
        raise ValueError(
            f"stream snapshot was taken at seed {payload['seed']}, "
            f"target factory is seeded {streams.seed}")
    for name, state in payload["streams"].items():
        streams.get(name).bit_generator.state = _pythonify_bitgen_state(
            state)


def _jsonify_bitgen_state(state: Dict[str, object]) -> Dict[str, object]:
    # PCG64's state dict nests arbitrary-precision Python ints — already
    # JSON-safe — but guard against numpy scalars leaking in.
    return _deep_plain(state)


def _pythonify_bitgen_state(state: Dict[str, object]) -> Dict[str, object]:
    return state


def _deep_plain(value):
    if isinstance(value, dict):
        return {k: _deep_plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_deep_plain(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


# --- windowed LRU cache -------------------------------------------------------


def snapshot_cache(cache: WindowedLruCache) -> Dict[str, object]:
    """Entries in LRU order (front = next eviction victim) + counters.

    Order matters: a straight run's eviction sequence must be
    reproduced by the restored cache, or a long run with cache pressure
    would diverge from its sliced twin in *which* windows stay warm.
    """
    entries = []
    for (key, window_index), value in cache._entries.items():
        entries.append([list(key) if isinstance(key, tuple) else key,
                        int(window_index), _deep_plain(value)])
    return {
        "window_s": float(cache.window_s),
        "max_entries": int(cache.max_entries),
        "entries": entries,
        "stats": {
            "hits": int(cache.stats.hits),
            "misses": int(cache.stats.misses),
            "evictions": int(cache.stats.evictions),
        },
    }


def restore_cache(cache: WindowedLruCache,
                  payload: Dict[str, object]) -> None:
    if float(payload["window_s"]) != cache.window_s \
            or int(payload["max_entries"]) != cache.max_entries:
        raise ValueError(
            "cache snapshot geometry mismatch: snapshot is "
            f"(window_s={payload['window_s']}, "
            f"max_entries={payload['max_entries']}), target is "
            f"(window_s={cache.window_s}, "
            f"max_entries={cache.max_entries})")
    cache._entries.clear()
    for key, window_index, value in payload["entries"]:
        entry_key = tuple(key) if isinstance(key, list) else key
        cache._entries[(entry_key, int(window_index))] = value
    stats = payload["stats"]
    cache.stats.hits = int(stats["hits"])
    cache.stats.misses = int(stats["misses"])
    cache.stats.evictions = int(stats["evictions"])


# --- reorder buffer -----------------------------------------------------------

def _packet_to_dict(packet: Packet) -> Dict[str, object]:
    return {
        "seq": int(packet.seq),
        "size_bytes": int(packet.size_bytes),
        "created_at": float(packet.created_at),
        "flow_id": packet.flow_id,
        "medium": packet.medium,
        "delivered_at": (None if packet.delivered_at is None
                         else float(packet.delivered_at)),
    }


def snapshot_reorder_buffer(buffer: ReorderBuffer) -> Dict[str, object]:
    return {
        "hole_timeout_s": float(buffer.hole_timeout_s),
        "max_window": int(buffer.max_window),
        "next_seq": int(buffer._next_seq),
        "oldest_wait_since": (None if buffer._oldest_wait_since is None
                              else float(buffer._oldest_wait_since)),
        "pending": [_packet_to_dict(buffer._pending[seq])
                    for seq in sorted(buffer._pending)],
        "stats": {
            "delivered": int(buffer.stats.delivered),
            "reordered_arrivals": int(buffer.stats.reordered_arrivals),
            "holes_flushed": int(buffer.stats.holes_flushed),
            "release_times": [float(t)
                              for t in buffer.stats.release_times],
        },
    }


def restore_reorder_buffer(buffer: ReorderBuffer,
                           payload: Dict[str, object]) -> None:
    if float(payload["hole_timeout_s"]) != buffer.hole_timeout_s \
            or int(payload["max_window"]) != buffer.max_window:
        raise ValueError(
            "reorder snapshot geometry mismatch: snapshot is "
            f"(hole_timeout_s={payload['hole_timeout_s']}, "
            f"max_window={payload['max_window']}), target is "
            f"(hole_timeout_s={buffer.hole_timeout_s}, "
            f"max_window={buffer.max_window})")
    buffer._pending = {
        int(p["seq"]): Packet(
            seq=int(p["seq"]), size_bytes=int(p["size_bytes"]),
            created_at=float(p["created_at"]), flow_id=p["flow_id"],
            medium=p["medium"],
            delivered_at=(None if p["delivered_at"] is None
                          else float(p["delivered_at"])))
        for p in payload["pending"]
    }
    buffer._next_seq = int(payload["next_seq"])
    buffer._oldest_wait_since = (
        None if payload["oldest_wait_since"] is None
        else float(payload["oldest_wait_since"]))
    stats = payload["stats"]
    buffer.stats.delivered = int(stats["delivered"])
    buffer.stats.reordered_arrivals = int(stats["reordered_arrivals"])
    buffer.stats.holes_flushed = int(stats["holes_flushed"])
    buffer.stats.release_times = [float(t)
                                  for t in stats["release_times"]]


# --- tone-map process ---------------------------------------------------------


def snapshot_tone_map_process(proc: ToneMapProcess) -> Dict[str, object]:
    tm = proc.tone_map
    return {
        "check_interval": float(proc.check_interval),
        "drift_threshold": float(proc.drift_threshold),
        "backoff_db": float(proc.backoff_db),
        "now": float(proc._now),
        "tone_map": {
            "tmi": int(tm.tmi),
            "bits": np.asarray(tm.bits).tolist(),
            "bits_dtype": str(np.asarray(tm.bits).dtype),
            "fec_rate": float(tm.fec_rate),
            "pb_err": float(tm.pb_err),
            "created_at": float(tm.created_at),
            "symbol_duration_s": float(tm.symbol_duration_s),
        },
        "updates": [
            {"time": float(u.time), "tmi": int(u.tmi),
             "avg_ble_bps": float(u.avg_ble_bps), "reason": u.reason}
            for u in proc.updates
        ],
    }


def restore_tone_map_process(proc: ToneMapProcess,
                             payload: Dict[str, object]) -> None:
    import itertools

    proc.check_interval = float(payload["check_interval"])
    proc.drift_threshold = float(payload["drift_threshold"])
    proc.backoff_db = float(payload["backoff_db"])
    proc._now = float(payload["now"])
    tm = payload["tone_map"]
    proc.tone_map = ToneMap(
        tmi=int(tm["tmi"]),
        bits=np.asarray(tm["bits"], dtype=np.dtype(tm["bits_dtype"])),
        fec_rate=float(tm["fec_rate"]),
        pb_err=float(tm["pb_err"]),
        created_at=float(tm["created_at"]),
        symbol_duration_s=float(tm["symbol_duration_s"]))
    proc.updates = [
        ToneMapUpdate(time=float(u["time"]), tmi=int(u["tmi"]),
                      avg_ble_bps=float(u["avg_ble_bps"]),
                      reason=u["reason"])
        for u in payload["updates"]
    ]
    # TMIs are consumed monotonically; the live tone map always carries
    # the last one handed out.
    proc._tmi_counter = itertools.count(proc.tone_map.tmi + 1)
    # The (signature, jitter-window) evaluation memo caches a pure
    # function of channel state — recomputed identically on demand.
    proc._eval_key = None
    proc._eval_value = None


# --- channel estimator --------------------------------------------------------


def snapshot_channel_estimator(
        estimator: ChannelEstimator) -> Dict[str, object]:
    return {
        "overreact_to_bursts": bool(estimator.overreact_to_bursts),
        "pbs_observed": float(estimator._pbs_observed),
        "penalty_db": float(estimator._penalty_db),
        "pinned_at_one_symbol": bool(estimator._pinned_at_one_symbol),
        "burst_collapse_until": float(estimator._burst_collapse_until),
        "rng_state": _jsonify_bitgen_state(
            estimator._rng.bit_generator.state),
    }


def restore_channel_estimator(estimator: ChannelEstimator,
                              payload: Dict[str, object]) -> None:
    if bool(payload["overreact_to_bursts"]) \
            != estimator.overreact_to_bursts:
        raise ValueError(
            "estimator snapshot was taken with overreact_to_bursts="
            f"{payload['overreact_to_bursts']}, target has "
            f"{estimator.overreact_to_bursts}")
    estimator._pbs_observed = float(payload["pbs_observed"])
    estimator._penalty_db = float(payload["penalty_db"])
    estimator._pinned_at_one_symbol = bool(
        payload["pinned_at_one_symbol"])
    estimator._burst_collapse_until = float(
        payload["burst_collapse_until"])
    estimator._rng.bit_generator.state = payload["rng_state"]
