"""Checkpoint placement: where a sliced campaign keeps its snapshots.

One directory per campaign artifact (``<artifact stem>.snapshots/``,
the same sidecar convention as ``.trace.jsonl`` and the quarantine
sidecar), one file per ``(task, slice)`` pair. File names hash the task
key — task keys contain ``/`` and are unbounded, so they cannot be path
components directly — and append the slice index, which keeps a task's
checkpoint chain ``ls``-adjacent.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

from repro.snapshot.codec import Snapshot, read_snapshot, write_snapshot


def snapshot_dir_for(artifact_path: Path) -> Path:
    """The checkpoint directory that travels with a campaign artifact."""
    artifact_path = Path(artifact_path)
    return artifact_path.with_name(artifact_path.stem + ".snapshots")


class SnapshotStore:
    """Read/write checkpoints under one root directory."""

    def __init__(self, root: Path):
        self.root = Path(root)

    def path_for(self, task_key: str, index: int) -> Path:
        digest = hashlib.sha256(task_key.encode("utf-8")).hexdigest()
        return self.root / f"{digest[:16]}-{int(index):04d}.json"

    def save(self, task_key: str, index: int, snap: Snapshot) -> Path:
        path = self.path_for(task_key, index)
        write_snapshot(path, snap)
        return path

    def load(self, task_key: str, index: int) -> Snapshot:
        return read_snapshot(self.path_for(task_key, index))

    def latest_index(self, task_key: str,
                     max_index: int) -> Optional[int]:
        """Highest slice index < ``max_index`` with a readable, valid
        checkpoint on disk — the crash-resume entry point. Corrupt or
        foreign files are skipped, not trusted."""
        for index in range(max_index - 1, -1, -1):
            path = self.path_for(task_key, index)
            if not path.exists():
                continue
            try:
                read_snapshot(path)
            except (ValueError, OSError):
                continue
            return index
        return None
