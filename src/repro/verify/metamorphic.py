"""Metamorphic relations derived from the paper's structure.

Where an oracle needs two implementations of the *same* computation, a
metamorphic relation needs only one: it perturbs the input in a way whose
effect on the output is known from the physics — and checks that effect.

* **Time shift** (§6's invariance band): inside a window where the
  channel is constant, the medium has no absolute clock, so shifting
  every flow by Δ shifts every completion by Δ and changes nothing else.
  We make the band explicit by freezing link capacities at a reference
  time (:class:`FrozenLink`), which turns the relation into an exact
  equality rather than a tolerance judgement.
* **SNR monotonicity** (§5, Fig. 6): a tone map generated from a
  uniformly better channel can only carry more — BLE is non-decreasing
  in SNR.
* **Attenuation monotonicity**: losing more dB through a fault window
  (:class:`repro.faults.FaultyLink` ``snr_collapse``) can only lower
  throughput.
* **CBR/file scaling** (§7.4): with frozen capacity, moving ``k×`` the
  bytes takes ``k×`` the time, and giving a competing CBR flow more of
  the channel can only delay a file transfer.

Every check returns a list of violation messages; empty means the
relation held.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.medium.link import LinkSample, LinkSeries
from repro.netsim.scenario import FlowRequest, Scenario
from repro.verify.oracles import RunnerFactory, default_runner_factory

#: Tolerance for completion-time comparisons under time shift: the sums
#: ``(t+Δ) + q·f`` vs ``(t + q·f) + Δ`` reassociate float additions, so
#: the last ulp can differ even though every delivered byte matches.
SHIFT_TIME_RTOL = 1e-9
SHIFT_TIME_ATOL = 1e-6


class FrozenLink:
    """A link whose channel state is pinned to one reference time.

    Delegates every probe to the inner link *at* ``t_ref`` with
    ``measured=False`` (no noise-stream consumption), then restamps the
    requested time — the in-band idealisation of the paper's invariance
    scale, where consecutive samples see the same channel.
    """

    def __init__(self, inner, t_ref: float):
        self.inner = inner
        self.t_ref = float(t_ref)
        self.name = inner.name
        self.medium = inner.medium
        self._sample = inner.sample(self.t_ref, measured=False)

    def sample(self, t: float, measured: bool = True) -> LinkSample:
        return dataclasses.replace(self._sample, time=float(t))

    def sample_series(self, ts: np.ndarray,
                      measured: bool = True) -> LinkSeries:
        series = self.inner.sample_series(
            np.full(len(np.asarray(ts, dtype=float)), self.t_ref),
            measured=False)
        series.data["time"] = np.asarray(ts, dtype=float)
        return series

    def capacity_bps(self, t: float) -> float:
        return self._sample.capacity_bps

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        return self._sample.throughput_bps

    def is_connected(self, t: float) -> bool:
        return self.inner.is_connected(self.t_ref)


def frozen_link_decorator(t_ref: float):
    """A ``ScenarioRunner`` link decorator pinning capacities to ``t_ref``."""
    def decorate(link, medium: str, src: int, dst: int):
        if link is None:
            return None
        return FrozenLink(link, t_ref)
    return decorate


def shift_scenario(scenario: Scenario, delta_s: float) -> Scenario:
    """The same scenario, every flow start moved by ``delta_s``."""
    shifted = Scenario(name=f"{scenario.name}+{delta_s:g}s")
    for flow in scenario.flows:
        shifted.add(dataclasses.replace(flow,
                                        start_s=flow.start_s + delta_s))
    return shifted


def check_time_shift(testbed, scenario: Scenario, delta_s: float,
                     t_ref: Optional[float] = None,
                     runner_factory: RunnerFactory =
                     default_runner_factory,
                     **runner_kwargs) -> List[str]:
    """Shift equivariance on frozen links.

    Runs ``scenario`` and ``scenario + Δ`` with capacities pinned at
    ``t_ref`` (default: the scenario's first start) and demands that
    delivered bytes / active time / starvation match exactly while every
    completion time moves by exactly Δ (up to float reassociation).
    """
    if not scenario.flows:
        return []
    if t_ref is None:
        t_ref = min(f.start_s for f in scenario.flows)
    decorator = frozen_link_decorator(t_ref)
    runner_a = runner_factory(testbed, link_decorator=decorator,
                              **runner_kwargs)
    runner_b = runner_factory(testbed, link_decorator=decorator,
                              **runner_kwargs)
    base = runner_a.run(scenario)
    shifted = runner_b.run(shift_scenario(scenario, delta_s))
    diffs: List[str] = []
    for name in sorted(base):
        a, b = base[name], shifted[name]
        for attr in ("delivered_bytes", "active_time_s",
                     "starved_quanta"):
            if getattr(a, attr) != getattr(b, attr):
                diffs.append(
                    f"flow {name}.{attr} not shift-invariant: "
                    f"{getattr(a, attr)!r} vs {getattr(b, attr)!r} "
                    f"(delta={delta_s})")
        if (a.completed_at is None) != (b.completed_at is None):
            diffs.append(f"flow {name} completion existence changed "
                         f"under shift: {a.completed_at} vs "
                         f"{b.completed_at}")
        elif a.completed_at is not None:
            want = a.completed_at + delta_s
            if not np.isclose(b.completed_at, want,
                              rtol=SHIFT_TIME_RTOL,
                              atol=SHIFT_TIME_ATOL):
                diffs.append(
                    f"flow {name} completed at {b.completed_at!r}, "
                    f"expected {want!r} (= {a.completed_at!r} + "
                    f"{delta_s})")
    return diffs


def check_snr_monotonicity(link, t: float,
                           deltas_db: Sequence[float] = (0.0, 3.0, 6.0,
                                                         12.0)
                           ) -> List[str]:
    """BLE is non-decreasing in SNR (Fig. 6's rate-vs-attenuation law).

    Regenerates the tone map of a PLC ``link`` from its true channel SNR
    shifted by each ``delta_db`` (via the estimation-model override) and
    checks the resulting BLE ordering. Links without a ``channel``
    attribute (non-PLC facades) are skipped.
    """
    from repro.plc.tonemap import generate_tone_map

    channel = getattr(link, "channel", None)
    if channel is None or not hasattr(channel, "snr_db"):
        return []
    base_snr = channel.snr_db(t)
    deltas = sorted(float(d) for d in deltas_db)
    bles = []
    for delta in deltas:
        tone_map = generate_tone_map(channel, t, tmi=1,
                                     snr_override=base_snr + delta)
        bles.append(tone_map.avg_ble_bps())
    diffs: List[str] = []
    for k in range(1, len(bles)):
        if bles[k] < bles[k - 1]:
            diffs.append(
                f"BLE decreased with SNR: +{deltas[k - 1]:g} dB -> "
                f"{bles[k - 1]:.1f} bps but +{deltas[k]:g} dB -> "
                f"{bles[k]:.1f} bps")
    return diffs


def check_attenuation_monotonicity(link, t: float,
                                   severities_db: Sequence[float] =
                                   (0.0, 3.0, 10.0, 20.0)
                                   ) -> List[str]:
    """More dB lost in a fault window can only lower throughput."""
    from repro.faults.link import FaultyLink
    from repro.faults.plan import FaultEvent, FaultPlan

    severities = sorted(float(s) for s in severities_db)
    rates = []
    for severity in severities:
        events = [] if severity == 0.0 else [FaultEvent(
            kind="snr_collapse", target=link.name, t_start=t - 1.0,
            t_end=t + 1.0, severity=severity)]
        plan = FaultPlan(events=events, seed=0, name="verify.attenuation")
        faulted = FaultyLink(link, plan)
        rates.append(faulted.throughput_bps(t, measured=False))
    diffs: List[str] = []
    for k in range(1, len(rates)):
        if rates[k] > rates[k - 1] * (1.0 + 1e-12):
            diffs.append(
                f"throughput rose under deeper collapse: "
                f"-{severities[k - 1]:g} dB -> {rates[k - 1]:.1f} bps "
                f"but -{severities[k]:g} dB -> {rates[k]:.1f} bps")
    return diffs


def check_file_size_scaling(testbed, src: int, dst: int, medium: str,
                            size_bytes: float = 4e6, factor: int = 3,
                            t0: float = 0.0,
                            runner_factory: RunnerFactory =
                            default_runner_factory,
                            **runner_kwargs) -> List[str]:
    """On a frozen link, ``k×`` the bytes takes ``k×`` the time."""
    decorator = frozen_link_decorator(t0)
    durations = []
    for scale in (1, factor):
        scenario = Scenario(name=f"verify-size-x{scale}").add(FlowRequest(
            name="xfer", src=src, dst=dst, start_s=t0, kind="file",
            medium=medium, size_bytes=size_bytes * scale))
        runner = runner_factory(testbed, link_decorator=decorator,
                                **runner_kwargs)
        result = runner.run(scenario, horizon_s=86_400.0)["xfer"]
        if not result.finished:
            return [f"file flow never completed at scale {scale} "
                    f"({medium} {src}->{dst}; dead link?)"]
        durations.append(result.completed_at - t0)
    if durations[0] <= 0:
        return [f"degenerate base transfer time {durations[0]!r}"]
    ratio = durations[1] / durations[0]
    if not np.isclose(ratio, factor, rtol=1e-6):
        return [f"completion time scaled by {ratio:.9f} for {factor}x "
                f"bytes (expected {factor}x): {durations[0]!r} s -> "
                f"{durations[1]!r} s"]
    return []


def check_cbr_contention_monotonicity(
        testbed, src: int, dst: int, medium: str,
        size_bytes: float = 4e6,
        rates_bps: Sequence[float] = (1e6, 4e6, 16e6),
        t0: float = 0.0,
        runner_factory: RunnerFactory = default_runner_factory,
        **runner_kwargs) -> List[str]:
    """A hungrier competing CBR flow can only delay a file transfer."""
    decorator = frozen_link_decorator(t0)
    completions = []
    rates = sorted(float(r) for r in rates_bps)
    for rate in rates:
        scenario = Scenario(name="verify-contention")
        scenario.add(FlowRequest(name="xfer", src=src, dst=dst,
                                 start_s=t0, kind="file", medium=medium,
                                 size_bytes=size_bytes))
        scenario.add(FlowRequest(name="cross", src=dst, dst=src,
                                 start_s=t0, kind="cbr", medium=medium,
                                 rate_bps=rate, duration_s=3600.0))
        runner = runner_factory(testbed, link_decorator=decorator,
                                **runner_kwargs)
        result = runner.run(scenario, horizon_s=86_400.0)["xfer"]
        if not result.finished:
            return [f"file flow never completed against {rate:.0f} bps "
                    f"CBR ({medium} {src}->{dst})"]
        completions.append(result.completed_at)
    diffs: List[str] = []
    for k in range(1, len(completions)):
        if completions[k] < completions[k - 1] - 1e-9:
            diffs.append(
                f"transfer finished earlier against a hungrier CBR: "
                f"{rates[k - 1]:.0f} bps -> t={completions[k - 1]!r} but "
                f"{rates[k]:.0f} bps -> t={completions[k]!r}")
    return diffs
