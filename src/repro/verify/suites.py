"""Named verification suites behind ``repro verify --suite {...}``.

* ``smoke`` — a fast deterministic sweep on a small preset (default
  ``mini3``): one oracle/relation/invariant of every family, sized for a
  pre-commit or CI-gate run.
* ``full``  — the complete deterministic battery on the paper's full
  testbed (default ``office``): everything in smoke on office links,
  plus the campaign-engine equivalences (inline vs process pool, traced
  vs untraced, byte-identity across all four execution backends, and
  time-sliced vs straight execution) and a library-scenario invariant
  run.
* ``fuzz``  — the :class:`~repro.verify.fuzzer.ScenarioFuzzer`, bounded
  by a case budget and a wall-clock budget.

Every suite returns a :class:`~repro.verify.report.VerifyReport` whose
serialized form (:func:`~repro.verify.report.write_report`) is canonical
JSONL — byte-stable for identical outcomes.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.campaign.spec import ExperimentSpec
from repro.compile import checkout_testbed
from repro.netsim.scenario import FlowRequest, Scenario
from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.testbed.builder import Testbed
from repro.verify import metamorphic, oracles
from repro.verify.fuzzer import ScenarioFuzzer, invariant_results
from repro.verify.report import VerifyReport, from_messages

#: suite name -> (default preset, description).
SUITES: Dict[str, Tuple[str, str]] = {
    "smoke": ("mini3", "fast deterministic sweep (pre-commit / CI gate)"),
    "full": ("office", "complete deterministic battery on the paper's "
                       "testbed"),
    "fuzz": ("mini3", "seeded randomized search with a time budget"),
}


def suite_names() -> Tuple[str, ...]:
    return tuple(sorted(SUITES))


def _pairs(testbed: Testbed) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """A (plc, wifi) directed pair present on this testbed."""
    plc = testbed.same_board_pairs()[0]
    wifi = testbed.all_pairs()[0]
    return (int(plc[0]), int(plc[1])), (int(wifi[0]), int(wifi[1]))


def _suite_scenario(testbed: Testbed, t0: float,
                    include_bulk: bool) -> Scenario:
    """A small mixed-media scenario used by the deterministic suites."""
    (pi, pj), (wi, wj) = _pairs(testbed)
    scenario = Scenario(name="verify-suite")
    scenario.add(FlowRequest(name="sat-plc", src=pi, dst=pj, start_s=t0,
                             kind="saturated", medium="plc",
                             duration_s=20.0))
    scenario.add(FlowRequest(name="cbr-wifi", src=wi, dst=wj,
                             start_s=t0 + 2.0, kind="cbr", medium="wifi",
                             rate_bps=8e6, duration_s=20.0))
    scenario.add(FlowRequest(name="file-hybrid", src=pi, dst=pj,
                             start_s=t0 + 4.0, kind="file",
                             medium="hybrid", size_bytes=2e6))
    if include_bulk:
        # A transfer that cannot finish inside the horizon: the input
        # class on which the default-deadline contract actually bites.
        scenario.add(FlowRequest(name="bulk", src=pj, dst=pi, start_s=t0,
                                 kind="file", medium="plc",
                                 size_bytes=1e12))
    return scenario


def _deterministic_checks(report: VerifyReport, preset: str, seed: int,
                          metrics: Optional[MetricsRegistry],
                          runner_options: Optional[Dict[str, object]],
                          plc_grid: int, wifi_grid: int) -> None:
    """The shared smoke/full battery against one preset."""
    from repro.plc.tonemap import generate_tone_map

    t0 = 64.0
    # Two identically seeded checkouts of one compiled world: measured
    # sampling consumes noise streams, so the lockstep reference needs
    # its own fresh-RNG view.
    testbed = checkout_testbed(preset, seed=seed)
    lockstep = checkout_testbed(preset, seed=seed)
    (pi, pj), (wi, wj) = _pairs(testbed)

    # Differential: scalar vs vectorized sampling, both media, measured.
    ts_plc = t0 + np.arange(plc_grid) * 0.4
    ts_wifi = t0 + np.arange(wifi_grid) * 0.1
    report.add(from_messages(
        "oracle.scalar_vs_vectorized", f"plc:{pi}->{pj}",
        oracles.diff_scalar_vs_vectorized(
            testbed.plc_link(pi, pj), lockstep.plc_link(pi, pj),
            ts_plc)))
    report.add(from_messages(
        "oracle.scalar_vs_vectorized", f"wifi:{wi}->{wj}",
        oracles.diff_scalar_vs_vectorized(
            testbed.wifi_link(wi, wj), lockstep.wifi_link(wi, wj),
            ts_wifi)))

    # Range/validity invariants over freshly sampled series.
    report.extend(invariant_results(
        "series", testbed.plc_link(pi, pj).sample_series(
            ts_plc, measured=False), f"plc:{pi}->{pj}", metrics))
    report.extend(invariant_results(
        "series", testbed.wifi_link(wi, wj).sample_series(
            ts_wifi, measured=False), f"wifi:{wi}->{wj}", metrics))

    # Tone-map validity plus the paper's monotonicity relations.
    plc_link = testbed.plc_link(pi, pj)
    report.extend(invariant_results(
        "tonemap", generate_tone_map(plc_link.channel, t0, tmi=1),
        f"plc:{pi}->{pj}", metrics))
    report.add(from_messages(
        "relation.snr_monotonicity", f"plc:{pi}->{pj}",
        metamorphic.check_snr_monotonicity(plc_link, t0)))
    report.add(from_messages(
        "relation.attenuation_monotonicity", f"plc:{pi}->{pj}",
        metamorphic.check_attenuation_monotonicity(plc_link, t0)))

    # Scenario-level oracles and relations.
    options = dict(runner_options or {})
    options.setdefault("cache_window_s", 30.0)

    def factory(tb, **kwargs):
        from repro.netsim.runner import ScenarioRunner
        return ScenarioRunner(tb, **options, **kwargs)

    scenario = _suite_scenario(testbed, t0, include_bulk=True)
    report.add(from_messages(
        "oracle.default_horizon", scenario.name,
        oracles.diff_default_horizon(testbed, scenario,
                                     runner_factory=factory)))
    report.add(from_messages(
        "relation.time_shift", scenario.name,
        metamorphic.check_time_shift(testbed, scenario, delta_s=4.0,
                                     runner_factory=factory)))
    report.add(from_messages(
        "relation.file_size_scaling", f"wifi:{wi}->{wj}",
        metamorphic.check_file_size_scaling(testbed, wi, wj, "wifi",
                                            t0=t0,
                                            runner_factory=factory)))
    report.add(from_messages(
        "relation.cbr_contention", f"wifi:{wi}->{wj}",
        metamorphic.check_cbr_contention_monotonicity(
            testbed, wi, wj, "wifi", t0=t0, runner_factory=factory)))

    # Runner/flow invariants over a plain run of the suite scenario.
    runner = factory(testbed)
    flow_results = runner.run(scenario, horizon_s=90.0)
    report.extend(invariant_results("runner", runner.stats,
                                    scenario.name, metrics))
    report.extend(invariant_results("flow_results", flow_results,
                                    scenario.name, metrics))

    # Fault-plan replay equivalence.
    from repro.faults.plan import FaultPlan, FaultPlanConfig
    plan = FaultPlan.generate(
        root_seed=seed, name="verify-suite", horizon_s=30.0,
        targets={"links": [f"{pi}->{pj}", "*"]},
        config=FaultPlanConfig(outages=1, degradations=1,
                               snr_collapses=1), t0=t0)
    fault_scenario = Scenario(name="verify-faults")
    fault_scenario.add(FlowRequest(name="sat", src=pi, dst=pj,
                                   start_s=t0, kind="saturated",
                                   medium="plc", duration_s=30.0))
    report.add(from_messages(
        "oracle.fault_replay", f"plc:{pi}->{pj}",
        oracles.diff_fault_replay(testbed, fault_scenario, plan,
                                  horizon_s=30.0,
                                  runner_factory=factory)))

    # Hybrid packet pipeline: in-order release + packet conservation.
    from repro.hybrid.aggregator import HybridDevice
    from repro.verify.invariants import InvariantViolationError
    device = HybridDevice(testbed.plc_link(pi, pj),
                          testbed.wifi_link(pi, pj), testbed.streams,
                          metrics=metrics if metrics is not None
                          else MetricsRegistry())
    try:
        device.run_packet_level("hybrid", t0, duration=0.25,
                                check_invariants=True)
    except InvariantViolationError as exc:
        report.add(from_messages(
            "invariant.reorder_pipeline", f"hybrid:{pi}->{pj}",
            [str(v) for v in exc.violations]))
    else:
        report.add(from_messages(
            "invariant.reorder_pipeline", f"hybrid:{pi}->{pj}", []))

    # Seed relabeling of an aggregate link statistic.
    def evaluate(s: int) -> float:
        tb = checkout_testbed(preset, seed=s)
        (i, j), _ = _pairs(tb)
        return tb.wifi_link(i, j).capacity_bps(t0)

    report.add(from_messages(
        "relation.seed_relabeling", f"wifi:{preset}",
        oracles.diff_seed_relabeling(evaluate,
                                     [seed, seed + 1, seed + 2])))


def _campaign_checks(report: VerifyReport, preset: str,
                     seed: int) -> None:
    """Campaign-engine equivalences (full suite only: spawns pools)."""
    probes = [ExperimentSpec.make("rng_probe", preset, seed + k, draws=6)
              for k in range(4)]
    scenario_spec = ExperimentSpec.make("scenario", "mini3", seed,
                                        scenario="mini3-mixed",
                                        horizon_s=60.0)
    survey_spec = ExperimentSpec.make("survey_pair", "mini3", seed,
                                      src=0, dst=1, duration_s=2.0,
                                      interval_s=0.5)
    specs = probes + [scenario_spec, survey_spec]
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        report.add(from_messages(
            "oracle.inline_vs_pool", f"campaign:{preset}",
            oracles.diff_inline_vs_pool(specs, Path(tmp) / "pool")))
        report.add(from_messages(
            "oracle.traced_vs_untraced", f"campaign:{preset}",
            oracles.diff_traced_vs_untraced(specs,
                                            Path(tmp) / "trace")))
        report.add(from_messages(
            "oracle.backend_equivalence", f"campaign:{preset}",
            oracles.diff_backend_equivalence(specs,
                                             Path(tmp) / "backends")))
        report.add(from_messages(
            "oracle.slice_equivalence", f"campaign:{preset}",
            oracles.diff_slice_equivalence(specs, Path(tmp) / "slices")))


def _library_scenario_checks(report: VerifyReport, preset: str,
                             seed: int,
                             metrics: Optional[MetricsRegistry]) -> None:
    """Invariant-checked run of the library scenario for the preset."""
    from repro.netsim.runner import ScenarioRunner
    from repro.netsim.scenario import build_scenario

    name = "office-afternoon" if preset.startswith("office") \
        else "mini3-mixed"
    testbed = checkout_testbed(preset, seed=seed)
    scenario = build_scenario(name, 14 * 3600.0)
    runner = ScenarioRunner(testbed, cache_window_s=30.0)
    flow_results = runner.run(scenario, horizon_s=180.0)
    report.extend(invariant_results("runner", runner.stats, name,
                                    metrics))
    report.extend(invariant_results("flow_results", flow_results, name,
                                    metrics))


def run_suite(suite: str, preset: Optional[str] = None, seed: int = 7,
              budget_s: Optional[float] = None,
              max_cases: Optional[int] = None,
              repro_dir: str = "verify-failures",
              runner_options: Optional[Dict[str, object]] = None,
              metrics: Optional[MetricsRegistry] = None,
              clock: Optional[Clock] = None) -> VerifyReport:
    """Run one named suite and return its report.

    ``runner_options`` is forwarded to every ``ScenarioRunner`` the suite
    builds (and, for the fuzz suite, embedded in each case spec) — the
    hook the planted-bug acceptance test uses.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r} "
                         f"(known: {', '.join(suite_names())})")
    default_preset, _ = SUITES[suite]
    preset = preset if preset else default_preset
    report = VerifyReport(suite=suite, seed=seed, preset=preset)
    if suite == "fuzz":
        fuzzer = ScenarioFuzzer(
            root_seed=seed,
            presets=(preset, "mini3") if preset != "mini3"
            else ("mini3", "wing-b2"),
            runner_options=runner_options, repro_dir=repro_dir,
            metrics=metrics if metrics is not None
            else MetricsRegistry())
        results = fuzzer.run(
            max_cases=max_cases if max_cases is not None else 64,
            budget_s=budget_s if budget_s is not None else 60.0,
            clock=clock)
        report.extend(results)
        return report
    if suite == "smoke":
        _deterministic_checks(report, preset, seed, metrics,
                              runner_options, plc_grid=10, wifi_grid=40)
        return report
    # full
    _deterministic_checks(report, preset, seed, metrics, runner_options,
                          plc_grid=16, wifi_grid=120)
    _campaign_checks(report, preset, seed)
    _library_scenario_checks(report, preset, seed, metrics)
    return report
