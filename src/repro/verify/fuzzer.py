"""`ScenarioFuzzer`: seeded random search over the verification surface.

Every fuzz case is an ordinary :class:`repro.campaign.ExperimentSpec` of
kind ``verify_case`` — its parameters fully describe a randomized
scenario/series/fault/relabel check, and the executor registered here is
a pure function of the spec. That buys the fuzzer the whole campaign
contract for free: a failing case has a ``task_key``, derives its
randomness via :func:`repro.sim.random.derive_seed`, and replays
bit-identically from its serialized spec — the minimal-repro artifact is
just the spec plus the failing check results.

Case kinds rotate round-robin:

* ``scenario`` — a random flow mix on a preset testbed; runs the
  default-horizon differential oracle, frozen-link time-shift
  equivariance, and the runner/flow invariants;
* ``series``  — a random link/time grid; scalar-vs-vectorized oracle
  plus series and tone-map invariants and SNR monotonicity;
* ``faults``  — a generated :class:`~repro.faults.plan.FaultPlan`; the
  serialize-replay oracle plus attenuation monotonicity;
* ``relabel`` — seed-relabeling invariance of link-capacity aggregates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.spec import ExperimentSpec
from repro.campaign.tasks import TaskOutput, register_task
from repro.compile import checkout_testbed
from repro.obs.clock import Clock, SystemClock
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.sim.random import RandomStreams, derive_seed
from repro.verify import invariants, metamorphic, oracles
from repro.verify.report import CheckResult, from_messages

REPRO_FORMAT = "verify-repro"
REPRO_VERSION = 1

#: The rotation of case families (round-robin over the case index).
CASE_KINDS = ("scenario", "series", "faults", "relabel")

#: Runner options a fuzz case may carry. ``legacy_default_horizon`` is
#: the planted-bug seam (see ScenarioRunner); the rest bound case cost.
_RUNNER_OPTION_KEYS = ("legacy_default_horizon", "quantum_s",
                       "cache_window_s")


# --- case execution (the ``verify_case`` campaign task) -----------------------


def _stations_for(testbed, medium: str,
                  rng: np.random.Generator) -> Tuple[int, int]:
    """Pick a connected directed pair for ``medium`` on this testbed."""
    pairs = testbed.same_board_pairs() if medium == "plc" \
        else testbed.all_pairs()
    i, j = pairs[int(rng.integers(len(pairs)))]
    if rng.integers(2):
        i, j = j, i
    return int(i), int(j)


def _fuzz_scenario(testbed, rng: np.random.Generator, t0: float,
                   n_flows: int, huge_file: bool):
    """A random flow mix. ``huge_file`` adds a transfer that cannot
    complete inside the horizon — the input class that separates the
    correct default deadline from the double-offset one."""
    from repro.netsim.scenario import FlowRequest, Scenario

    scenario = Scenario(name="verify-fuzz")
    kinds = ("saturated", "cbr", "file")
    media = ("plc", "wifi", "hybrid")
    for k in range(n_flows):
        medium = media[int(rng.integers(len(media)))]
        pair_medium = "plc" if medium in ("plc", "hybrid") else "wifi"
        src, dst = _stations_for(testbed, pair_medium, rng)
        kind = kinds[int(rng.integers(len(kinds)))]
        start = t0 + float(rng.integers(0, 16)) * 0.5
        duration = float(rng.integers(10, 40))
        if kind == "file":
            scenario.add(FlowRequest(
                name=f"flow{k}", src=src, dst=dst, start_s=start,
                kind="file", medium=medium,
                size_bytes=float(rng.integers(1, 40)) * 1e5))
        elif kind == "cbr":
            scenario.add(FlowRequest(
                name=f"flow{k}", src=src, dst=dst, start_s=start,
                kind="cbr", medium=medium, duration_s=duration,
                rate_bps=float(rng.integers(1, 30)) * 1e6))
        else:
            scenario.add(FlowRequest(
                name=f"flow{k}", src=src, dst=dst, start_s=start,
                kind="saturated", medium=medium, duration_s=duration))
    if huge_file:
        src, dst = _stations_for(testbed, "plc", rng)
        scenario.add(FlowRequest(
            name="bulk", src=src, dst=dst, start_s=t0, kind="file",
            medium="plc", size_bytes=1e12))
    return scenario


def _runner_factory_from(params: Dict[str, object],
                         metrics: Optional[MetricsRegistry] = None):
    """Runner factory honouring the spec's runner options."""
    options = {k: params[k] for k in _RUNNER_OPTION_KEYS if k in params}
    options.setdefault("cache_window_s", 30.0)

    def factory(testbed, **kwargs):
        from repro.netsim.runner import ScenarioRunner
        return ScenarioRunner(testbed, metrics=metrics, **options,
                              **kwargs)
    return factory


def _case_scenario(spec: ExperimentSpec,
                   p: Dict[str, object]) -> List[CheckResult]:
    testbed = checkout_testbed(spec.preset, seed=spec.seed)
    rng = RandomStreams(seed=spec.task_seed()).get("case")
    t0 = float(p["t0"])
    scenario = _fuzz_scenario(testbed, rng, t0, int(p["n_flows"]),
                              bool(p["huge_file"]))
    metrics = MetricsRegistry()
    factory = _runner_factory_from(p, metrics=metrics)
    results: List[CheckResult] = []

    results.append(from_messages(
        "oracle.default_horizon", scenario.name,
        oracles.diff_default_horizon(testbed, scenario,
                                     runner_factory=factory)))
    results.append(from_messages(
        "relation.time_shift", scenario.name,
        metamorphic.check_time_shift(testbed, scenario,
                                     delta_s=float(p["delta_s"]),
                                     runner_factory=factory)))
    # One plain run: its stats and flow results must satisfy the
    # registry invariants regardless of the flow mix.
    runner = factory(testbed)
    flow_results = runner.run(scenario)
    results.extend(invariant_results(
        "runner", runner.stats, scenario.name, metrics))
    results.extend(invariant_results(
        "flow_results", flow_results, scenario.name, metrics))
    return results


def _case_series(spec: ExperimentSpec,
                 p: Dict[str, object]) -> List[CheckResult]:
    # Two identically seeded checkouts: measured sampling consumes the
    # noise stream, so the scalar reference needs its own view (both are
    # forks of one compiled template — built once, not twice).
    testbed_a = checkout_testbed(spec.preset, seed=spec.seed)
    testbed_b = checkout_testbed(spec.preset, seed=spec.seed)
    medium = str(p["medium"])
    src, dst = int(p["src"]), int(p["dst"])
    link_a = testbed_a.link(medium, src, dst)
    link_b = testbed_b.link(medium, src, dst)
    subject = f"{medium}:{src}->{dst}"
    if link_a is None or link_b is None:
        return [from_messages("oracle.scalar_vs_vectorized", subject,
                              [f"no {medium} link for {src}->{dst}"])]
    t0 = float(p["t0"])
    ts = t0 + np.arange(int(p["n_points"])) * float(p["interval_s"])
    results = [from_messages(
        "oracle.scalar_vs_vectorized", subject,
        oracles.diff_scalar_vs_vectorized(link_a, link_b, ts,
                                          measured=bool(p["measured"])))]
    series = testbed_a.link(medium, src, dst).sample_series(
        ts, measured=False)
    results.extend(invariant_results("series", series, subject))
    if medium == "plc":
        results.append(from_messages(
            "relation.snr_monotonicity", subject,
            metamorphic.check_snr_monotonicity(link_a, t0)))
        channel = getattr(link_a, "channel", None)
        if channel is not None:
            from repro.plc.tonemap import generate_tone_map
            tone_map = generate_tone_map(channel, t0, tmi=1)
            results.extend(invariant_results("tonemap", tone_map, subject))
    return results


def _case_faults(spec: ExperimentSpec,
                 p: Dict[str, object]) -> List[CheckResult]:
    from repro.faults.plan import FaultPlan, FaultPlanConfig
    from repro.netsim.scenario import FlowRequest, Scenario

    testbed = checkout_testbed(spec.preset, seed=spec.seed)
    rng = RandomStreams(seed=spec.task_seed()).get("case")
    t0 = float(p["t0"])
    src, dst = _stations_for(testbed, "plc", rng)
    horizon = float(p["horizon_s"])
    plan = FaultPlan.generate(
        root_seed=spec.task_seed(), name="verify-fuzz",
        horizon_s=horizon,
        targets={"links": [f"{src}->{dst}", "*"]},
        config=FaultPlanConfig(outages=int(p["outages"]),
                               degradations=int(p["degradations"]),
                               snr_collapses=int(p["snr_collapses"])),
        t0=t0)
    scenario = Scenario(name="verify-faults")
    scenario.add(FlowRequest(name="sat", src=src, dst=dst, start_s=t0,
                             kind="saturated", medium="plc",
                             duration_s=horizon))
    scenario.add(FlowRequest(name="xfer", src=dst, dst=src, start_s=t0,
                             kind="file", medium="plc",
                             size_bytes=2e6))
    factory = _runner_factory_from(p)
    results = [from_messages(
        "oracle.fault_replay", f"plc:{src}->{dst}",
        oracles.diff_fault_replay(testbed, scenario, plan,
                                  horizon_s=horizon,
                                  runner_factory=factory))]
    link = testbed.plc_link(src, dst)
    if link is not None:
        results.append(from_messages(
            "relation.attenuation_monotonicity", f"plc:{src}->{dst}",
            metamorphic.check_attenuation_monotonicity(link, t0)))
    return results


def _case_relabel(spec: ExperimentSpec,
                  p: Dict[str, object]) -> List[CheckResult]:
    medium = str(p["medium"])
    t0 = float(p["t0"])
    seeds = [derive_seed(spec.seed, "relabel", str(k))
             for k in range(int(p["n_seeds"]))]

    def evaluate(seed: int) -> float:
        testbed = checkout_testbed(spec.preset, seed=seed)
        rng = RandomStreams(seed=derive_seed(seed, "relabel.pair")) \
            .get("pair")
        src, dst = _stations_for(testbed, medium, rng)
        link = testbed.link(medium, src, dst)
        return 0.0 if link is None else link.capacity_bps(t0)

    return [from_messages(
        "relation.seed_relabeling", f"{medium}:{spec.preset}",
        oracles.diff_seed_relabeling(evaluate, seeds))]


_CASE_EXECUTORS = {"scenario": _case_scenario, "series": _case_series,
                   "faults": _case_faults, "relabel": _case_relabel}


def invariant_results(kind: str, subject, subject_name: str,
                      metrics: Optional[MetricsRegistry] = None
                      ) -> List[CheckResult]:
    """Run registry invariants and express them as check results."""
    violations = invariants.check_invariants(kind, subject,
                                             subject_name=subject_name,
                                             metrics=metrics)
    by_name: Dict[str, List[str]] = {
        inv.name: [] for inv in invariants.invariants_for(kind)}
    for v in violations:
        by_name.setdefault(v.invariant, []).append(v.message)
    return [from_messages(f"invariant.{name}", subject_name, messages)
            for name, messages in sorted(by_name.items())]


@register_task("verify_case", uses_testbed=True,
               params=("index", "t0", "n_flows", "huge_file", "delta_s",
                       "medium", "src", "dst", "n_points", "interval_s",
                       "measured", "horizon_s", "outages", "degradations",
                       "snr_collapses", "n_seeds", "legacy_default_horizon",
                       "quantum_s", "cache_window_s"),
               required=("case",))
def _verify_case(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Campaign executor for one fuzz case (pure function of the spec)."""
    p = spec.params_dict
    case = str(p["case"])
    if case not in _CASE_EXECUTORS:
        raise ValueError(f"unknown verify case {case!r} "
                         f"(known: {sorted(_CASE_EXECUTORS)})")
    results = _CASE_EXECUTORS[case](spec, p)
    failures = sum(not r.passed for r in results)
    return TaskOutput(records=[r.to_dict() for r in results],
                      stats={"case": case, "checks": len(results),
                             "failed": failures})


# --- the fuzzer ---------------------------------------------------------------


class ScenarioFuzzer:
    """Generate, execute, and (on failure) archive randomized cases.

    All randomness flows from ``derive_seed(root_seed, "verify.fuzz",
    str(case_index))`` — two fuzzers with the same root seed produce the
    same spec sequence, and any single case replays from its spec alone.
    """

    def __init__(self, root_seed: int = 7,
                 presets: Sequence[str] = ("mini3", "wing-b2"),
                 runner_options: Optional[Dict[str, object]] = None,
                 repro_dir: Union[str, Path] = "verify-failures",
                 metrics: Optional[MetricsRegistry] = None):
        self.root_seed = int(root_seed)
        self.presets = tuple(presets)
        self.runner_options = dict(runner_options or {})
        self.repro_dir = Path(repro_dir)
        self.metrics = metrics if metrics is not None \
            else global_registry()

    # --- case generation ------------------------------------------------------

    def case_spec(self, index: int) -> ExperimentSpec:
        """The ``index``-th case, a pure function of the root seed."""
        case = CASE_KINDS[index % len(CASE_KINDS)]
        case_seed = derive_seed(self.root_seed, "verify.fuzz",
                                str(index))
        rng = RandomStreams(seed=case_seed).get("params")
        preset = self.presets[int(rng.integers(len(self.presets)))]
        params: Dict[str, object] = {
            "case": case, "index": index,
            # Integer t0 keeps the frozen-link shift relation exact.
            "t0": int(rng.integers(0, 256)),
        }
        if case == "scenario":
            params.update(
                n_flows=int(rng.integers(2, 5)),
                huge_file=bool(rng.integers(2)),
                delta_s=float(2 ** int(rng.integers(0, 4))))
            params.update(self.runner_options)
        elif case == "series":
            medium = ("plc", "wifi")[int(rng.integers(2))]
            # Pair indices are resolved against the preset's pair list
            # inside a throwaway checkout so the spec stays self-contained.
            probe = checkout_testbed(preset, seed=case_seed)
            src, dst = _stations_for(probe, medium, rng)
            params.update(
                medium=medium, src=src, dst=dst,
                n_points=int(rng.integers(8, 25)),
                interval_s=float(rng.integers(1, 20)) * 0.05,
                measured=bool(rng.integers(2)))
        elif case == "faults":
            params.update(
                horizon_s=float(rng.integers(20, 60)),
                outages=int(rng.integers(0, 3)),
                degradations=int(rng.integers(0, 3)),
                snr_collapses=int(rng.integers(0, 3)))
            params.update(self.runner_options)
        else:  # relabel
            params.update(medium=("plc", "wifi")[int(rng.integers(2))],
                          n_seeds=int(rng.integers(3, 7)))
        return ExperimentSpec.make("verify_case", preset, case_seed,
                                   **params)

    # --- execution ------------------------------------------------------------

    def run_case(self, spec: ExperimentSpec) -> List[CheckResult]:
        """Execute one case; archives a repro artifact on failure."""
        output = _verify_case(spec, 0)
        results = [CheckResult.from_dict(r) for r in output.records]
        self.metrics.inc("verify.fuzz.cases")
        failures = [r for r in results if not r.passed]
        if failures:
            self.metrics.inc("verify.fuzz.failures")
            self.write_repro(spec, failures)
        return results

    def run(self, max_cases: int = 64,
            budget_s: Optional[float] = None,
            clock: Optional[Clock] = None,
            stop_on_failure: bool = False) -> List[CheckResult]:
        """Run up to ``max_cases`` cases within ``budget_s`` seconds."""
        clock = clock if clock is not None else SystemClock()
        started = clock.now()
        all_results: List[CheckResult] = []
        for index in range(max_cases):
            if budget_s is not None \
                    and clock.now() - started >= budget_s:
                break
            results = self.run_case(self.case_spec(index))
            all_results.extend(results)
            if stop_on_failure and any(not r.passed for r in results):
                break
        return all_results

    # --- repro artifacts ------------------------------------------------------

    def repro_path(self, spec: ExperimentSpec) -> Path:
        digest = spec.task_key().rsplit("/", 1)[-1]
        return self.repro_dir / f"repro-{digest}.json"

    def write_repro(self, spec: ExperimentSpec,
                    failures: Sequence[CheckResult]) -> Path:
        """Archive the minimal replayable description of a failure."""
        self.repro_dir.mkdir(parents=True, exist_ok=True)
        path = self.repro_path(spec)
        path.write_text(json.dumps(
            {"format": REPRO_FORMAT, "version": REPRO_VERSION,
             "spec": spec.to_dict(), "task_key": spec.task_key(),
             "task_seed": spec.task_seed(),
             "failures": [f.to_dict() for f in failures]},
            sort_keys=True, indent=2) + "\n", encoding="utf-8")
        return path


def replay_repro(path: Union[str, Path]
                 ) -> Tuple[ExperimentSpec, List[CheckResult]]:
    """Re-execute an archived failure from its artifact.

    Returns the reconstructed spec and the fresh check results — the
    failure is reproduced iff the same checks fail again.
    """
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != REPRO_FORMAT:
        raise ValueError(f"{path} is not a {REPRO_FORMAT} artifact")
    spec = ExperimentSpec.from_dict(data["spec"])
    output = _verify_case(spec, 0)
    return spec, [CheckResult.from_dict(r) for r in output.records]
