"""Canonical JSONL verification reports.

A verify run (suite or fuzz) emits one report file:

* line 1 — a header: ``{"format": "verify-report", "version": 1, ...}``;
* one line per check, **sorted by (check, subject)** with sorted keys and
  compact separators — like campaign artifacts, the bytes are a pure
  function of the results, so two runs that observed the same outcomes
  produce identical files;
* a final summary line with the pass/fail census.

Wall-clock timings never appear in the report (they would break the
canonical-bytes property); they go to ``BENCH_verify.json`` via the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

REPORT_FORMAT = "verify-report"
REPORT_VERSION = 1


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one verification check against one subject.

    ``check`` names the oracle/relation/invariant group (e.g.
    ``"oracle.scalar_vs_vectorized"``); ``subject`` what it ran against
    (e.g. ``"plc:0->1"``); ``detail`` carries the first failure message
    (empty on a pass).
    """

    check: str
    subject: str
    status: str  # "pass" | "fail"
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> Dict[str, str]:
        return {"check": self.check, "subject": self.subject,
                "status": self.status, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "CheckResult":
        return cls(check=data["check"], subject=data["subject"],
                   status=data["status"], detail=data.get("detail", ""))


def passed(check: str, subject: str) -> CheckResult:
    return CheckResult(check=check, subject=subject, status="pass")


def failed(check: str, subject: str, detail: str) -> CheckResult:
    return CheckResult(check=check, subject=subject, status="fail",
                       detail=detail)


def from_messages(check: str, subject: str,
                  messages: Sequence[str]) -> CheckResult:
    """Collapse a diff/violation message list into one result."""
    if not messages:
        return passed(check, subject)
    detail = messages[0] if len(messages) == 1 else (
        f"{messages[0]} (+{len(messages) - 1} more)")
    return failed(check, subject, detail)


@dataclass
class VerifyReport:
    """An in-memory report: results plus identifying metadata."""

    suite: str
    seed: int
    preset: str
    results: List[CheckResult] = field(default_factory=list)

    def add(self, result: CheckResult) -> None:
        self.results.append(result)

    def extend(self, results: Sequence[CheckResult]) -> None:
        self.results.extend(results)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, int]:
        return {"checks": len(self.results),
                "passed": sum(r.passed for r in self.results),
                "failed": len(self.failures)}


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_report(path: Union[str, Path], report: VerifyReport) -> Path:
    """Write the canonical JSONL report; returns the path written."""
    path = Path(path)
    lines = [_canonical({"format": REPORT_FORMAT,
                         "version": REPORT_VERSION,
                         "suite": report.suite, "seed": report.seed,
                         "preset": report.preset})]
    ordered = sorted(report.results,
                     key=lambda r: (r.check, r.subject, r.status))
    lines += [_canonical(r.to_dict()) for r in ordered]
    lines.append(_canonical({"summary": report.summary()}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_report(path: Union[str, Path]
                ) -> Tuple[Dict[str, object], List[CheckResult]]:
    """Parse a report file back into (header, results).

    Raises ``ValueError`` on anything that is not a verify report.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty, not a verify report")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: malformed header: {exc}") from None
    if not isinstance(header, dict) \
            or header.get("format") != REPORT_FORMAT:
        raise ValueError(f"{path} is not a verify report "
                         f"(header {lines[0][:60]!r})")
    results: List[CheckResult] = []
    for line in lines[1:]:
        data = json.loads(line)
        if "summary" in data:
            continue
        results.append(CheckResult.from_dict(data))
    return header, results
