"""`repro.verify`: the unified verification layer.

Four parts, one purpose — make equivalence machine-checkable on *any*
scenario instead of a handful of frozen goldens:

* :mod:`~repro.verify.invariants` — a registry of named invariants over
  runner stats, flow results, link series, tone maps, the hybrid reorder
  pipeline and campaign artifacts, reporting through ``repro.obs``;
* :mod:`~repro.verify.oracles` — differential oracles for the contracts
  earlier layers promised (scalar ≡ vectorized, inline ≡ pool, traced ≡
  untraced, plan ≡ replayed plan, default ≡ explicit horizon);
* :mod:`~repro.verify.metamorphic` — relations derived from the paper
  (time-shift equivariance in the invariance band, SNR/attenuation
  monotonicity, size/contention scaling, seed relabeling);
* :mod:`~repro.verify.fuzzer` — a seeded :class:`ScenarioFuzzer` whose
  cases are campaign specs, so every failure is a replayable artifact.

``repro verify --suite {smoke,full,fuzz}`` (see :mod:`repro.cli`) runs
the suites in :mod:`~repro.verify.suites` and writes a canonical JSONL
report.
"""

from repro.verify.fuzzer import (
    CASE_KINDS,
    ScenarioFuzzer,
    invariant_results,
    replay_repro,
)
from repro.verify.invariants import (
    AIRTIME_EPSILON,
    Invariant,
    InvariantViolationError,
    Violation,
    check_invariants,
    enforce_invariants,
    invariants_for,
    register_invariant,
    registered_kinds,
)
from repro.verify.metamorphic import (
    FrozenLink,
    check_attenuation_monotonicity,
    check_cbr_contention_monotonicity,
    check_file_size_scaling,
    check_snr_monotonicity,
    check_time_shift,
    frozen_link_decorator,
    shift_scenario,
)
from repro.verify.oracles import (
    diff_default_horizon,
    diff_fault_replay,
    diff_inline_vs_pool,
    diff_scalar_vs_vectorized,
    diff_seed_relabeling,
    diff_traced_vs_untraced,
)
from repro.verify.report import (
    CheckResult,
    VerifyReport,
    failed,
    from_messages,
    passed,
    read_report,
    write_report,
)
from repro.verify.suites import SUITES, run_suite, suite_names

__all__ = [
    "AIRTIME_EPSILON",
    "CASE_KINDS",
    "CheckResult",
    "FrozenLink",
    "Invariant",
    "InvariantViolationError",
    "SUITES",
    "ScenarioFuzzer",
    "VerifyReport",
    "Violation",
    "check_attenuation_monotonicity",
    "check_cbr_contention_monotonicity",
    "check_file_size_scaling",
    "check_invariants",
    "check_snr_monotonicity",
    "check_time_shift",
    "diff_default_horizon",
    "diff_fault_replay",
    "diff_inline_vs_pool",
    "diff_scalar_vs_vectorized",
    "diff_seed_relabeling",
    "diff_traced_vs_untraced",
    "enforce_invariants",
    "failed",
    "from_messages",
    "frozen_link_decorator",
    "invariant_results",
    "invariants_for",
    "passed",
    "read_report",
    "register_invariant",
    "registered_kinds",
    "replay_repro",
    "run_suite",
    "shift_scenario",
    "suite_names",
    "write_report",
]
