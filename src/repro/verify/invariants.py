"""The invariant registry: properties that must hold on *any* scenario.

Every prior layer defended its contracts with one-off assertions spread
across the test suite.  This module centralises them: an
:class:`Invariant` is a named, registered predicate over one *subject
kind* — a runner's stats, a scenario's flow results, a sampled
:class:`~repro.medium.link.LinkSeries`, a :class:`~repro.plc.tonemap.ToneMap`,
a released packet stream, or a campaign :class:`TaskArtifact` — and
:func:`check_invariants` runs every invariant registered for that kind,
publishing ``verify.*`` counters into a :class:`repro.obs.MetricsRegistry`
so violations are first-class observability events, not just test
failures.

The registry is the seam the rest of the toolkit hooks into:

* the fluid runner's results are checked by the ``runner`` and
  ``flow_results`` kinds (``repro verify``, the fuzzer, and the
  campaign's ``--check`` mode all call the same functions);
* the hybrid packet pipeline checks ``reorder_release`` /
  ``packet_conservation`` when asked
  (:meth:`repro.hybrid.aggregator.HybridDevice.run_packet_level` with
  ``check_invariants=True``);
* ``repro campaign --check`` replays the ``artifact_task`` kind over a
  finalized artifact file.

Registering a new invariant is one decorated function — see
``docs/testing.md`` ("Adding an invariant").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry, global_registry

#: Slack for airtime sums: float accumulation across a quantum's passes.
AIRTIME_EPSILON = 1e-6


@dataclass(frozen=True)
class Violation:
    """One observed breach of a registered invariant."""

    invariant: str
    subject: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.invariant}] {self.subject}: {self.message}"


class InvariantViolationError(AssertionError):
    """Raised by :func:`enforce_invariants` when any check fails."""

    def __init__(self, violations: List[Violation]):
        self.violations = violations
        lines = [f"{len(violations)} invariant violation(s):"]
        lines += [f"  {v}" for v in violations]
        super().__init__("\n".join(lines))


#: An invariant body: subject -> iterable of violation messages (empty
#: means the invariant holds).
InvariantFn = Callable[[object], Iterable[str]]


@dataclass(frozen=True)
class Invariant:
    name: str
    kind: str
    description: str
    fn: InvariantFn


INVARIANT_REGISTRY: Dict[str, Invariant] = {}


def register_invariant(name: str, kind: str, description: str):
    """Decorator adding an invariant to the registry.

    ``name`` must be globally unique (it becomes the
    ``verify.violations.<name>`` counter); ``kind`` groups invariants by
    the subject they understand.
    """
    def wrap(fn: InvariantFn) -> InvariantFn:
        if name in INVARIANT_REGISTRY:
            raise ValueError(f"duplicate invariant {name!r}")
        INVARIANT_REGISTRY[name] = Invariant(
            name=name, kind=kind, description=description, fn=fn)
        return fn
    return wrap


def invariants_for(kind: str) -> Tuple[Invariant, ...]:
    """Registered invariants of one subject kind, in name order."""
    return tuple(sorted(
        (inv for inv in INVARIANT_REGISTRY.values() if inv.kind == kind),
        key=lambda inv: inv.name))


def registered_kinds() -> Tuple[str, ...]:
    return tuple(sorted({inv.kind for inv in INVARIANT_REGISTRY.values()}))


def check_invariants(kind: str, subject, subject_name: str = "",
                     metrics: Optional[MetricsRegistry] = None
                     ) -> List[Violation]:
    """Run every invariant registered for ``kind`` against ``subject``.

    Returns the violations (empty list = all hold) and publishes
    ``verify.checks`` / ``verify.violations.<invariant>`` counters into
    ``metrics`` (the process-wide registry by default), so `--check`
    modes surface violations through the same observability pipe as
    every other runtime signal.
    """
    registry = metrics if metrics is not None else global_registry()
    violations: List[Violation] = []
    for invariant in invariants_for(kind):
        registry.inc("verify.checks")
        for message in invariant.fn(subject):
            violations.append(Violation(invariant=invariant.name,
                                        subject=subject_name,
                                        message=message))
            registry.inc(f"verify.violations.{invariant.name}")
    return violations


def enforce_invariants(kind: str, subject, subject_name: str = "",
                       metrics: Optional[MetricsRegistry] = None) -> None:
    """:func:`check_invariants`, raising on any violation."""
    violations = check_invariants(kind, subject, subject_name, metrics)
    if violations:
        raise InvariantViolationError(violations)


# --- helpers ------------------------------------------------------------------


def _finite(value) -> bool:
    try:
        return bool(np.isfinite(value))
    except TypeError:
        return False


# --- runner stats (work conservation, airtime <= 1) ---------------------------


@register_invariant(
    "runner.work_conservation", "runner",
    "the runner never allocated more than a domain's airtime "
    "(RunnerStats.invariant_violations == 0)")
def _runner_work_conservation(stats) -> Iterable[str]:
    count = stats.invariant_violations
    if count:
        yield (f"{count} quantum(s) over-allocated a contention domain "
               f"(peak airtime {stats.max_domain_airtime:.9f})")


@register_invariant(
    "runner.airtime_bounded", "runner",
    "per-domain airtime never exceeds 1 per quantum, in the peak or in "
    "the per-domain sums")
def _runner_airtime_bounded(stats) -> Iterable[str]:
    peak = stats.max_domain_airtime
    if peak > 1.0 + AIRTIME_EPSILON:
        yield f"peak domain airtime {peak:.9f} > 1"
    quanta = stats.domain_quanta
    for domain, airtime in sorted(stats.domain_airtime.items()):
        active = quanta.get(domain, 0)
        if airtime > active * (1.0 + AIRTIME_EPSILON):
            yield (f"domain {domain} used {airtime:.9f} airtime over "
                   f"{active} active quanta")


# --- flow results -------------------------------------------------------------


@register_invariant(
    "flows.nonnegative", "flow_results",
    "delivered bytes, active time and rates are finite and >= 0")
def _flows_nonnegative(results) -> Iterable[str]:
    for name, result in sorted(results.items()):
        for attr in ("delivered_bytes", "active_time_s", "mean_rate_bps"):
            value = getattr(result, attr)
            if not _finite(value) or value < 0:
                yield f"flow {name}: {attr} = {value!r}"
        if result.starved_quanta < 0:
            yield f"flow {name}: starved_quanta = {result.starved_quanta}"


@register_invariant(
    "flows.completion_after_start", "flow_results",
    "a finished flow completed at or after its start time")
def _flows_completion_after_start(results) -> Iterable[str]:
    for name, result in sorted(results.items()):
        if result.finished and \
                result.completed_at < result.request.start_s:
            yield (f"flow {name}: completed_at {result.completed_at} < "
                   f"start {result.request.start_s}")


@register_invariant(
    "flows.offered_load_cap", "flow_results",
    "a CBR flow never delivers more than rate * duration; a file flow "
    "never delivers more than its size")
def _flows_offered_load_cap(results) -> Iterable[str]:
    for name, result in sorted(results.items()):
        request = result.request
        if request.kind == "cbr" and request.rate_bps:
            cap = request.rate_bps * (request.duration_s or 0.0) / 8.0
            if result.delivered_bytes > cap * (1.0 + AIRTIME_EPSILON):
                yield (f"cbr flow {name} delivered "
                       f"{result.delivered_bytes:.0f} B > offered "
                       f"{cap:.0f} B")
        if request.kind == "file" and request.size_bytes:
            if result.delivered_bytes > request.size_bytes * (1 + 1e-9):
                yield (f"file flow {name} delivered "
                       f"{result.delivered_bytes:.0f} B > size "
                       f"{request.size_bytes:.0f} B")


# --- link series (BLE / PBerr / rate range checks) ----------------------------


@register_invariant(
    "series.rates_valid", "series",
    "sampled capacities and throughputs are finite and >= 0")
def _series_rates_valid(series) -> Iterable[str]:
    for field in ("capacity_bps", "throughput_bps"):
        values = np.asarray(series.column(field), dtype=float)
        bad = ~np.isfinite(values) | (values < 0)
        if bad.any():
            k = int(np.argmax(bad))
            yield (f"{field}[{k}] = {values[k]!r} at "
                   f"t={float(series.times[k])!r}")


@register_invariant(
    "series.loss_in_unit_interval", "series",
    "the loss column (PBerr for PLC, outage indicator for WiFi) stays "
    "within [0, 1]")
def _series_loss_valid(series) -> Iterable[str]:
    loss = np.asarray(series.loss, dtype=float)
    bad = ~np.isfinite(loss) | (loss < 0.0) | (loss > 1.0)
    if bad.any():
        k = int(np.argmax(bad))
        yield f"loss[{k}] = {loss[k]!r} outside [0, 1]"


@register_invariant(
    "series.ble_valid", "series",
    "PLC BLE columns (per-slot and averaged) are finite and >= 0, and "
    "the average matches the per-slot mean")
def _series_ble_valid(series) -> Iterable[str]:
    names = series.data.dtype.names
    if "avg_ble_bps" not in names:
        return
    avg = np.asarray(series.column("avg_ble_bps"), dtype=float)
    bad = ~np.isfinite(avg) | (avg < 0)
    if bad.any():
        k = int(np.argmax(bad))
        yield f"avg_ble_bps[{k}] = {avg[k]!r}"
    if "ble_per_slot_bps" in names:
        slots = np.asarray(series.column("ble_per_slot_bps"), dtype=float)
        if slots.size:
            if (~np.isfinite(slots)).any() or (slots < 0).any():
                yield "ble_per_slot_bps contains negative or non-finite"
            drift = np.abs(slots.mean(axis=-1) - avg)
            if (drift > 1e-6 * np.maximum(avg, 1.0)).any():
                k = int(np.argmax(drift))
                yield (f"avg_ble_bps[{k}] = {avg[k]!r} != mean of slots "
                       f"{slots[k].mean()!r}")


@register_invariant(
    "series.pb_err_valid", "series",
    "the PLC PB error rate stays within [0, 1]")
def _series_pb_err_valid(series) -> Iterable[str]:
    if "pb_err" not in series.data.dtype.names:
        return
    pb = np.asarray(series.column("pb_err"), dtype=float)
    bad = ~np.isfinite(pb) | (pb < 0.0) | (pb > 1.0)
    if bad.any():
        k = int(np.argmax(bad))
        yield f"pb_err[{k}] = {pb[k]!r} outside [0, 1]"


# --- tone maps ----------------------------------------------------------------


@register_invariant(
    "tonemap.valid", "tonemap",
    "a tone map's per-slot BLE is finite/non-negative, its assumed "
    "PBerr and FEC rate are in range, and the averaged BLE equals the "
    "slot mean")
def _tonemap_valid(tonemap) -> Iterable[str]:
    per_slot = np.asarray(tonemap.ble_per_slot_bps(), dtype=float)
    if (~np.isfinite(per_slot)).any() or (per_slot < 0).any():
        yield f"per-slot BLE invalid: {per_slot!r}"
    if not 0.0 <= tonemap.pb_err <= 1.0:
        yield f"assumed pb_err {tonemap.pb_err!r} outside [0, 1]"
    if not 0.0 < tonemap.fec_rate <= 1.0:
        yield f"fec_rate {tonemap.fec_rate!r} outside (0, 1]"
    if (tonemap.bits < 0).any():
        yield "negative bits per carrier"
    if per_slot.size:
        avg = tonemap.avg_ble_bps()
        if abs(avg - float(per_slot.mean())) > 1e-6 * max(avg, 1.0):
            yield (f"avg_ble_bps {avg!r} != per-slot mean "
                   f"{float(per_slot.mean())!r}")


# --- hybrid reorder pipeline --------------------------------------------------


@register_invariant(
    "reorder.sequence_monotone", "reorder_release",
    "packets leave the reorder buffer in strictly increasing sequence "
    "order")
def _reorder_sequence_monotone(seqs) -> Iterable[str]:
    seqs = list(seqs)
    for k in range(1, len(seqs)):
        if seqs[k] <= seqs[k - 1]:
            yield (f"release #{k} has seq {seqs[k]} after seq "
                   f"{seqs[k - 1]}")
            return


@register_invariant(
    "reorder.packet_conservation", "pipeline",
    "the aggregator->reorder pipeline neither mints nor silently drops "
    "packets: scheduled == released + still pending (+ late duplicates)")
def _reorder_packet_conservation(pipeline) -> Iterable[str]:
    scheduled = int(pipeline["scheduled"])
    released = int(pipeline["released"])
    pending = int(pipeline.get("pending", 0))
    duplicates = int(pipeline.get("duplicates", 0))
    if scheduled != released + pending + duplicates:
        yield (f"{scheduled} scheduled != {released} released + "
               f"{pending} pending + {duplicates} duplicates")
    if released:
        unique = pipeline.get("released_unique", released)
        if int(unique) != released:
            yield f"{released - int(unique)} duplicate release(s)"


# --- campaign artifacts -------------------------------------------------------


@register_invariant(
    "artifact.runner_stats", "artifact_task",
    "per-task runner stats in a campaign artifact respect work "
    "conservation and the airtime bound")
def _artifact_runner_stats(artifact) -> Iterable[str]:
    stats = artifact.stats or {}
    if not stats or "quanta" not in stats:
        return
    violations = stats.get("invariant_violations", 0)
    if violations:
        yield (f"task {artifact.task_key}: {violations} work-conservation "
               f"violation(s)")
    peak = stats.get("max_domain_airtime", 0.0)
    if peak > 1.0 + AIRTIME_EPSILON:
        yield f"task {artifact.task_key}: peak airtime {peak:.9f} > 1"
    quanta = stats.get("domain_quanta", {})
    for domain, airtime in sorted(
            (stats.get("domain_airtime") or {}).items()):
        active = quanta.get(domain, 0)
        if airtime > active * (1.0 + AIRTIME_EPSILON):
            yield (f"task {artifact.task_key}: domain {domain} airtime "
                   f"{airtime:.9f} over {active} quanta")


@register_invariant(
    "artifact.records_sane", "artifact_task",
    "record payloads in a campaign artifact carry finite, non-negative "
    "rates and consistent completion flags")
def _artifact_records_sane(artifact) -> Iterable[str]:
    for i, record in enumerate(artifact.records):
        if not isinstance(record, dict):
            continue
        for field in ("mean_rate_bps", "delivered_bytes", "active_time_s",
                      "capacity_bps", "throughput_bps"):
            value = record.get(field)
            if value is None:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if not _finite(v) or v < 0:
                    yield (f"task {artifact.task_key} record[{i}]: "
                           f"{field} = {v!r}")
                    break
        if record.get("finished") and record.get("completed_at") is None:
            yield (f"task {artifact.task_key} record[{i}]: finished "
                   f"without completed_at")
