"""Differential oracles: two paths that must produce identical results.

Each oracle re-states an equivalence contract an earlier layer promised —
scalar vs vectorized sampling, inline vs pooled campaigns, traced vs
untraced runs, fault plans vs their serialized replays, explicit vs
default runner horizons — as a generic function over *any* scenario or
spec list, instead of the one frozen example a test file happened to
pick.  Every oracle returns a list of difference messages; empty means
the two paths agreed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.medium.link import series_from_samples
from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import Scenario

#: ``runner_factory(testbed, **kwargs) -> ScenarioRunner`` — the seam the
#: fuzzer uses to plant deliberate bugs (see ScenarioFuzzer).
RunnerFactory = Callable[..., ScenarioRunner]


def default_runner_factory(testbed, **kwargs) -> ScenarioRunner:
    return ScenarioRunner(testbed, **kwargs)


# --- scalar vs vectorized sampling --------------------------------------------


def diff_scalar_vs_vectorized(link_batch, link_scalar, ts: np.ndarray,
                              measured: bool = True) -> List[str]:
    """The medium contract's core promise: batch ≡ scalar, bit for bit.

    ``link_batch`` and ``link_scalar`` must be two *independently built*
    but identically seeded facades of the same link (measured sampling
    consumes the noise stream, so one object cannot drive both paths).
    """
    batch = link_batch.sample_series(ts, measured=measured)
    reference = series_from_samples(
        [link_scalar.sample(float(t), measured=measured) for t in ts],
        name=link_scalar.name, medium=link_scalar.medium)
    diffs: List[str] = []
    if batch.data.dtype != reference.data.dtype:
        return [f"dtype mismatch: {batch.data.dtype} vs "
                f"{reference.data.dtype}"]
    if len(batch) != len(reference):
        return [f"length mismatch: {len(batch)} vs {len(reference)}"]
    for field in reference.data.dtype.names:
        if not np.array_equal(batch.data[field], reference.data[field]):
            delta = np.asarray(batch.data[field], dtype=float) - \
                np.asarray(reference.data[field], dtype=float)
            k = int(np.argmax(np.abs(np.atleast_1d(delta).reshape(
                len(reference), -1)).max(axis=1)))
            diffs.append(
                f"column {field!r} differs (first at row {k}, "
                f"t={float(ts[k])!r}, measured={measured})")
    return diffs


# --- scenario-runner equivalences ---------------------------------------------


def _results_delta(results_a, results_b, label_a: str,
                   label_b: str) -> List[str]:
    """Exact comparison of two ``ScenarioRunner.run`` result mappings."""
    if sorted(results_a) != sorted(results_b):
        return [f"flow sets differ: {sorted(results_a)} vs "
                f"{sorted(results_b)}"]
    diffs: List[str] = []
    for name in sorted(results_a):
        a, b = results_a[name].to_dict(), results_b[name].to_dict()
        for key in a:
            if a[key] != b[key]:
                diffs.append(
                    f"flow {name}.{key}: {label_a}={a[key]!r} vs "
                    f"{label_b}={b[key]!r}")
    return diffs


def diff_default_horizon(testbed, scenario: Scenario,
                         runner_factory: RunnerFactory =
                         default_runner_factory,
                         link_decorator=None,
                         **runner_kwargs) -> List[str]:
    """Default horizon ≡ its documented explicit equivalent.

    ``run(scenario)`` promises to stop at ``scenario.end_time() + 60 s``
    — exactly what ``run(scenario, horizon_s=end - t0 + 60)`` requests
    relative to the first flow start.  Any drift between the two paths
    (e.g. the pre-PR-1 double offset of ``t0``) shows up as a per-flow
    difference on scenarios whose file flows outlive the horizon.
    """
    if not scenario.flows:
        return []
    t0 = min(f.start_s for f in scenario.flows)
    explicit = scenario.end_time() - t0 + 60.0
    runner_a = runner_factory(testbed, link_decorator=link_decorator,
                              **runner_kwargs)
    runner_b = runner_factory(testbed, link_decorator=link_decorator,
                              **runner_kwargs)
    results_default = runner_a.run(scenario)
    results_explicit = runner_b.run(scenario, horizon_s=explicit)
    return _results_delta(results_default, results_explicit,
                          "default-horizon", "explicit-horizon")


def diff_fault_replay(testbed, scenario: Scenario, plan,
                      horizon_s: Optional[float] = None,
                      runner_factory: RunnerFactory =
                      default_runner_factory,
                      **runner_kwargs) -> List[str]:
    """A faulted run ≡ the same run replayed from the plan's artifact.

    Serializes the :class:`repro.faults.FaultPlan` through its
    ``to_dict``/``from_dict`` round trip — the exact path a chaos-failure
    artifact takes — and asserts the replay reproduces every flow result
    bit for bit.
    """
    from repro.faults.link import faulty_link_decorator
    from repro.faults.plan import FaultPlan

    replayed = FaultPlan.from_dict(plan.to_dict())
    if replayed.events != plan.events or replayed.seed != plan.seed:
        return [f"plan round-trip drifted: {len(plan.events)} events -> "
                f"{len(replayed.events)}"]
    runner_a = runner_factory(
        testbed, link_decorator=faulty_link_decorator(plan),
        **runner_kwargs)
    runner_b = runner_factory(
        testbed, link_decorator=faulty_link_decorator(replayed),
        **runner_kwargs)
    original = runner_a.run(scenario, horizon_s=horizon_s)
    replay = runner_b.run(scenario, horizon_s=horizon_s)
    return _results_delta(original, replay, "original", "replayed")


# --- campaign-artifact equivalences -------------------------------------------


def _artifact_bytes_delta(path_a: Path, path_b: Path, label_a: str,
                          label_b: str) -> List[str]:
    bytes_a = Path(path_a).read_bytes()
    bytes_b = Path(path_b).read_bytes()
    if bytes_a == bytes_b:
        return []
    lines_a = bytes_a.decode("utf-8").splitlines()
    lines_b = bytes_b.decode("utf-8").splitlines()
    if len(lines_a) != len(lines_b):
        return [f"artifact line counts differ: {label_a}={len(lines_a)} "
                f"vs {label_b}={len(lines_b)}"]
    for k, (a, b) in enumerate(zip(lines_a, lines_b)):
        if a != b:
            return [f"artifacts first differ at line {k + 1}"]
    return ["artifacts differ (same lines, different bytes)"]


def diff_inline_vs_pool(specs: Sequence, out_dir: Path,
                        workers: int = 2, name: str = "verify"
                        ) -> List[str]:
    """Campaign artifacts must be byte-identical at any worker count."""
    from repro.campaign.engine import run_campaign

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path_inline = out_dir / "inline.jsonl"
    path_pool = out_dir / f"pool{workers}.jsonl"
    run_campaign(specs, path_inline, name=name, workers=0, resume=False)
    run_campaign(specs, path_pool, name=name, workers=workers,
                 resume=False)
    return _artifact_bytes_delta(path_inline, path_pool, "inline",
                                 f"pool({workers})")


def diff_backend_equivalence(specs: Sequence, out_dir: Path,
                             backends: Sequence[Tuple[str, int]] = (
                                 ("inline", 0), ("process", 4),
                                 ("thread", 4), ("chunked", 4)),
                             chunk_size: int = 3, name: str = "verify",
                             trace: bool = True) -> List[str]:
    """The execute plane's core promise: artifacts (and trace sidecars)
    are byte-identical whichever :mod:`repro.campaign.backends` mechanism
    ran the campaign, at any worker count.

    ``backends`` is a list of ``(backend_name, workers)`` pairs; the
    first entry is the reference the rest are compared against.
    """
    from repro.campaign.engine import run_campaign
    from repro.obs.trace import trace_path_for

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for backend, workers in backends:
        path = out_dir / f"{backend}-w{workers}.jsonl"
        run_campaign(specs, path, name=name, workers=workers,
                     backend=backend, chunk_size=chunk_size,
                     resume=False, trace=trace)
        paths.append((f"{backend}(w{workers})", path))
    diffs: List[str] = []
    ref_label, ref_path = paths[0]
    for label, path in paths[1:]:
        diffs.extend(_artifact_bytes_delta(ref_path, path, ref_label,
                                           label))
        if trace:
            diffs.extend(_artifact_bytes_delta(
                trace_path_for(ref_path), trace_path_for(path),
                f"{ref_label} trace", f"{label} trace"))
    return diffs


def diff_slice_equivalence(specs: Sequence, out_dir: Path,
                           slice_counts: Sequence[int] = (1, 4, 16),
                           backends: Sequence[Tuple[str, int]] = (
                               ("inline", 0), ("process", 4)),
                           name: str = "verify",
                           trace: bool = True) -> List[str]:
    """Time-sliced execution's headline guarantee: a campaign whose long
    scenario tasks are split into K checkpointed slices produces an
    artifact (and trace sidecar) byte-identical to the straight run, at
    any K and on any backend.

    The straight reference runs inline without slicing; each comparison
    run slices at ``horizon / K`` where ``horizon`` is the largest
    scenario horizon among ``specs`` (K=1 therefore exercises the
    "slicing configured but below threshold" no-op path). Non-scenario
    specs ride along untouched in every run.
    """
    from repro.campaign.engine import run_campaign
    from repro.obs.trace import trace_path_for

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    horizons = [float(spec.params_dict.get("horizon_s", 900.0))
                for spec in specs if spec.kind == "scenario"]
    if not horizons:
        return ["no scenario specs to slice"]
    horizon = max(horizons)
    ref_path = out_dir / "straight.jsonl"
    run_campaign(specs, ref_path, name=name, workers=0, resume=False,
                 trace=trace)
    diffs: List[str] = []
    for count in slice_counts:
        for backend, workers in backends:
            label = f"sliced(K={count},{backend},w{workers})"
            path = out_dir / f"sliced-k{count}-{backend}-w{workers}.jsonl"
            run_campaign(specs, path, name=name, workers=workers,
                         backend=backend, resume=False, trace=trace,
                         slice_horizon_s=horizon / count)
            diffs.extend(_artifact_bytes_delta(ref_path, path,
                                               "straight", label))
            if trace:
                diffs.extend(_artifact_bytes_delta(
                    trace_path_for(ref_path), trace_path_for(path),
                    "straight trace", f"{label} trace"))
    return diffs


def diff_traced_vs_untraced(specs: Sequence, out_dir: Path,
                            name: str = "verify") -> List[str]:
    """Tracing must never change a campaign artifact's bytes."""
    from repro.campaign.engine import run_campaign

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path_plain = out_dir / "untraced.jsonl"
    path_traced = out_dir / "traced.jsonl"
    run_campaign(specs, path_plain, name=name, workers=0, resume=False)
    run_campaign(specs, path_traced, name=name, workers=0, resume=False,
                 trace=True)
    return _artifact_bytes_delta(path_plain, path_traced, "untraced",
                                 "traced")


# --- seed relabeling ----------------------------------------------------------


def diff_seed_relabeling(evaluate: Callable[[int], float],
                         seeds: Sequence[int]) -> List[str]:
    """Aggregate statistics depend on the *set* of seeds, not the order.

    Evaluates ``evaluate(seed)`` once per seed in the given order and
    once in reverse; per-seed values must match exactly (anything else
    means hidden state leaks between evaluations) and the order-free
    aggregates (sorted sum / min / max) must be bit-identical.
    """
    forward = {s: float(evaluate(s)) for s in seeds}
    backward = {s: float(evaluate(s)) for s in reversed(list(seeds))}
    diffs: List[str] = []
    for s in seeds:
        if forward[s] != backward[s]:
            diffs.append(f"seed {s}: {forward[s]!r} (forward order) != "
                         f"{backward[s]!r} (reverse order)")
    agg_f = _order_free_aggregate(list(forward.values()))
    agg_b = _order_free_aggregate(list(backward.values()))
    if agg_f != agg_b:
        diffs.append(f"aggregates differ under relabeling: {agg_f} vs "
                     f"{agg_b}")
    return diffs


def _order_free_aggregate(values: List[float]) -> Tuple[float, ...]:
    ordered = sorted(values)
    total = 0.0
    for v in ordered:
        total += v
    if not ordered:
        return (0.0, 0.0, 0.0)
    return (total, ordered[0], ordered[-1])
