"""Directed PLC link facade: metrics-at-time-t for the measurement layer.

:class:`PlcLink` bundles a :class:`~repro.plc.channel.PlcChannel` with the
PHY/MAC models and answers the questions the paper's tools answer:

* ``avg_ble_bps(t)`` — what ``int6krate`` reports (average BLE over slots);
* ``ble_per_slot_bps(t)`` — what SoF sniffing reveals per slot (Fig. 9);
* ``pb_err(t)`` — what ``ampstat`` reports;
* ``throughput_bps(t)`` — what a saturated iperf measures (Fig. 3, 7, 15);
* ``u_etx(t)`` / ``broadcast_loss_probability(t)`` — §8's metrics.

This is the *tracked* view: it assumes traffic is flowing so tone maps follow
the channel (the paper's saturated-measurement setting). The stateful
tone-map update dynamics live in :class:`~repro.plc.tonemap.ToneMapProcess`
and the estimation transients in
:class:`~repro.plc.channel_estimation.ChannelEstimator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.plc import mac, phy
from repro.plc.channel import PlcChannel
from repro.plc.spec import PlcSpec
from repro.sim.random import RandomStreams
from repro.units import MBPS


@dataclass(frozen=True)
class LinkSample:
    """One measurement instant of a PLC link (all rates in bits/s)."""

    time: float
    ble_per_slot_bps: np.ndarray
    avg_ble_bps: float
    pb_err: float
    throughput_bps: float

    @property
    def avg_ble_mbps(self) -> float:
        return self.avg_ble_bps / MBPS

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / MBPS


class PlcLink:
    """One direction of a PLC link under (assumed) saturated tracking."""

    def __init__(self, channel: PlcChannel, streams: RandomStreams,
                 name: Optional[str] = None):
        self.channel = channel
        self.spec: PlcSpec = channel.spec
        self.name = name or channel.name
        self._rng = streams.get(f"plc.link.{self.name}")
        self._throughput_model = mac.SaturatedThroughputModel(self.spec)

    # --- BLE --------------------------------------------------------------------

    def ble_per_slot_bps(self, t: float) -> np.ndarray:
        """Per-slot BLE a fresh tone map would carry at ``t`` (Fig. 9)."""
        snr = self.channel.snr_db(t)
        impulse = self.channel.load.impulsive_event_rate_at(
            self.channel.dst_outlet, t)
        return phy.ble_from_snr(snr, self.spec,
                                impulsive_rate_hz=impulse)

    def avg_ble_bps(self, t: float) -> float:
        """Slot-averaged BLE — the ``int6krate`` number (§7.1)."""
        return float(np.mean(self.ble_per_slot_bps(t)))

    # --- PB errors -----------------------------------------------------------------

    def pb_err(self, t: float) -> float:
        """Realised PB error rate under tracked tone maps (``ampstat``).

        The tone map was generated from the *smoothed* channel with the
        standard back-off; the realised error rate is evaluated against the
        currently-jittered SNR — so noisy links show elevated PBerr even
        though their tone maps target the same error rate (Fig. 7 right).
        """
        base = self.channel.snr_db(t, include_jitter=False)
        bits = np.minimum(phy.select_bits(base, phy.DEFAULT_BACKOFF_DB),
                          self.spec.max_modulation_bits)
        actual = self.channel.snr_db(t)
        impulse = self.channel.load.impulsive_event_rate_at(
            self.channel.dst_outlet, t)
        per_slot = [
            phy.pb_error_probability(actual[:, s], bits[:, s], impulse)
            for s in range(self.spec.num_slots)]
        return float(np.mean(per_slot))

    # --- throughput -------------------------------------------------------------------

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        """Saturated UDP throughput at ``t``.

        ``measured=True`` adds the small iperf sampling noise present in any
        real 100 ms throughput reading.
        """
        ble = self.avg_ble_bps(t)
        residual = max(0.0, self.pb_err(t) - self.spec.target_pb_error)
        thr = self._throughput_model.throughput_bps(ble, residual)
        if thr <= 0:
            return 0.0
        if measured:
            thr += self._rng.normal(0.0, 0.3 * MBPS)
        return max(thr, 0.0)

    def is_connected(self, t: float,
                     min_throughput_bps: float = 1.0 * MBPS) -> bool:
        """Whether the link sustains a usable rate (paper's 'formed' links)."""
        if not self.channel.is_usable(t):
            return False
        return self.throughput_bps(t, measured=False) >= min_throughput_bps

    # --- §8 metrics ---------------------------------------------------------------------

    def u_etx(self, t: float, payload_bytes: int = 1500) -> float:
        """Expected transmission count of a unicast packet (§8.1)."""
        n_pbs = mac.pbs_for_payload(payload_bytes, self.spec)
        return mac.expected_transmissions(n_pbs, self.pb_err(t))

    def u_etx_std(self, t: float, payload_bytes: int = 1500) -> float:
        """Std of the transmission count (Fig. 22 error bars)."""
        n_pbs = mac.pbs_for_payload(payload_bytes, self.spec)
        return mac.transmission_count_std(n_pbs, self.pb_err(t))

    def broadcast_loss_probability(self, t: float) -> float:
        """Loss probability of a ROBO broadcast probe (§8.1, Fig. 21)."""
        snr = self.channel.snr_db(t)
        return phy.robo_loss_probability(snr, self.spec)

    # --- convenience --------------------------------------------------------------------

    def sample(self, t: float) -> LinkSample:
        """Take a full measurement snapshot at ``t``."""
        per_slot = self.ble_per_slot_bps(t)
        return LinkSample(
            time=t,
            ble_per_slot_bps=per_slot,
            avg_ble_bps=float(np.mean(per_slot)),
            pb_err=self.pb_err(t),
            throughput_bps=self.throughput_bps(t),
        )
