"""Directed PLC link facade: metrics-at-time-t for the measurement layer.

:class:`PlcLink` bundles a :class:`~repro.plc.channel.PlcChannel` with the
PHY/MAC models and answers the questions the paper's tools answer:

* ``avg_ble_bps(t)`` — what ``int6krate`` reports (average BLE over slots);
* ``ble_per_slot_bps(t)`` — what SoF sniffing reveals per slot (Fig. 9);
* ``pb_err(t)`` — what ``ampstat`` reports;
* ``throughput_bps(t)`` — what a saturated iperf measures (Fig. 3, 7, 15);
* ``u_etx(t)`` / ``broadcast_loss_probability(t)`` — §8's metrics.

It implements the :class:`repro.medium.Link` contract (``medium == "plc"``)
including the vectorized ``sample_series``: the channel is piecewise
constant per (appliance signature, jitter interval), so the batch path
evaluates the PHY/MAC chain once per group instead of once per timestamp —
bit-identical to the scalar loop (``tests/test_medium_contract``).

This is the *tracked* view: it assumes traffic is flowing so tone maps follow
the channel (the paper's saturated-measurement setting). The stateful
tone-map update dynamics live in :class:`~repro.plc.tonemap.ToneMapProcess`
and the estimation transients in
:class:`~repro.plc.channel_estimation.ChannelEstimator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.medium.link import BatchSamplingMixin, LinkSample, LinkSeries
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.plc import mac, phy
from repro.plc.channel import PlcChannel
from repro.plc.spec import PlcSpec
from repro.sim.random import RandomStreams
from repro.units import MBPS

#: Measurement noise of a 100 ms saturated throughput reading.
MEASUREMENT_NOISE_BPS = 0.3 * MBPS


@dataclass(frozen=True)
class PlcSample(LinkSample):
    """One measurement instant of a PLC link (all rates in bits/s).

    ``capacity_bps`` is the slot-averaged BLE mapped through the MAC
    model (the §7.4 capacity estimate); ``loss`` equals ``pb_err``.
    """

    ble_per_slot_bps: np.ndarray = None
    avg_ble_bps: float = 0.0
    pb_err: float = 0.0

    @property
    def avg_ble_mbps(self) -> float:
        return self.avg_ble_bps / MBPS


class PlcLink(BatchSamplingMixin):
    """One direction of a PLC link under (assumed) saturated tracking."""

    medium = "plc"

    def __init__(self, channel: PlcChannel, streams: RandomStreams,
                 name: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.channel = channel
        self.spec: PlcSpec = channel.spec
        self.name = name or channel.name
        self._rng = streams.get(f"plc.link.{self.name}")
        self._throughput_model = mac.SaturatedThroughputModel(self.spec)
        #: ``medium.plc.*`` sampling counters (process-global by default).
        self.metrics = metrics if metrics is not None \
            else global_registry()

    # --- BLE --------------------------------------------------------------------

    def ble_per_slot_bps(self, t: float) -> np.ndarray:
        """Per-slot BLE a fresh tone map would carry at ``t`` (Fig. 9)."""
        snr = self.channel.snr_db(t)
        impulse = self.channel.load.impulsive_event_rate_at(
            self.channel.dst_outlet, t)
        return phy.ble_from_snr(snr, self.spec,
                                impulsive_rate_hz=impulse)

    def avg_ble_bps(self, t: float) -> float:
        """Slot-averaged BLE — the ``int6krate`` number (§7.1)."""
        return float(np.mean(self.ble_per_slot_bps(t)))

    # --- PB errors -----------------------------------------------------------------

    def _pb_err_from_grids(self, base_snr_db: np.ndarray,
                           snr_db: np.ndarray,
                           impulsive_rate_hz: float) -> float:
        """Realised PBerr given the smoothed and the jittered SNR grids."""
        bits = np.minimum(phy.select_bits(base_snr_db,
                                          phy.DEFAULT_BACKOFF_DB),
                          self.spec.max_modulation_bits)
        per_slot = [
            phy.pb_error_probability(snr_db[:, s], bits[:, s],
                                     impulsive_rate_hz)
            for s in range(self.spec.num_slots)]
        return float(np.mean(per_slot))

    def pb_err(self, t: float) -> float:
        """Realised PB error rate under tracked tone maps (``ampstat``).

        The tone map was generated from the *smoothed* channel with the
        standard back-off; the realised error rate is evaluated against the
        currently-jittered SNR — so noisy links show elevated PBerr even
        though their tone maps target the same error rate (Fig. 7 right).
        """
        return self._pb_err_from_grids(
            self.channel.snr_db(t, include_jitter=False),
            self.channel.snr_db(t),
            self.channel.load.impulsive_event_rate_at(
                self.channel.dst_outlet, t))

    # --- throughput -------------------------------------------------------------------

    def capacity_bps(self, t: float) -> float:
        """§7.4 application-capacity estimate: slot-averaged BLE
        (invariance-scale averaging, §6.1) through the MAC model."""
        return float(max(
            self._throughput_model.throughput_bps(self.avg_ble_bps(t)),
            0.0))

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        """Saturated UDP throughput at ``t``.

        ``measured=True`` adds the small iperf sampling noise present in any
        real 100 ms throughput reading.
        """
        ble = self.avg_ble_bps(t)
        residual = max(0.0, self.pb_err(t) - self.spec.target_pb_error)
        thr = self._throughput_model.throughput_bps(ble, residual)
        if thr <= 0:
            return 0.0
        if measured:
            thr += self._rng.normal(0.0, MEASUREMENT_NOISE_BPS)
        return max(thr, 0.0)

    def is_connected(self, t: float,
                     min_throughput_bps: float = 1.0 * MBPS) -> bool:
        """Whether the link sustains a usable rate (paper's 'formed' links)."""
        if not self.channel.is_usable(t):
            return False
        return self.throughput_bps(t, measured=False) >= min_throughput_bps

    # --- §8 metrics ---------------------------------------------------------------------

    def u_etx(self, t: float, payload_bytes: int = 1500) -> float:
        """Expected transmission count of a unicast packet (§8.1)."""
        n_pbs = mac.pbs_for_payload(payload_bytes, self.spec)
        return mac.expected_transmissions(n_pbs, self.pb_err(t))

    def u_etx_std(self, t: float, payload_bytes: int = 1500) -> float:
        """Std of the transmission count (Fig. 22 error bars)."""
        n_pbs = mac.pbs_for_payload(payload_bytes, self.spec)
        return mac.transmission_count_std(n_pbs, self.pb_err(t))

    def broadcast_loss_probability(self, t: float) -> float:
        """Loss probability of a ROBO broadcast probe (§8.1, Fig. 21)."""
        snr = self.channel.snr_db(t)
        return phy.robo_loss_probability(snr, self.spec)

    # --- convenience --------------------------------------------------------------------

    def sample(self, t: float, measured: bool = True) -> PlcSample:
        """Take a full measurement snapshot at ``t``."""
        self.metrics.inc("medium.plc.samples")
        per_slot = self.ble_per_slot_bps(t)
        pb = self.pb_err(t)
        return PlcSample(
            time=t,
            capacity_bps=self.capacity_bps(t),
            throughput_bps=self.throughput_bps(t, measured=measured),
            loss=pb,
            ble_per_slot_bps=per_slot,
            avg_ble_bps=float(np.mean(per_slot)),
            pb_err=pb,
        )

    def sample_series(self, ts: np.ndarray,
                      measured: bool = True) -> LinkSeries:
        """Vectorized :meth:`sample` over a time grid.

        Runs the PHY/MAC chain once per (appliance signature, jitter
        interval) group — the timescales on which the channel actually
        changes — and fans the values back out to every timestamp.
        """
        ts = np.asarray(ts, dtype=float)
        self.metrics.inc("medium.plc.series_calls")
        self.metrics.inc("medium.plc.samples", len(ts))
        series = LinkSeries.allocate(
            len(ts),
            extra_fields=[("ble_per_slot_bps", "f8",
                           (self.spec.num_slots,)),
                          ("avg_ble_bps", "f8"), ("pb_err", "f8")],
            name=self.name, medium=self.medium)
        data = series.data
        data["time"] = ts
        for group in self.channel.snr_series_groups(ts):
            per_slot = phy.ble_from_snr(
                group.snr_db, self.spec,
                impulsive_rate_hz=group.impulsive_rate_hz)
            avg_ble = float(np.mean(per_slot))
            pb = self._pb_err_from_grids(group.base_snr_db, group.snr_db,
                                         group.impulsive_rate_hz)
            residual = max(0.0, pb - self.spec.target_pb_error)
            thr = self._throughput_model.throughput_bps(avg_ble, residual)
            idx = group.indices
            data["ble_per_slot_bps"][idx] = per_slot
            data["avg_ble_bps"][idx] = avg_ble
            data["pb_err"][idx] = pb
            data["loss"][idx] = pb
            data["capacity_bps"][idx] = max(
                self._throughput_model.throughput_bps(avg_ble), 0.0)
            data["throughput_bps"][idx] = thr if thr > 0 else 0.0
        if measured:
            thr_col = data["throughput_bps"]
            positive = thr_col > 0
            k = int(positive.sum())
            if k:
                noisy = (thr_col[positive]
                         + self._rng.normal(0.0, MEASUREMENT_NOISE_BPS,
                                            size=k))
                data["throughput_bps"][positive] = np.maximum(noisy, 0.0)
        return series
