"""Directed PLC channel: multipath transfer function + per-carrier SNR.

The model follows the paper's §5 narrative (and the channel-modelling
literature it cites, [15]):

* the mains cable is a transmission line; every tap with an appliance is an
  impedance mismatch that both leaks through-signal and reflects it (Fig. 5),
  so the transfer function is a **multipath sum** with frequency-selective
  notches;
* bare cable attenuation is tiny — the paper measures ≤ 2 Mbps of throughput
  loss over 70 m of unloaded cable — so degradation is dominated by taps and
  noise;
* noise at the **receiver** is the sum of appliance injections attenuated by
  their cable distance (from :class:`repro.powergrid.load.ElectricalLoad`),
  with a low-pass spectral shape, and varies per tone-map slot
  (invariance scale) and with appliance switching (random scale);
* the **cycle scale** is a zero-mean jitter process whose standard deviation
  and hold time depend on how noise-dominated the link is — reproducing the
  paper's central finding that link quality and link-metric variability are
  strongly (negatively) correlated (§6.2);
* link **asymmetry** (§5) emerges from two modelled mechanisms: receiver-local
  noise (physical) and a per-direction coupling/AGC loss that grows with the
  electrical load adjacent to the receiving outlet (the paper's "high
  electrical-load close to one of the two stations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.powergrid.load import (
    BACKGROUND_NOISE_DBM_HZ,
    ElectricalLoad,
    dbm_to_mw,
)
from repro.plc.spec import PlcSpec
from repro.sim.random import RandomStreams

#: Propagation speed on mains cable (m/s), ~0.5 c.
PROPAGATION_SPEED = 1.5e8

#: Cable attenuation: alpha(f) = A0 + A1 * f**K nepers/metre (Zimmermann
#: model). Calibrated so 70 m of bare cable costs only a few dB at 30 MHz
#: and the 30-68 MHz AV500 extension stays usable at in-floor distances.
CABLE_A0 = 2.0e-3
CABLE_A1 = 1.2e-10
CABLE_K = 1.0

#: Fixed coupler/AFE insertion loss per end (dB).
COUPLING_LOSS_DB = 3.0

#: Appliance noise spectral slope: PSD(f) = PSD(f0) * (f/f0) ** NOISE_SLOPE
#: (appliance noise concentrates at low frequencies; measured PLC noise
#: falls steeply above ~30 MHz, which is why the AV500 band extension can
#: revive links that appliance noise kills on the 2-30 MHz AV band).
NOISE_SLOPE = -2.0
NOISE_REF_HZ = 3.0e6

#: How close (cable metres) an appliance must be to an outlet to load the
#: coupling of that outlet (asymmetry mechanism #2).
LOCAL_LOAD_RADIUS_M = 8.0

#: Insertion loss per junction (branch point) traversed by the direct path.
#: Every branching splits signal power towards the other legs; 1.2 dB per
#: junction is mid-range for in-wall wiring and is what makes *electrically
#: long* paths (many rooms away) lossy even though bare cable is nearly
#: transparent.
JUNCTION_LOSS_DB = 2.1


@dataclass(frozen=True)
class JitterState:
    """Cycle-scale jitter parameters of a link at a given appliance state."""

    sigma_db: float       # std of the common jitter component (dB)
    hold_time_s: float    # time between jitter re-draws
    impulse_prob: float   # chance a hold interval is an impulsive dip
    impulse_depth_db: float


@dataclass(frozen=True)
class SnrGroup:
    """One (appliance signature, jitter interval) group of a time grid.

    ``indices`` are positions into the grid passed to
    :meth:`PlcChannel.snr_series_groups`; every one of them sees the same
    ``snr_db`` grid (shape (carriers, slots)).
    """

    indices: np.ndarray
    base_snr_db: np.ndarray
    snr_db: np.ndarray
    impulsive_rate_hz: float


class PlcChannel:
    """One *direction* of a PLC link (src transmits, dst receives)."""

    def __init__(self, load: ElectricalLoad, src_outlet: str,
                 dst_outlet: str, spec: PlcSpec, streams: RandomStreams,
                 name: Optional[str] = None):
        if src_outlet == dst_outlet:
            raise ValueError("src and dst outlets must differ")
        self.load = load
        self.src_outlet = src_outlet
        self.dst_outlet = dst_outlet
        self.spec = spec
        self.name = name or f"{src_outlet}->{dst_outlet}"
        self._streams = streams
        self._freqs = spec.carrier_frequencies()
        self._alpha = CABLE_A0 + CABLE_A1 * self._freqs ** CABLE_K
        self._noise_shape = np.clip(
            (self._freqs / NOISE_REF_HZ) ** NOISE_SLOPE, 1e-4, 10.0)
        self._bg_mw = dbm_to_mw(BACKGROUND_NOISE_DBM_HZ)
        # Per-direction structural randomness (connector quality, AFE spread):
        # a fixed draw, NOT time-varying — real links keep their personality.
        rng = streams.fresh(f"plc.structure.{self.name}")
        # Most directions draw a small loss; a quarter draw a large one —
        # the coupling/AGC spread behind the severe (>1.5x) asymmetries the
        # paper sees on ~30% of pairs (§5).
        self._direction_loss_db = float(rng.uniform(0.0, 2.0))
        if rng.uniform() < 0.3:
            self._direction_loss_db += float(rng.uniform(1.5, 5.5))
        self._connected = load.grid.connected(src_outlet, dst_outlet)
        # Caches keyed by appliance on/off signature.
        self._pathloss_cache: Tuple[Optional[tuple], Optional[np.ndarray]] = (
            None, None)
        self._snr_cache: Tuple[Optional[tuple], Optional[np.ndarray]] = (
            None, None)

    # --- multipath transfer function ------------------------------------------

    def path_loss_db(self, t: float) -> np.ndarray:
        """Per-carrier path loss (positive dB), for the appliance state at t."""
        if not self._connected:
            return np.full(self.spec.num_carriers, 200.0)
        signature = self.load.state_signature(t)
        key, cached = self._pathloss_cache
        if key == signature and cached is not None:
            return cached
        loss = self._compute_path_loss(t)
        self._pathloss_cache = (signature, loss)
        self._snr_cache = (None, None)
        return loss

    def _compute_path_loss(self, t: float) -> np.ndarray:
        spec = self.spec
        grid = self.load.grid
        d_direct = grid.electrical_distance(self.src_outlet, self.dst_outlet)
        taps = self.load.reflection_taps(self.src_outlet, self.dst_outlet, t)

        f = self._freqs
        # Direct path: cable loss, junction splits, tap through-losses.
        path = grid.signal_path(self.src_outlet, self.dst_outlet)
        n_junctions = sum(1 for node in path[1:-1]
                          if grid.degree(node) > 2)
        through = 10.0 ** (-JUNCTION_LOSS_DB * n_junctions / 20.0)
        local_load_rx = 0.0
        for appliance, extra, powered_on in taps:
            gamma = appliance.kind.reflection_coefficient(powered_on)
            drain = 0.45 if powered_on else 0.1
            through *= np.sqrt(max(1e-6, 1.0 - drain * gamma ** 2))
            d_rx = self.load.cable_distance(appliance.outlet_id, self.dst_outlet)
            if d_rx <= LOCAL_LOAD_RADIUS_M and powered_on:
                local_load_rx += gamma
        h = through * np.exp(-self._alpha * d_direct) * np.exp(
            -2j * np.pi * f * d_direct / PROPAGATION_SPEED)
        # Reflected paths: one per tap, longer by the round trip on the stub
        # plus a fixed per-appliance electrical-length spread (in-wall routing
        # detail) that decorrelates same-room reflections — without it many
        # comparable phasors average into an unrealistically flat channel.
        for appliance, extra, powered_on in taps:
            gamma = appliance.kind.reflection_coefficient(powered_on)
            if gamma < 1e-3:
                continue
            spread_rng = self._streams.fresh(
                f"plc.tap-length.{appliance.instance_id}")
            d_path = d_direct + extra + float(spread_rng.uniform(0.0, 6.0))
            amp = 0.85 * gamma * through * np.exp(-self._alpha * d_path)
            h += amp * np.exp(
                -2j * np.pi * f * d_path / PROPAGATION_SPEED)
        power = np.abs(h) ** 2
        loss_db = -10.0 * np.log10(np.maximum(power, 1e-20))
        # Coupler losses + receiver-side loading (asymmetry mechanism #2) +
        # the fixed per-direction AFE spread. The local-load term shrinks
        # with frequency: bulk appliance impedances look increasingly
        # inductive/open above ~30 MHz, so the AV500 band extension partly
        # escapes it (one reason AV500 revives AV-dead links, Fig. 7).
        loss_db += 2 * COUPLING_LOSS_DB + self._direction_loss_db
        local_shape = np.clip((f / 8.0e6) ** -0.6, 0.3, 2.5)
        loss_db += 6.0 * min(local_load_rx, 2.5) * local_shape
        return loss_db

    # --- noise ------------------------------------------------------------------

    def noise_psd_dbm_hz(self, t: float) -> np.ndarray:
        """Noise PSD at the receiver, shape (num_carriers, num_slots)."""
        per_slot_total_db = self.load.noise_psd_at(self.dst_outlet, t)
        total_mw = 10.0 ** (per_slot_total_db / 10.0)
        appliance_mw = np.maximum(total_mw - self._bg_mw, 0.0)
        # Outer product: spectral shape (carriers) x slot level (slots).
        grid_mw = (self._noise_shape[:, None] * appliance_mw[None, :]
                   + self._bg_mw)
        return 10.0 * np.log10(grid_mw)

    # --- cycle-scale jitter -------------------------------------------------------

    def noise_dominance_db(self, t: float) -> float:
        """How far above the background floor the receiver noise sits (dB)."""
        per_slot = self.load.noise_psd_at(self.dst_outlet, t)
        return float(np.mean(per_slot) - BACKGROUND_NOISE_DBM_HZ)

    def jitter_state(self, t: float) -> JitterState:
        """Jitter parameters; noisier environments jitter harder and faster."""
        rho = self.noise_dominance_db(t)
        sigma = float(np.clip(0.04 * np.exp(rho / 7.0), 0.04, 4.0))
        hold = float(np.clip(30.0 * np.exp(-rho / 4.0), 0.08, 20.0))
        impulse_prob = 0.02 + 0.002 * rho
        rate = self.load.impulsive_event_rate_at(self.dst_outlet, t)
        impulse_prob = min(0.35, impulse_prob + 0.1 * rate)
        return JitterState(sigma_db=float(sigma), hold_time_s=hold,
                           impulse_prob=float(impulse_prob),
                           impulse_depth_db=2.5)

    def _draw_jitter(self, rng: np.random.Generator,
                     state: JitterState) -> np.ndarray:
        """One hold interval's jitter draws from its (re)played stream."""
        common = state.sigma_db * rng.standard_normal()
        per_slot = 0.3 * state.sigma_db * rng.standard_normal(
            self.spec.num_slots)
        jitter = common + per_slot
        if rng.uniform() < state.impulse_prob:
            jitter -= state.impulse_depth_db * rng.uniform(0.5, 1.0)
        return jitter

    def jitter_db(self, t: float) -> Tuple[np.ndarray, JitterState]:
        """Per-slot jitter (dB) at time ``t``; piecewise constant.

        A common component re-drawn every hold interval plus a smaller
        independent per-slot component. Deterministic given (link, interval).
        """
        state = self.jitter_state(t)
        index = int(t / state.hold_time_s)
        cache_key = (index, round(state.sigma_db, 6))
        if getattr(self, "_jitter_cache_key", None) == cache_key:
            return self._jitter_cache_value, state
        rng = self._streams.fresh(f"plc.jitter.{self.name}.{index}")
        jitter = self._draw_jitter(rng, state)
        self._jitter_cache_key = cache_key
        self._jitter_cache_value = jitter
        return jitter, state

    # --- SNR ---------------------------------------------------------------------

    def snr_db(self, t: float, include_jitter: bool = True) -> np.ndarray:
        """True per-carrier, per-slot SNR (dB); shape (carriers, slots)."""
        signature = self.load.state_signature(t)
        key, cached = self._snr_cache
        if key == signature and cached is not None:
            base = cached
        else:
            loss = self.path_loss_db(t)
            noise = self.noise_psd_dbm_hz(t)
            base = (self.spec.tx_psd_dbm_hz - loss)[:, None] - noise
            self._snr_cache = (signature, base)
        if not include_jitter:
            return base
        jitter, _ = self.jitter_db(t)
        return base + jitter[None, :]

    def mean_snr_db(self, t: float) -> float:
        """Carrier/slot-average SNR (quick quality scalar)."""
        return float(np.mean(self.snr_db(t, include_jitter=False)))

    def snr_series_groups(self, ts: np.ndarray) -> "list[SnrGroup]":
        """Group a time grid by channel state and evaluate SNR once per group.

        The channel is piecewise constant on two timescales: the appliance
        on/off signature (base SNR, jitter parameters, impulsive rate) and
        the jitter hold interval (the jitter draw). Every timestamp within
        one (signature, interval) pair sees byte-identical SNR, so the
        batch sampling path computes each group's grids once and fans the
        results back out. Groups are returned in first-appearance order;
        their ``indices`` partition ``range(len(ts))``.
        """
        ts = np.asarray(ts, dtype=float)
        sig_ids: Dict[tuple, int] = {}
        bases: list = []
        states: list = []
        rates: list = []
        group_ids: Dict[Tuple[int, int], int] = {}
        group_keys: list = []
        members: list = []
        for i, t in enumerate(ts):
            t = float(t)
            signature = self.load.state_signature(t)
            sid = sig_ids.get(signature)
            if sid is None:
                sid = len(bases)
                sig_ids[signature] = sid
                # The cached arrays are replaced (never mutated) on state
                # change, so holding references across groups is safe.
                bases.append(self.snr_db(t, include_jitter=False))
                states.append(self.jitter_state(t))
                rates.append(self.load.impulsive_event_rate_at(
                    self.dst_outlet, t))
            key = (sid, int(t / states[sid].hold_time_s))
            gid = group_ids.get(key)
            if gid is None:
                gid = len(group_keys)
                group_ids[key] = gid
                group_keys.append(key)
                members.append([])
            members[gid].append(i)
        names = [f"plc.jitter.{self.name}.{jdx}" for _, jdx in group_keys]
        groups: list = []
        for g, rng in self._streams.fresh_batch(names):
            sid, _ = group_keys[g]
            jitter = self._draw_jitter(rng, states[sid])
            groups.append(SnrGroup(
                indices=np.asarray(members[g], dtype=np.intp),
                base_snr_db=bases[sid],
                snr_db=bases[sid] + jitter[None, :],
                impulsive_rate_hz=rates[sid]))
        return groups

    def is_usable(self, t: float, min_mean_snr_db: float = -2.0) -> bool:
        """Whether the link supports any connectivity at all."""
        if not self._connected:
            return False
        return self.mean_snr_db(t) > min_mean_snr_db
