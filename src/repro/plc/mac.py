"""IEEE 1901 MAC: PB segmentation, aggregation, SACK, efficiency model.

§2.2 of the paper: Ethernet packets are chopped into 512-byte physical blocks
(PBs), PBs are aggregated into PLC frames sized by the current slot's BLE (up
to the 1901 frame-duration limit), the receiver SACKs each PB individually and
only corrupted PBs are retransmitted. The paper's key observation — "the MAC
and PHY layers can be modeled using only two metrics: PBerr and BLE_s" — is
exactly what this module implements.

:class:`SaturatedThroughputModel` is the analytic single-flow efficiency
chain. Its components are the documented 1901/HPAV overheads; one explicit
calibration constant absorbs firmware duty cycles the paper only observes
end-to-end, landing the model on the paper's measured fit
``BLE = 1.7 T − 0.65`` (§7.1, Fig. 15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.plc.spec import PlcSpec
from repro.units import US


@dataclass(frozen=True)
class MacTimings:
    """IEEE 1901 CSMA timing constants (µs values from the standard)."""

    slot_s: float = 35.84 * US
    prs_s: float = 2 * 35.84 * US          # two priority-resolution slots
    preamble_fc_s: float = 110.48 * US     # preamble + frame control
    sack_s: float = 110.48 * US            # SACK delimiter
    rifs_s: float = 140.0 * US             # response interframe space
    cifs_s: float = 100.0 * US             # contention interframe space

    def exchange_overhead_s(self, avg_backoff_slots: float) -> float:
        """Per-frame overhead around the payload burst."""
        return (self.prs_s + avg_backoff_slots * self.slot_s
                + self.preamble_fc_s + self.rifs_s + self.sack_s
                + self.cifs_s)


#: Contention windows per backoff stage for CA0/CA1 priorities (ref [19]).
CSMA_CW = (8, 16, 32, 64)
#: Deferral counter initial values per stage (ref [19]): the 1901 twist —
#: stations also back off after *sensing* the medium busy DC+1 times.
CSMA_DC = (0, 1, 3, 15)

DEFAULT_TIMINGS = MacTimings()

#: Ethernet + IP + UDP header overhead as seen by iperf: 1470 B of
#: application payload ride in a 1528 B wire frame (preamble+IFG included).
APP_PAYLOAD_FACTOR = 1470.0 / 1528.0

#: Share of the 40 ms beacon period available to the CSMA region; the rest
#: carries the CCo beacon and protected management traffic.
CSMA_REGION_FACTOR = 0.92

#: Firmware duty-cycle calibration: sounding, tone-map MM exchanges, queue
#: stalls — everything the paper's end-to-end fit absorbs beyond the
#: documented frame-exchange overheads. Chosen so the full chain lands on the
#: paper's measured slope: airtime(0.792) × PB(0.985) × app(0.962) ×
#: beacon(0.92) × this ≈ 1/1.7.
FIRMWARE_EFFICIENCY = 0.853

#: Fixed management-traffic cost (bps). The paper's fit BLE = 1.7 T − 0.65
#: has an essentially-zero intercept at the throughput scale (≈ 0.4 Mbps);
#: we keep the hook but set it to zero.
MANAGEMENT_FLOOR_BPS = 0.0


def pbs_for_payload(payload_bytes: int, spec: PlcSpec) -> int:
    """Number of PBs an Ethernet payload occupies (1500 B → 3 PBs)."""
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    return max(1, math.ceil(payload_bytes / spec.pb_payload_bytes))


def raw_bits_per_symbol(ble_bps: float, pb_err: float, spec: PlcSpec) -> float:
    """Invert Definition 1: FEC-coded payload bits carried per OFDM symbol."""
    return ble_bps * spec.symbol_duration_s / max(1.0 - pb_err, 1e-6)


def frame_duration_s(n_pbs: int, ble_bps: float, pb_err: float,
                     spec: PlcSpec,
                     timings: MacTimings = DEFAULT_TIMINGS) -> float:
    """On-air duration of a frame carrying ``n_pbs`` physical blocks.

    Whole symbols only — padding fills the last one (§2.2 footnote). Probe
    frames of ≤ 1 PB therefore always occupy at least one full symbol, the
    root cause of §7.2's estimation pathology.
    """
    if n_pbs < 1:
        raise ValueError("a frame carries at least one PB")
    bits = n_pbs * spec.pb_total_bytes * 8
    per_symbol = max(raw_bits_per_symbol(ble_bps, pb_err, spec), 1.0)
    n_symbols = max(1, math.ceil(bits / per_symbol))
    duration = timings.preamble_fc_s + n_symbols * spec.symbol_duration_s
    return min(duration,
               timings.preamble_fc_s + spec.max_frame_duration_s)


class SaturatedThroughputModel:
    """Analytic UDP throughput of one saturated flow (no contention)."""

    def __init__(self, spec: PlcSpec,
                 timings: MacTimings = DEFAULT_TIMINGS):
        self.spec = spec
        self.timings = timings

    def efficiency(self, pb_err: float = 0.0,
                   avg_backoff_slots: float = 3.5) -> float:
        """End-to-end (application payload) / BLE ratio, ≈ 1/1.7."""
        spec = self.spec
        frame_s = spec.max_frame_duration_s
        cycle_s = frame_s + self.timings.exchange_overhead_s(
            avg_backoff_slots)
        airtime = frame_s / cycle_s
        pb_payload = spec.pb_payload_bytes / spec.pb_total_bytes
        return (airtime * pb_payload * APP_PAYLOAD_FACTOR
                * CSMA_REGION_FACTOR * FIRMWARE_EFFICIENCY)

    def throughput_bps(self, avg_ble_bps: float, pb_err: float = 0.0) -> float:
        """Application-level UDP throughput for a given average BLE.

        ``pb_err`` here is *residual* error beyond what the tone map already
        embeds in BLE (Definition 1 multiplies by (1 − PBerr) at generation);
        a drifted channel adds losses on top.
        """
        if avg_ble_bps <= 0:
            return 0.0
        t = (self.efficiency() * avg_ble_bps * (1.0 - pb_err)
             - MANAGEMENT_FLOOR_BPS)
        return max(t, 0.0)


# --- selective-ACK retransmission -------------------------------------------


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of delivering one Ethernet packet over the PB/SACK machinery.

    ``transmissions`` is the number of PLC frames it took until every PB of
    the packet was received — the per-packet sample of U-ETX (§8.1).
    """

    n_pbs: int
    transmissions: int
    pb_sends: int  # total PB copies sent, incl. retransmissions


def deliver_packet(n_pbs: int, pb_err: float, rng: np.random.Generator,
                   max_attempts: int = 50) -> DeliveryResult:
    """Simulate SACK-driven selective retransmission of one packet.

    Each attempt sends the not-yet-delivered PBs; each PB fails i.i.d. with
    ``pb_err``. Only failed PBs are retransmitted (SACK, §2.2).
    """
    if not 0.0 <= pb_err < 1.0:
        raise ValueError(f"pb_err must be in [0, 1), got {pb_err}")
    remaining = n_pbs
    attempts = 0
    pb_sends = 0
    while remaining > 0:
        attempts += 1
        pb_sends += remaining
        if attempts >= max_attempts:
            break
        failures = int(rng.binomial(remaining, pb_err))
        remaining = failures
    return DeliveryResult(n_pbs=n_pbs, transmissions=attempts,
                          pb_sends=pb_sends)


def expected_transmissions(n_pbs: int, pb_err: float,
                           max_terms: int = 200) -> float:
    """Analytic E[transmissions] for a packet of ``n_pbs`` PBs.

    The packet needs max over PBs of each PB's geometric attempt count:
    ``E[max] = Σ_{k≥1} (1 − (1 − p^{k−1})^n)``.
    """
    if pb_err <= 0:
        return 1.0
    if pb_err >= 1:
        return float("inf")
    total = 0.0
    for k in range(1, max_terms + 1):
        term = 1.0 - (1.0 - pb_err ** (k - 1)) ** n_pbs
        total += term
        if term < 1e-12:
            break
    return total


def transmission_count_std(n_pbs: int, pb_err: float,
                           max_terms: int = 200) -> float:
    """Analytic std of the transmission count (error bars of Fig. 22)."""
    if pb_err <= 0:
        return 0.0
    mean = expected_transmissions(n_pbs, pb_err, max_terms)
    # E[X^2] via E[X^2] = Σ (2k−1) P(X ≥ k).
    second = 0.0
    for k in range(1, max_terms + 1):
        p_ge_k = 1.0 - (1.0 - pb_err ** (k - 1)) ** n_pbs
        second += (2 * k - 1) * p_ge_k
        if p_ge_k < 1e-12:
            break
    var = max(second - mean ** 2, 0.0)
    return math.sqrt(var)


# --- frame aggregation --------------------------------------------------------


class FrameAggregator:
    """Two-level aggregation: packets → PB queue → frames (Fig. 1).

    Packets are segmented into PBs on arrival; a frame is emitted when enough
    PBs are queued to fill the maximum frame duration at the current BLE, or
    when the aggregation timer fires after the first queued PB.
    """

    def __init__(self, spec: PlcSpec, aggregation_timer_s: float = 0.2):
        self.spec = spec
        self.aggregation_timer_s = aggregation_timer_s
        self._pb_queue: List[float] = []  # arrival time per queued PB

    def __len__(self) -> int:
        return len(self._pb_queue)

    def enqueue_packet(self, payload_bytes: int, now: float) -> int:
        """Segment a packet into PBs; returns the number queued."""
        n = pbs_for_payload(payload_bytes, self.spec)
        self._pb_queue.extend([now] * n)
        return n

    def frame_ready(self, now: float, ble_bps: float) -> bool:
        """Whether a frame should be emitted now."""
        if not self._pb_queue:
            return False
        if len(self._pb_queue) >= self.spec.max_pbs_per_frame(ble_bps):
            return True
        return now - self._pb_queue[0] >= self.aggregation_timer_s

    def pop_frame(self, ble_bps: float) -> int:
        """Dequeue PBs for one frame; returns the PB count (≥ 1)."""
        if not self._pb_queue:
            raise RuntimeError("no PBs queued")
        n = min(len(self._pb_queue), self.spec.max_pbs_per_frame(ble_bps))
        del self._pb_queue[:n]
        return n
