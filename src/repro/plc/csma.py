"""IEEE 1901 CSMA/CA: frame-level contention simulation.

§2.2: the 1901 MAC resembles 802.11's DCF but adds a **deferral counter**:
a station redraws a larger contention window not only after a collision but
also after sensing the medium busy DC+1 times (refs [19], [21] — the cause of
1901's short-term unfairness and jitter).

The simulator is frame-level and round-based: in each round every backlogged
station holds a backoff counter; the smallest counter wins the round, ties
collide. This abstraction keeps multi-hour contention runs tractable while
preserving exactly the dynamics the paper measures (collision rates, capture
effect on the channel estimator, fairness).

Used by the Fig. 23/24 benchmarks (link-metric sensitivity to background
traffic) and the deferral-counter ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache import WindowedLruCache
from repro.plc import mac
from repro.plc.channel_estimation import ChannelEstimator
from repro.plc.link import PlcLink
from repro.sim.random import RandomStreams

#: Cap on per-flow transmit timestamps kept for offline analysis. Beyond
#: this (~1.6 MB of floats per flow) the list stops growing and
#: ``transmit_times_dropped`` counts the overflow; the streaming
#: :attr:`FlowStats.short_term_jitter` accumulator keeps covering every
#: frame regardless, so Fig. 24-length runs never hold every timestamp.
MAX_TRACKED_TRANSMIT_TIMES = 200_000


@dataclass
class CsmaConfig:
    """MAC behaviour knobs (the ablation flips ``use_deferral_counter``)."""

    cw_table: Tuple[int, ...] = mac.CSMA_CW
    dc_table: Tuple[int, ...] = mac.CSMA_DC
    use_deferral_counter: bool = True
    timings: mac.MacTimings = field(default_factory=mac.MacTimings)


@dataclass
class FlowSpec:
    """One traffic flow in the contention domain.

    ``rate_bps = None`` means saturated. ``burst_packets`` groups CBR packets
    into bursts that the MAC aggregates into one long frame (§8.2's defence).
    """

    name: str
    link: PlcLink
    rate_bps: Optional[float] = None
    packet_bytes: int = 1500
    burst_packets: int = 1
    estimator: Optional[ChannelEstimator] = None

    @property
    def saturated(self) -> bool:
        return self.rate_bps is None


@dataclass
class FlowStats:
    """Accumulated per-flow results.

    ``transmit_times`` is bounded at :data:`MAX_TRACKED_TRANSMIT_TIMES`
    entries; inter-transmission jitter is additionally accumulated in
    streaming (Welford) form so :attr:`short_term_jitter` stays exact for
    arbitrarily long runs.
    """

    frames_sent: int = 0
    collisions: int = 0
    pbs_delivered: int = 0
    payload_bits_delivered: float = 0.0
    transmit_times: List[float] = field(default_factory=list)
    transmit_times_dropped: int = 0
    _last_transmit: Optional[float] = field(default=None, repr=False)
    _gap_count: int = field(default=0, repr=False)
    _gap_mean: float = field(default=0.0, repr=False)
    _gap_m2: float = field(default=0.0, repr=False)

    def record_transmit(self, now: float) -> None:
        """Book one frame transmission at ``now``."""
        if self._last_transmit is not None:
            gap = now - self._last_transmit
            self._gap_count += 1
            delta = gap - self._gap_mean
            self._gap_mean += delta / self._gap_count
            self._gap_m2 += delta * (gap - self._gap_mean)
        self._last_transmit = now
        if len(self.transmit_times) < MAX_TRACKED_TRANSMIT_TIMES:
            self.transmit_times.append(now)
        else:
            self.transmit_times_dropped += 1

    @property
    def short_term_jitter(self) -> float:
        """Std of inter-transmission gaps (s), computed streaming —
        identical to ``short_term_jitter(transmit_times)`` while the
        timestamp list is complete, and still exact once it is capped."""
        if self._gap_count < 2:
            return 0.0
        return float(np.sqrt(self._gap_m2 / self._gap_count))

    def throughput_bps(self, duration: float) -> float:
        return self.payload_bits_delivered / duration if duration > 0 else 0.0


@dataclass
class _StationState:
    flow: FlowSpec
    stage: int = 0
    bc: int = 0
    dc: int = 0
    next_arrival: float = 0.0
    queued_packets: int = 0

    def redraw(self, config: CsmaConfig, rng: np.random.Generator,
               new_stage: Optional[int] = None) -> None:
        if new_stage is not None:
            self.stage = min(new_stage, len(config.cw_table) - 1)
        cw = config.cw_table[self.stage]
        self.bc = int(rng.integers(0, cw))
        self.dc = config.dc_table[self.stage]


class CsmaSimulator:
    """Round-based 1901 contention between a set of flows."""

    def __init__(self, flows: List[FlowSpec], streams: RandomStreams,
                 config: Optional[CsmaConfig] = None,
                 name: str = "csma"):
        if not flows:
            raise ValueError("need at least one flow")
        names = [f.name for f in flows]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate flow names: {names}")
        self.config = config or CsmaConfig()
        self._rng = streams.get(f"plc.csma.{name}")
        self._states = [_StationState(flow=f) for f in flows]
        for st in self._states:
            st.redraw(self.config, self._rng, new_stage=0)
        self.stats: Dict[str, FlowStats] = {f.name: FlowStats() for f in flows}
        # Link metrics are effectively constant within a 100 ms window;
        # caching them keeps frame-level runs tractable. LRU eviction
        # (shared cache module) keeps the hot window resident instead of
        # clearing everything when the bound is hit.
        self._metric_cache = WindowedLruCache(window_s=0.1,
                                              max_entries=50_000)

    def _link_metrics(self, flow: FlowSpec, t: float) -> Tuple[float, float]:
        """(avg BLE, PBerr) of a flow's link, cached per 100 ms window."""
        return self._metric_cache.get(
            flow.name, t,
            lambda: (flow.link.avg_ble_bps(t), flow.link.pb_err(t)))

    # --- traffic ------------------------------------------------------------------

    def _refresh_arrivals(self, st: _StationState, now: float) -> None:
        """Move CBR arrivals up to ``now`` into the station queue."""
        flow = st.flow
        if flow.saturated:
            return
        interval = (flow.packet_bytes * 8 * flow.burst_packets
                    / flow.rate_bps)
        while st.next_arrival <= now:
            st.queued_packets += flow.burst_packets
            st.next_arrival += interval

    def _backlogged(self, now: float) -> List[_StationState]:
        out = []
        for st in self._states:
            self._refresh_arrivals(st, now)
            if st.flow.saturated or st.queued_packets > 0:
                out.append(st)
        return out

    def _next_arrival_after(self, now: float) -> float:
        times = [st.next_arrival for st in self._states
                 if not st.flow.saturated]
        return min(times) if times else now + 1.0

    # --- frame construction ------------------------------------------------------------

    def _frame_pbs(self, st: _StationState, t: float) -> int:
        flow = st.flow
        ble, _ = self._link_metrics(flow, t)
        max_pbs = flow.link.spec.max_pbs_per_frame(max(ble, 1e6))
        if flow.saturated:
            return max_pbs
        pbs_per_packet = mac.pbs_for_payload(flow.packet_bytes,
                                             flow.link.spec)
        packets = min(st.queued_packets,
                      max(1, max_pbs // pbs_per_packet))
        return max(1, packets * pbs_per_packet)

    def _complete_frame(self, st: _StationState, n_pbs: int) -> None:
        flow = st.flow
        if not flow.saturated:
            pbs_per_packet = mac.pbs_for_payload(flow.packet_bytes,
                                                 flow.link.spec)
            st.queued_packets = max(
                0, st.queued_packets - n_pbs // pbs_per_packet)

    # --- main loop ----------------------------------------------------------------------

    def run(self, t_start: float, duration: float) -> Dict[str, FlowStats]:
        """Simulate the contention domain for ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        cfg = self.config
        timings = cfg.timings
        now = t_start
        end = t_start + duration
        for st in self._states:
            if st.flow.saturated:
                st.next_arrival = t_start
            else:
                # Real CBR flows are not phase-locked to each other; a
                # random phase prevents artificial synchronised collisions.
                interval = (st.flow.packet_bytes * 8
                            * st.flow.burst_packets / st.flow.rate_bps)
                st.next_arrival = t_start + float(
                    self._rng.uniform(0.0, interval))
        while now < end:
            active = self._backlogged(now)
            if not active:
                now = min(end, self._next_arrival_after(now))
                continue
            min_bc = min(st.bc for st in active)
            winners = [st for st in active if st.bc == min_bc]
            losers = [st for st in active if st.bc > min_bc]
            # Clock advances by the contention slots + PRS.
            now += timings.prs_s + min_bc * timings.slot_s
            collision = len(winners) > 1
            # Longest frame on the wire governs the busy period.
            frame_pbs = {id(st): self._frame_pbs(st, now) for st in winners}
            durations = []
            for st in winners:
                ble, _ = self._link_metrics(st.flow, now)
                durations.append(mac.frame_duration_s(
                    frame_pbs[id(st)], max(ble, 1e6),
                    st.flow.link.spec.target_pb_error, st.flow.link.spec,
                    timings))
            busy = max(durations)
            now += busy + timings.rifs_s + timings.sack_s + timings.cifs_s
            # Deliveries and estimator updates.
            capture_winner = None
            if collision:
                # Capture effect (§8.2): the flow with the best channel may
                # still decode part of its frame.
                qualities = [self._link_metrics(st.flow, now)[0]
                             for st in winners]
                capture_winner = winners[int(np.argmax(qualities))]
            for st in winners:
                stats = self.stats[st.flow.name]
                stats.frames_sent += 1
                stats.record_transmit(now)
                n_pbs = frame_pbs[id(st)]
                if not collision:
                    pb_err = self._link_metrics(st.flow, now)[1]
                    delivered = n_pbs - int(self._rng.binomial(n_pbs, pb_err))
                    stats.pbs_delivered += delivered
                    stats.payload_bits_delivered += (
                        delivered * st.flow.link.spec.pb_payload_bytes * 8)
                    if st.flow.estimator is not None:
                        st.flow.estimator.observe_frame(now, n_pbs,
                                                        collided=False)
                    st.redraw(cfg, self._rng, new_stage=0)
                    self._complete_frame(st, n_pbs)
                else:
                    stats.collisions += 1
                    if st is capture_winner:
                        # Partial decode: heavy PB losses, attributed by the
                        # estimator to the channel unless frames are long.
                        frac_lost = float(self._rng.uniform(0.3, 0.8))
                        delivered = int(n_pbs * (1.0 - frac_lost))
                        stats.pbs_delivered += delivered
                        stats.payload_bits_delivered += (
                            delivered * st.flow.link.spec.pb_payload_bytes * 8)
                        if st.flow.estimator is not None:
                            st.flow.estimator.observe_frame(now, n_pbs,
                                                            collided=True)
                        self._complete_frame(st, delivered)
                    st.redraw(cfg, self._rng, new_stage=st.stage + 1)
            # Stations that sensed the medium busy: 1901 deferral rule.
            for st in losers:
                st.bc -= min_bc  # slots consumed while counting down
                if cfg.use_deferral_counter:
                    if st.dc == 0:
                        st.redraw(cfg, self._rng, new_stage=st.stage + 1)
                    else:
                        st.dc -= 1
        return self.stats


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index over per-flow shares (1 = perfectly fair)."""
    v = np.asarray(values, dtype=float)
    if len(v) == 0 or np.all(v == 0):
        return 1.0
    return float((v.sum() ** 2) / (len(v) * (v ** 2).sum()))


def short_term_jitter(transmit_times: List[float]) -> float:
    """Std of inter-transmission times (s) — the short-term unfairness /
    jitter signature of the 1901 deferral counter ([19], [21])."""
    if len(transmit_times) < 3:
        return 0.0
    gaps = np.diff(np.asarray(transmit_times))
    return float(np.std(gaps))
