"""PLC logical networks (AVLNs) and the central coordinator (CCo).

§3.1: every station must join a network managed by a CCo; by default the
first station plugged becomes CCo and may hand over if another station has
better channel capabilities. The testbed pins the CCo statically with the
Open Powerline Toolkit — we expose the same control.

A :class:`PlcNetwork` owns the directed links between its members (built
lazily) and the receive-side channel estimators.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.plc.channel import PlcChannel
from repro.plc.channel_estimation import ChannelEstimator
from repro.plc.link import PlcLink
from repro.plc.spec import PlcSpec
from repro.plc.station import PlcStation
from repro.powergrid.load import ElectricalLoad
from repro.sim.random import RandomStreams


class PlcNetwork:
    """One AVLN: a set of stations sharing a network key and a CCo."""

    def __init__(self, network_key: str, load: ElectricalLoad,
                 streams: RandomStreams,
                 overreact_to_bursts: bool = False):
        self.network_key = network_key
        self.load = load
        self._streams = streams
        self._overreact = overreact_to_bursts
        self._stations: Dict[str, PlcStation] = {}
        self._links: Dict[Tuple[str, str], PlcLink] = {}
        #: Channel objects, separately from the link facades: a channel's
        #: structure is a pure function of ``(seed, name)`` (it only ever
        #: replays ``streams.fresh*`` draws), so forked views of this
        #: network share this dict and build each channel once.
        self._channels: Dict[Tuple[str, str], PlcChannel] = {}
        self._cco_id: Optional[str] = None

    def fork(self, streams: RandomStreams) -> "PlcNetwork":
        """A fresh-RNG view of this AVLN sharing its compiled state.

        The fork shares the electrical load and the channel cache (both
        deterministic: their mutable state is memoisation of pure
        functions of the seed) but rebuilds every stateful wrapper —
        stations, estimators, link facades — against ``streams``, whose
        monotonic measurement-noise generators start at their initial
        state. A fork is therefore bit-identical to a from-scratch build
        with the same seed, at a fraction of the cost.
        """
        clone = PlcNetwork(network_key=self.network_key, load=self.load,
                           streams=streams,
                           overreact_to_bursts=self._overreact)
        clone._channels = self._channels
        for station in self.stations():
            clone.add_station(PlcStation(
                station_id=station.station_id,
                outlet_id=station.outlet_id, spec=station.spec))
        if self._cco_id is not None:
            clone.set_cco(self._cco_id)
        return clone

    # --- membership -------------------------------------------------------------

    def add_station(self, station: PlcStation) -> PlcStation:
        """Plug a station into this network; first one becomes CCo (§3.1)."""
        if station.station_id in self._stations:
            raise ValueError(f"duplicate station {station.station_id!r}")
        if station.outlet_id not in self.load.grid:
            raise KeyError(f"unknown outlet {station.outlet_id!r}")
        station.join(self.network_key)
        self._stations[station.station_id] = station
        if self._cco_id is None:
            self.set_cco(station.station_id)
        return station

    def stations(self) -> List[PlcStation]:
        return [self._stations[k] for k in sorted(self._stations)]

    def station(self, station_id: str) -> PlcStation:
        return self._stations[station_id]

    @property
    def cco(self) -> Optional[PlcStation]:
        return self._stations.get(self._cco_id) if self._cco_id else None

    def set_cco(self, station_id: str) -> None:
        """Statically pin the CCo (the paper uses the toolkit for this)."""
        if station_id not in self._stations:
            raise KeyError(f"unknown station {station_id!r}")
        if self._cco_id is not None:
            self._stations[self._cco_id].is_cco = False
        self._cco_id = station_id
        self._stations[station_id].is_cco = True

    def elect_cco(self, t: float) -> str:
        """Dynamic CCo election: the station with the best aggregate
        channel capability towards all others (§3.1)."""
        if not self._stations:
            raise RuntimeError("empty network")
        best_id, best_score = None, -np.inf
        for sid in sorted(self._stations):
            score = 0.0
            for other in sorted(self._stations):
                if other == sid:
                    continue
                score += self.link(sid, other).avg_ble_bps(t)
            if score > best_score:
                best_id, best_score = sid, score
        assert best_id is not None
        self.set_cco(best_id)
        return best_id

    # --- links ----------------------------------------------------------------------

    def channel(self, src_id: str, dst_id: str) -> PlcChannel:
        """The directed channel src → dst (built and cached on first use).

        Cached separately from the link facade because the channel is
        deterministic (it replays named fresh streams) while the link's
        measurement noise is monotonic state — :meth:`fork` shares this
        cache but never the links.
        """
        key = (src_id, dst_id)
        channel = self._channels.get(key)
        if channel is None:
            src = self._stations[src_id]
            dst = self._stations[dst_id]
            if not src.can_communicate_with(dst):
                raise ValueError(
                    f"{src_id} and {dst_id} are not in the same AVLN")
            channel = PlcChannel(
                self.load, src.outlet_id, dst.outlet_id, dst.spec,
                self._streams, name=f"{self.network_key}:{src_id}->{dst_id}")
            self._channels[key] = channel
        return channel

    def link(self, src_id: str, dst_id: str) -> PlcLink:
        """The directed link src → dst (built and cached on first use)."""
        key = (src_id, dst_id)
        if key not in self._links:
            src = self._stations[src_id]
            dst = self._stations[dst_id]
            if not src.can_communicate_with(dst):
                raise ValueError(
                    f"{src_id} and {dst_id} are not in the same AVLN")
            channel = self.channel(src_id, dst_id)
            self._links[key] = PlcLink(channel, self._streams)
            if src_id not in dst.estimators:
                dst.estimators[src_id] = ChannelEstimator(
                    channel, self._streams,
                    overreact_to_bursts=self._overreact)
        return self._links[key]

    def estimator(self, src_id: str, dst_id: str) -> ChannelEstimator:
        """Receive-side estimator at ``dst`` for traffic from ``src``."""
        self.link(src_id, dst_id)
        return self._stations[dst_id].estimators[src_id]

    def directed_pairs(self) -> List[Tuple[str, str]]:
        """All ordered station pairs of the AVLN (deterministic order)."""
        ids = sorted(self._stations)
        return [(a, b) for a in ids for b in ids if a != b]

    def links(self) -> Iterable[PlcLink]:
        for src_id, dst_id in self.directed_pairs():
            yield self.link(src_id, dst_id)
