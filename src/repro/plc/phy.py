"""HPAV PHY: per-carrier bit loading, BLE (Definition 1), PB error model.

The paper's two PLC link metrics are defined here:

* **BLE** — bit loading estimate, Definition 1 of the paper:
  ``BLE = B * R * (1 - PBerr) / Tsym`` with ``B`` the sum of bits per symbol
  over all carriers, ``R`` the FEC rate, ``PBerr`` the PB error rate assumed
  when the tone map was generated, and ``Tsym`` the OFDM symbol length
  including the guard interval;
* **PBerr** — the physical-block error probability, which drives selective
  retransmissions (§2.2) and the U-ETX metric (§8.1).

Bit loading picks, per carrier and per tone-map slot, the densest modulation
whose SNR threshold is met with a safety back-off. The back-off encodes the
tone-map generation target: more back-off → lower BLE but lower PBerr.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.plc.spec import (
    MODULATION_BITS,
    MODULATION_SNR_THRESHOLDS_DB,
    PlcSpec,
)

_BITS = np.asarray(MODULATION_BITS, dtype=np.int64)
_THRESHOLDS = np.asarray(MODULATION_SNR_THRESHOLDS_DB, dtype=float)

#: Default SNR back-off applied when generating a tone map: headroom for the
#: cycle-scale jitter so the realised PBerr stays near the target.
DEFAULT_BACKOFF_DB = 1.5

#: Logistic steepness of the PB error vs margin-deficit curve (dB⁻¹).
_PBERR_STEEPNESS = 1.1


def select_bits(snr_db: np.ndarray, backoff_db: float = DEFAULT_BACKOFF_DB
                ) -> np.ndarray:
    """Densest modulation per carrier given SNR (vectorised, any shape).

    Returns an integer array (same shape) of bits per carrier per symbol.
    """
    snr = np.asarray(snr_db, dtype=float) - backoff_db
    # index of the largest threshold <= snr: searchsorted on the ascending
    # threshold table (first entry is -inf so index >= 1 always).
    idx = np.searchsorted(_THRESHOLDS, snr, side="right") - 1
    idx = np.clip(idx, 0, len(_BITS) - 1)
    return _BITS[idx]


def modulation_margin_db(snr_db: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Per-carrier SNR margin above the chosen modulation's threshold (dB)."""
    bits = np.asarray(bits)
    # MODULATION_BITS is ascending, so searchsorted maps bits -> table index.
    idx = np.searchsorted(_BITS, bits)
    thresholds = _THRESHOLDS[idx]
    return np.asarray(snr_db, dtype=float) - thresholds


def pb_error_probability(snr_db: np.ndarray, bits: np.ndarray,
                         impulsive_rate_hz: float = 0.0,
                         floor: float = 5e-4) -> float:
    """PB error probability for a symbol using modulation ``bits`` at ``snr``.

    A physical block spans many carriers; the turbo code fails when the
    aggregate margin deficit is too large. We model the PB error rate as a
    logistic in the *loaded-carrier mean margin*, plus an impulsive-noise
    term: each impulse (duration ~100 µs) corrupts in-flight PBs regardless of
    margin.

    The curve is calibrated so a tone map built with the default back-off in a
    stationary channel lands near the HPAV target (~2 %), while a 3 dB
    adverse swing drives PBerr towards tens of percent — matching the
    spread of Fig. 7 (right).
    """
    snr = np.asarray(snr_db, dtype=float)
    bits = np.asarray(bits)
    loaded = bits > 0
    if not np.any(loaded):
        return 1.0
    margins = modulation_margin_db(snr, bits)[loaded]
    mean_margin = float(np.mean(margins))
    # Logistic centred so margin == backoff target gives ~the HPAV target.
    p_noise = 1.0 / (1.0 + np.exp(_PBERR_STEEPNESS * (mean_margin + 2.0)))
    # Impulses: ~120 µs impulses hit a 46.52 µs symbol stream; a PB spans a
    # couple of symbols at typical loadings.
    p_impulse = 1.0 - np.exp(-impulsive_rate_hz * 250e-6)
    p = p_noise + p_impulse - p_noise * p_impulse
    return float(np.clip(p, floor, 0.95))


def ble_bps(total_bits_per_symbol: float, fec_rate: float, pb_err: float,
            symbol_duration_s: float) -> float:
    """Definition 1: BLE in bits/s."""
    if symbol_duration_s <= 0:
        raise ValueError("symbol duration must be positive")
    if not 0.0 <= pb_err <= 1.0:
        raise ValueError(f"pb_err must be a probability, got {pb_err}")
    return total_bits_per_symbol * fec_rate * (1.0 - pb_err) / symbol_duration_s


def ble_from_snr(snr_db: np.ndarray, spec: PlcSpec,
                 backoff_db: float = DEFAULT_BACKOFF_DB,
                 pb_err: Optional[float] = None,
                 impulsive_rate_hz: float = 0.0) -> np.ndarray:
    """Per-slot BLE (bits/s) from an SNR grid of shape (carriers, slots).

    When ``pb_err`` is None, each slot's PBerr is evaluated from its own
    margins (the value a fresh tone map would embed).
    """
    snr = np.atleast_2d(np.asarray(snr_db, dtype=float))
    if snr.shape[0] != spec.num_carriers:
        raise ValueError(
            f"snr grid has {snr.shape[0]} carriers, spec says "
            f"{spec.num_carriers}")
    bits = np.minimum(select_bits(snr, backoff_db),
                      spec.max_modulation_bits)
    out = np.empty(snr.shape[1])
    for s in range(snr.shape[1]):
        p = pb_err if pb_err is not None else pb_error_probability(
            snr[:, s], bits[:, s], impulsive_rate_hz)
        out[s] = ble_bps(float(bits[:, s].sum()), spec.fec_rate, p,
                         spec.symbol_duration_s)
    return out


def robo_loss_probability(snr_db: np.ndarray, spec: PlcSpec) -> float:
    """Frame loss probability for ROBO (broadcast) transmissions (§8.1).

    ROBO uses QPSK with heavy repetition on all carriers; it fails only when
    even the boosted SNR cannot sustain QPSK. Most links therefore see
    ~1e-4 losses regardless of their data-rate quality — which is exactly why
    the paper finds broadcast-probe ETX uninformative.
    """
    snr = np.asarray(snr_db, dtype=float)
    boosted = float(np.mean(snr)) + spec.robo_snr_gain_db
    qpsk_threshold = MODULATION_SNR_THRESHOLDS_DB[2]
    deficit = qpsk_threshold - boosted
    p = 1.0 / (1.0 + np.exp(-0.9 * deficit))
    # Residual floor: collisions with uncoordinated impulses.
    return float(np.clip(p + 1e-4, 1e-4, 1.0))
