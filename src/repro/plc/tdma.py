"""TDMA allocation for IEEE 1901 — the standard's unused half (§2.2).

The 1901 MAC specifies both CSMA/CA and a TDMA mode in which the CCo grants
contention-free time slots inside each beacon period; the paper notes that
"to the best of our knowledge, all current commercial devices implement only
CSMA/CA". This module implements the missing mode so the repository can
quantify what commercial devices leave on the table: contention-free
allocations remove collisions and the deferral-counter jitter entirely, at
the cost of centralised scheduling.

The model is allocation-level (who owns which share of the beacon period),
matching the granularity of the paper's MAC analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.plc import mac
from repro.plc.link import PlcLink
from repro.units import BEACON_PERIOD


@dataclass(frozen=True)
class TdmaAllocation:
    """One station's contention-free share of each beacon period."""

    flow_name: str
    start_s: float      # offset within the beacon period
    duration_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_s < BEACON_PERIOD:
            raise ValueError("allocation must start within the beacon "
                             "period")
        if self.duration_s <= 0:
            raise ValueError("allocation must have positive duration")


@dataclass(frozen=True)
class TdmaFlowResult:
    """Predicted service for one flow under a TDMA schedule."""

    flow_name: str
    share: float
    throughput_bps: float
    access_jitter_s: float  # inter-opportunity spread (0 for strict TDMA)


class TdmaScheduler:
    """CCo-side proportional-share TDMA allocator.

    Given per-flow demands (bits/s) and links, the scheduler divides the
    schedulable portion of the beacon period proportionally to demand,
    capped by what each link can physically carry.
    """

    def __init__(self, beacon_period_s: float = BEACON_PERIOD,
                 schedulable_fraction: float = 0.9):
        if not 0.0 < schedulable_fraction <= 1.0:
            raise ValueError("schedulable fraction must be in (0, 1]")
        self.beacon_period_s = beacon_period_s
        self.schedulable_fraction = schedulable_fraction

    def allocate(self, demands_bps: Dict[str, float]
                 ) -> List[TdmaAllocation]:
        """Proportional-share allocations for the given demands."""
        if not demands_bps:
            return []
        if any(d <= 0 for d in demands_bps.values()):
            raise ValueError("demands must be positive")
        total = sum(demands_bps.values())
        budget = self.beacon_period_s * self.schedulable_fraction
        allocations: List[TdmaAllocation] = []
        cursor = 0.0
        for name in sorted(demands_bps):
            share = demands_bps[name] / total
            duration = share * budget
            allocations.append(TdmaAllocation(
                flow_name=name, start_s=cursor, duration_s=duration))
            cursor += duration
        return allocations

    def predict(self, allocations: Sequence[TdmaAllocation],
                links: Dict[str, PlcLink], t: float) -> List[TdmaFlowResult]:
        """Throughput/jitter each allocation delivers on its link at ``t``.

        Contention-free airtime carries PB payload at the link's BLE with
        only framing overhead — no backoff, no PRS, no collisions — so the
        per-flow rate is ``BLE · (share of beacon) · framing efficiency``.
        Access jitter is zero by construction: each flow transmits at a
        fixed offset every beacon period.
        """
        results: List[TdmaFlowResult] = []
        timings = mac.DEFAULT_TIMINGS
        for alloc in allocations:
            link = links[alloc.flow_name]
            ble = link.avg_ble_bps(t)
            share = alloc.duration_s / self.beacon_period_s
            # Framing: one preamble+FC and one SACK exchange per allocation
            # per beacon period; the rest is payload symbols.
            per_beacon_overhead = (timings.preamble_fc_s + timings.rifs_s
                                   + timings.sack_s)
            usable = max(alloc.duration_s - per_beacon_overhead, 0.0)
            pb_factor = (link.spec.pb_payload_bytes
                         / link.spec.pb_total_bytes)
            rate = ble * (usable / self.beacon_period_s) * pb_factor
            results.append(TdmaFlowResult(
                flow_name=alloc.flow_name, share=share,
                throughput_bps=max(rate, 0.0), access_jitter_s=0.0))
        return results


def csma_vs_tdma_jitter(csma_transmit_times: Sequence[float]) -> float:
    """Jitter advantage of TDMA: CSMA inter-access spread vs TDMA's zero.

    Returns the CSMA short-term jitter (s); TDMA's is identically 0 because
    access opportunities repeat at fixed beacon offsets.
    """
    from repro.plc.csma import short_term_jitter
    return short_term_jitter(list(csma_transmit_times))
