"""PHY/MAC constants for the PLC technologies used in the paper.

Two presets are provided, matching the paper's hardware:

* :data:`HPAV` — HomePlug AV / IEEE 1901 as implemented by the Intellon
  INT6300 (main testbed, §3.1): 917 OFDM carriers in 1.8–30 MHz.
* :data:`HPAV500` — the Netgear XAVB5101 / Atheros QCA7400 "AV500" devices
  used for validation: the band is extended to 1.8–68 MHz (§3.1 footnote).

Timing note (§7.2): the paper computes the one-PB-per-symbol rate
``R_1sym = 520 · 8 / Tsym ≈ 89.4 Mbps``, which pins the effective symbol
duration at 46.52 µs — the 40.96 µs FFT interval *plus* the 5.56 µs guard
interval. We therefore use ``symbol_duration = 46.52 µs`` everywhere BLE is
computed (Definition 1 says the symbol length includes the guard interval).
With the 16/21 turbo-code rate this puts the HPAV BLE ceiling at
``917 · 10 · (16/21) / 46.52 µs ≈ 150 Mbps`` — exactly the nominal PHY rate
the paper quotes for its adapters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.units import MHZ, US

#: Modulation alphabet: bits per carrier for (no load), BPSK, QPSK, 8-QAM,
#: 16-QAM, 64-QAM, 256-QAM, 1024-QAM (§2.1).
MODULATION_BITS: Tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8, 10)

#: Minimum SNR (dB) at which each modulation sustains the HPAV target PB error
#: rate with the 16/21 turbo code. Derived from standard AWGN waterfalls with
#: ~1 dB implementation margin; exact values only shift the BLE scale, not the
#: phenomena under study.
MODULATION_SNR_THRESHOLDS_DB: Tuple[float, ...] = (
    -np.inf,  # carrier off
    1.0,      # BPSK
    4.0,      # QPSK
    7.5,      # 8-QAM
    10.5,     # 16-QAM
    16.5,     # 64-QAM
    22.5,     # 256-QAM
    28.5,     # 1024-QAM
)


@dataclass(frozen=True)
class PlcSpec:
    """Immutable description of a PLC technology generation."""

    name: str
    band_low_hz: float
    band_high_hz: float
    num_carriers: int
    #: OFDM symbol duration including guard interval (see module docstring).
    symbol_duration_s: float = 46.52 * US
    #: FEC code rate (HPAV turbo code).
    fec_rate: float = 16.0 / 21.0
    #: Physical-block payload size (bytes) and header (bytes): §2.2.
    pb_payload_bytes: int = 512
    pb_header_bytes: int = 8
    #: Maximum PLC frame duration (µs→s); IEEE 1901 limit.
    max_frame_duration_s: float = 2501.12 * US
    #: Number of tone-map slots per half mains cycle (§2.1: up to 6 + default).
    num_slots: int = 6
    #: Tone maps expire after this many seconds if not refreshed (§2.1: 30 s).
    tone_map_expiry_s: float = 30.0
    #: PB error rate above which the receiver requests a new tone map (§2.1).
    tone_map_error_threshold: float = 0.10
    #: Transmit PSD (dBm/Hz); HPAV injects around -55 dBm/Hz below 30 MHz.
    tx_psd_dbm_hz: float = -55.0
    #: ROBO (broadcast/sound) modulation: QPSK on all carriers with heavy
    #: repetition; effective rate ~10 Mbps, very robust (§2.1, §8.1).
    robo_rate_bps: float = 10e6
    #: Extra SNR margin (dB) that ROBO repetition coding buys over plain QPSK.
    robo_snr_gain_db: float = 15.0
    #: Target PB error rate the tone-map selection aims at (Definition 1's
    #: "expected PB error rate on the link when a new tone map is generated").
    target_pb_error: float = 0.02
    #: Densest modulation the generation supports (bits/carrier). 10 for
    #: HPAV's 1024-QAM; GreenPhy caps at QPSK (2) for robustness.
    max_modulation_bits: int = 10

    # --- derived ------------------------------------------------------------

    def carrier_frequencies(self) -> np.ndarray:
        """Centre frequency of each usable OFDM carrier (Hz)."""
        return np.linspace(self.band_low_hz, self.band_high_hz,
                           self.num_carriers)

    @property
    def pb_total_bytes(self) -> int:
        """PB payload + header (the 520 B the paper's §7.2 computation uses)."""
        return self.pb_payload_bytes + self.pb_header_bytes

    @property
    def one_symbol_rate_bps(self) -> float:
        """R_1sym: the rate at which one PB occupies exactly one symbol.

        §7.2's probe-size pathology: probes smaller than one PB pin the
        channel-estimation feedback loop at this rate (≈ 89.4 Mbps for HPAV).
        """
        return self.pb_total_bytes * 8 / self.symbol_duration_s

    @property
    def max_ble_bps(self) -> float:
        """BLE ceiling: all carriers at the densest allowed modulation."""
        return (self.num_carriers * self.max_modulation_bits * self.fec_rate
                / self.symbol_duration_s)

    def max_pbs_per_frame(self, ble_bps: float) -> int:
        """How many PBs fit in a maximum-duration frame at a given BLE."""
        bits = ble_bps * self.max_frame_duration_s
        return max(1, int(bits // (self.pb_total_bytes * 8)))


#: HomePlug AV / IEEE 1901 (Intellon INT6300) — the main testbed devices.
HPAV = PlcSpec(
    name="HPAV",
    band_low_hz=1.8 * MHZ,
    band_high_hz=30.0 * MHZ,
    num_carriers=917,
)

#: HomePlug GreenPhy — the low-rate home-automation profile (paper
#: footnote 1). Same band and carrier grid as HPAV but restricted to the
#: robust modulations (QPSK at most) and ROBO-dominated operation: peak
#: ~10 Mbps, built for reliability rather than rate.
GREENPHY = PlcSpec(
    name="GreenPhy",
    band_low_hz=1.8 * MHZ,
    band_high_hz=30.0 * MHZ,
    num_carriers=917,
    max_modulation_bits=2,
    target_pb_error=0.01,
)

#: HomePlug AV500 (Atheros QCA7400, Netgear XAVB5101) — validation devices.
#: Wider band, more carriers, and a channel-estimation algorithm that
#: over-reacts to bursty errors (paper §6.2, Fig. 10 link 18-15).
HPAV500 = PlcSpec(
    name="HPAV500",
    band_low_hz=1.8 * MHZ,
    band_high_hz=68.0 * MHZ,
    num_carriers=2450,
)
