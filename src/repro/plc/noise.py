"""Noise-trace synthesis and time-frequency analysis (paper ref [9]).

The paper's §5/§6 lean on Guzelgoz et al.'s measurement result that PLC
noise is (a) mains-synchronous — its level cycles with the AC phase — and
(b) appliance-specific. This module turns the electrical-load model into
analysable *noise traces* and provides the analysis the reference performs:

* :func:`synthesize_noise_trace` — per-slot noise PSD at an outlet over a
  time window, plus the impulsive events appliance switching injects;
* :func:`slot_profile_signature` — the normalised mains-cycle noise shape
  heard at an outlet (the fingerprint of what is plugged in nearby);
* :func:`classify_noise_source` — match an observed signature against the
  appliance catalog (nearest-profile classification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.powergrid.appliances import APPLIANCE_CATALOG
from repro.powergrid.load import ElectricalLoad
from repro.sim.random import RandomStreams


@dataclass(frozen=True)
class ImpulseEvent:
    """One impulsive-noise burst (appliance switching transient)."""

    time: float
    duration_s: float
    amplitude_db: float


@dataclass(frozen=True)
class NoiseTrace:
    """A synthesised noise recording at one outlet.

    ``psd_dbm_hz`` has shape (n_samples, num_slots): the mains-synchronous
    noise level per tone-map slot at each sample instant.
    """

    outlet_id: str
    times: np.ndarray
    psd_dbm_hz: np.ndarray
    impulses: Tuple[ImpulseEvent, ...]

    def mean_level_dbm_hz(self) -> float:
        return float(self.psd_dbm_hz.mean())

    def slot_swing_db(self) -> float:
        """Peak-to-peak mains-synchronous swing (the invariance scale)."""
        slot_means = self.psd_dbm_hz.mean(axis=0)
        return float(slot_means.max() - slot_means.min())


def synthesize_noise_trace(load: ElectricalLoad, outlet_id: str,
                           t_start: float, duration: float,
                           interval: float, streams: RandomStreams
                           ) -> NoiseTrace:
    """Sample the outlet's per-slot noise PSD and draw impulsive events.

    Impulses arrive as a Poisson process at the outlet's aggregate
    impulsive rate, with sub-millisecond durations and tens-of-dB
    amplitudes — the shapes ref [9] reports for switching transients.
    """
    if duration <= 0 or interval <= 0:
        raise ValueError("duration and interval must be positive")
    times = np.arange(t_start, t_start + duration, interval)
    psd = np.array([load.noise_psd_at(outlet_id, float(t)) for t in times])
    rng = streams.fresh(f"noise.trace.{outlet_id}.{int(t_start)}")
    impulses: List[ImpulseEvent] = []
    t = t_start
    while t < t_start + duration:
        rate = load.impulsive_event_rate_at(outlet_id, t)
        if rate <= 0:
            t += max(interval, 1.0)
            continue
        gap = float(rng.exponential(1.0 / rate))
        t += gap
        if t >= t_start + duration:
            break
        impulses.append(ImpulseEvent(
            time=t,
            duration_s=float(rng.uniform(50e-6, 500e-6)),
            amplitude_db=float(rng.uniform(15.0, 40.0))))
    return NoiseTrace(outlet_id=outlet_id, times=times, psd_dbm_hz=psd,
                      impulses=tuple(impulses))


def slot_profile_signature(trace: NoiseTrace) -> np.ndarray:
    """Normalised per-slot noise shape (linear, mean 1) of a trace."""
    linear = 10.0 ** (trace.psd_dbm_hz / 10.0)
    profile = linear.mean(axis=0)
    mean = profile.mean()
    if mean <= 0:
        raise ValueError("degenerate trace")
    return profile / mean


def classify_noise_source(signature: Sequence[float],
                          candidates: Optional[Sequence[str]] = None
                          ) -> Tuple[str, float]:
    """Nearest-profile appliance classification.

    Compares an observed slot signature against the catalog's profiles and
    returns ``(appliance_name, distance)``. Flat signatures match the
    always-on/flat classes; strongly cycled ones match lighting/printers.
    """
    sig = np.asarray(signature, dtype=float)
    if sig.ndim != 1 or len(sig) == 0:
        raise ValueError("signature must be a 1-D sequence")
    sig = sig / sig.mean()
    names = sorted(candidates) if candidates else sorted(APPLIANCE_CATALOG)
    best: Tuple[str, float] = ("", np.inf)
    for name in names:
        profile = APPLIANCE_CATALOG[name].slot_noise_multipliers()
        if len(profile) != len(sig):
            continue
        distance = float(np.linalg.norm(profile - sig))
        if distance < best[1]:
            best = (name, distance)
    if not best[0]:
        raise ValueError("no candidate profile matches the signature size")
    return best


def day_night_contrast_db(day: NoiseTrace, night: NoiseTrace) -> float:
    """Mean noise-level difference between two traces (random scale)."""
    return day.mean_level_dbm_hz() - night.mean_level_dbm_hz()
