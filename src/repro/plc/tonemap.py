"""Tone maps: the per-slot modulation tables exchanged between stations.

A tone map (§2.1) fixes, for one tone-map slot of the AC line cycle, the
modulation of every carrier plus the FEC rate, and embeds the PB error rate
assumed at generation time (Definition 1's ``PBerr``). The receiver picks up
to 6 slot tone maps plus a default (ROBO) one, identified by a tone-map index
(TMI) carried in every SoF delimiter — the PLC analogue of WiFi's MCS.

:class:`ToneMapProcess` models the *dynamics*: tone maps are regenerated when
they expire (30 s) or when the receiver's error monitor trips (§2.1), which
produces the inter-update times ``α`` studied in Fig. 11.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.plc import phy
from repro.plc.channel import PlcChannel
from repro.plc.spec import PlcSpec


@dataclass(frozen=True)
class ToneMap:
    """An immutable per-slot modulation assignment.

    Attributes
    ----------
    tmi:
        Tone-map index (unique per link, monotonically increasing here).
    bits:
        Bits per carrier, shape (num_carriers, num_slots).
    fec_rate:
        FEC code rate in force.
    pb_err:
        PB error rate assumed at generation (fixed until regeneration —
        Definition 1).
    created_at:
        Simulated creation time (s).
    """

    tmi: int
    bits: np.ndarray
    fec_rate: float
    pb_err: float
    created_at: float
    symbol_duration_s: float

    def __post_init__(self) -> None:
        totals = self.bits.sum(axis=0).astype(float)
        per_slot = np.array([
            phy.ble_bps(b, self.fec_rate, self.pb_err, self.symbol_duration_s)
            for b in totals])
        # Frozen dataclass: stash derived values via object.__setattr__.
        object.__setattr__(self, "_ble_per_slot", per_slot)

    def ble_per_slot_bps(self) -> np.ndarray:
        """BLE of each tone-map slot (bits/s)."""
        return self._ble_per_slot

    def avg_ble_bps(self) -> float:
        """BLE averaged over all slots — what ``int6krate`` reports (§7.1)."""
        return float(self._ble_per_slot.mean())

    def age(self, now: float) -> float:
        return now - self.created_at


def generate_tone_map(channel: PlcChannel, t: float, tmi: int,
                      backoff_db: float = phy.DEFAULT_BACKOFF_DB,
                      snr_override: Optional[np.ndarray] = None) -> ToneMap:
    """Build the tone map a receiver would produce from the channel at ``t``.

    ``snr_override`` lets the channel-estimation model supply its *estimated*
    SNR instead of the true one (§7's convergence experiments).
    """
    spec = channel.spec
    snr = (snr_override if snr_override is not None
           else channel.snr_db(t))
    bits = np.minimum(phy.select_bits(snr, backoff_db),
                      spec.max_modulation_bits)
    impulse_rate = channel.load.impulsive_event_rate_at(channel.dst_outlet, t)
    pb_errs = [
        phy.pb_error_probability(snr[:, s], bits[:, s], impulse_rate)
        for s in range(spec.num_slots)]
    # Definition 1: one PBerr value is embedded — the expected rate for the
    # link, i.e. the slot average at generation time.
    pb_err = float(np.mean(pb_errs))
    pb_err = max(pb_err, spec.target_pb_error * 0.25)
    return ToneMap(tmi=tmi, bits=bits, fec_rate=spec.fec_rate, pb_err=pb_err,
                   created_at=t, symbol_duration_s=spec.symbol_duration_s)


@dataclass
class ToneMapUpdate:
    """Record of one tone-map regeneration (for α statistics)."""

    time: float
    tmi: int
    avg_ble_bps: float
    reason: str  # "initial" | "expiry" | "error" | "drift"


class ToneMapProcess:
    """Stateful tone-map tracking for one directed link.

    ``advance(t)`` walks the update opportunities between the last processed
    time and ``t`` at ``check_interval`` resolution (50 ms — the fastest MM
    polling rate the paper could use, §6.2) and regenerates the tone map on
    expiry or when the realised PB error / BLE drift trips the threshold.
    Only meaningful while traffic flows; the caller decides when to advance.
    """

    def __init__(self, channel: PlcChannel, start_time: float = 0.0,
                 check_interval: float = 0.05,
                 drift_threshold: float = 0.01,
                 backoff_db: float = phy.DEFAULT_BACKOFF_DB):
        self.channel = channel
        self.spec: PlcSpec = channel.spec
        self.check_interval = check_interval
        self.drift_threshold = drift_threshold
        self.backoff_db = backoff_db
        self._tmi_counter = itertools.count(1)
        self._now = start_time
        self.tone_map = generate_tone_map(
            channel, start_time, next(self._tmi_counter), backoff_db)
        self.updates: List[ToneMapUpdate] = [ToneMapUpdate(
            start_time, self.tone_map.tmi, self.tone_map.avg_ble_bps(),
            "initial")]
        # Memo: (appliance signature, jitter interval, tmi) -> evaluation.
        self._eval_key: Optional[tuple] = None
        self._eval_value: Optional[tuple] = None

    @property
    def now(self) -> float:
        return self._now

    def _fresh_ble(self, t: float) -> float:
        """Average BLE a regenerated tone map would have at ``t``."""
        snr = self.channel.snr_db(t)
        return float(np.mean(phy.ble_from_snr(snr, self.spec,
                                              self.backoff_db)))

    def realized_pb_error(self, t: float) -> float:
        """PB error rate the *current* tone map suffers at time ``t``.

        The tone map was built for past channel conditions; jitter since then
        shifts the margins, which is what the error monitor reacts to.
        """
        snr = self.channel.snr_db(t)
        impulse_rate = self.channel.load.impulsive_event_rate_at(
            self.channel.dst_outlet, t)
        per_slot = [
            phy.pb_error_probability(snr[:, s], self.tone_map.bits[:, s],
                                     impulse_rate)
            for s in range(self.spec.num_slots)]
        return float(np.mean(per_slot))

    def _regenerate(self, t: float, reason: str) -> None:
        self.tone_map = generate_tone_map(
            self.channel, t, next(self._tmi_counter), self.backoff_db)
        self.updates.append(ToneMapUpdate(
            t, self.tone_map.tmi, self.tone_map.avg_ble_bps(), reason))

    def advance(self, t: float) -> None:
        """Process tone-map maintenance up to time ``t``."""
        if t < self._now:
            raise ValueError(f"cannot advance backwards: {t} < {self._now}")
        steps = int((t - self._now) / self.check_interval)
        current = self._now
        for _ in range(steps):
            current += self.check_interval
            if self.tone_map.age(current) >= self.spec.tone_map_expiry_s:
                self._regenerate(current, "expiry")
                continue
            # Within one (appliance signature, jitter interval) window the
            # channel is constant, so the evaluation can be reused.
            _, jitter_state = self.channel.jitter_db(current)
            key = (self.load_signature(current),
                   int(current / jitter_state.hold_time_s),
                   self.tone_map.tmi)
            if key == self._eval_key and self._eval_value is not None:
                realized, fresh = self._eval_value
            else:
                realized = self.realized_pb_error(current)
                fresh = self._fresh_ble(current)
                self._eval_key = key
                self._eval_value = (realized, fresh)
            if realized >= self.spec.tone_map_error_threshold:
                self._regenerate(current, "error")
                continue
            have = self.tone_map.avg_ble_bps()
            if have > 0 and abs(fresh - have) / have > self.drift_threshold:
                self._regenerate(current, "drift")
        self._now = t

    def load_signature(self, t: float) -> tuple:
        """Appliance on/off signature at ``t`` (channel cache key)."""
        return self.channel.load.state_signature(t)

    def ble_update_interarrivals(self) -> np.ndarray:
        """The α samples of Fig. 11: times between tone-map regenerations."""
        times = np.array([u.time for u in self.updates])
        return np.diff(times)

    def ble_trace(self) -> np.ndarray:
        """(time, avg BLE) pairs at each update, for cycle-scale plots."""
        return np.array([[u.time, u.avg_ble_bps] for u in self.updates])
