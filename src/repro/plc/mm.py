"""Management-message API: the Open Powerline Toolkit equivalent (§3.2).

The paper reads its PLC metrics through vendor-specific management messages
(Table 2): ``int6krate`` returns the average BLE over the 6 tone-map slots,
``ampstat`` returns PB error statistics, and devices can be reset or have
their CCo pinned. MMs are real frames on the wire, and the paper notes a
practical floor of one request per 50 ms — enforced here, because §6.2's
measurement design depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.plc.network import PlcNetwork
from repro.units import MBPS

#: Fastest rate at which the paper could poll a device with MMs (§6.2).
MM_MIN_INTERVAL_S = 0.05


class MmRateLimitError(RuntimeError):
    """Raised when a device is polled faster than the MM floor allows."""


@dataclass
class MmRequestLog:
    """Bookkeeping of MM traffic (it is overhead too)."""

    count: int = 0
    last_time_by_station: Dict[str, float] = field(default_factory=dict)


class MmClient:
    """Issues vendor-specific MMs to stations of one PLC network."""

    def __init__(self, network: PlcNetwork,
                 enforce_rate_limit: bool = True):
        self.network = network
        self.enforce_rate_limit = enforce_rate_limit
        self.log = MmRequestLog()

    def _touch(self, station_id: str, t: float) -> None:
        last = self.log.last_time_by_station.get(station_id)
        if (self.enforce_rate_limit and last is not None
                and t - last < MM_MIN_INTERVAL_S - 1e-9):
            raise MmRateLimitError(
                f"station {station_id!r} polled {t - last:.3f}s after the "
                f"previous MM; the floor is {MM_MIN_INTERVAL_S}s")
        self.log.last_time_by_station[station_id] = t
        self.log.count += 1

    # --- metric reads (Table 2) --------------------------------------------------

    def int6krate(self, src_id: str, dst_id: str, t: float) -> float:
        """Average BLE (Mbps) of the src→dst link, over all 6 slots.

        This is the 'average BLE' row of Table 2: the device-side statistic
        the capacity-estimation technique of §7.1 requests.
        """
        self._touch(src_id, t)
        link = self.network.link(src_id, dst_id)
        return link.avg_ble_bps(t) / MBPS

    def ble_per_slot(self, src_id: str, dst_id: str, t: float) -> Tuple[float, ...]:
        """Per-slot BLE (Mbps) — the finer view used in §6.1."""
        self._touch(src_id, t)
        link = self.network.link(src_id, dst_id)
        return tuple(b / MBPS for b in link.ble_per_slot_bps(t))

    def ampstat(self, src_id: str, dst_id: str, t: float) -> float:
        """PB error rate of the src→dst link (Table 2's ``ampstat``)."""
        self._touch(dst_id, t)
        return self.network.link(src_id, dst_id).pb_err(t)

    def estimated_capacity(self, src_id: str, dst_id: str, t: float) -> float:
        """Capacity estimate (Mbps) from the receive-side estimator state.

        Unlike :meth:`int6krate` (which assumes converged tracking), this
        reads the *actual estimator*, transients included — what the Fig. 16–18
        probing experiments observe.
        """
        self._touch(dst_id, t)
        est = self.network.estimator(src_id, dst_id)
        return est.estimated_capacity_bps(t) / MBPS

    # --- device control -------------------------------------------------------------

    def reset_device(self, station_id: str) -> None:
        """Factory-reset a station's estimation state (Fig. 16 protocol)."""
        station = self.network.station(station_id)
        for estimator in station.estimators.values():
            estimator.reset()

    def set_cco(self, station_id: str) -> None:
        """Pin the network's CCo (the paper sets it statically, §3.1)."""
        self.network.set_cco(station_id)
