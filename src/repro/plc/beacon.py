"""Beacon-period structure: the CCo's schedule (§2.2, Fig. 1).

IEEE 1901 organises time into beacon periods of two mains cycles (40 ms at
50 Hz). The CCo broadcasts a beacon that partitions each period into
regions: the beacon itself, an optional contention-free (TDMA) region, and
the CSMA region everything else contends in. The paper's Fig. 1 sketches
this; the MAC-efficiency chain's ``CSMA_REGION_FACTOR`` is the scalar
shadow of this structure — this module is the structure itself, used by
the TDMA extension and by airtime accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.plc.tdma import TdmaAllocation
from repro.units import BEACON_PERIOD, MAINS_CYCLE


@dataclass(frozen=True)
class Region:
    """One region of the beacon period."""

    kind: str            # "beacon" | "cfp" | "csma"
    start_s: float       # offset within the beacon period
    duration_s: float

    def __post_init__(self) -> None:
        if self.kind not in ("beacon", "cfp", "csma"):
            raise ValueError(f"unknown region kind {self.kind!r}")
        if self.duration_s <= 0:
            raise ValueError("regions have positive duration")
        if not 0.0 <= self.start_s < BEACON_PERIOD:
            raise ValueError("region must start within the beacon period")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


#: On-air time of the beacon MPDU itself (ROBO-modulated broadcast).
BEACON_AIRTIME_S = 1.2e-3


@dataclass
class BeaconSchedule:
    """The CCo's partition of one beacon period."""

    regions: List[Region] = field(default_factory=list)

    @classmethod
    def csma_only(cls) -> "BeaconSchedule":
        """What commercial devices run: beacon + one big CSMA region."""
        return cls(regions=[
            Region("beacon", 0.0, BEACON_AIRTIME_S),
            Region("csma", BEACON_AIRTIME_S,
                   BEACON_PERIOD - BEACON_AIRTIME_S),
        ])

    @classmethod
    def with_allocations(cls, allocations: List[TdmaAllocation]
                         ) -> "BeaconSchedule":
        """Beacon + contention-free slots + the CSMA remainder."""
        regions = [Region("beacon", 0.0, BEACON_AIRTIME_S)]
        cursor = BEACON_AIRTIME_S
        for alloc in sorted(allocations, key=lambda a: a.start_s):
            if alloc.duration_s > BEACON_PERIOD - cursor + 1e-9:
                raise ValueError("allocations exceed the beacon period")
            regions.append(Region("cfp", cursor, alloc.duration_s))
            cursor += alloc.duration_s
        if cursor < BEACON_PERIOD - 1e-9:
            regions.append(Region("csma", cursor, BEACON_PERIOD - cursor))
        schedule = cls(regions=regions)
        schedule.validate()
        return schedule

    # --- integrity -------------------------------------------------------------

    def validate(self) -> None:
        """Regions must tile the period without gaps or overlaps."""
        if not self.regions:
            raise ValueError("empty schedule")
        ordered = sorted(self.regions, key=lambda r: r.start_s)
        if ordered[0].start_s != 0.0:
            raise ValueError("schedule must start at offset 0")
        for a, b in zip(ordered, ordered[1:]):
            if abs(a.end_s - b.start_s) > 1e-9:
                raise ValueError(
                    f"gap/overlap between {a.kind} and {b.kind}")
        if abs(ordered[-1].end_s - BEACON_PERIOD) > 1e-9:
            raise ValueError("schedule must fill the beacon period")

    # --- queries ----------------------------------------------------------------

    def region_at(self, t: float) -> Region:
        """The region in force at absolute time ``t``."""
        offset = t % BEACON_PERIOD
        for region in self.regions:
            if region.start_s <= offset < region.end_s - 1e-12:
                return region
        return self.regions[-1]

    def csma_fraction(self) -> float:
        """Share of airtime left to contention (the MAC chain's factor)."""
        return sum(r.duration_s for r in self.regions
                   if r.kind == "csma") / BEACON_PERIOD

    def cfp_fraction(self) -> float:
        return sum(r.duration_s for r in self.regions
                   if r.kind == "cfp") / BEACON_PERIOD

    def spans_mains_cycles(self) -> float:
        """Beacon periods are two mains cycles by construction (§2.2)."""
        return BEACON_PERIOD / MAINS_CYCLE
