"""The channel-estimation (sounding) exchange (§2.1).

The paper's §2.1: before data can flow at adapted rates, "the source
initially sends sound frames to the destination by using a default, robust
modulation scheme"; the destination estimates the channel from them,
"determines and sends the tone map with a unique identification ... back to
the source". Tone maps are per-slot, expire after 30 s, and are refreshed
when the error monitor trips.

This module is that handshake as an explicit state machine, connecting the
pieces that already exist (ROBO transport, :class:`ChannelEstimator`,
:func:`generate_tone_map`, MMs):

* the **source** side tracks which tone map it may transmit with
  (``DEFAULT`` ROBO until a tone map arrives, §2.1's broadcast/initial
  communication mode);
* the **destination** side accumulates sound/data frames through its
  estimator and answers with tone-map MMs;
* expiry and error-triggered invalidation force re-sounding, which is the
  mechanism behind the paper's observation that *stations estimate a tone
  map if and only if they have data to send* (§7).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.plc import phy
from repro.plc.channel_estimation import ChannelEstimator
from repro.plc.tonemap import ToneMap, generate_tone_map


class SounderState(enum.Enum):
    """Transmitter-side tone-map state for one peer."""

    DEFAULT_ROBO = "default-robo"    # no valid tone map: ROBO only
    SOUNDING = "sounding"            # sound frames out, awaiting tone map
    ADAPTED = "adapted"              # valid tone map in force


@dataclass(frozen=True)
class SoundFrame:
    """A sound MPDU (ROBO-modulated, carries known symbols)."""

    time: float
    sequence: int
    n_pbs: int = 4


@dataclass(frozen=True)
class ToneMapMessage:
    """The CM_CHAN_EST-style response carrying the new tone map."""

    time: float
    tone_map: ToneMap


class SoundingExchange:
    """Source+destination halves of the §2.1 estimation handshake.

    Driven by the caller's clock: ``want_to_send(t)`` tells the source what
    it may do, ``on_sound``/``on_data`` feed the destination, and
    ``destination_response`` produces the tone-map message when enough
    sound has been heard.
    """

    #: Sound frames the destination wants before answering (vendor choice).
    SOUNDS_NEEDED = 3

    def __init__(self, estimator: ChannelEstimator):
        self.estimator = estimator
        self.spec = estimator.spec
        self._state = SounderState.DEFAULT_ROBO
        self._tmi = itertools.count(1)
        self._sequence = itertools.count()
        self._sounds_heard = 0
        self._tone_map: Optional[ToneMap] = None
        self.history: List[str] = []

    # --- source side ------------------------------------------------------------

    @property
    def state(self) -> SounderState:
        return self._state

    @property
    def tone_map(self) -> Optional[ToneMap]:
        return self._tone_map

    def want_to_send(self, t: float) -> SounderState:
        """What mode the source transmits in at ``t`` (checks expiry)."""
        if (self._state is SounderState.ADAPTED
                and self._tone_map is not None
                and self._tone_map.age(t) >= self.spec.tone_map_expiry_s):
            self._invalidate(t, "expiry")
        return self._state

    def next_sound(self, t: float) -> SoundFrame:
        """Emit a sound frame (allowed in any non-adapted state)."""
        if self._state is SounderState.ADAPTED:
            raise RuntimeError("adapted links do not sound")
        self._state = SounderState.SOUNDING
        return SoundFrame(time=t, sequence=next(self._sequence))

    def on_tone_map(self, message: ToneMapMessage) -> None:
        """Source receives the destination's tone map."""
        self._tone_map = message.tone_map
        self._state = SounderState.ADAPTED
        self.history.append(f"adapted tmi={message.tone_map.tmi}")

    def _invalidate(self, t: float, reason: str) -> None:
        self._tone_map = None
        self._state = SounderState.DEFAULT_ROBO
        self._sounds_heard = 0
        self.history.append(f"invalidated ({reason})")

    # --- destination side ----------------------------------------------------------

    def on_sound(self, frame: SoundFrame) -> None:
        """Destination hears a sound frame: feeds the estimator."""
        self.estimator.observe_frame(frame.time, frame.n_pbs)
        self._sounds_heard += 1

    def on_data(self, t: float, n_pbs: int, errored: bool = False) -> None:
        """Destination hears a data frame; the error monitor may trip."""
        self.estimator.observe_frame(t, n_pbs)
        if errored and self._state is SounderState.ADAPTED:
            # §2.1: tone maps are invalidated "when the error rate exceeds
            # a threshold"; the caller decides what counts as errored.
            self._invalidate(t, "errors")

    def destination_response(self, t: float) -> Optional[ToneMapMessage]:
        """Produce the tone-map message once enough sound was heard."""
        if self._sounds_heard < self.SOUNDS_NEEDED:
            return None
        snr = self.estimator.estimated_snr_db(t)
        tone_map = generate_tone_map(self.estimator.channel, t,
                                     tmi=next(self._tmi),
                                     snr_override=snr)
        self._sounds_heard = 0
        return ToneMapMessage(time=t, tone_map=tone_map)


def establish(exchange: SoundingExchange, t: float,
              sound_interval_s: float = 0.05) -> ToneMap:
    """Run the full handshake at time ``t``; returns the adopted tone map."""
    now = t
    while exchange.want_to_send(now) is not SounderState.ADAPTED:
        frame = exchange.next_sound(now)
        exchange.on_sound(frame)
        response = exchange.destination_response(now)
        if response is not None:
            exchange.on_tone_map(response)
        now += sound_interval_s
    assert exchange.tone_map is not None
    return exchange.tone_map
