"""PLC frame structures: SoF delimiters, frames, SACKs.

The start-of-frame (SoF) delimiter is the paper's central measurement vector
(§2.2, Table 2): it is broadcast in ROBO modulation ahead of every frame, so a
sniffer decodes it even when the payload is undecodable, and it carries the
BLE of the tone map in use — which §7.1 shows is an accurate capacity
estimate. Arrival timestamps of SoFs are also how §8.1 detects
retransmissions (frames arriving < 10 ms apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class SofDelimiter:
    """Frame control / start-of-frame delimiter, as captured by the sniffer.

    Attributes mirror what the Open Powerline Toolkit sniffer exposes.
    """

    timestamp: float          # arrival time (s) — Table 2's ``t``
    src: str                  # transmitting station id
    dst: str                  # destination station id ("*" for broadcast)
    tmi: int                  # tone-map index in use
    ble_bps: float            # bit-loading estimate of the active slot
    slot: int                 # tone-map slot the transmission started in
    n_pbs: int                # physical blocks carried
    duration_s: float         # on-air frame duration
    is_retransmission: bool = False
    is_sound: bool = False    # sound (channel-estimation) frame
    is_broadcast: bool = False

    def __post_init__(self) -> None:
        if self.ble_bps < 0:
            raise ValueError("BLE cannot be negative")
        if self.n_pbs < 1:
            raise ValueError("a frame carries at least one PB")


@dataclass(frozen=True)
class Sack:
    """Selective acknowledgment: per-PB receipt status (§2.2)."""

    timestamp: float
    src: str                  # the receiver sending the SACK
    dst: str
    pb_ok: Tuple[bool, ...]   # one flag per PB of the acknowledged frame

    @property
    def errored_pbs(self) -> int:
        return sum(1 for ok in self.pb_ok if not ok)

    @property
    def all_ok(self) -> bool:
        return self.errored_pbs == 0


@dataclass(frozen=True)
class PlcFrame:
    """A MAC frame: delimiter + payload accounting (payload is abstract)."""

    sof: SofDelimiter
    payload_bytes: int
    sack: Optional[Sack] = None
