"""IEEE 1901 / HomePlug AV power-line communication stack.

Layout mirrors the paper's §2 background:

* :mod:`repro.plc.spec` — PHY constants for HPAV and HPAV500 (§2.1, §3.1);
* :mod:`repro.plc.channel` — multipath transfer function + per-carrier SNR
  built on the power grid (§5);
* :mod:`repro.plc.phy` / :mod:`repro.plc.tonemap` — per-carrier modulation,
  tone maps, BLE per Definition 1 (§2.1);
* :mod:`repro.plc.channel_estimation` — the (vendor-specific) sound-frame
  estimation process with its convergence behaviour (§7);
* :mod:`repro.plc.mac` — PB segmentation, frame aggregation, SACK
  retransmission, MAC-efficiency chain (§2.2);
* :mod:`repro.plc.csma` — 1901 CSMA/CA with the deferral counter (§2.2);
* :mod:`repro.plc.station` / :mod:`repro.plc.network` — stations, the CCo,
  logical networks (§3.1);
* :mod:`repro.plc.mm` / :mod:`repro.plc.sniffer` — the Open Powerline
  Toolkit-style management-message API and SoF capture (§3.2).
"""

from repro.plc.channel import PlcChannel
from repro.plc.link import PlcLink
from repro.plc.network import PlcNetwork
from repro.plc.spec import GREENPHY, HPAV, HPAV500, PlcSpec
from repro.plc.station import PlcStation
from repro.plc.tonemap import ToneMap

__all__ = [
    "PlcSpec",
    "HPAV",
    "HPAV500",
    "GREENPHY",
    "PlcChannel",
    "ToneMap",
    "PlcLink",
    "PlcStation",
    "PlcNetwork",
]
