"""Management-message wire format (vendor-specific MMs, §2.2/§3.2).

The Open Powerline Toolkit speaks to HomePlug chips through Ethernet frames
of EtherType 0x88E1 carrying a management-message header (version, MMTYPE,
vendor OUI) and a type-specific payload. This module implements that wire
format for the MM types the paper's tooling uses, so the
:class:`repro.plc.mm.MmClient` API has a faithful serialisation layer:

* ``NW_INFO`` (int6krate): per-peer average TX/RX rates;
* ``AMP_STAT`` (ampstat): PB counters → PBerr;
* ``RS_DEV`` : device reset;
* ``SNIFFER`` : sniffer-mode control.

Numbers follow HomePlug conventions: little-endian fields, rates in Mbps
rounded to integers (the real chips report whole Mbps — one reason the
paper polls *averages*), PB counters as 32-bit totals.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Tuple

#: EtherType of HomePlug AV management frames.
ETHERTYPE_HOMEPLUG_AV = 0x88E1
#: Management-message protocol version used by INT6x00 firmware.
MM_VERSION = 0x00
#: Qualcomm Atheros vendor OUI carried by vendor-specific MMs.
VENDOR_OUI = bytes((0x00, 0xB0, 0x52))

_HEADER = struct.Struct("<BH3s")      # version, mmtype, OUI
_NW_INFO = struct.Struct("<6sBB")     # peer MAC, tx rate, rx rate (Mbps)
_AMP_STAT = struct.Struct("<II")      # PBs received, PBs in error
_RS_DEV = struct.Struct("<B")         # status code


class MmType(enum.IntEnum):
    """Vendor-specific MMTYPE codes (request = even, confirm = +1)."""

    NW_INFO_REQ = 0xA038
    NW_INFO_CNF = 0xA039
    AMP_STAT_REQ = 0xA06C
    AMP_STAT_CNF = 0xA06D
    RS_DEV_REQ = 0xA01C
    RS_DEV_CNF = 0xA01D
    SNIFFER_REQ = 0xA034
    SNIFFER_CNF = 0xA035


class MmDecodeError(ValueError):
    """Raised on malformed management frames."""


@dataclass(frozen=True)
class MmFrame:
    """A decoded management message."""

    mmtype: MmType
    payload: bytes


def encode_mm(mmtype: MmType, payload: bytes = b"") -> bytes:
    """Serialise header + payload (without the Ethernet encapsulation)."""
    return _HEADER.pack(MM_VERSION, int(mmtype), VENDOR_OUI) + payload


def decode_mm(frame: bytes) -> MmFrame:
    """Parse a management frame; raises :class:`MmDecodeError` when bad."""
    if len(frame) < _HEADER.size:
        raise MmDecodeError(f"frame too short: {len(frame)} bytes")
    version, mmtype_raw, oui = _HEADER.unpack_from(frame)
    if version != MM_VERSION:
        raise MmDecodeError(f"unsupported MM version {version}")
    if oui != VENDOR_OUI:
        raise MmDecodeError(f"unexpected OUI {oui.hex()}")
    try:
        mmtype = MmType(mmtype_raw)
    except ValueError as exc:
        raise MmDecodeError(f"unknown MMTYPE 0x{mmtype_raw:04X}") from exc
    return MmFrame(mmtype=mmtype, payload=frame[_HEADER.size:])


def mac_address(station_id: str) -> bytes:
    """Deterministic locally-administered MAC for a simulated station."""
    digest = 0
    for ch in station_id:
        digest = (digest * 131 + ord(ch)) % (1 << 32)
    return bytes((0x02, 0xB0)) + digest.to_bytes(4, "little")


# --- NW_INFO (int6krate) ------------------------------------------------------


def encode_nw_info_cnf(peer_station: str, tx_rate_mbps: float,
                       rx_rate_mbps: float) -> bytes:
    """Rates are clamped to the chips' 0-255 whole-Mbps fields."""
    tx = int(round(min(max(tx_rate_mbps, 0.0), 255.0)))
    rx = int(round(min(max(rx_rate_mbps, 0.0), 255.0)))
    return encode_mm(MmType.NW_INFO_CNF,
                     _NW_INFO.pack(mac_address(peer_station), tx, rx))


def decode_nw_info_cnf(frame: bytes) -> Tuple[bytes, int, int]:
    """Returns (peer MAC, tx Mbps, rx Mbps)."""
    mm = decode_mm(frame)
    if mm.mmtype is not MmType.NW_INFO_CNF:
        raise MmDecodeError(f"expected NW_INFO.CNF, got {mm.mmtype.name}")
    if len(mm.payload) < _NW_INFO.size:
        raise MmDecodeError("truncated NW_INFO payload")
    mac, tx, rx = _NW_INFO.unpack_from(mm.payload)
    return mac, tx, rx


# --- AMP_STAT (ampstat) -------------------------------------------------------------


def encode_amp_stat_cnf(pbs_received: int, pbs_errored: int) -> bytes:
    if pbs_errored > pbs_received:
        raise ValueError("cannot err more PBs than were received")
    if pbs_received < 0:
        raise ValueError("PB counters are non-negative")
    return encode_mm(MmType.AMP_STAT_CNF,
                     _AMP_STAT.pack(pbs_received & 0xFFFFFFFF,
                                    pbs_errored & 0xFFFFFFFF))


def decode_amp_stat_cnf(frame: bytes) -> Tuple[int, int, float]:
    """Returns (PBs received, PBs errored, PBerr)."""
    mm = decode_mm(frame)
    if mm.mmtype is not MmType.AMP_STAT_CNF:
        raise MmDecodeError(f"expected AMP_STAT.CNF, got {mm.mmtype.name}")
    if len(mm.payload) < _AMP_STAT.size:
        raise MmDecodeError("truncated AMP_STAT payload")
    received, errored = _AMP_STAT.unpack_from(mm.payload)
    pb_err = errored / received if received else 0.0
    return received, errored, pb_err


# --- RS_DEV (device reset) --------------------------------------------------------------


def encode_rs_dev_cnf(success: bool = True) -> bytes:
    return encode_mm(MmType.RS_DEV_CNF, _RS_DEV.pack(0 if success else 1))


def decode_rs_dev_cnf(frame: bytes) -> bool:
    mm = decode_mm(frame)
    if mm.mmtype is not MmType.RS_DEV_CNF:
        raise MmDecodeError(f"expected RS_DEV.CNF, got {mm.mmtype.name}")
    if len(mm.payload) < _RS_DEV.size:
        raise MmDecodeError("truncated RS_DEV payload")
    (status,) = _RS_DEV.unpack_from(mm.payload)
    return status == 0


def roundtrip_rates(station_id: str, tx_mbps: float, rx_mbps: float
                    ) -> Tuple[int, int]:
    """Encode-then-decode helper used by the MM client: what the wire
    format does to a rate reading (whole-Mbps quantisation)."""
    frame = encode_nw_info_cnf(station_id, tx_mbps, rx_mbps)
    _, tx, rx = decode_nw_info_cnf(frame)
    return tx, rx
