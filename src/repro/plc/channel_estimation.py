"""Vendor channel-estimation process: sound frames, convergence, pathologies.

IEEE 1901 leaves the channel-estimation procedure vendor-specific (§2.2).
The paper probes it from the outside and uncovers four behaviours that this
module reproduces:

1. **Slow convergence from reset** (Fig. 16): the estimator needs error
   samples from many PBs to allocate bits per carrier, so the estimated
   capacity climbs towards the true value at a rate set by the received
   PB rate. We model this as a shrinking SNR uncertainty margin
   ``margin(n) = margin0 · n0 / (n0 + n)`` with ``n`` the PBs observed.
2. **Persistence across probing pauses** (Fig. 17): state is kept; only an
   explicit :meth:`ChannelEstimator.reset` clears it.
3. **The one-symbol floor** (Fig. 18): probes of ≤ 1 PB at low rate give the
   rate-adaptation loop no gradient beyond the point where one PB fits one
   OFDM symbol, pinning the estimate at ``R_1sym ≈ 89.4 Mbps`` (HPAV).
4. **Collision misattribution / capture effect** (Fig. 23): PB errors caused
   by collisions are indistinguishable from channel errors when the frames
   are short, so the estimator lowers the rate; long aggregated frames give
   it enough context to keep the estimate (Fig. 24). The AV500 firmware
   additionally over-reacts to bursty errors, collapsing the estimate before
   recovering (Fig. 10, link 18-15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.plc import phy
from repro.plc.channel import PlcChannel
from repro.sim.random import RandomStreams

#: Initial SNR uncertainty margin right after reset (dB). Puts the first
#: estimate at roughly 70–85 % of the converged capacity, as in Fig. 16.
INITIAL_MARGIN_DB = 6.0

#: PB count at which the margin has halved.
MARGIN_HALF_LIFE_PBS = 12000.0

#: Collision penalty accumulation (dB per colliding short frame) and the
#: number of clean PBs that heal 1 dB of penalty.
COLLISION_PENALTY_DB = 0.35
PENALTY_HEAL_PBS_PER_DB = 400.0

#: Frames at least this many PBs long let the estimator separate collision
#: bursts from channel errors (frame aggregation defence, §8.2).
LONG_FRAME_PBS = 12


@dataclass
class EstimatorDiagnostics:
    """Observable internals, exposed for tests and benchmarks."""

    pbs_observed: float
    margin_db: float
    penalty_db: float
    one_symbol_pinned: bool


class ChannelEstimator:
    """Receiver-side estimation state for one directed link."""

    def __init__(self, channel: PlcChannel, streams: RandomStreams,
                 overreact_to_bursts: bool = False):
        self.channel = channel
        self.spec = channel.spec
        self.overreact_to_bursts = overreact_to_bursts
        self._rng = streams.get(f"plc.estimator.{channel.name}")
        self._pbs_observed = 0.0
        self._penalty_db = 0.0
        self._pinned_at_one_symbol = False
        self._burst_collapse_until: float = -1.0

    # --- state management ------------------------------------------------------

    def reset(self) -> None:
        """Factory-reset the estimation state (the paper power-cycles the
        devices before each Fig. 16 run)."""
        self._pbs_observed = 0.0
        self._penalty_db = 0.0
        self._pinned_at_one_symbol = False
        self._burst_collapse_until = -1.0

    @property
    def margin_db(self) -> float:
        """Current SNR uncertainty back-off (shrinks with observed PBs)."""
        return INITIAL_MARGIN_DB * MARGIN_HALF_LIFE_PBS / (
            MARGIN_HALF_LIFE_PBS + self._pbs_observed)

    def diagnostics(self) -> EstimatorDiagnostics:
        return EstimatorDiagnostics(
            pbs_observed=self._pbs_observed,
            margin_db=self.margin_db,
            penalty_db=self._penalty_db,
            one_symbol_pinned=self._pinned_at_one_symbol)

    # --- observations ---------------------------------------------------------------

    def observe_frame(self, t: float, n_pbs: int,
                      collided: bool = False) -> None:
        """Account for one received frame of ``n_pbs`` physical blocks.

        ``collided`` marks frames whose PB errors came from a concurrent
        transmission (the capture effect: the stronger receiver still decodes
        some PBs and sees the rest as errors).
        """
        if n_pbs < 1:
            raise ValueError("frames carry at least one PB")
        # Rate-adaptation gradient: a one-PB frame that already fits in a
        # single symbol gives no signal to raise the rate further. (The
        # capacity evaluation is comparatively costly, so it only runs for
        # one-PB frames, where the pathology can occur.)
        if n_pbs <= 1 and self.estimated_capacity_bps(t) >= (
                self.spec.one_symbol_rate_bps):
            self._pinned_at_one_symbol = True
        else:
            self._pinned_at_one_symbol = False
            self._pbs_observed += n_pbs
        if collided:
            if n_pbs >= LONG_FRAME_PBS:
                # Aggregated frames: error burst clearly bounded in time →
                # correctly attributed to contention, estimate untouched.
                pass
            else:
                self._penalty_db = min(
                    self._penalty_db + COLLISION_PENALTY_DB, 12.0)
                if self.overreact_to_bursts:
                    # AV500 quirk: bursty errors collapse the estimate for a
                    # short window before the estimator recovers.
                    self._burst_collapse_until = t + float(
                        self._rng.uniform(2.0, 8.0))
        else:
            heal = n_pbs / PENALTY_HEAL_PBS_PER_DB
            self._penalty_db = max(0.0, self._penalty_db - heal)

    def observe_clean_pbs(self, t: float, n_pbs: float) -> None:
        """Bulk-account error-free PBs (fast path for long probing runs).

        Equivalent to many :meth:`observe_frame` calls with multi-PB frames
        and no collisions; used when simulating hours of probing.
        """
        if n_pbs <= 0:
            raise ValueError("n_pbs must be positive")
        self._pinned_at_one_symbol = False
        self._pbs_observed += n_pbs
        self._penalty_db = max(
            0.0, self._penalty_db - n_pbs / PENALTY_HEAL_PBS_PER_DB)

    def observe_probe_packet(self, t: float, payload_bytes: int,
                             collided: bool = False) -> None:
        """Convenience: observe the frame a probe of ``payload_bytes`` makes."""
        from repro.plc.mac import pbs_for_payload
        self.observe_frame(t, pbs_for_payload(payload_bytes, self.spec),
                           collided=collided)

    # --- estimates ------------------------------------------------------------------

    def estimated_snr_db(self, t: float) -> np.ndarray:
        """The SNR grid the estimator believes in (carriers × slots)."""
        true = self.channel.snr_db(t, include_jitter=False)
        return true - self.margin_db - self._penalty_db

    def estimated_capacity_bps(self, t: float) -> float:
        """Average-BLE capacity estimate the device would report now."""
        if t < self._burst_collapse_until:
            # AV500 collapse: report a floor near the ROBO rate.
            return self.spec.robo_rate_bps
        snr = self.estimated_snr_db(t)
        ble = float(np.mean(phy.ble_from_snr(
            snr, self.spec, backoff_db=phy.DEFAULT_BACKOFF_DB,
            pb_err=self.spec.target_pb_error)))
        if self._pinned_at_one_symbol:
            ble = min(ble, self.spec.one_symbol_rate_bps)
        return ble

    def converged_capacity_bps(self, t: float) -> float:
        """The asymptotic (zero-margin) estimate — ground truth for tests."""
        snr = self.channel.snr_db(t, include_jitter=False)
        return float(np.mean(phy.ble_from_snr(
            snr, self.spec, backoff_db=phy.DEFAULT_BACKOFF_DB,
            pb_err=self.spec.target_pb_error)))
