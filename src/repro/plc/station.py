"""PLC stations: the adapter endpoints of the testbed."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.plc.channel_estimation import ChannelEstimator
from repro.plc.spec import HPAV, PlcSpec


@dataclass
class PlcStation:
    """A PLC adapter plugged into an outlet.

    Attributes
    ----------
    station_id:
        Testbed name (the paper numbers its boards 0–18).
    outlet_id:
        Outlet in the :class:`~repro.powergrid.topology.GridTopology`.
    spec:
        The technology generation of the adapter (HPAV or HPAV500).
    network_key:
        Logical-network membership: stations communicate only within the same
        (encrypted) AVLN (§3.1). ``None`` until the station joins a network.
    """

    station_id: str
    outlet_id: str
    spec: PlcSpec = HPAV
    network_key: Optional[str] = None
    is_cco: bool = False
    #: Per-peer receive-side channel estimators (vendor state, §7).
    estimators: Dict[str, ChannelEstimator] = field(default_factory=dict)

    def join(self, network_key: str) -> None:
        self.network_key = network_key

    def leave(self) -> None:
        self.network_key = None
        self.is_cco = False

    def can_communicate_with(self, other: "PlcStation") -> bool:
        """Same AVLN (network key) and both joined (§3.1: different keys
        prevent cross-network communication)."""
        return (self.network_key is not None
                and self.network_key == other.network_key
                and self.station_id != other.station_id)
