"""SoF sniffer: frame-header capture for saturated or probe traffic (§3.2).

The toolkit's sniffer mode records the SoF delimiter of every frame on the
wire. Since the delimiter rides in ROBO modulation it is decodable network-
wide, and it carries the tone-map index and BLE of the slot in use — the
paper's source for arrival timestamps and instantaneous BLE_s (Table 2,
Fig. 9).

:func:`capture_saturated` generates the SoF stream of one saturated flow:
frames back to back, each sized to the maximum duration at the BLE of the
slot its transmission starts in, separated by the CSMA exchange overhead.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.plc import mac
from repro.plc.frames import SofDelimiter
from repro.plc.link import PlcLink
from repro.sim.clock import tone_map_slot_at


def capture_saturated(link: PlcLink, t_start: float, duration: float,
                      src: str = "src", dst: str = "dst",
                      timings: mac.MacTimings = mac.DEFAULT_TIMINGS,
                      max_frames: Optional[int] = None
                      ) -> List[SofDelimiter]:
    """SoF stream of a saturated src→dst flow during the capture window.

    Each frame starts in some tone-map slot ``s`` and its header advertises
    ``BLE_s`` — sampling the per-slot BLE pattern with the frame cadence, the
    exact mechanism behind Fig. 9's 10 ms periodicity.
    """
    if duration <= 0:
        raise ValueError("capture duration must be positive")
    spec = link.spec
    sofs: List[SofDelimiter] = []
    t = t_start
    tmi = 1
    last_ble = None
    avg_backoff = 3.5 * timings.slot_s
    while t < t_start + duration:
        per_slot = link.ble_per_slot_bps(t)
        slot = tone_map_slot_at(t, spec.num_slots)
        ble = float(per_slot[slot])
        if ble <= 0:
            # Link down at this instant; skip ahead one slot.
            t += spec.symbol_duration_s * 40
            continue
        if last_ble is not None and abs(ble - last_ble) / max(last_ble, 1.0) > 0.01:
            tmi += 1
        last_ble = ble
        n_pbs = spec.max_pbs_per_frame(ble)
        frame_s = mac.frame_duration_s(n_pbs, ble, spec.target_pb_error, spec,
                                       timings)
        sofs.append(SofDelimiter(
            timestamp=t, src=src, dst=dst, tmi=tmi, ble_bps=ble, slot=slot,
            n_pbs=n_pbs, duration_s=frame_s))
        t += (timings.prs_s + avg_backoff + frame_s + timings.rifs_s
              + timings.sack_s + timings.cifs_s)
        if max_frames is not None and len(sofs) >= max_frames:
            break
    return sofs


def capture_probe_flow(link: PlcLink, t_start: float, duration: float,
                       packet_interval_s: float, payload_bytes: int = 1500,
                       src: str = "src", dst: str = "dst",
                       rng: Optional[np.random.Generator] = None,
                       retransmission_gap_s: float = 0.002
                       ) -> List[SofDelimiter]:
    """SoF stream of a low-rate unicast probe flow, retransmissions included.

    §8.1's methodology: unicast packets are retransmitted until SACKed, and
    the paper classifies a captured frame as a retransmission when it arrives
    within 10 ms of the previous one. We emit one SoF per transmission
    attempt with realistic sub-10 ms retransmission gaps.
    """
    if packet_interval_s <= 0:
        raise ValueError("packet interval must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    spec = link.spec
    n_pbs = mac.pbs_for_payload(payload_bytes, spec)
    sofs: List[SofDelimiter] = []
    t = t_start
    tmi = 1
    # Link metrics move far slower than the packet cadence; refresh them on
    # a 0.5 s grid instead of per packet.
    metrics_at = -float("inf")
    pb_err = 0.0
    per_slot = None
    while t < t_start + duration:
        if t - metrics_at >= 0.5 or per_slot is None:
            # A fully-dead instant still retransmits (capped): clamp < 1.
            pb_err = min(link.pb_err(t), 0.95)
            per_slot = link.ble_per_slot_bps(t)
            metrics_at = t
        result = mac.deliver_packet(n_pbs, pb_err, rng)
        send_t = t
        for attempt in range(result.transmissions):
            slot = tone_map_slot_at(send_t, spec.num_slots)
            ble = float(per_slot[slot])
            frame_s = mac.frame_duration_s(n_pbs, max(ble, 1e6),
                                           spec.target_pb_error, spec)
            sofs.append(SofDelimiter(
                timestamp=send_t, src=src, dst=dst, tmi=tmi, ble_bps=ble,
                slot=slot, n_pbs=n_pbs, duration_s=frame_s,
                is_retransmission=attempt > 0))
            send_t += retransmission_gap_s * float(rng.uniform(0.5, 1.5))
        t += packet_interval_s
    return sofs


def classify_retransmissions(sofs: List[SofDelimiter],
                             threshold_s: float = 0.010) -> List[bool]:
    """The paper's §8.1 heuristic: a frame arriving within 10 ms of the
    previous one is counted as a retransmission."""
    flags: List[bool] = []
    prev_t: Optional[float] = None
    for sof in sofs:
        flags.append(prev_t is not None
                     and sof.timestamp - prev_t < threshold_s)
        prev_t = sof.timestamp
    return flags
