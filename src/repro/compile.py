"""The campaign compile plane: content-addressed testbed compilation.

The paper's year-long measurement study becomes, in this reproduction, a
campaign of thousands of near-identical tasks over a handful of worlds.
Before this module every task kind rebuilt its world from scratch —
grid topology, Zimmermann transfer functions, appliance activity — even
when N tasks shared the same ``(preset, seed)``. The compile plane splits
that cost off the execute plane:

* :func:`compile_testbed` turns ``(preset, seed)`` into an immutable
  :class:`CompiledTestbed`: a fully built template testbed whose
  deterministic state (electrical load memoisation, PLC/WiFi channel
  caches) accretes as links are resolved, content-addressed by the
  canonical hash of the resolved preset description, the seed and the
  compile format version;
* :func:`compiled_testbed` serves compilations from a process-wide
  :class:`repro.cache.WindowedLruCache`, so N tasks sharing a testbed
  build it once — and under the POSIX-default ``fork`` start method a
  pool worker inherits the parent's warm cache read-only;
* :func:`checkout_testbed` — the one call task executors make — hands
  each task a private :meth:`CompiledTestbed.instantiate` view:
  fresh derived seed streams and fresh link facades over the shared
  compiled state, bit-identical to a from-scratch build.

Everything here publishes ``compile.*`` counters into
:func:`repro.obs.global_registry`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.cache import WindowedLruCache
from repro.obs.clock import SystemClock
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.testbed.builder import Testbed, build_preset_testbed  # noqa: TID251 — the compile plane owns the one legit scratch-build site
from repro.testbed.presets import resolve_testbed_preset

#: Bumped whenever the build recipe changes meaning: the version is part
#: of every fingerprint, so stale cross-process cache reuse (e.g. a
#: memory-mapped future format) can never serve an old-world testbed.
COMPILE_FORMAT_VERSION = 1

#: Distinct worlds a process keeps compiled at once. Campaigns sweep a
#: handful of ``(preset, seed)`` pairs but fuzzers sweep many seeds; LRU
#: keeps the working set without letting a seed sweep hold every world.
COMPILE_CACHE_ENTRIES = 16

#: Worker-local clock for compile *durations* (never epochs).
_BUILD_CLOCK = SystemClock()


def testbed_fingerprint(preset_name: str) -> str:
    """Canonical content hash of everything a build depends on.

    Covers the *resolved* preset — vendor, chip, full PHY spec, station
    subset — plus the compile format version, not just the preset's name:
    two presets that resolve to identical worlds share compilations, and
    editing a preset in place invalidates its cache entries.
    """
    preset = resolve_testbed_preset(preset_name)
    material = {
        "format": COMPILE_FORMAT_VERSION,
        "vendor": preset.vendor.name,
        "chip": preset.vendor.chip,
        "overreact_to_bursts": preset.vendor.overreact_to_bursts,
        "spec": asdict(preset.vendor.spec),
        "stations": list(preset.stations) if preset.stations else None,
    }
    canonical = json.dumps(material, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True, eq=False)
class CompiledTestbed:
    """An immutable, shareable compilation of one ``(preset, seed)`` world.

    The wrapped template testbed is **never handed to a task**: tasks get
    :meth:`instantiate` views whose monotonic randomness (measurement
    noise, estimator jitter) is private, while the template's
    deterministic caches — electrical distances, channel structure, tone
    maps' SNR state — are shared by reference. The template's own caches
    fill lazily as instantiated views resolve links, so a compilation
    gets *warmer* over a campaign without ever changing a result byte.
    """

    preset: str
    seed: int
    fingerprint: str
    template: Testbed

    @property
    def cache_key(self) -> str:
        """The content address: preset/seed/fingerprint digest."""
        return f"{self.preset}/s{self.seed}/{self.fingerprint[:12]}"

    def instantiate(self,
                    metrics: Optional[MetricsRegistry] = None) -> Testbed:
        """A private fresh-RNG checkout of the compiled world.

        Bit-identical to ``build_preset_testbed(preset, seed=seed)`` —
        the compile plane's core contract, enforced by
        ``tests/test_compile.py`` and the backend-equivalence oracle.
        """
        reg = metrics if metrics is not None else global_registry()
        reg.inc("compile.instantiations")
        return self.template.fork()

    def warm_links(self, pairs: Optional[Sequence[Tuple[int, int]]] = None,
                   media: Iterable[str] = ("plc", "wifi")) -> int:
        """Pre-resolve channel state for ``pairs`` into the shared caches.

        ``pairs=None`` warms every directed same-board pair. Returns the
        number of channels resolved. Useful before forking a worker pool:
        the parent's warmed channel caches are inherited read-only by
        every child.
        """
        world = self.template
        if pairs is None:
            pairs = world.same_board_pairs()
        resolved = 0
        for medium in media:
            for i, j in pairs:
                if medium == "plc":
                    if not world.same_board(i, j):
                        continue
                    network = world.networks[world.board_of(i)]
                    network.channel(str(i), str(j))
                elif medium == "wifi":
                    world.wifi_link(i, j)
                else:
                    world.link(medium, i, j)
                resolved += 1
        return resolved


# --- the process-wide compile cache -------------------------------------------

#: ``WindowedLruCache`` used as a pure LRU: compilations are timeless, so
#: every lookup pins ``t=0`` and entries only ever leave by LRU eviction.
_cache = WindowedLruCache(window_s=1.0, max_entries=COMPILE_CACHE_ENTRIES)
_cache_lock = threading.Lock()
_cache_enabled = True


def compile_cache() -> WindowedLruCache:
    """The process-wide compilation cache (exposed for tests/benchmarks)."""
    return _cache


def reset_compile_cache() -> None:
    """Drop every cached compilation (the cache's stats survive)."""
    with _cache_lock:
        _cache.clear()


@contextmanager
def compile_cache_disabled():
    """Bypass the cache: every checkout compiles from scratch.

    This is the pre-compile-plane behaviour — benchmarks use it as the
    *cold* baseline, and the differential oracles use it to show caching
    never moves a byte.
    """
    global _cache_enabled
    previous = _cache_enabled
    _cache_enabled = False
    try:
        yield
    finally:
        _cache_enabled = previous


def compile_testbed(preset: str, seed: int = 7,
                    metrics: Optional[MetricsRegistry] = None
                    ) -> CompiledTestbed:
    """Compile one world, bypassing the cache (the pure build)."""
    reg = metrics if metrics is not None else global_registry()
    fingerprint = testbed_fingerprint(preset)
    t0 = _BUILD_CLOCK.now()
    template = build_preset_testbed(preset, seed=seed)
    reg.inc("compile.builds")
    reg.inc("compile.build_seconds", _BUILD_CLOCK.now() - t0)
    return CompiledTestbed(preset=preset, seed=int(seed),
                           fingerprint=fingerprint, template=template)


def compiled_testbed(preset: str, seed: int = 7,
                     metrics: Optional[MetricsRegistry] = None
                     ) -> CompiledTestbed:
    """Compile through the process-wide content-addressed cache.

    Thread-safe (the ``thread`` execution backend shares this cache
    across workers); the lock also makes the build single-flight, so
    concurrent first checkouts of one world compile it once.
    """
    reg = metrics if metrics is not None else global_registry()
    fingerprint = testbed_fingerprint(preset)
    if not _cache_enabled:
        reg.inc("compile.cache.bypasses")
        return compile_testbed(preset, seed, metrics=reg)
    key = (preset, int(seed), fingerprint)
    with _cache_lock:
        hits_before = _cache.stats.hits
        evictions_before = _cache.stats.evictions
        compiled = _cache.get(
            key, 0.0,
            lambda: compile_testbed(preset, seed, metrics=reg))
        if _cache.stats.hits > hits_before:
            reg.inc("compile.cache.hits")
        else:
            reg.inc("compile.cache.misses")
        evicted = _cache.stats.evictions - evictions_before
        if evicted:
            reg.inc("compile.cache.evictions", evicted)
    return compiled


def checkout_testbed(preset: str, seed: int = 7,
                     metrics: Optional[MetricsRegistry] = None) -> Testbed:
    """What task executors call: a private view of the cached world.

    One line replaces ``build_preset_testbed(spec.preset, spec.seed)``
    in every task kind — same bytes out, one build per distinct
    ``(preset, seed, fingerprint)`` per process instead of one per task.
    """
    return compiled_testbed(preset, seed, metrics=metrics).instantiate(
        metrics=metrics)


def precompile_specs(specs: Iterable, metrics: Optional[MetricsRegistry]
                     = None) -> int:
    """Warm the cache for every distinct world a spec list will need.

    Called by the campaign engine before starting a pooled backend, so
    forked workers inherit the compiled templates read-only instead of
    each building their own. Only kinds that declare
    ``uses_testbed=True`` at registration count — an ``rng_probe``
    campaign compiles nothing. Returns the number of worlds compiled or
    touched.
    """
    from repro.campaign.tasks import task_uses_testbed

    worlds: Dict[Tuple[str, int], None] = {}
    for spec in specs:
        if task_uses_testbed(spec.kind):
            worlds.setdefault((spec.preset, spec.seed))
    for preset, seed in worlds:
        compiled_testbed(preset, seed, metrics=metrics)
    return len(worlds)
