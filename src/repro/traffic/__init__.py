"""Traffic generation and measurement (the paper's iperf role, §3.2)."""

from repro.traffic.generators import (
    CbrFlow,
    FileTransfer,
    SaturatedUdpFlow,
    burst_schedule,
)
from repro.traffic.iperf import run_udp_test
from repro.traffic.packet import Packet

__all__ = [
    "Packet",
    "SaturatedUdpFlow",
    "CbrFlow",
    "FileTransfer",
    "burst_schedule",
    "run_udp_test",
]
