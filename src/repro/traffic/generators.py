"""Traffic source descriptors and packet-time schedules."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

from repro.traffic.packet import Packet


@dataclass(frozen=True)
class SaturatedUdpFlow:
    """iperf-style saturated UDP: always a packet ready (paper default)."""

    packet_bytes: int = 1500
    flow_id: str = "udp-saturated"


@dataclass(frozen=True)
class CbrFlow:
    """Constant-bit-rate flow (the paper's 150 kbps probe emulation, §8)."""

    rate_bps: float
    packet_bytes: int = 1500
    flow_id: str = "cbr"

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate must be positive")

    @property
    def packet_interval_s(self) -> float:
        return self.packet_bytes * 8 / self.rate_bps

    def packet_times(self, t_start: float, duration: float) -> List[float]:
        interval = self.packet_interval_s
        n = int(duration / interval)
        return [t_start + k * interval for k in range(n)]


@dataclass(frozen=True)
class FileTransfer:
    """A fixed-size transfer (the paper's 600 MB download, §7.4)."""

    size_bytes: int
    packet_bytes: int = 1500
    flow_id: str = "file"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("file size must be positive")

    @property
    def n_packets(self) -> int:
        return math.ceil(self.size_bytes / self.packet_bytes)


def burst_schedule(rate_bps: float, burst_packets: int,
                   packet_bytes: int, t_start: float,
                   duration: float) -> List[List[float]]:
    """Packet times grouped into bursts at the same average rate (§8.2).

    Returns a list of bursts; each burst is a list of (near-simultaneous)
    packet times. Total packets per second match a plain CBR of ``rate_bps``.
    """
    if burst_packets < 1:
        raise ValueError("burst size must be >= 1")
    burst_interval = burst_packets * packet_bytes * 8 / rate_bps
    bursts: List[List[float]] = []
    t = t_start
    while t < t_start + duration:
        bursts.append([t + 1e-5 * k for k in range(burst_packets)])
        t += burst_interval
    return bursts


def packets_for_times(times: List[float], packet_bytes: int,
                      flow_id: str, seq_start: int = 0) -> Iterator[Packet]:
    """Materialise packets for a list of send times."""
    for k, t in enumerate(times):
        yield Packet(seq=seq_start + k, size_bytes=packet_bytes,
                     created_at=t, flow_id=flow_id)
