"""iperf-equivalent throughput measurement (Table 2's ``T``).

Works against any :class:`repro.medium.Link` — both
:class:`~repro.plc.link.PlcLink` and :class:`~repro.wifi.link.WifiLink` —
sampling through the contract's vectorized ``sample_series`` and returning
a :class:`~repro.core.metrics.MetricSeries` of the periodic reports, like
iperf's interval lines.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import MetricSeries
from repro.medium.link import Link


def run_udp_test(link: Link, t_start: float, duration: float,
                 report_interval: float = 0.1) -> MetricSeries:
    """Saturated UDP test: throughput reports every ``report_interval``.

    The paper measures each medium back-to-back for 5 minutes at 100 ms
    intervals (§4.1); those are the defaults at the call sites.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if report_interval <= 0:
        raise ValueError("report interval must be positive")
    times = np.arange(t_start, t_start + duration, report_interval)
    series = link.sample_series(times)
    return MetricSeries(times, series.throughput_bps,
                        name=getattr(link, "name", "link"))


def completion_time_s(link: Link, t_start: float, size_bytes: float,
                      step_s: float = 1.0, max_time_s: float = 24 * 3600.0
                      ) -> float:
    """Time to move ``size_bytes`` over a single link (Fig. 20 right).

    Integrates the link's instantaneous throughput until the cumulative
    bits cross the transfer size, interpolating within the final step.
    Raises if the link cannot finish within ``max_time_s`` — effectively
    an unusable link for the transfer.
    """
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    need_bits = size_bytes * 8.0
    chunk = 512  # steps sampled per batch
    moved = 0.0
    offset = 0
    while offset * step_s <= max_time_s:
        times = t_start + (offset + np.arange(chunk)) * step_s
        rates = np.maximum(link.sample_series(times).throughput_bps, 0.0)
        cumulative = moved + np.cumsum(rates * step_s)
        crossed = np.nonzero(cumulative >= need_bits)[0]
        if len(crossed):
            k = int(crossed[0])
            if (offset + k) * step_s > max_time_s:
                break
            before = moved if k == 0 else float(cumulative[k - 1])
            # rates[k] > 0 whenever the threshold is crossed at step k,
            # so the interpolation is exact — no rate floor needed (the
            # old ``max(rate, 1.0)`` fallback silently shaved up to a
            # full second off near-stalled transfers).
            fraction = (need_bits - before) / float(rates[k] * step_s)
            return (offset + k + fraction) * step_s
        moved = float(cumulative[-1])
        offset += chunk
    raise RuntimeError(
        f"transfer did not complete within {max_time_s} s")
