"""iperf-equivalent throughput measurement (Table 2's ``T``).

Works against anything exposing ``throughput_bps(t)`` — both
:class:`~repro.plc.link.PlcLink` and :class:`~repro.wifi.link.WifiLink` —
and returns a :class:`~repro.core.metrics.MetricSeries` of the periodic
reports, like iperf's interval lines.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.metrics import MetricSeries


def run_udp_test(link, t_start: float, duration: float,
                 report_interval: float = 0.1) -> MetricSeries:
    """Saturated UDP test: throughput reports every ``report_interval``.

    The paper measures each medium back-to-back for 5 minutes at 100 ms
    intervals (§4.1); those are the defaults at the call sites.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if report_interval <= 0:
        raise ValueError("report interval must be positive")
    times = np.arange(t_start, t_start + duration, report_interval)
    values = [link.throughput_bps(t) for t in times]
    return MetricSeries(times, values, name=getattr(link, "name", "link"))


def completion_time_s(link, t_start: float, size_bytes: float,
                      step_s: float = 1.0, max_time_s: float = 24 * 3600.0
                      ) -> float:
    """Time to move ``size_bytes`` over a single link (Fig. 20 right).

    Integrates the link's instantaneous throughput until the transfer
    completes. Raises if the link cannot finish within ``max_time_s`` —
    effectively an unusable link for the transfer.
    """
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    remaining = size_bytes * 8.0
    t = t_start
    while remaining > 0:
        if t - t_start > max_time_s:
            raise RuntimeError(
                f"transfer did not complete within {max_time_s} s")
        rate = max(link.throughput_bps(t), 0.0)
        remaining -= rate * step_s
        t += step_s
    # Interpolate the final partial step: ``remaining`` is negative by the
    # overshoot bits, which took overshoot/rate seconds too many.
    return (t - t_start) - (-remaining) / max(rate, 1.0)
