"""Packets as the hybrid forwarding layer sees them.

The paper's load balancer operates between IP and MAC (§7.4) and reorders at
the destination using the IP identification sequence — so a packet here
carries exactly that: a sequence number, a size and timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Packet:
    """One IP packet in flight through the hybrid pipeline."""

    seq: int                      # IP identification sequence
    size_bytes: int = 1500
    created_at: float = 0.0
    flow_id: str = "flow-0"
    medium: Optional[str] = None  # which interface carried it
    delivered_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("sequence numbers are non-negative")
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")

    @property
    def latency(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at
