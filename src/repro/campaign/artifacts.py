"""Campaign artifact persistence: resumable, canonical JSONL.

Layout: one header line (campaign metadata) followed by one line per
completed task. Two properties matter and are worth stating as contracts:

**Resume contract.** Task lines are appended and flushed as tasks finish,
so a killed run leaves a valid prefix (plus at most one truncated line,
which reopening discards). On restart the engine reads the surviving task
keys and skips those specs.

**Determinism contract.** A task line is a pure function of its spec —
no timestamps, host names or durations — and :meth:`ArtifactWriter.finalize`
rewrites the file with task lines sorted by task key under a canonical
header. Two finalized runs of the same spec list are therefore
byte-identical at any worker count, on any schedule, resumed or not.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

ARTIFACT_FORMAT = "repro-campaign-artifacts"
ARTIFACT_VERSION = 1
QUARANTINE_FORMAT = "repro-campaign-quarantine"


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class TaskArtifact:
    """The persisted outcome of one campaign task."""

    task_key: str
    spec: Dict[str, Any]
    task_seed: int
    records: List[Dict[str, Any]]
    stats: Dict[str, Any]

    def to_line(self) -> str:
        return _canonical({
            "task_key": self.task_key, "spec": self.spec,
            "task_seed": self.task_seed, "records": self.records,
            "stats": self.stats})

    @classmethod
    def from_line(cls, line: str) -> "TaskArtifact":
        data = json.loads(line)
        return cls(task_key=data["task_key"], spec=data["spec"],
                   task_seed=data["task_seed"],
                   records=data.get("records", []),
                   stats=data.get("stats", {}))


def _header(name: str, root_seed: Optional[int]) -> Dict[str, Any]:
    return {"format": ARTIFACT_FORMAT, "version": ARTIFACT_VERSION,
            "name": name, "root_seed": root_seed}


def is_artifact_file(path: Union[str, Path]) -> bool:
    """True if ``path`` starts with a campaign-artifact header."""
    try:
        with Path(path).open("r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
    except (OSError, json.JSONDecodeError):
        return False
    return (isinstance(header, dict)
            and header.get("format") == ARTIFACT_FORMAT)


def read_artifacts(path: Union[str, Path]
                   ) -> Tuple[Dict[str, Any], List[TaskArtifact]]:
    """Load header + all complete task lines (a trailing truncated line —
    the signature of a killed run — is silently dropped)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    if not lines or not lines[0]:
        raise ValueError(f"{path}: empty artifact file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not an artifact file") from exc
    if not isinstance(header, dict) or header.get(
            "format") != ARTIFACT_FORMAT:
        raise ValueError(f"{path}: not an artifact file")
    if header.get("version", 0) > ARTIFACT_VERSION:
        raise ValueError(f"{path}: artifact format v{header['version']} "
                         f"is newer than this library "
                         f"(v{ARTIFACT_VERSION})")
    tasks: List[TaskArtifact] = []
    # If the file does not end with a newline its last line may be a
    # partial write from a killed process; only lines terminated by "\n"
    # (every element but the final split fragment) are trusted.
    complete, trailing = lines[1:-1], lines[-1]
    for line in complete:
        if not line.strip():
            continue
        tasks.append(TaskArtifact.from_line(line))
    if trailing.strip():
        try:
            tasks.append(TaskArtifact.from_line(trailing))
        except (json.JSONDecodeError, KeyError):
            pass  # truncated by a kill — the resume pass re-runs it
    return header, tasks


def iter_task_records(path: Union[str, Path]
                      ) -> Iterator[Tuple[TaskArtifact, Dict[str, Any]]]:
    """Yield (task, record) pairs across the whole artifact file."""
    _, tasks = read_artifacts(path)
    for task in tasks:
        for record in task.records:
            yield task, record


class ArtifactWriter:
    """Append-mode artifact sink with resume and canonical finalize."""

    def __init__(self, path: Union[str, Path], name: str,
                 root_seed: Optional[int] = None, resume: bool = True):
        self.path = Path(path)
        self.name = name
        self.root_seed = root_seed
        self._tasks: Dict[str, TaskArtifact] = {}
        if resume and self.path.exists():
            header, tasks = read_artifacts(self.path)
            if header.get("name") not in (None, name):
                raise ValueError(
                    f"{self.path}: artifact belongs to campaign "
                    f"{header.get('name')!r}, not {name!r}")
            self._tasks = {t.task_key: t for t in tasks}
        # Rewrite the surviving prefix so the file is exactly header +
        # complete lines before any appends (drops truncated tails).
        self._rewrite(sorted(self._tasks))
        self._fh = self.path.open("a", encoding="utf-8")

    # --- the resume contract --------------------------------------------------

    def completed_keys(self) -> Set[str]:
        return set(self._tasks)

    # --- writes ---------------------------------------------------------------

    def write(self, artifact: TaskArtifact) -> None:
        if artifact.task_key in self._tasks:
            return  # resume already has it
        self._tasks[artifact.task_key] = artifact
        self._fh.write(artifact.to_line() + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def finalize(self) -> None:
        """Rewrite in canonical order; see the determinism contract."""
        self._fh.close()
        self._rewrite(sorted(self._tasks))
        self._fh = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        self._fh.close()

    def _rewrite(self, ordered_keys: List[str]) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(_canonical(_header(self.name, self.root_seed)) + "\n")
            for key in ordered_keys:
                fh.write(self._tasks[key].to_line() + "\n")
        tmp.replace(self.path)


# --- poison-task quarantine ---------------------------------------------------


def quarantine_path_for(artifact_path: Union[str, Path]) -> Path:
    """The quarantine sidecar of an artifact file.

    ``campaign.jsonl`` → ``campaign.quarantine.jsonl`` (next to the
    artifact, so resume/report tooling finds both with one base path).
    """
    path = Path(artifact_path)
    return path.with_name(f"{path.stem}.quarantine.jsonl")


@dataclass
class QuarantineEntry:
    """One permanently failing (poison) task, parked out of the way."""

    task_key: str
    spec: Dict[str, Any]
    attempts: int
    error: str

    def to_line(self) -> str:
        return _canonical({
            "task_key": self.task_key, "spec": self.spec,
            "attempts": self.attempts, "error": self.error})

    @classmethod
    def from_line(cls, line: str) -> "QuarantineEntry":
        data = json.loads(line)
        return cls(task_key=data["task_key"], spec=data.get("spec", {}),
                   attempts=int(data.get("attempts", 0)),
                   error=str(data.get("error", "")))


def read_quarantine(path: Union[str, Path]) -> List[QuarantineEntry]:
    """All entries of a quarantine sidecar ([] if it does not exist)."""
    path = Path(path)
    if not path.exists():
        return []
    entries: List[QuarantineEntry] = []
    with path.open("r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if not (isinstance(header, dict)
                and header.get("format") == QUARANTINE_FORMAT):
            raise ValueError(f"{path}: not a quarantine sidecar")
        for line in fh:
            if line.strip() and line.endswith("\n"):
                entries.append(QuarantineEntry.from_line(line))
    return entries


class QuarantineWriter:
    """Sidecar sink for poison tasks; canonical like the artifact file.

    Entries are a pure function of the failing spec (no timestamps, no
    hostnames; error strings must be deterministic for the determinism
    contract to extend here), and :meth:`finalize` sorts lines by task
    key — so a chaos campaign's quarantine file is byte-identical at any
    worker count. A task that *recovers* on a later run (its key shows
    up in the artifact's completed set) is dropped at finalize.
    """

    def __init__(self, artifact_path: Union[str, Path], name: str,
                 resume: bool = True):
        self.path = quarantine_path_for(artifact_path)
        self.name = name
        self._entries: Dict[str, QuarantineEntry] = {}
        if resume and self.path.exists():
            self._entries = {e.task_key: e
                             for e in read_quarantine(self.path)}

    def quarantined_keys(self) -> Set[str]:
        return set(self._entries)

    def add(self, entry: QuarantineEntry) -> None:
        self._entries[entry.task_key] = entry

    def finalize(self, completed_keys: Set[str]) -> None:
        """Write the sidecar (sorted, minus recovered tasks).

        An empty quarantine removes the file entirely, so a clean rerun
        of a previously poisoned campaign leaves no stale sidecar.
        """
        for key in completed_keys & set(self._entries):
            del self._entries[key]
        if not self._entries:
            if self.path.exists():
                self.path.unlink()
            return
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(_canonical({"format": QUARANTINE_FORMAT,
                                 "version": 1, "name": self.name}) + "\n")
            for key in sorted(self._entries):
                fh.write(self._entries[key].to_line() + "\n")
        tmp.replace(self.path)
