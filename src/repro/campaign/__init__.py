"""Parallel experiment campaigns over the reproduction toolkit.

The paper's results are campaign-scale — 144 links surveyed repeatedly over
a year. This package is the batch layer that makes such workloads cheap:
describe experiments as :class:`ExperimentSpec` values (kind × testbed
preset × seed × parameters), hand the list to :class:`CampaignEngine`, and
collect a resumable JSONL artifact file whose finalized bytes are identical
at any worker count.

    from repro.campaign import survey_campaign
    stats = survey_campaign("office", seeds=[7, 8, 9],
                            out_path="survey.jsonl", workers=4)

See ``docs/architecture.md`` ("The campaign layer") for the determinism and
resume contracts.
"""

from repro.campaign.backends import (
    BACKEND_NAMES,
    ChunkedBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    create_backend,
)
from repro.campaign.artifacts import (
    ArtifactWriter,
    QuarantineEntry,
    QuarantineWriter,
    TaskArtifact,
    is_artifact_file,
    iter_task_records,
    quarantine_path_for,
    read_artifacts,
    read_quarantine,
)
from repro.campaign.engine import (
    CampaignAborted,
    CampaignEngine,
    EngineConfig,
    run_campaign,
    scenario_campaign,
    survey_campaign,
)
from repro.campaign.spec import (
    ExperimentSpec,
    check_specs,
    scenario_specs,
    spec_grid,
    survey_specs,
)
from repro.campaign.stats import CampaignStats, TaskFailure
from repro.campaign.tasks import (
    TASK_REGISTRY,
    TaskOutput,
    execute_spec,
    register_task,
    temporary_task_kind,
    unregister_task,
    validate_task_params,
)

__all__ = [
    "BACKEND_NAMES",
    "ChunkedBackend",
    "InlineBackend",
    "ProcessBackend",
    "ThreadBackend",
    "create_backend",
    "ArtifactWriter",
    "QuarantineEntry",
    "QuarantineWriter",
    "TaskArtifact",
    "is_artifact_file",
    "iter_task_records",
    "quarantine_path_for",
    "read_artifacts",
    "read_quarantine",
    "CampaignAborted",
    "CampaignEngine",
    "EngineConfig",
    "run_campaign",
    "scenario_campaign",
    "survey_campaign",
    "ExperimentSpec",
    "check_specs",
    "scenario_specs",
    "spec_grid",
    "survey_specs",
    "CampaignStats",
    "TaskFailure",
    "TASK_REGISTRY",
    "TaskOutput",
    "execute_spec",
    "register_task",
    "temporary_task_kind",
    "unregister_task",
    "validate_task_params",
]
