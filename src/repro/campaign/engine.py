"""The parallel campaign engine: the *policy* half of the campaign path.

Fans a list of :class:`ExperimentSpec` out across an
:class:`~repro.campaign.backends.ExecutionBackend` and collects
artifacts, with:

* **deterministic seeding** — every task's world is a pure function of its
  spec (`seed` + :meth:`ExperimentSpec.task_seed`), so artifacts are
  bit-identical at any worker count *and any backend* (inline, process,
  thread, chunked — see :mod:`repro.campaign.backends`);
* **per-task timeout and retry** — failed or timed-out attempts are
  resubmitted with exponential backoff, up to ``retries`` times;
* **a circuit breaker** — more than ``max_failures`` permanently failed
  tasks abort the campaign (completed artifacts survive for resume);
* **resume** — specs whose task keys already sit in the artifact file are
  skipped, so an interrupted campaign continues where it stopped;
* **precompile** — distinct testbed worlds the spec list needs are
  compiled into the :mod:`repro.compile` cache before the backend
  starts, so (fork-started) pool workers inherit them read-only.

The engine never touches an executor directly: it submits batches,
waits on futures, and applies policy to the outcomes. Mechanism —
pools, chunking, IPC — lives entirely in the backend.

**Clock discipline.** Every engine-side epoch — the run's wall-clock
span, retry-heap deadlines, timeout expiry, wait budgets — is read from
ONE injected :class:`repro.obs.Clock`, so they are mutually comparable
and a :class:`repro.obs.FakeClock` makes the retry/backoff/breaker logic
deterministically testable. Workers time their tasks on their own clock
and report only the *duration* (``elapsed_s``); durations may cross the
process boundary, epochs never do.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.artifacts import (
    ArtifactWriter,
    QuarantineEntry,
    QuarantineWriter,
    TaskArtifact,
    quarantine_path_for,
)
from repro.campaign.backends import (
    BACKEND_NAMES,
    create_backend,
    run_task_payload as _run_task_payload,  # noqa: F401 — back-compat name
)
from repro.campaign.spec import (
    ExperimentSpec,
    check_specs,
    scenario_specs,
    survey_specs,
)
from repro.campaign.stats import CampaignStats, TaskFailure
from repro.campaign.tasks import validate_task_params
from repro.obs.clock import Clock, SystemClock
from repro.obs.metrics import global_registry
from repro.obs.trace import trace_path_for, write_trace

ProgressFn = Callable[[str, str, CampaignStats], None]


class CampaignAborted(RuntimeError):
    """The circuit breaker opened: too many tasks failed permanently."""


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of one campaign run."""

    #: 0 = inline (no pool, timeouts not enforced); N >= 1 = process pool.
    workers: int = 1
    #: Wall-clock budget per attempt; ``None`` disables the check.
    timeout_s: Optional[float] = None
    #: Re-submissions allowed per task after its first attempt.
    retries: int = 2
    #: Backoff before retry k is ``min(cap, base * 2**k)`` seconds.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Permanently failed tasks tolerated before aborting the campaign.
    max_failures: int = 0
    #: Quarantine poison tasks: a spec that exhausts its retries lands in
    #: a ``<name>.quarantine.jsonl`` sidecar (canonical, sorted, byte-
    #: identical at any worker count) instead of counting against
    #: ``max_failures`` — one deterministic bad task no longer aborts the
    #: unrelated 99% of a campaign.
    quarantine: bool = False
    resume: bool = True
    #: Collect each task's sim-time trace events and write them to a
    #: ``<out>.trace.jsonl`` sidecar at finalize. Never touches the
    #: result artifact: its bytes are identical with tracing on or off,
    #: and the sidecar itself is canonical at any worker count.
    trace: bool = False
    #: Execution mechanism (see :mod:`repro.campaign.backends`).
    #: ``auto`` = ``inline`` when ``workers == 0``, else ``process``.
    backend: str = "auto"
    #: Specs per pool round-trip for the ``chunked`` backend.
    chunk_size: int = 8
    #: Compile the spec list's distinct testbed worlds into the process-
    #: wide cache before the backend starts (fork-inherited by workers).
    precompile: bool = True
    #: Time-sliced execution: split every ``scenario`` task whose horizon
    #: exceeds this many simulated seconds into chained slices — each
    #: slice checkpoints the simulation world (``repro.snapshot``) and
    #: the next one restores it. Slicing pipelines long tasks across
    #: workers and makes them crash-resumable mid-task, while the
    #: finalized artifact stays byte-identical to a straight run (the
    #: ``diff_slice_equivalence`` oracle enforces this). ``None``
    #: disables slicing.
    slice_horizon_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(known: {', '.join(BACKEND_NAMES)})")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.slice_horizon_s is not None and self.slice_horizon_s <= 0:
            raise ValueError("slice horizon must be positive")


class CampaignEngine:
    """Run a spec list to a finalized artifact file."""

    def __init__(self, specs: Sequence[ExperimentSpec],
                 out_path: Union[str, Path], name: str = "campaign",
                 config: EngineConfig = EngineConfig(),
                 progress: Optional[ProgressFn] = None,
                 clock: Optional[Clock] = None):
        check_specs(specs)
        # Fail fast on misspelled parameters for kinds whose schema is
        # already registered; unknown kinds still fail at execution time
        # (workers import plugin kinds the engine may not have loaded).
        for spec in specs:
            validate_task_params(spec.kind, spec.params_dict)
        self.specs = list(specs)
        self.out_path = Path(out_path)
        self.name = name
        self.config = config
        self.progress = progress or (lambda event, detail, stats: None)
        #: The single source of engine-side epochs (see module docstring);
        #: tests inject a FakeClock here to drive retries and timeouts.
        self.clock: Clock = clock if clock is not None else SystemClock()
        seeds = {s.seed for s in self.specs}
        self._root_seed = seeds.pop() if len(seeds) == 1 else None
        self._quarantine: Optional[QuarantineWriter] = None
        #: task_key -> sim-time trace events, gathered when tracing.
        self._traces: Dict[str, List[Dict[str, object]]] = {}
        #: slice task_key -> {"spec": original spec, "num_slices": K}
        #: for every in-play slice of a time-sliced scenario task.
        self._slice_origins: Dict[str, Dict[str, object]] = {}

    @property
    def quarantine_path(self) -> Path:
        """Where poison tasks land when quarantine is enabled."""
        return quarantine_path_for(self.out_path)

    @property
    def trace_path(self) -> Path:
        """Where the sim-time event trace lands when tracing is enabled."""
        return trace_path_for(self.out_path)

    # --- public API -----------------------------------------------------------

    def run(self) -> CampaignStats:
        """Execute all pending specs; returns the run's statistics.

        Raises :class:`CampaignAborted` when the circuit breaker opens;
        artifacts completed before the abort remain on disk and a rerun
        resumes from them.
        """
        start = self.clock.now()
        cfg = self.config
        stats = CampaignStats(total_specs=len(self.specs),
                              workers=max(1, cfg.workers))
        writer = ArtifactWriter(self.out_path, name=self.name,
                                root_seed=self._root_seed,
                                resume=cfg.resume)
        self._quarantine = (QuarantineWriter(self.out_path,
                                             name=self.name,
                                             resume=cfg.resume)
                            if cfg.quarantine else None)
        self._traces = {}
        try:
            done_keys = writer.completed_keys()
            pending = [s for s in self.specs
                       if s.task_key() not in done_keys]
            if len(self.specs) > len(pending):
                stats.note_resumed(len(self.specs) - len(pending))
                self.progress("resumed", f"{stats.resumed} tasks", stats)
            pending = self._expand_slices(pending)
            if cfg.precompile and pending:
                # Before the backend exists: a fork-started pool spawned
                # after this point inherits the compiled worlds.
                from repro.compile import precompile_specs
                precompile_specs(pending)
            backend = create_backend(cfg.backend, cfg.workers,
                                     cfg.chunk_size)
            global_registry().inc(f"backend.selected.{backend.name}")
            self._run_backend(pending, writer, stats, backend)
            writer.finalize()
            if self._quarantine is not None:
                self._quarantine.finalize(writer.completed_keys())
            if cfg.trace:
                write_trace(self.trace_path, self._traces,
                            name=self.name)
        finally:
            writer.close()
            stats.set_wall_seconds(self.clock.now() - start)
            stats.check_accounting()
        return stats

    # --- time-sliced execution ------------------------------------------------

    def _expand_slices(self, pending: Sequence[ExperimentSpec]
                       ) -> List[ExperimentSpec]:
        """Replace sliceable ``scenario`` specs with their first slice.

        A spec is sliceable when ``slice_horizon_s`` is configured and
        its horizon spans more than one slice. Later slices are enqueued
        by :meth:`_finish_result` as each checkpoint lands. Crash
        resume: if a valid checkpoint chain for the same slicing plan
        already sits in the snapshot store, the expansion starts at the
        slice *after* the newest checkpoint instead of at 0.
        """
        import math

        cfg = self.config
        if cfg.slice_horizon_s is None:
            return list(pending)
        from repro.snapshot.store import SnapshotStore, snapshot_dir_for

        store = SnapshotStore(snapshot_dir_for(self.out_path))
        expanded: List[ExperimentSpec] = []
        for spec in pending:
            horizon = float(spec.params_dict.get("horizon_s", 900.0)) \
                if spec.kind == "scenario" else 0.0
            num_slices = (math.ceil(horizon / cfg.slice_horizon_s)
                          if horizon > 0 else 0)
            if spec.kind != "scenario" or num_slices <= 1:
                expanded.append(spec)
                continue
            start = self._resume_slice_index(store, spec, num_slices)
            slice_spec = self._slice_spec(spec, start, num_slices)
            self._slice_origins[slice_spec.task_key()] = {
                "spec": spec, "num_slices": num_slices}
            expanded.append(slice_spec)
        return expanded

    def _slice_spec(self, original: ExperimentSpec, index: int,
                    num_slices: int) -> ExperimentSpec:
        from repro.snapshot.store import snapshot_dir_for

        params = dict(original.params_dict)
        params.update(
            slice_index=index, num_slices=num_slices,
            slice_horizon_s=float(self.config.slice_horizon_s),
            store=str(snapshot_dir_for(self.out_path)),
            original_key=original.task_key())
        return ExperimentSpec.make("scenario_slice", original.preset,
                                   original.seed, **params)

    def _resume_slice_index(self, store, original: ExperimentSpec,
                            num_slices: int) -> int:
        """First slice still to run, given checkpoints already on disk.

        Only checkpoints that load cleanly *and* belong to the same
        slicing plan count; anything corrupt, foreign or left over from
        a different ``--slice-horizon`` is ignored (the chain restarts
        at 0 rather than restoring the wrong world)."""
        from repro.campaign.tasks import SLICE_CHECKPOINT_KIND

        horizon = float(original.params_dict.get("horizon_s", 900.0))
        key = original.task_key()
        for index in range(num_slices - 2, -1, -1):
            path = store.path_for(key, index)
            if not path.exists():
                continue
            try:
                checkpoint = store.load(key, index)
            except (ValueError, OSError):
                continue
            chain = checkpoint.payload.get("chain", {})
            if (checkpoint.kind == SLICE_CHECKPOINT_KIND
                    and chain.get("slice_horizon_s")
                    == float(self.config.slice_horizon_s)
                    and chain.get("num_slices") == num_slices
                    and chain.get("horizon_s") == horizon):
                return index + 1
        return 0

    def _finish_result(self, result: Dict[str, object], queue,
                       writer: ArtifactWriter,
                       stats: CampaignStats) -> None:
        """Record a successful payload, chaining slice continuations.

        Intermediate slices book their wall-clock into the accounting
        (``add_task_seconds``) but do not complete anything; the final
        slice is rewritten to the original task's identity before it is
        recorded, so the artifact carries no trace of the slicing."""
        origin = self._slice_origins.pop(result["task_key"], None)
        if origin is None:
            self._record_success(result, writer, stats)
            return
        control = result.get("control") or {}
        original: ExperimentSpec = origin["spec"]
        if control.get("slice_paused"):
            stats.add_task_seconds(float(result.get("elapsed_s", 0.0)))
            next_index = int(control["slice_index"]) + 1
            next_spec = self._slice_spec(original, next_index,
                                         origin["num_slices"])
            self._slice_origins[next_spec.task_key()] = origin
            queue.appendleft((next_spec, 0))
            self.progress(
                "slice",
                f"{original.task_key()} {next_index}/"
                f"{origin['num_slices']}", stats)
            return
        result = dict(result)
        result.pop("control", None)
        result["task_key"] = original.task_key()
        result["spec"] = original.to_dict()
        result["task_seed"] = original.task_seed()
        self._record_success(result, writer, stats)

    # --- shared bookkeeping ---------------------------------------------------

    def _record_success(self, payload: Dict[str, object],
                        writer: ArtifactWriter,
                        stats: CampaignStats) -> None:
        stats.add_task_seconds(float(payload.pop("elapsed_s", 0.0)))
        trace_events = payload.pop("trace", None)
        artifact = TaskArtifact(
            task_key=payload["task_key"], spec=payload["spec"],
            task_seed=payload["task_seed"],
            records=payload["records"], stats=payload["stats"])
        if trace_events is not None:
            self._traces[artifact.task_key] = trace_events
        writer.write(artifact)
        stats.note_completed()
        stats.merge_task_stats(artifact.stats)
        self.progress("done", artifact.task_key, stats)

    def _record_permanent_failure(self, spec: ExperimentSpec,
                                  attempts: int, error: str,
                                  stats: CampaignStats) -> None:
        failure = TaskFailure(task_key=spec.task_key(),
                              attempts=attempts, error=error)
        if self._quarantine is not None:
            stats.note_quarantined()
            stats.quarantine.append(failure)
            self._quarantine.add(QuarantineEntry(
                task_key=failure.task_key, spec=spec.to_dict(),
                attempts=attempts, error=error))
            self.progress("quarantine", failure.task_key, stats)
            return
        stats.note_failed()
        stats.failures.append(failure)
        self.progress("fail", spec.task_key(), stats)
        if stats.failed > self.config.max_failures:
            raise CampaignAborted(
                f"{stats.failed} tasks failed permanently "
                f"(max_failures={self.config.max_failures}); "
                f"last: {spec.task_key()}: {error}")

    def _backoff_s(self, attempt: int) -> float:
        return min(self.config.backoff_cap_s,
                   self.config.backoff_base_s * (2.0 ** attempt))

    # --- the policy loop (any backend) ----------------------------------------

    def _run_backend(self, pending: Sequence[ExperimentSpec],
                     writer: ArtifactWriter, stats: CampaignStats,
                     backend) -> None:
        """Drive ``backend`` over ``pending``, applying all policy.

        One loop serves every backend: the inline backend is a
        capacity-1 executor whose futures complete at submit time, the
        pools differ only in capacity and chunk size. Batches are the
        unit of flight; specs remain the unit of retry, timeout
        accounting and artifact ordering.
        """
        cfg = self.config
        reg = global_registry()
        queue = deque((spec, 0) for spec in pending)
        #: (ready_time, tiebreak, spec, attempt) — retries waiting out
        #: their backoff.
        retry_heap: List[Tuple[float, int, ExperimentSpec, int]] = []
        tiebreak = itertools.count()
        #: future -> ([(spec, attempt), ...], submitted_at).
        in_flight: Dict[object, Tuple[List[Tuple[ExperimentSpec, int]],
                                      float]] = {}
        abandoned = 0
        try:
            while queue or retry_heap or in_flight:
                now = self.clock.now()
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, spec, attempt = heapq.heappop(retry_heap)
                    queue.appendleft((spec, attempt))
                # Keep at most ``capacity`` batches in flight so a
                # submitted batch starts ~immediately and its timeout
                # clock measures compute, not queueing.
                while queue and len(in_flight) < backend.capacity:
                    batch = [queue.popleft()
                             for _ in range(min(backend.chunk_size,
                                                len(queue)))]
                    future = backend.submit(
                        [(spec.to_dict(), attempt)
                         for spec, attempt in batch], cfg.trace)
                    in_flight[future] = (batch, now)
                    reg.inc("backend.batches")
                    reg.inc("backend.tasks", len(batch))
                wait_s = self._wait_budget(retry_heap, in_flight, now)
                if not in_flight:
                    self.clock.sleep(wait_s)
                    continue
                done, _ = wait(set(in_flight), timeout=wait_s,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    batch, _ = in_flight.pop(future)
                    error = future.exception()
                    if error is not None:
                        # Infrastructure failure (broken pool, unpickle-
                        # able payload): every member fails this attempt.
                        reg.inc("backend.infra_failures")
                        for spec, attempt in batch:
                            self._handle_failure(spec, attempt,
                                                 repr(error), retry_heap,
                                                 tiebreak, stats)
                        continue
                    for (spec, attempt), result in zip(batch,
                                                       future.result()):
                        task_error = result.get("error")
                        if task_error is not None:
                            self._handle_failure(spec, attempt,
                                                 task_error, retry_heap,
                                                 tiebreak, stats)
                        else:
                            self._finish_result(result, queue, writer,
                                                stats)
                abandoned += self._expire_timeouts(
                    in_flight, retry_heap, tiebreak, stats)
        except BaseException:
            backend.shutdown(wait=False, cancel_futures=True)
            raise
        # Timed-out attempts may still be running in the pool; don't
        # block campaign completion on them (the interpreter reaps the
        # stragglers at exit).
        backend.shutdown(wait=(abandoned == 0),
                         cancel_futures=(abandoned > 0))

    def _handle_failure(self, spec: ExperimentSpec, attempt: int,
                        error: str, retry_heap, tiebreak,
                        stats: CampaignStats) -> None:
        if attempt < self.config.retries:
            stats.note_retry()
            self.progress("retry", spec.task_key(), stats)
            # Same clock as the pool loop's ``now`` reads: the deadline
            # and its comparison share one epoch by construction.
            ready = self.clock.now() + self._backoff_s(attempt)
            heapq.heappush(retry_heap,
                           (ready, next(tiebreak), spec, attempt + 1))
        else:
            self._record_permanent_failure(spec, attempt + 1, error,
                                           stats)

    def _expire_timeouts(self, in_flight, retry_heap, tiebreak,
                         stats: CampaignStats) -> int:
        """Abandon in-flight batches past the attempt budget.

        The timeout is per *batch* submission (a batch is one attempt's
        worth of pool occupancy); every member of an expired batch is
        counted and retried individually.
        """
        if self.config.timeout_s is None:
            return 0
        now = self.clock.now()
        expired = [f for f, (_, submitted) in in_flight.items()
                   if now - submitted > self.config.timeout_s]
        for future in expired:
            batch, _ = in_flight.pop(future)
            future.cancel()  # a no-op if already running — we abandon it
            for spec, attempt in batch:
                stats.note_timeout()
                self.progress("timeout", spec.task_key(), stats)
                self._handle_failure(
                    spec, attempt,
                    f"TimeoutError(attempt exceeded "
                    f"{self.config.timeout_s:g}s)", retry_heap, tiebreak,
                    stats)
        return len(expired)

    def _wait_budget(self, retry_heap, in_flight, now: float) -> float:
        """How long the completion wait may block before bookkeeping."""
        budget = 0.25
        if retry_heap:
            budget = min(budget, max(0.0, retry_heap[0][0] - now))
        if self.config.timeout_s is not None and in_flight:
            next_deadline = min(
                submitted + self.config.timeout_s
                for _, submitted in in_flight.values())
            budget = min(budget, max(0.0, next_deadline - now))
        return max(budget, 0.01)


# --- convenience front doors --------------------------------------------------


def run_campaign(specs: Sequence[ExperimentSpec],
                 out_path: Union[str, Path], name: str = "campaign",
                 workers: int = 1, progress: Optional[ProgressFn] = None,
                 clock: Optional[Clock] = None,
                 **config_kwargs) -> CampaignStats:
    """One-call engine: build the config, run, return stats."""
    config = EngineConfig(workers=workers, **config_kwargs)
    return CampaignEngine(specs, out_path, name=name, config=config,
                          progress=progress, clock=clock).run()


def survey_campaign(preset: str, seeds: Iterable[int],
                    out_path: Union[str, Path],
                    pairs: Optional[Sequence[Tuple[int, int]]] = None,
                    workers: int = 1, day: int = 2, hour: float = 14.0,
                    duration_s: float = 30.0, interval_s: float = 1.0,
                    progress: Optional[ProgressFn] = None,
                    **config_kwargs) -> CampaignStats:
    """Fan the §4.1 dual-medium survey out across worker processes.

    ``pairs=None`` surveys every directed same-board pair of the preset.
    """
    seeds = list(seeds)
    if pairs is None:
        # Pair enumeration is read-only: use the compiled template
        # directly (no fork) — the same world the tasks will check out.
        from repro.compile import compiled_testbed
        world = compiled_testbed(preset,
                                 seed=seeds[0] if seeds else 7).template
        pairs = world.same_board_pairs()
    specs = survey_specs(preset, seeds, pairs, day=day, hour=hour,
                         duration_s=duration_s, interval_s=interval_s)
    return run_campaign(specs, out_path, name=f"survey-{preset}",
                        workers=workers, progress=progress,
                        **config_kwargs)


def scenario_campaign(preset: str, seeds: Iterable[int],
                      scenarios: Iterable[str],
                      out_path: Union[str, Path], workers: int = 1,
                      day: int = 2, hour: float = 14.0,
                      horizon_s: float = 900.0,
                      progress: Optional[ProgressFn] = None,
                      **config_kwargs) -> CampaignStats:
    """Fan named library scenarios out across worker processes."""
    specs = scenario_specs(preset, list(seeds), list(scenarios), day=day,
                           hour=hour, horizon_s=horizon_s)
    return run_campaign(specs, out_path, name=f"scenario-{preset}",
                        workers=workers, progress=progress,
                        **config_kwargs)
