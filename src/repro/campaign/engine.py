"""The parallel campaign engine.

Fans a list of :class:`ExperimentSpec` out across a process pool and
collects artifacts, with:

* **deterministic seeding** — every task's world is a pure function of its
  spec (`seed` + :meth:`ExperimentSpec.task_seed`), so artifacts are
  bit-identical at any worker count (``workers=0`` runs inline in this
  process, any other count uses a pool);
* **per-task timeout and retry** — failed or timed-out attempts are
  resubmitted with exponential backoff, up to ``retries`` times;
* **a circuit breaker** — more than ``max_failures`` permanently failed
  tasks abort the campaign (completed artifacts survive for resume);
* **resume** — specs whose task keys already sit in the artifact file are
  skipped, so an interrupted campaign continues where it stopped.

**Clock discipline.** Every engine-side epoch — the run's wall-clock
span, retry-heap deadlines, timeout expiry, wait budgets — is read from
ONE injected :class:`repro.obs.Clock`, so they are mutually comparable
and a :class:`repro.obs.FakeClock` makes the retry/backoff/breaker logic
deterministically testable. Workers time their tasks on their own clock
and report only the *duration* (``elapsed_s``); durations may cross the
process boundary, epochs never do.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.artifacts import (
    ArtifactWriter,
    QuarantineEntry,
    QuarantineWriter,
    TaskArtifact,
    quarantine_path_for,
)
from repro.campaign.spec import (
    ExperimentSpec,
    check_specs,
    scenario_specs,
    survey_specs,
)
from repro.campaign.stats import CampaignStats, TaskFailure
from repro.campaign.tasks import execute_spec
from repro.obs.clock import Clock, SystemClock
from repro.obs.trace import task_trace, trace_path_for, write_trace

ProgressFn = Callable[[str, str, CampaignStats], None]

#: Worker-process clock: used only for the in-worker task *duration*.
_WORKER_CLOCK = SystemClock()


class CampaignAborted(RuntimeError):
    """The circuit breaker opened: too many tasks failed permanently."""


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of one campaign run."""

    #: 0 = inline (no pool, timeouts not enforced); N >= 1 = process pool.
    workers: int = 1
    #: Wall-clock budget per attempt; ``None`` disables the check.
    timeout_s: Optional[float] = None
    #: Re-submissions allowed per task after its first attempt.
    retries: int = 2
    #: Backoff before retry k is ``min(cap, base * 2**k)`` seconds.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Permanently failed tasks tolerated before aborting the campaign.
    max_failures: int = 0
    #: Quarantine poison tasks: a spec that exhausts its retries lands in
    #: a ``<name>.quarantine.jsonl`` sidecar (canonical, sorted, byte-
    #: identical at any worker count) instead of counting against
    #: ``max_failures`` — one deterministic bad task no longer aborts the
    #: unrelated 99% of a campaign.
    quarantine: bool = False
    resume: bool = True
    #: Collect each task's sim-time trace events and write them to a
    #: ``<out>.trace.jsonl`` sidecar at finalize. Never touches the
    #: result artifact: its bytes are identical with tracing on or off,
    #: and the sidecar itself is canonical at any worker count.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive")


def _run_task_payload(spec_dict: Dict[str, object], attempt: int,
                      trace: bool = False) -> Dict[str, object]:
    """Worker-side entry point (module-level: it must pickle by name).

    ``elapsed_s`` is a worker-local *duration* (safe to aggregate in the
    parent); ``trace`` installs a tracer for the task's executors to
    publish sim-time events into, returned out-of-band from the records.
    """
    t0 = _WORKER_CLOCK.now()
    spec = ExperimentSpec.from_dict(spec_dict)
    with task_trace(enabled=trace) as tracer:
        out = execute_spec(spec, attempt)
    return {"task_key": spec.task_key(), "spec": spec.to_dict(),
            "task_seed": spec.task_seed(), "records": out.records,
            "stats": out.stats,
            "trace": tracer.to_dicts() if trace else None,
            "elapsed_s": _WORKER_CLOCK.now() - t0}


class CampaignEngine:
    """Run a spec list to a finalized artifact file."""

    def __init__(self, specs: Sequence[ExperimentSpec],
                 out_path: Union[str, Path], name: str = "campaign",
                 config: EngineConfig = EngineConfig(),
                 progress: Optional[ProgressFn] = None,
                 clock: Optional[Clock] = None):
        check_specs(specs)
        self.specs = list(specs)
        self.out_path = Path(out_path)
        self.name = name
        self.config = config
        self.progress = progress or (lambda event, detail, stats: None)
        #: The single source of engine-side epochs (see module docstring);
        #: tests inject a FakeClock here to drive retries and timeouts.
        self.clock: Clock = clock if clock is not None else SystemClock()
        seeds = {s.seed for s in self.specs}
        self._root_seed = seeds.pop() if len(seeds) == 1 else None
        self._quarantine: Optional[QuarantineWriter] = None
        #: task_key -> sim-time trace events, gathered when tracing.
        self._traces: Dict[str, List[Dict[str, object]]] = {}

    @property
    def quarantine_path(self) -> Path:
        """Where poison tasks land when quarantine is enabled."""
        return quarantine_path_for(self.out_path)

    @property
    def trace_path(self) -> Path:
        """Where the sim-time event trace lands when tracing is enabled."""
        return trace_path_for(self.out_path)

    # --- public API -----------------------------------------------------------

    def run(self) -> CampaignStats:
        """Execute all pending specs; returns the run's statistics.

        Raises :class:`CampaignAborted` when the circuit breaker opens;
        artifacts completed before the abort remain on disk and a rerun
        resumes from them.
        """
        start = self.clock.now()
        cfg = self.config
        stats = CampaignStats(total_specs=len(self.specs),
                              workers=max(1, cfg.workers))
        writer = ArtifactWriter(self.out_path, name=self.name,
                                root_seed=self._root_seed,
                                resume=cfg.resume)
        self._quarantine = (QuarantineWriter(self.out_path,
                                             name=self.name,
                                             resume=cfg.resume)
                            if cfg.quarantine else None)
        self._traces = {}
        try:
            done_keys = writer.completed_keys()
            pending = [s for s in self.specs
                       if s.task_key() not in done_keys]
            if len(self.specs) > len(pending):
                stats.note_resumed(len(self.specs) - len(pending))
                self.progress("resumed", f"{stats.resumed} tasks", stats)
            if cfg.workers == 0:
                self._run_inline(pending, writer, stats)
            else:
                self._run_pool(pending, writer, stats)
            writer.finalize()
            if self._quarantine is not None:
                self._quarantine.finalize(writer.completed_keys())
            if cfg.trace:
                write_trace(self.trace_path, self._traces,
                            name=self.name)
        finally:
            writer.close()
            stats.set_wall_seconds(self.clock.now() - start)
            stats.check_accounting()
        return stats

    # --- shared bookkeeping ---------------------------------------------------

    def _record_success(self, payload: Dict[str, object],
                        writer: ArtifactWriter,
                        stats: CampaignStats) -> None:
        stats.add_task_seconds(float(payload.pop("elapsed_s", 0.0)))
        trace_events = payload.pop("trace", None)
        artifact = TaskArtifact(
            task_key=payload["task_key"], spec=payload["spec"],
            task_seed=payload["task_seed"],
            records=payload["records"], stats=payload["stats"])
        if trace_events is not None:
            self._traces[artifact.task_key] = trace_events
        writer.write(artifact)
        stats.note_completed()
        stats.merge_task_stats(artifact.stats)
        self.progress("done", artifact.task_key, stats)

    def _record_permanent_failure(self, spec: ExperimentSpec,
                                  attempts: int, error: str,
                                  stats: CampaignStats) -> None:
        failure = TaskFailure(task_key=spec.task_key(),
                              attempts=attempts, error=error)
        if self._quarantine is not None:
            stats.note_quarantined()
            stats.quarantine.append(failure)
            self._quarantine.add(QuarantineEntry(
                task_key=failure.task_key, spec=spec.to_dict(),
                attempts=attempts, error=error))
            self.progress("quarantine", failure.task_key, stats)
            return
        stats.note_failed()
        stats.failures.append(failure)
        self.progress("fail", spec.task_key(), stats)
        if stats.failed > self.config.max_failures:
            raise CampaignAborted(
                f"{stats.failed} tasks failed permanently "
                f"(max_failures={self.config.max_failures}); "
                f"last: {spec.task_key()}: {error}")

    def _backoff_s(self, attempt: int) -> float:
        return min(self.config.backoff_cap_s,
                   self.config.backoff_base_s * (2.0 ** attempt))

    # --- inline execution (workers=0) ----------------------------------------

    def _run_inline(self, pending: Sequence[ExperimentSpec],
                    writer: ArtifactWriter, stats: CampaignStats) -> None:
        for spec in pending:
            attempt = 0
            while True:
                try:
                    payload = _run_task_payload(spec.to_dict(), attempt,
                                                self.config.trace)
                except Exception as exc:  # noqa: BLE001 — task sandbox
                    if attempt < self.config.retries:
                        stats.note_retry()
                        self.progress("retry", spec.task_key(), stats)
                        self.clock.sleep(self._backoff_s(attempt))
                        attempt += 1
                        continue
                    self._record_permanent_failure(
                        spec, attempt + 1, repr(exc), stats)
                    break
                self._record_success(payload, writer, stats)
                break

    # --- pooled execution -----------------------------------------------------

    def _run_pool(self, pending: Sequence[ExperimentSpec],
                  writer: ArtifactWriter, stats: CampaignStats) -> None:
        cfg = self.config
        queue = deque((spec, 0) for spec in pending)
        #: (ready_time, tiebreak, spec, attempt) — retries waiting out
        #: their backoff.
        retry_heap: List[Tuple[float, int, ExperimentSpec, int]] = []
        tiebreak = itertools.count()
        in_flight: Dict[object, Tuple[ExperimentSpec, int, float]] = {}
        abandoned = 0
        pool = ProcessPoolExecutor(max_workers=cfg.workers)
        try:
            while queue or retry_heap or in_flight:
                now = self.clock.now()
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, spec, attempt = heapq.heappop(retry_heap)
                    queue.appendleft((spec, attempt))
                # Keep at most ``workers`` tasks in flight so a
                # submitted task starts ~immediately and its timeout
                # clock measures compute, not queueing.
                while queue and len(in_flight) < cfg.workers:
                    spec, attempt = queue.popleft()
                    future = pool.submit(_run_task_payload,
                                         spec.to_dict(), attempt,
                                         cfg.trace)
                    in_flight[future] = (spec, attempt, now)
                wait_s = self._wait_budget(retry_heap, in_flight, now)
                if not in_flight:
                    self.clock.sleep(wait_s)
                    continue
                done, _ = wait(set(in_flight), timeout=wait_s,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    spec, attempt, _ = in_flight.pop(future)
                    error = future.exception()
                    if error is None:
                        self._record_success(future.result(),
                                             writer, stats)
                    else:
                        self._handle_failure(spec, attempt,
                                             repr(error), retry_heap,
                                             tiebreak, stats)
                abandoned += self._expire_timeouts(
                    in_flight, retry_heap, tiebreak, stats)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        # Timed-out attempts may still be running in the pool; don't
        # block campaign completion on them (the interpreter reaps the
        # stragglers at exit).
        pool.shutdown(wait=(abandoned == 0),
                      cancel_futures=(abandoned > 0))

    def _handle_failure(self, spec: ExperimentSpec, attempt: int,
                        error: str, retry_heap, tiebreak,
                        stats: CampaignStats) -> None:
        if attempt < self.config.retries:
            stats.note_retry()
            self.progress("retry", spec.task_key(), stats)
            # Same clock as the pool loop's ``now`` reads: the deadline
            # and its comparison share one epoch by construction.
            ready = self.clock.now() + self._backoff_s(attempt)
            heapq.heappush(retry_heap,
                           (ready, next(tiebreak), spec, attempt + 1))
        else:
            self._record_permanent_failure(spec, attempt + 1, error,
                                           stats)

    def _expire_timeouts(self, in_flight, retry_heap, tiebreak,
                         stats: CampaignStats) -> int:
        if self.config.timeout_s is None:
            return 0
        now = self.clock.now()
        expired = [f for f, (_, _, submitted) in in_flight.items()
                   if now - submitted > self.config.timeout_s]
        for future in expired:
            spec, attempt, _ = in_flight.pop(future)
            future.cancel()  # a no-op if already running — we abandon it
            stats.note_timeout()
            self.progress("timeout", spec.task_key(), stats)
            self._handle_failure(
                spec, attempt,
                f"TimeoutError(attempt exceeded "
                f"{self.config.timeout_s:g}s)", retry_heap, tiebreak,
                stats)
        return len(expired)

    def _wait_budget(self, retry_heap, in_flight, now: float) -> float:
        """How long the completion wait may block before bookkeeping."""
        budget = 0.25
        if retry_heap:
            budget = min(budget, max(0.0, retry_heap[0][0] - now))
        if self.config.timeout_s is not None and in_flight:
            next_deadline = min(
                submitted + self.config.timeout_s
                for _, _, submitted in in_flight.values())
            budget = min(budget, max(0.0, next_deadline - now))
        return max(budget, 0.01)


# --- convenience front doors --------------------------------------------------


def run_campaign(specs: Sequence[ExperimentSpec],
                 out_path: Union[str, Path], name: str = "campaign",
                 workers: int = 1, progress: Optional[ProgressFn] = None,
                 clock: Optional[Clock] = None,
                 **config_kwargs) -> CampaignStats:
    """One-call engine: build the config, run, return stats."""
    config = EngineConfig(workers=workers, **config_kwargs)
    return CampaignEngine(specs, out_path, name=name, config=config,
                          progress=progress, clock=clock).run()


def survey_campaign(preset: str, seeds: Iterable[int],
                    out_path: Union[str, Path],
                    pairs: Optional[Sequence[Tuple[int, int]]] = None,
                    workers: int = 1, day: int = 2, hour: float = 14.0,
                    duration_s: float = 30.0, interval_s: float = 1.0,
                    progress: Optional[ProgressFn] = None,
                    **config_kwargs) -> CampaignStats:
    """Fan the §4.1 dual-medium survey out across worker processes.

    ``pairs=None`` surveys every directed same-board pair of the preset.
    """
    seeds = list(seeds)
    if pairs is None:
        from repro.testbed.builder import build_preset_testbed
        world = build_preset_testbed(preset, seed=seeds[0] if seeds else 7)
        pairs = world.same_board_pairs()
    specs = survey_specs(preset, seeds, pairs, day=day, hour=hour,
                         duration_s=duration_s, interval_s=interval_s)
    return run_campaign(specs, out_path, name=f"survey-{preset}",
                        workers=workers, progress=progress,
                        **config_kwargs)


def scenario_campaign(preset: str, seeds: Iterable[int],
                      scenarios: Iterable[str],
                      out_path: Union[str, Path], workers: int = 1,
                      day: int = 2, hour: float = 14.0,
                      horizon_s: float = 900.0,
                      progress: Optional[ProgressFn] = None,
                      **config_kwargs) -> CampaignStats:
    """Fan named library scenarios out across worker processes."""
    specs = scenario_specs(preset, list(seeds), list(scenarios), day=day,
                           hour=hour, horizon_s=horizon_s)
    return run_campaign(specs, out_path, name=f"scenario-{preset}",
                        workers=workers, progress=progress,
                        **config_kwargs)
