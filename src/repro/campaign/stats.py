"""Structured progress and outcome statistics for a campaign run.

Everything here is *observability*, not results: wall-clock timings and
worker utilisation never enter the artifact file (they would break the
bit-identical-across-worker-counts contract); they are reported to the
operator at the end of the run.

:class:`CampaignStats` is a thin view over a
:class:`repro.obs.metrics.MetricsRegistry`: the engine publishes
``campaign.*`` counters, scenario tasks ship their ``runner.*`` counters
across the process boundary as plain dicts, and
:meth:`CampaignStats.merge_task_stats` folds them in **exactly** —
scalars sum, ``max_*`` figures take the max, and per-domain utilisation
merges quanta-weighted (the raw airtime and quanta sums add; the ratio is
derived at read time). Every ``*_rate`` field is a derived property, so a
merged aggregate can never carry a stale stored ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

#: Tolerance of the worker-accounting invariant: busy time may exceed
#: ``workers * wall_seconds`` only by float noise, anything more is an
#: accounting bug worth counting, not clamping away.
ACCOUNTING_EPSILON = 1e-9


@dataclass
class TaskFailure:
    """One task that exhausted its retries (or tripped the breaker)."""

    task_key: str
    attempts: int
    error: str


#: RunnerStats keys that are nested per-domain sums, merged elementwise.
_WEIGHTED_KEYS = ("domain_airtime", "domain_quanta")


class CampaignStats:
    """Aggregate counters for one :class:`CampaignEngine.run` call."""

    def __init__(self, total_specs: int = 0, workers: int = 1,
                 registry: Optional[MetricsRegistry] = None):
        self.total_specs = total_specs
        self.workers = workers
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.failures: List[TaskFailure] = []
        #: Failures routed to quarantine (not in :attr:`failures`).
        self.quarantine: List[TaskFailure] = []

    # --- engine-side recording -----------------------------------------------

    def note_resumed(self, count: int = 1) -> None:
        self.registry.inc("campaign.resumed", count)

    def note_completed(self) -> None:
        self.registry.inc("campaign.completed")

    def note_failed(self) -> None:
        self.registry.inc("campaign.failed")

    def note_quarantined(self) -> None:
        self.registry.inc("campaign.quarantined")

    def note_retry(self) -> None:
        self.registry.inc("campaign.retries")

    def note_timeout(self) -> None:
        self.registry.inc("campaign.timeouts")

    def add_task_seconds(self, seconds: float) -> None:
        """Accumulate one task's in-worker busy duration (a *duration*,
        not an epoch — safe to sum across clock domains)."""
        self.registry.inc("campaign.task_seconds", float(seconds))

    def set_wall_seconds(self, seconds: float) -> None:
        self.registry.set_counter("campaign.wall_seconds", float(seconds))

    # --- counter views --------------------------------------------------------

    def _count(self, name: str) -> int:
        return int(self.registry.counter(f"campaign.{name}"))

    @property
    def resumed(self) -> int:
        return self._count("resumed")

    @property
    def completed(self) -> int:
        return self._count("completed")

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def quarantined(self) -> int:
        return self._count("quarantined")

    @property
    def retries(self) -> int:
        return self._count("retries")

    @property
    def timeouts(self) -> int:
        return self._count("timeouts")

    @property
    def task_seconds(self) -> float:
        return float(self.registry.counter("campaign.task_seconds"))

    @property
    def wall_seconds(self) -> float:
        return float(self.registry.counter("campaign.wall_seconds"))

    @property
    def invariant_violations(self) -> int:
        """Accounting invariants broken so far (see
        :meth:`check_accounting`)."""
        return self._count("invariant_violations")

    # --- task-stats merge -----------------------------------------------------

    def merge_task_stats(self, stats: Optional[Mapping[str, object]]
                         ) -> None:
        """Fold one task's deterministic stats dict into the aggregate.

        Scenario tasks report ``RunnerStats.to_dict()``. Scalar counters
        sum and ``max_*`` figures take the max, as before; nested
        per-domain mappings — which the old implementation silently
        dropped, so ``domain_utilisation`` never aggregated — now merge
        **quanta-weighted**: the raw ``domain_airtime`` / ``domain_quanta``
        sums add per domain and the utilisation ratio is derived from
        them at read time. Artifacts that predate the raw sums still
        merge (their ``domain_utilisation`` is re-weighted by the task's
        ``quanta``). ``*_rate`` fields are always skipped and recomputed
        from the summed counters.
        """
        if not stats:
            return
        reg = self.registry
        for key, value in stats.items():
            if key in _WEIGHTED_KEYS and isinstance(value, Mapping):
                for domain, amount in value.items():
                    reg.inc(f"runner.{key}.{domain}", amount)
                continue
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            if key.endswith("_rate"):
                continue  # recompute ratios from the summed counters
            if key.startswith("max_"):
                reg.watermark(f"runner.{key}", float(value))
            else:
                reg.inc(f"runner.{key}", value)
        if ("domain_utilisation" in stats
                and "domain_airtime" not in stats
                and isinstance(stats["domain_utilisation"], Mapping)):
            # Legacy stats dict: reconstruct the weighted sums with the
            # task's quanta as each domain's weight (the pre-raw-sums
            # format carried no better information).
            weight = float(stats.get("quanta", 1) or 1)
            for domain, util in stats["domain_utilisation"].items():
                reg.inc(f"runner.domain_airtime.{domain}",
                        float(util) * weight)
                reg.inc(f"runner.domain_quanta.{domain}", weight)

    # --- derived --------------------------------------------------------------

    @property
    def done(self) -> int:
        """Tasks accounted for so far (completed, resumed, failed or
        quarantined)."""
        return (self.completed + self.resumed + self.failed
                + self.quarantined)

    def domain_utilisation(self) -> Dict[str, float]:
        """Quanta-weighted mean airtime fraction per contention domain,
        aggregated across every scenario task that reported stats."""
        airtime = self.registry.counters_with_prefix(
            "runner.domain_airtime.")
        quanta = self.registry.counters_with_prefix(
            "runner.domain_quanta.")
        return {d: airtime[d] / quanta[d]
                for d in sorted(airtime) if quanta.get(d)}

    @property
    def runner(self) -> Dict[str, object]:
        """Aggregated scenario-runner stats (a derived view, not a store).

        Scalars are the exact sums/maxima of every merged task's
        counters; ``cache_hit_rate`` and ``domain_utilisation`` are
        recomputed from them on each read.
        """
        out: Dict[str, object] = {}
        for key, value in self.registry.counters_with_prefix(
                "runner.").items():
            if key.split(".")[0] in _WEIGHTED_KEYS:
                continue
            out[key] = value
        max_airtime = self.registry.gauge("runner.max_domain_airtime",
                                          None)
        if max_airtime is not None:
            out["max_domain_airtime"] = max_airtime
        hits, misses = out.get("cache_hits"), out.get("cache_misses")
        if hits is not None and misses is not None and hits + misses > 0:
            out["cache_hit_rate"] = hits / (hits + misses)
        utilisation = self.domain_utilisation()
        if utilisation:
            out["domain_utilisation"] = utilisation
        return out

    def utilisation(self) -> float:
        """Mean busy fraction of the worker pool.

        Deliberately **unclamped**: a value above 1.0 means the busy-time
        accounting claims more compute than the pool had — an invariant
        violation the old ``min(1.0, ...)`` silently hid. See
        :meth:`check_accounting`.
        """
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return self.task_seconds / (self.wall_seconds * self.workers)

    def check_accounting(self) -> bool:
        """Verify busy time fits the pool; count a violation if not.

        Returns True when the invariant holds. Called by the engine after
        ``wall_seconds`` is final; callers folding stats by hand can call
        it whenever both figures are populated.
        """
        budget = self.wall_seconds * self.workers
        if self.task_seconds > budget * (1.0 + ACCOUNTING_EPSILON):
            self.registry.inc("campaign.invariant_violations")
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_specs": self.total_specs,
            "resumed": self.resumed,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "task_seconds": self.task_seconds,
            "worker_utilisation": self.utilisation(),
            "invariant_violations": self.invariant_violations,
            "failures": [
                {"task_key": f.task_key, "attempts": f.attempts,
                 "error": f.error} for f in self.failures],
            "quarantine": [
                {"task_key": f.task_key, "attempts": f.attempts,
                 "error": f.error} for f in self.quarantine],
            "runner": self.runner,
        }
