"""Structured progress and outcome statistics for a campaign run.

Everything here is *observability*, not results: wall-clock timings and
worker utilisation never enter the artifact file (they would break the
bit-identical-across-worker-counts contract); they are reported to the
operator at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TaskFailure:
    """One task that exhausted its retries (or tripped the breaker)."""

    task_key: str
    attempts: int
    error: str


@dataclass
class CampaignStats:
    """Aggregate counters for one :class:`CampaignEngine.run` call."""

    total_specs: int = 0
    #: Tasks skipped because a resumable artifact already had them.
    resumed: int = 0
    completed: int = 0
    failed: int = 0
    #: Permanently failing tasks parked in the quarantine sidecar instead
    #: of counting against the circuit breaker.
    quarantined: int = 0
    #: Re-submissions after a failed/timed-out attempt.
    retries: int = 0
    #: Attempts that timed out (each also counts as a failed attempt).
    timeouts: int = 0
    wall_seconds: float = 0.0
    #: Sum of in-worker task durations (busy time across all workers).
    task_seconds: float = 0.0
    workers: int = 1
    failures: List[TaskFailure] = field(default_factory=list)
    #: Failures routed to quarantine (not in :attr:`failures`).
    quarantine: List[TaskFailure] = field(default_factory=list)
    #: Aggregated :class:`repro.netsim.runner.RunnerStats` counters from
    #: every scenario task that reported them.
    runner: Dict[str, float] = field(default_factory=dict)

    # --- updates -------------------------------------------------------------

    def merge_task_stats(self, stats: Optional[Dict[str, object]]) -> None:
        """Fold one task's deterministic stats dict into the aggregate.

        Scenario tasks report ``RunnerStats.to_dict()``; the scalar
        counters sum, nested mappings are ignored (per-domain detail stays
        in the artifact lines).
        """
        if not stats:
            return
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            if key.endswith("_rate"):
                continue  # recompute ratios from the summed counters
            if key.startswith("max_"):
                self.runner[key] = max(self.runner.get(key, value), value)
            else:
                self.runner[key] = self.runner.get(key, 0) + value
        hits = self.runner.get("cache_hits")
        misses = self.runner.get("cache_misses")
        if hits is not None and misses is not None and hits + misses > 0:
            self.runner["cache_hit_rate"] = hits / (hits + misses)

    # --- derived -------------------------------------------------------------

    @property
    def done(self) -> int:
        """Tasks accounted for so far (completed, resumed, failed or
        quarantined)."""
        return (self.completed + self.resumed + self.failed
                + self.quarantined)

    def utilisation(self) -> float:
        """Mean busy fraction of the worker pool (0..1)."""
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.task_seconds
                   / (self.wall_seconds * self.workers))

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_specs": self.total_specs,
            "resumed": self.resumed,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "task_seconds": self.task_seconds,
            "worker_utilisation": self.utilisation(),
            "failures": [
                {"task_key": f.task_key, "attempts": f.attempts,
                 "error": f.error} for f in self.failures],
            "quarantine": [
                {"task_key": f.task_key, "attempts": f.attempts,
                 "error": f.error} for f in self.quarantine],
            "runner": dict(self.runner),
        }
