"""Task kinds: how one :class:`ExperimentSpec` becomes artifact records.

Executors run inside worker processes. They must be pure functions of the
spec (plus the attempt number, which only the failure-injection kind reads):
no globals, no wall clock, no OS randomness — that is what lets the engine
promise bit-identical artifacts at any worker count.

Custom kinds can be registered with :func:`register_task`; under the
(POSIX-default) ``fork`` start method test-registered kinds are visible in
workers, otherwise they must live in an importable module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.campaign.spec import ExperimentSpec
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams
from repro.testbed.builder import Testbed, build_preset_testbed


@dataclass
class TaskOutput:
    """What an executor hands back across the process boundary."""

    records: List[dict]
    stats: Dict[str, object] = field(default_factory=dict)


TaskFn = Callable[[ExperimentSpec, int], TaskOutput]

TASK_REGISTRY: Dict[str, TaskFn] = {}


def register_task(kind: str):
    """Decorator registering an executor for a spec ``kind``."""
    def wrap(fn: TaskFn) -> TaskFn:
        if kind in TASK_REGISTRY:
            raise ValueError(f"duplicate task kind {kind!r}")
        TASK_REGISTRY[kind] = fn
        return fn
    return wrap


#: Modules that register extra task kinds on import. Resolved lazily in
#: :func:`execute_spec` (importing them here would cycle: they import
#: ``register_task`` from this module), so worker processes find plugin
#: kinds under any pool start method.
PLUGIN_KIND_MODULES = ("repro.faults.tasks", "repro.verify.fuzzer")


def _load_plugin_kinds() -> None:
    import importlib

    for module in PLUGIN_KIND_MODULES:
        importlib.import_module(module)


def execute_spec(spec: ExperimentSpec, attempt: int = 0) -> TaskOutput:
    """Dispatch one spec to its registered executor."""
    if spec.kind not in TASK_REGISTRY:
        _load_plugin_kinds()
    try:
        fn = TASK_REGISTRY[spec.kind]
    except KeyError:
        known = ", ".join(sorted(TASK_REGISTRY))
        raise KeyError(
            f"unknown task kind {spec.kind!r} (known: {known})") from None
    return fn(spec, attempt)


def _start_time(params: Dict[str, object]) -> float:
    return MainsClock.at(day=int(params.get("day", 2)),
                         hour=float(params.get("hour", 14.0)))


# --- survey -------------------------------------------------------------------


def run_survey_inline(testbed: Testbed, t_start: float, duration: float,
                      report_interval: float,
                      pairs: Sequence[Tuple[int, int]]):
    """Serial survey over a prebuilt testbed (the engine's inline path).

    :func:`repro.testbed.experiments.survey_pairs` delegates here so the
    one-process survey and the parallel campaign share the measurement
    code; importing lazily avoids a cycle with ``testbed.experiments``.
    """
    from repro.testbed.experiments import measure_pair

    return [measure_pair(testbed, i, j, t_start, duration,
                         report_interval) for i, j in pairs]


@register_task("survey_pair")
def _survey_pair(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """§4.1 dual-medium measurement of one directed pair."""
    from repro.testbed.experiments import measure_pair

    from repro.obs.trace import current_tracer

    p = spec.params_dict
    testbed = build_preset_testbed(spec.preset, seed=spec.seed)
    t0 = _start_time(p)
    duration = float(p.get("duration_s", 30.0))
    row = measure_pair(testbed, int(p["src"]), int(p["dst"]), t0,
                       duration=duration,
                       report_interval=float(p.get("interval_s", 1.0)))
    tracer = current_tracer()
    if tracer.enabled:
        tracer.span("survey.measure_pair", t0, t0 + duration,
                    src=int(p["src"]), dst=int(p["dst"]))
    return TaskOutput(records=[row.to_dict()])


# --- scenario -----------------------------------------------------------------


@register_task("scenario")
def _scenario(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Run a named library scenario through the fluid runner.

    The runner publishes its sim-time events into the task's current
    tracer (:func:`repro.obs.current_tracer` — a no-op unless the engine
    enabled tracing), which never changes the returned records or stats.
    """
    from repro.netsim.runner import ScenarioRunner
    from repro.netsim.scenario import build_scenario
    from repro.obs.trace import current_tracer

    p = spec.params_dict
    testbed = build_preset_testbed(spec.preset, seed=spec.seed)
    scenario = build_scenario(str(p["scenario"]), _start_time(p))
    runner = ScenarioRunner(testbed, check_invariants=True,
                            tracer=current_tracer())
    results = runner.run(scenario,
                         horizon_s=float(p.get("horizon_s", 900.0)))
    records = [results[name].to_dict() for name in sorted(results)]
    return TaskOutput(records=records, stats=runner.stats.to_dict())


# --- BLE polling --------------------------------------------------------------


@register_task("ble_series")
def _ble_series(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """§6.2 MM polling of one link's average BLE."""
    from repro.testbed.experiments import poll_ble_series

    p = spec.params_dict
    testbed = build_preset_testbed(spec.preset, seed=spec.seed)
    series = poll_ble_series(testbed, int(p["src"]), int(p["dst"]),
                             _start_time(p),
                             duration=float(p.get("duration_s", 2.0)),
                             interval=float(p.get("interval_s", 0.05)))
    return TaskOutput(records=[{
        "src": int(p["src"]), "dst": int(p["dst"]),
        "times": [float(t) for t in series.times],
        "ble_bps": [float(v) for v in series.values]}])


# --- medium-agnostic link sampling --------------------------------------------


@register_task("link_series")
def _link_series(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Sample any registered medium's link through the ``repro.medium``
    contract — the campaign engine's view of ``Link.sample_series``.

    ``params``: ``src``, ``dst``, optional ``medium`` ("plc"/"wifi",
    default "plc"), ``duration_s``, ``interval_s``, ``measured``.
    """
    p = spec.params_dict
    testbed = build_preset_testbed(spec.preset, seed=spec.seed)
    medium = str(p.get("medium", "plc"))
    src, dst = int(p["src"]), int(p["dst"])
    link = testbed.link(medium, src, dst)
    if link is None:
        raise ValueError(
            f"no {medium} link between stations {src} and {dst}")
    t0 = _start_time(p)
    times = np.arange(t0, t0 + float(p.get("duration_s", 2.0)),
                      float(p.get("interval_s", 0.1)))
    series = link.sample_series(times,
                                measured=bool(p.get("measured", True)))
    return TaskOutput(records=[{
        "src": src, "dst": dst, "medium": series.medium,
        "times": [float(t) for t in series.times],
        "capacity_bps": [float(v) for v in series.capacity_bps],
        "throughput_bps": [float(v) for v in series.throughput_bps],
        "loss": [float(v) for v in series.loss]}])


# --- diagnostics --------------------------------------------------------------


@register_task("rng_probe")
def _rng_probe(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Draw from the task's derived streams — no testbed, near-zero cost.

    Exists for the property-test harness: it exposes exactly the seed
    derivation the heavyweight kinds rely on, so determinism across worker
    counts can be checked thousands of times per second.
    """
    p = spec.params_dict
    streams = RandomStreams(seed=spec.task_seed())
    draws = int(p.get("draws", 4))
    return TaskOutput(records=[{
        "task_seed": spec.task_seed(),
        "uniform": [float(x) for x in
                    streams.get("probe").uniform(size=draws)],
        "normal": [float(x) for x in
                   streams.get("noise").normal(size=draws)]}])


@register_task("sleepy")
def _sleepy(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Block for ``sleep_s`` seconds — exercises the timeout path.

    (Wall-clock sleep, so never use it in a determinism-sensitive
    campaign; it exists for engine tests and operational smoke checks.)
    """
    import time

    sleep_s = float(spec.params_dict.get("sleep_s", 1.0))
    time.sleep(sleep_s)
    return TaskOutput(records=[{"slept_s": sleep_s}])


@register_task("flaky")
def _flaky(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Deterministic failure injection for retry/circuit-breaker tests.

    Fails the first ``fail_attempts`` attempts, then succeeds — so with
    enough retries the final artifact is identical to a never-failing
    run's, which is precisely the retry contract worth testing.
    """
    fails = int(spec.params_dict.get("fail_attempts", 0))
    if attempt < fails:
        raise RuntimeError(
            f"injected failure {attempt + 1}/{fails} for "
            f"{spec.task_key()}")
    return TaskOutput(records=[{"survived_attempt": attempt,
                                "task_seed": spec.task_seed()}])
