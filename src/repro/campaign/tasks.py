"""Task kinds: how one :class:`ExperimentSpec` becomes artifact records.

Executors run inside worker processes. They must be pure functions of the
spec (plus the attempt number, which only the failure-injection kind reads):
no globals, no wall clock, no OS randomness — that is what lets the engine
promise bit-identical artifacts at any worker count.

Custom kinds can be registered with :func:`register_task`; under the
(POSIX-default) ``fork`` start method test-registered kinds are visible in
workers, otherwise they must live in an importable module.
"""

from __future__ import annotations

import difflib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.campaign.spec import ExperimentSpec
from repro.compile import checkout_testbed
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams
from repro.testbed.builder import Testbed


@dataclass
class TaskOutput:
    """What an executor hands back across the process boundary.

    ``control`` is an executor→engine side channel that never reaches
    the artifact: the time-sliced scenario kind uses it to report "this
    slice paused at a checkpoint, schedule the next one". ``None`` (the
    overwhelmingly common case) means the task simply completed.
    """

    records: List[dict]
    stats: Dict[str, object] = field(default_factory=dict)
    control: Optional[Dict[str, object]] = None


TaskFn = Callable[[ExperimentSpec, int], TaskOutput]

TASK_REGISTRY: Dict[str, TaskFn] = {}


@dataclass(frozen=True)
class TaskKindInfo:
    """Declared metadata for one registered kind.

    ``params=None`` means the kind declared no parameter schema —
    validation passes everything through (ad-hoc test kinds). A declared
    schema makes unknown keys a hard error: ``durration_s`` fails loudly
    instead of silently measuring for the 30-second default.
    """

    params: Optional[FrozenSet[str]] = None
    required: FrozenSet[str] = frozenset()
    uses_testbed: bool = False


TASK_KIND_INFO: Dict[str, TaskKindInfo] = {}


def register_task(kind: str, *, params: Optional[Iterable[str]] = None,
                  required: Iterable[str] = (),
                  uses_testbed: bool = False):
    """Decorator registering an executor for a spec ``kind``.

    ``params`` declares the complete set of recognised parameter keys
    (``required`` ⊆ ``params`` must be present); omitting it skips
    validation for the kind. ``uses_testbed`` marks kinds that check out
    a compiled testbed, so the engine can precompile their worlds before
    forking a pool.
    """
    required = frozenset(required)
    allowed = None if params is None else frozenset(params) | required

    def wrap(fn: TaskFn) -> TaskFn:
        if kind in TASK_REGISTRY:
            raise ValueError(f"duplicate task kind {kind!r}")
        TASK_REGISTRY[kind] = fn
        TASK_KIND_INFO[kind] = TaskKindInfo(
            params=allowed, required=required, uses_testbed=uses_testbed)
        return fn
    return wrap


def unregister_task(kind: str) -> None:
    """Remove a registered kind (no-op if absent).

    Exists so tests can register throwaway kinds without leaking them
    into later tests as duplicate-kind errors; prefer
    :func:`temporary_task_kind`, which cannot forget the cleanup.
    """
    TASK_REGISTRY.pop(kind, None)
    TASK_KIND_INFO.pop(kind, None)


@contextmanager
def temporary_task_kind(kind: str, fn: TaskFn, **meta):
    """Register ``kind`` for the duration of a ``with`` block.

    ``meta`` is forwarded to :func:`register_task` (``params``,
    ``required``, ``uses_testbed``). The kind is removed on exit even if
    the body raises — the test-suite-safe way to try out an executor.
    """
    register_task(kind, **meta)(fn)
    try:
        yield fn
    finally:
        unregister_task(kind)


def task_uses_testbed(kind: str) -> bool:
    """Whether ``kind`` declared that it checks out a compiled testbed."""
    if kind not in TASK_KIND_INFO:
        _load_plugin_kinds()
    info = TASK_KIND_INFO.get(kind)
    return bool(info is not None and info.uses_testbed)


def validate_task_params(kind: str, params: Dict[str, object]) -> None:
    """Reject unknown or missing parameter keys for a declared kind.

    Kinds without a declared schema (``params=None`` at registration)
    pass through untouched; unknown *kinds* are the dispatcher's problem,
    not this function's.
    """
    info = TASK_KIND_INFO.get(kind)
    if info is None or info.params is None:
        return
    unknown = sorted(set(params) - info.params)
    if unknown:
        hints = []
        for key in unknown:
            close = difflib.get_close_matches(key, sorted(info.params),
                                              n=1)
            hints.append(f"{key!r}"
                         + (f" (did you mean {close[0]!r}?)" if close
                            else ""))
        raise ValueError(
            f"unknown parameter(s) for task kind {kind!r}: "
            f"{', '.join(hints)}; recognised keys: "
            f"{', '.join(sorted(info.params))}")
    missing = sorted(info.required - set(params))
    if missing:
        raise ValueError(
            f"missing required parameter(s) for task kind {kind!r}: "
            f"{', '.join(missing)}")


#: Modules that register extra task kinds on import. Resolved lazily in
#: :func:`execute_spec` (importing them here would cycle: they import
#: ``register_task`` from this module), so worker processes find plugin
#: kinds under any pool start method.
PLUGIN_KIND_MODULES = ("repro.faults.tasks", "repro.verify.fuzzer")


def _load_plugin_kinds() -> None:
    import importlib

    for module in PLUGIN_KIND_MODULES:
        importlib.import_module(module)


def execute_spec(spec: ExperimentSpec, attempt: int = 0) -> TaskOutput:
    """Dispatch one spec to its registered executor."""
    if spec.kind not in TASK_REGISTRY:
        _load_plugin_kinds()
    try:
        fn = TASK_REGISTRY[spec.kind]
    except KeyError:
        known = ", ".join(sorted(TASK_REGISTRY))
        raise KeyError(
            f"unknown task kind {spec.kind!r} (known: {known})") from None
    validate_task_params(spec.kind, spec.params_dict)
    return fn(spec, attempt)


def _start_time(params: Dict[str, object]) -> float:
    return MainsClock.at(day=int(params.get("day", 2)),
                         hour=float(params.get("hour", 14.0)))


# --- survey -------------------------------------------------------------------


def run_survey_inline(testbed: Testbed, t_start: float, duration: float,
                      report_interval: float,
                      pairs: Sequence[Tuple[int, int]]):
    """Serial survey over a prebuilt testbed (the engine's inline path).

    :func:`repro.testbed.experiments.survey_pairs` delegates here so the
    one-process survey and the parallel campaign share the measurement
    code; importing lazily avoids a cycle with ``testbed.experiments``.
    """
    from repro.testbed.experiments import measure_pair

    return [measure_pair(testbed, i, j, t_start, duration,
                         report_interval) for i, j in pairs]


@register_task("survey_pair", uses_testbed=True,
               params=("day", "hour", "duration_s", "interval_s"),
               required=("src", "dst"))
def _survey_pair(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """§4.1 dual-medium measurement of one directed pair."""
    from repro.testbed.experiments import measure_pair

    from repro.obs.trace import current_tracer

    p = spec.params_dict
    testbed = checkout_testbed(spec.preset, seed=spec.seed)
    t0 = _start_time(p)
    duration = float(p.get("duration_s", 30.0))
    row = measure_pair(testbed, int(p["src"]), int(p["dst"]), t0,
                       duration=duration,
                       report_interval=float(p.get("interval_s", 1.0)))
    tracer = current_tracer()
    if tracer.enabled:
        tracer.span("survey.measure_pair", t0, t0 + duration,
                    src=int(p["src"]), dst=int(p["dst"]))
    return TaskOutput(records=[row.to_dict()])


# --- scenario -----------------------------------------------------------------


@register_task("scenario", uses_testbed=True,
               params=("day", "hour", "horizon_s", "quantum_s"),
               required=("scenario",))
def _scenario(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Run a named library scenario through the fluid runner.

    The runner publishes its sim-time events into the task's current
    tracer (:func:`repro.obs.current_tracer` — a no-op unless the engine
    enabled tracing), which never changes the returned records or stats.
    """
    from repro.netsim.runner import ScenarioRunner
    from repro.netsim.scenario import build_scenario
    from repro.obs.trace import current_tracer

    p = spec.params_dict
    testbed = checkout_testbed(spec.preset, seed=spec.seed)
    scenario = build_scenario(str(p["scenario"]), _start_time(p))
    runner = ScenarioRunner(testbed,
                            quantum_s=float(p.get("quantum_s", 0.5)),
                            check_invariants=True,
                            tracer=current_tracer())
    results = runner.run(scenario,
                         horizon_s=float(p.get("horizon_s", 900.0)))
    records = [results[name].to_dict() for name in sorted(results)]
    return TaskOutput(records=records, stats=runner.stats.to_dict())


#: ``Snapshot.kind`` of the checkpoint one scenario slice leaves behind.
SLICE_CHECKPOINT_KIND = "scenario-slice"


@register_task("scenario_slice", uses_testbed=True,
               params=("day", "hour", "horizon_s", "quantum_s"),
               required=("scenario", "slice_index", "num_slices",
                         "slice_horizon_s", "store", "original_key"))
def _scenario_slice(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """One time slice of a long-horizon ``scenario`` task.

    Slice 0 starts the run and pauses at the first slice boundary;
    slice ``k`` restores checkpoint ``k-1`` from the snapshot ``store``
    and continues. The *final* slice (``num_slices - 1``, or any slice
    in which the scenario ends early) returns exactly the records and
    stats the straight ``scenario`` kind would have returned — the
    engine rewrites its identity back to ``original_key``, so the
    artifact is byte-identical to an unsliced run. Intermediate slices
    checkpoint and report back through ``TaskOutput.control``.

    Determinism across crash-resume comes for free: a re-run slice
    restores the same immutable checkpoint into a fresh testbed.
    """
    from pathlib import Path

    from repro.netsim.runner import ScenarioRunner
    from repro.netsim.scenario import build_scenario
    from repro.obs.trace import TraceEvent, current_tracer
    from repro.snapshot.codec import Snapshot
    from repro.snapshot.store import SnapshotStore

    p = spec.params_dict
    index = int(p["slice_index"])
    num_slices = int(p["num_slices"])
    slice_horizon = float(p["slice_horizon_s"])
    horizon = float(p.get("horizon_s", 900.0))
    original_key = str(p["original_key"])
    store = SnapshotStore(Path(str(p["store"])))

    testbed = checkout_testbed(spec.preset, seed=spec.seed)
    scenario = build_scenario(str(p["scenario"]), _start_time(p))
    tracer = current_tracer()
    runner = ScenarioRunner(testbed,
                            quantum_s=float(p.get("quantum_s", 0.5)),
                            check_invariants=True, tracer=tracer)
    t0 = min(f.start_s for f in scenario.flows)
    until = (None if index >= num_slices - 1
             else t0 + (index + 1) * slice_horizon)
    if index == 0:
        results = runner.run(scenario, horizon_s=horizon, until_s=until)
    else:
        checkpoint = store.load(original_key, index - 1)
        if checkpoint.kind != SLICE_CHECKPOINT_KIND:
            raise ValueError(
                f"checkpoint {index - 1} for {original_key} has kind "
                f"{checkpoint.kind!r}, expected "
                f"{SLICE_CHECKPOINT_KIND!r}")
        chain = checkpoint.payload.get("chain", {})
        if (chain.get("slice_horizon_s") != slice_horizon
                or chain.get("num_slices") != num_slices
                or chain.get("horizon_s") != horizon):
            raise ValueError(
                f"checkpoint {index - 1} for {original_key} belongs to "
                f"a different slicing plan ({chain}); re-run from "
                f"slice 0")
        stored_trace = checkpoint.payload.get("trace")
        if tracer.enabled and stored_trace:
            # Prepend the earlier slices' sim-time events so the final
            # sidecar is byte-identical to the straight run's.
            tracer.events.extend(TraceEvent.from_dict(event)
                                 for event in stored_trace)
        results = runner.resume(
            scenario,
            Snapshot(kind="scenario-runner",
                     payload=checkpoint.payload["runner"]),
            until_s=until)
    if runner.paused:
        payload = {
            "runner": runner.snapshot(scenario, results).payload,
            "chain": {"slice_horizon_s": slice_horizon,
                      "num_slices": num_slices, "horizon_s": horizon},
            "trace": tracer.to_dicts() if tracer.enabled else None,
        }
        store.save(original_key, index,
                   Snapshot(kind=SLICE_CHECKPOINT_KIND, payload=payload))
        return TaskOutput(records=[],
                          control={"slice_paused": True,
                                   "slice_index": index})
    records = [results[name].to_dict() for name in sorted(results)]
    return TaskOutput(records=records, stats=runner.stats.to_dict())


# --- BLE polling --------------------------------------------------------------


@register_task("ble_series", uses_testbed=True,
               params=("day", "hour", "duration_s", "interval_s"),
               required=("src", "dst"))
def _ble_series(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """§6.2 MM polling of one link's average BLE."""
    from repro.testbed.experiments import poll_ble_series

    p = spec.params_dict
    testbed = checkout_testbed(spec.preset, seed=spec.seed)
    series = poll_ble_series(testbed, int(p["src"]), int(p["dst"]),
                             _start_time(p),
                             duration=float(p.get("duration_s", 2.0)),
                             interval=float(p.get("interval_s", 0.05)))
    return TaskOutput(records=[{
        "src": int(p["src"]), "dst": int(p["dst"]),
        "times": [float(t) for t in series.times],
        "ble_bps": [float(v) for v in series.values]}])


# --- medium-agnostic link sampling --------------------------------------------


@register_task("link_series", uses_testbed=True,
               params=("medium", "day", "hour", "duration_s", "interval_s",
                       "measured"),
               required=("src", "dst"))
def _link_series(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Sample any registered medium's link through the ``repro.medium``
    contract — the campaign engine's view of ``Link.sample_series``.

    ``params``: ``src``, ``dst``, optional ``medium`` ("plc"/"wifi",
    default "plc"), ``duration_s``, ``interval_s``, ``measured``.
    """
    p = spec.params_dict
    testbed = checkout_testbed(spec.preset, seed=spec.seed)
    medium = str(p.get("medium", "plc"))
    src, dst = int(p["src"]), int(p["dst"])
    link = testbed.link(medium, src, dst)
    if link is None:
        raise ValueError(
            f"no {medium} link between stations {src} and {dst}")
    t0 = _start_time(p)
    times = np.arange(t0, t0 + float(p.get("duration_s", 2.0)),
                      float(p.get("interval_s", 0.1)))
    series = link.sample_series(times,
                                measured=bool(p.get("measured", True)))
    return TaskOutput(records=[{
        "src": src, "dst": dst, "medium": series.medium,
        "times": [float(t) for t in series.times],
        "capacity_bps": [float(v) for v in series.capacity_bps],
        "throughput_bps": [float(v) for v in series.throughput_bps],
        "loss": [float(v) for v in series.loss]}])


# --- diagnostics --------------------------------------------------------------


@register_task("rng_probe", params=("draws", "idx", "tags"))
def _rng_probe(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Draw from the task's derived streams — no testbed, near-zero cost.

    Exists for the property-test harness: it exposes exactly the seed
    derivation the heavyweight kinds rely on, so determinism across worker
    counts can be checked thousands of times per second.
    """
    p = spec.params_dict
    streams = RandomStreams(seed=spec.task_seed())
    draws = int(p.get("draws", 4))
    return TaskOutput(records=[{
        "task_seed": spec.task_seed(),
        "uniform": [float(x) for x in
                    streams.get("probe").uniform(size=draws)],
        "normal": [float(x) for x in
                   streams.get("noise").normal(size=draws)]}])


@register_task("sleepy", params=("sleep_s", "idx"))
def _sleepy(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Block for ``sleep_s`` seconds — exercises the timeout path.

    (Wall-clock sleep, so never use it in a determinism-sensitive
    campaign; it exists for engine tests and operational smoke checks.)
    """
    import time

    sleep_s = float(spec.params_dict.get("sleep_s", 1.0))
    time.sleep(sleep_s)
    return TaskOutput(records=[{"slept_s": sleep_s}])


@register_task("flaky", params=("fail_attempts", "idx"))
def _flaky(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """Deterministic failure injection for retry/circuit-breaker tests.

    Fails the first ``fail_attempts`` attempts, then succeeds — so with
    enough retries the final artifact is identical to a never-failing
    run's, which is precisely the retry contract worth testing.
    """
    fails = int(spec.params_dict.get("fail_attempts", 0))
    if attempt < fails:
        raise RuntimeError(
            f"injected failure {attempt + 1}/{fails} for "
            f"{spec.task_key()}")
    return TaskOutput(records=[{"survived_attempt": attempt,
                                "task_seed": spec.task_seed()}])
