"""Experiment specs: the unit of work the campaign engine fans out.

A spec is a *description* — task kind, testbed preset name, world seed and a
flat parameter mapping — never a built object. Descriptions pickle cheaply
across the process-pool boundary and serialise canonically into artifacts,
and every worker rebuilds an identical world from them, which is what makes
campaign results independent of worker count.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sim.random import derive_seed
from repro.testbed.presets import resolve_testbed_preset

#: Parameter values must round-trip JSON exactly: scalars only (or tuples of
#: scalars, stored as tuples for hashability, serialised as lists).
_SCALARS = (str, int, float, bool, type(None))


def _freeze_value(value: Any) -> Any:
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    raise TypeError(f"spec parameter values must be JSON scalars or "
                    f"lists of them, got {type(value).__name__}")


def _thaw_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_thaw_value(v) for v in value]
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One task of a campaign: kind × preset × seed × parameters."""

    kind: str
    preset: str
    seed: int
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @classmethod
    def make(cls, kind: str, preset: str, seed: int,
             **params: Any) -> "ExperimentSpec":
        """Build a spec, normalising the parameter mapping.

        Parameters are stored sorted by name so two specs with the same
        content are equal (and hash equal) regardless of construction
        order, and the task key below is stable.
        """
        frozen = tuple(sorted((k, _freeze_value(v))
                              for k, v in params.items()))
        return cls(kind=kind, preset=preset, seed=int(seed), params=frozen)

    @property
    def params_dict(self) -> Dict[str, Any]:
        return {k: _thaw_value(v) for k, v in self.params}

    # --- identity ------------------------------------------------------------

    def canonical_json(self) -> str:
        """Canonical serialised form (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def task_key(self) -> str:
        """Stable, unique, human-scannable identity of this task.

        The readable prefix names kind/preset/seed; the digest covers the
        full canonical spec, so any parameter change yields a new key.
        Resume logic and artifact dedup key on this string.
        """
        digest = hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()[:12]
        return f"{self.kind}/{self.preset}/s{self.seed}/{digest}"

    def task_seed(self) -> int:
        """Per-task seed for task-local randomness.

        Derived with :func:`repro.sim.random.derive_seed` from the spec's
        world seed and its task key — a pure function of the spec, so it is
        identical in every worker, at every worker count, on every resume.
        """
        return derive_seed(self.seed, self.task_key())

    # --- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "preset": self.preset,
                "seed": self.seed, "params": self.params_dict}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        return cls.make(kind=data["kind"], preset=data["preset"],
                        seed=data["seed"], **dict(data.get("params", {})))


def check_specs(specs: Sequence[ExperimentSpec]) -> None:
    """Validate a spec list before a run: presets known, task keys unique."""
    seen: Dict[str, ExperimentSpec] = {}
    for spec in specs:
        resolve_testbed_preset(spec.preset)
        key = spec.task_key()
        if key in seen:
            raise ValueError(f"duplicate task key {key!r} "
                             f"({spec} vs {seen[key]})")
        seen[key] = spec


# --- grid builders ------------------------------------------------------------


def spec_grid(kind: str, presets: Iterable[str], seeds: Iterable[int],
              param_grid: Optional[Mapping[str, Sequence[Any]]] = None,
              **fixed: Any) -> List[ExperimentSpec]:
    """Cartesian product of presets × seeds × parameter axes.

    ``param_grid`` maps parameter names to the values each should sweep;
    ``fixed`` parameters are attached to every spec unchanged.
    """
    axes = sorted((param_grid or {}).items())
    names = [n for n, _ in axes]
    combos = itertools.product(*(values for _, values in axes)) \
        if axes else [()]
    specs: List[ExperimentSpec] = []
    for combo in combos:
        swept = dict(zip(names, combo))
        for preset in presets:
            for seed in seeds:
                specs.append(ExperimentSpec.make(
                    kind, preset, seed, **fixed, **swept))
    return specs


def survey_specs(preset: str, seeds: Iterable[int],
                 pairs: Iterable[Tuple[int, int]],
                 day: int = 2, hour: float = 14.0,
                 duration_s: float = 30.0,
                 interval_s: float = 1.0) -> List[ExperimentSpec]:
    """One ``survey_pair`` task per (seed, directed pair)."""
    return [
        ExperimentSpec.make(
            "survey_pair", preset, seed, src=int(i), dst=int(j),
            day=day, hour=hour, duration_s=duration_s,
            interval_s=interval_s)
        for seed in seeds for i, j in pairs
    ]


def scenario_specs(preset: str, seeds: Iterable[int],
                   scenarios: Iterable[str],
                   day: int = 2, hour: float = 14.0,
                   horizon_s: float = 900.0) -> List[ExperimentSpec]:
    """One ``scenario`` task per (seed, library scenario name)."""
    return [
        ExperimentSpec.make("scenario", preset, seed, scenario=name,
                            day=day, hour=hour, horizon_s=horizon_s)
        for seed in seeds for name in scenarios
    ]
