"""Execution backends: the *mechanism* half of the campaign engine.

The engine owns policy — retry/backoff, per-attempt timeouts, the circuit
breaker, resume, artifact ordering. How an attempt actually runs is a
pluggable :class:`ExecutionBackend`:

* ``inline``  — synchronous, in this process (``workers=0`` semantics);
* ``process`` — one spec per :class:`~concurrent.futures.ProcessPoolExecutor`
  round-trip (the engine's historical behaviour);
* ``thread``  — a thread pool: cheaper dispatch for numpy-bound kinds that
  release the GIL, and every worker shares the parent's compile cache;
* ``chunked`` — a process pool fed ``chunk_size`` specs per round-trip,
  amortising pickling/IPC over K tasks for cheap-task campaigns.

Every backend runs specs through one worker entry point,
:func:`run_task_batch`, which catches *per-task* exceptions and returns
them as data — one poisoned spec fails alone instead of voiding its
batch, and the error string the engine records is the worker-side
``repr`` for every backend, which is what keeps failure/quarantine
artifacts byte-identical whichever backend produced them.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Sequence, Tuple

from repro.campaign.spec import ExperimentSpec
from repro.campaign.tasks import execute_spec
from repro.obs.clock import SystemClock
from repro.obs.trace import task_trace

#: Names :func:`create_backend` accepts. ``auto`` maps to ``inline`` when
#: ``workers == 0`` and ``process`` otherwise — the pre-backend behaviour.
BACKEND_NAMES = ("auto", "inline", "process", "thread", "chunked")

#: A batch entry crossing the pool boundary: ``(spec_dict, attempt)``.
SpecJob = Tuple[Dict[str, object], int]

#: Worker-process clock: used only for the in-worker task *duration*.
_WORKER_CLOCK = SystemClock()


def run_task_payload(spec_dict: Dict[str, object], attempt: int,
                     trace: bool = False) -> Dict[str, object]:
    """Worker-side single-task entry (module-level: pickles by name).

    ``elapsed_s`` is a worker-local *duration* (safe to aggregate in the
    parent); ``trace`` installs a tracer for the task's executors to
    publish sim-time events into, returned out-of-band from the records.
    """
    t0 = _WORKER_CLOCK.now()
    spec = ExperimentSpec.from_dict(spec_dict)
    with task_trace(enabled=trace) as tracer:
        out = execute_spec(spec, attempt)
    return {"task_key": spec.task_key(), "spec": spec.to_dict(),
            "task_seed": spec.task_seed(), "records": out.records,
            "stats": out.stats, "control": out.control,
            "trace": tracer.to_dicts() if trace else None,
            "elapsed_s": _WORKER_CLOCK.now() - t0}


def run_task_batch(batch: Sequence[SpecJob],
                   trace: bool = False) -> List[Dict[str, object]]:
    """Worker-side batch entry: one result dict per job, in order.

    A job that raises yields ``{"error": repr(exc)}`` instead of a
    payload, so the engine retries exactly the failed members — a chunk
    is an IPC optimisation, never a failure domain.
    """
    results: List[Dict[str, object]] = []
    for spec_dict, attempt in batch:
        try:
            results.append(run_task_payload(spec_dict, attempt, trace))
        except Exception as exc:  # noqa: BLE001 — task sandbox
            results.append({"error": repr(exc)})
    return results


class InlineBackend:
    """Run batches synchronously in the calling process.

    ``capacity == 1`` keeps the engine loop strictly sequential, so an
    inline campaign executes specs in exactly the submission order (and
    per-attempt timeouts never fire: the future completes at submit
    time, before any expiry sweep can see it — unchanged ``workers=0``
    semantics).
    """

    name = "inline"
    capacity = 1

    def __init__(self, chunk_size: int = 1):
        self.chunk_size = chunk_size

    def submit(self, batch: Sequence[SpecJob],
               trace: bool = False) -> "Future[List[Dict[str, object]]]":
        future: Future = Future()
        try:
            future.set_result(run_task_batch(batch, trace))
        except BaseException as exc:  # pragma: no cover - defensive
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        return None


class _PoolBackend:
    """Shared submit/shutdown plumbing over a concurrent.futures pool."""

    name = "pool"

    def __init__(self, workers: int, chunk_size: int = 1):
        if workers < 1:
            raise ValueError(f"{self.name} backend needs workers >= 1")
        self.capacity = workers
        self.chunk_size = chunk_size
        self._pool = self._make_pool(workers)

    def _make_pool(self, workers: int):
        raise NotImplementedError

    def submit(self, batch: Sequence[SpecJob],
               trace: bool = False) -> "Future[List[Dict[str, object]]]":
        return self._pool.submit(run_task_batch, list(batch), trace)

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)


class ProcessBackend(_PoolBackend):
    """One spec per process-pool round-trip (historical behaviour)."""

    name = "process"

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers)


class ThreadBackend(_PoolBackend):
    """A thread pool in this process.

    No pickling and no fork: workers share the parent's task registry,
    compile cache and metrics registry directly. Best for numpy-bound
    kinds (vectorised sampling releases the GIL) and for platforms where
    process start-up dominates short campaigns.
    """

    name = "thread"

    def _make_pool(self, workers: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="campaign-worker")


class ChunkedBackend(ProcessBackend):
    """A process pool fed ``chunk_size`` specs per round-trip.

    Cuts per-task IPC (pickle a batch, unpickle a batch of payloads) by
    the chunk factor — the win for campaigns of many cheap tasks. A
    larger chunk also coarsens the timeout granularity: the engine times
    out whole in-flight batches, so keep chunks small when attempts are
    slow or flaky.
    """

    name = "chunked"

    def __init__(self, workers: int, chunk_size: int = 8):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        super().__init__(workers, chunk_size=chunk_size)


def create_backend(name: str, workers: int,
                   chunk_size: int = 8):
    """Resolve a backend name (see :data:`BACKEND_NAMES`) to an instance.

    ``auto`` preserves the pre-backend engine contract: ``workers=0``
    runs inline, anything else uses the process pool.
    """
    if name == "auto":
        name = "inline" if workers == 0 else "process"
    if name == "inline":
        return InlineBackend()
    if name == "process":
        return ProcessBackend(max(1, workers))
    if name == "thread":
        return ThreadBackend(max(1, workers))
    if name == "chunked":
        return ChunkedBackend(max(1, workers), chunk_size=chunk_size)
    raise ValueError(
        f"unknown backend {name!r} (known: {', '.join(BACKEND_NAMES)})")
