"""Steady-state TCP throughput over a bidirectional (and possibly
asymmetric) link pair.

Model: the Padhye-Firoiu-Towsley-Kurose response function

    T = MSS / (RTT·sqrt(2p/3) + RTO·min(1, 3·sqrt(3p/8))·p·(1 + 32p²))

capped by the forward link's UDP capacity, with the inputs derived from the
paper's PLC link metrics:

* **RTT** — forward data-frame service time (MAC exchange at the link's
  BLE, inflated by U-ETX retransmissions) plus the *reverse* direction's
  ACK service time (same machinery, 1-PB frames) plus a base stack delay.
  This is where asymmetry bites: a dismal reverse link stretches every ACK.
* **loss p** — the residual post-MAC loss (SACK recovers almost everything,
  so this is tiny) plus the self-induced buffer-probing loss any saturated
  TCP causes, plus a jitter term: RTT variance causes spurious timeouts, so
  links with high service-time variability (WiFi; bad PLC links) pay extra.

The model answers the paper's two TCP remarks quantitatively:
low-variance PLC sustains a higher fraction of its UDP rate than
equal-mean WiFi, and reverse-path degradation alone throttles forward TCP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.plc import mac
from repro.units import MBPS

#: Maximum segment size (bytes): Ethernet MTU minus headers.
MSS_BYTES = 1448
#: TCP ACK wire size (bytes).
ACK_BYTES = 66
#: Base end-to-end stack latency (s): driver + IP + socket on both ends.
BASE_DELAY_S = 1.5e-3
#: Minimum retransmission timeout (RFC 6298).
MIN_RTO_S = 0.2
#: Bottleneck buffering a saturated flow keeps full (driver + AP queues).
QUEUE_BYTES = 65536
#: Spurious-timeout/rate-dip sensitivity: converts the forward link's
#: relative throughput jitter into an equivalent loss rate.
JITTER_LOSS_COEFF = 0.02
#: Post-MAC residual loss floor (buffer probing of a saturated Reno flow).
MIN_LOSS = 2e-4


@dataclass(frozen=True)
class TcpPrediction:
    """One TCP steady-state evaluation."""

    throughput_bps: float
    rtt_s: float
    rtt_cv: float
    loss: float
    udp_capacity_bps: float

    @property
    def efficiency(self) -> float:
        """TCP throughput as a fraction of the UDP capacity."""
        if self.udp_capacity_bps <= 0:
            return 0.0
        return self.throughput_bps / self.udp_capacity_bps


def padhye_throughput_bps(mss_bytes: int, rtt_s: float, loss: float,
                          rto_s: float = MIN_RTO_S) -> float:
    """The PFTK steady-state Reno response function."""
    if rtt_s <= 0:
        raise ValueError("RTT must be positive")
    if not 0.0 < loss < 1.0:
        raise ValueError("loss must be in (0, 1)")
    term1 = rtt_s * math.sqrt(2.0 * loss / 3.0)
    term2 = (rto_s * min(1.0, 3.0 * math.sqrt(3.0 * loss / 8.0))
             * loss * (1.0 + 32.0 * loss ** 2))
    return mss_bytes * 8.0 / (term1 + term2)


class TcpPathModel:
    """TCP over a forward/reverse pair of measured links.

    Works with anything exposing the link measurement surface
    (``avg_ble_bps``/``throughput_bps``/``pb_err``/``u_etx`` for PLC links;
    WiFi links provide ``throughput_bps`` and are treated as loss-free
    post-MAC with jitter taken from throughput samples).
    """

    def __init__(self, fwd_link, rev_link,
                 mss_bytes: int = MSS_BYTES):
        self.fwd = fwd_link
        self.rev = rev_link
        self.mss_bytes = mss_bytes

    # --- per-direction service model ------------------------------------------------

    def _service_time_s(self, link, t: float, payload_bytes: int) -> float:
        """One MAC exchange for a packet of ``payload_bytes`` on ``link``."""
        timings = mac.DEFAULT_TIMINGS
        if hasattr(link, "spec") and hasattr(link, "u_etx"):
            spec = link.spec
            ble = max(link.avg_ble_bps(t), 1 * MBPS)
            n_pbs = mac.pbs_for_payload(payload_bytes, spec)
            frame = mac.frame_duration_s(n_pbs, ble, spec.target_pb_error,
                                         spec, timings)
            exchange = frame + timings.exchange_overhead_s(3.5)
            # Retransmissions repeat the exchange (§8.1's U-ETX).
            etx = min(link.u_etx(t, payload_bytes), 10.0)
            return exchange * etx
        # WiFi: airtime from the instantaneous rate plus DCF overhead.
        rate = max(link.throughput_bps(t, measured=False), 1 * MBPS)
        return payload_bytes * 8.0 / rate + 0.3e-3

    def rtt_s(self, t: float) -> float:
        """Instantaneous RTT under saturation.

        Data service forward + ACK service reverse + stack delay + the
        standing-queue delay a saturated flow builds at the bottleneck
        (bufferbloat: QUEUE_BYTES draining at the forward capacity).
        """
        capacity = max(self.fwd.throughput_bps(t, measured=False), 1 * MBPS)
        queueing = QUEUE_BYTES * 8.0 / capacity
        return (BASE_DELAY_S + queueing
                + self._service_time_s(self.fwd, t, self.mss_bytes)
                + self._service_time_s(self.rev, t, ACK_BYTES))

    def rtt_statistics(self, t: float, window_s: float = 10.0,
                       samples: int = 40) -> tuple:
        """(mean, coefficient of variation) of the RTT around ``t``."""
        ts = np.linspace(t, t + window_s, samples)
        rtts = np.array([self.rtt_s(float(x)) for x in ts])
        mean = float(rtts.mean())
        cv = float(rtts.std() / mean) if mean > 0 else 0.0
        return mean, cv

    def throughput_cv(self, t: float, window_s: float = 10.0,
                      samples: int = 40) -> float:
        """Relative variability of the forward link's deliverable rate."""
        ts = np.linspace(t, t + window_s, samples)
        thr = np.array([self.fwd.throughput_bps(float(x), measured=False)
                        for x in ts])
        mean = float(thr.mean())
        return float(thr.std() / mean) if mean > 0 else 0.0

    def residual_loss(self, t: float, thr_cv: float) -> float:
        """Post-MAC loss + variability-induced spurious-timeout/dip loss.

        §4.1's TCP remark, operationalised: a link whose rate swings (WiFi
        fading, bad PLC) causes RTO spikes and rate-dip losses that Reno
        pays for with multiplicative decreases.
        """
        channel = 0.0
        if hasattr(self.fwd, "pb_err"):
            # SACK retransmits up to ~50 times; residual loss is the chance
            # a PB fails that often — negligible unless the link is dying.
            pb_err = min(self.fwd.pb_err(t), 0.95)
            channel = pb_err ** 8
        jitter = JITTER_LOSS_COEFF * thr_cv ** 2
        return float(np.clip(channel + jitter + MIN_LOSS, MIN_LOSS, 0.5))

    # --- prediction ------------------------------------------------------------------

    def predict(self, t: float, window_s: float = 10.0) -> TcpPrediction:
        """Steady-state TCP throughput around time ``t``."""
        rtt, cv = self.rtt_statistics(t, window_s)
        thr_cv = self.throughput_cv(t, window_s)
        loss = self.residual_loss(t, thr_cv)
        raw = padhye_throughput_bps(self.mss_bytes, rtt, loss)
        capacity = float(np.mean(
            [self.fwd.throughput_bps(float(x), measured=False)
             for x in np.linspace(t, t + window_s, 20)]))
        # A real Reno flow also cannot exceed ~94 % of the UDP rate
        # (header overhead + ACK airtime on the shared medium).
        throughput = min(raw, 0.94 * capacity)
        return TcpPrediction(throughput_bps=max(throughput, 0.0),
                             rtt_s=rtt, rtt_cv=cv, loss=loss,
                             udp_capacity_bps=capacity)
