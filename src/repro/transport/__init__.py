"""Transport-layer models over hybrid links.

The paper stops at UDP but flags TCP twice: PLC's low variance "can be
beneficial for TCP" (§4.1) and link asymmetry "could affect bidirectional
traffic, such as TCP, that requires routing in both directions" (Table 3).
:mod:`repro.transport.tcp` turns those remarks into a model.
"""

from repro.transport.tcp import TcpPathModel, TcpPrediction

__all__ = ["TcpPathModel", "TcpPrediction"]
