#!/usr/bin/env python3
"""Asymmetry audit: measure both directions of every PLC link (§5, Fig. 6).

PLC links can be severely asymmetric — the paper finds > 1.5x throughput
differences on ~30% of pairs — which matters for anything bidirectional
(TCP, routing metrics). This example measures both directions across the
testbed, prints the worst offenders and the probing guidance they trigger.

Run:  python examples/asymmetry_report.py
"""

import numpy as np

from repro.analysis.asymmetry import asymmetry_report
from repro.core.guidelines import LinkState, recommend
from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start
from repro.units import MBPS


def main() -> None:
    testbed = build_testbed(seed=7)
    t = working_hours_start()

    fwd = {}
    for i, j in testbed.same_board_pairs():
        link = testbed.plc_link(i, j)
        fwd[(i, j)] = float(np.mean(
            [link.throughput_bps(t + k, measured=False)
             for k in range(5)])) / MBPS

    report = asymmetry_report(fwd, threshold=1.5)
    print(f"{report.n_pairs} measurable pairs; "
          f"{100 * report.severe_fraction:.0f}% exceed 1.5x asymmetry "
          f"(paper: ~30%)")
    print()
    print(f"{'pair':<8} {'fwd':>7} {'rev':>7} {'ratio':>6}")
    shown = 0
    seen = set()
    for (i, j), value in sorted(
            fwd.items(),
            key=lambda kv: -(max(kv[1], fwd[(kv[0][1], kv[0][0])])
                             / max(min(kv[1], fwd[(kv[0][1], kv[0][0])]),
                                   0.5))):
        if (j, i) in seen or max(value, fwd[(j, i)]) < 0.5:
            continue
        seen.add((i, j))
        ratio = max(value, fwd[(j, i)]) / max(min(value, fwd[(j, i)]), 0.5)
        print(f"{i}-{j:<6} {value:>6.1f}M {fwd[(j, i)]:>6.1f}M "
              f"{ratio:>5.1f}x")
        shown += 1
        if shown >= 10:
            break

    # What the Table 3 engine says about an asymmetric link.
    (i, j) = next(iter(seen))
    rec = recommend(LinkState(ble_fwd_bps=fwd[(i, j)] * 1.7 * MBPS,
                              ble_rev_bps=fwd[(j, i)] * 1.7 * MBPS))
    print("\nguidance for the worst pair:")
    for note in rec.notes:
        print(f"  - {note}")
    print(f"  - probe both directions: {rec.probe_both_directions}")


if __name__ == "__main__":
    main()
