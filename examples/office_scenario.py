#!/usr/bin/env python3
"""A whole-office scenario: many flows sharing the hybrid network.

Runs a ten-minute slice of office life through the network-level simulator:
a hybrid-bonded video stream, two bulk PLC transfers on the same board (they
contend), a cross-board file sync that must use WiFi relays' board, and a
low-rate probe flow that should barely notice any of it.

Run:  python examples/office_scenario.py
"""

from repro.netsim import FlowRequest, Scenario, ScenarioRunner
from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start
from repro.units import MBPS


def main() -> None:
    testbed = build_testbed(seed=7)
    t = working_hours_start()

    scenario = (
        Scenario("office-afternoon")
        .add(FlowRequest("video", 0, 2, t, medium="hybrid",
                         kind="cbr", rate_bps=25 * MBPS, duration_s=600))
        .add(FlowRequest("bulk-a", 1, 3, t + 60, kind="file",
                         size_bytes=400e6, medium="plc"))
        .add(FlowRequest("bulk-b", 6, 9, t + 90, kind="file",
                         size_bytes=400e6, medium="plc"))
        .add(FlowRequest("sync", 13, 16, t + 120, kind="file",
                         size_bytes=150e6, medium="plc"))
        .add(FlowRequest("probe", 2, 7, t, kind="cbr",
                         rate_bps=150e3, duration_s=600))
    )

    runner = ScenarioRunner(testbed)
    results = runner.run(scenario, horizon_s=900.0)

    print(f"{'flow':<8} {'kind':<5} {'medium':<7} {'mean rate':>10} "
          f"{'done at':>9}")
    for name, result in results.items():
        done = (f"t+{result.completed_at - t:.0f}s"
                if result.finished else "running")
        print(f"{name:<8} {result.request.kind:<5} "
              f"{result.request.medium:<7} "
              f"{result.mean_rate_mbps:>8.1f}M {done:>9}")

    peak = max(q.active_flows for q in runner.log)
    b1_peak = max(q.domain_load.get("plc:B1", 0) for q in runner.log)
    print(f"\npeak concurrent flows: {peak}; "
          f"peak B1 contention domain load: {b1_peak}")

    stats = runner.stats
    print(f"quanta: {stats.quanta}; capacity-cache hit rate: "
          f"{stats.cache.hit_rate:.0%}; starved quanta: "
          f"{stats.starved_quanta}")
    for domain, utilisation in sorted(stats.domain_utilisation().items()):
        print(f"  {domain:<10} mean airtime utilisation {utilisation:.2f}")


if __name__ == "__main__":
    main()
