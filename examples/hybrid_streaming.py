#!/usr/bin/env python3
"""Hybrid WiFi+PLC bandwidth aggregation for a constant-rate stream (§7.4).

The paper's motivating application: high-definition streaming wants a high
*and stable* rate. This example bonds the two media on one station pair and
compares four forwarding policies — WiFi only, PLC only, round-robin, and
the paper's capacity-proportional balancer — on throughput, and checks that
destination-side reordering keeps jitter in line.

Run:  python examples/hybrid_streaming.py
"""

from repro.hybrid import HybridDevice
from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start


def pick_pair(testbed, t):
    """First pair where both media are alive and PLC is markedly faster."""
    import numpy as np
    for i, j in testbed.same_board_pairs():
        plc = np.mean([testbed.plc_link(i, j).throughput_bps(t + k * 0.5)
                       for k in range(8)])
        wifi = np.mean([testbed.wifi_link(i, j).throughput_bps(t + k * 0.5)
                        for k in range(8)])
        if wifi > 5e6 and plc > 1.5 * wifi:
            return i, j
    return 0, 1


def main() -> None:
    testbed = build_testbed(seed=7)
    t = working_hours_start()
    src, dst = pick_pair(testbed, t)

    device = HybridDevice(testbed.plc_link(src, dst),
                          testbed.wifi_link(src, dst), testbed.streams)

    capacities = device.estimate_capacities_bps(t)
    print(f"Link {src} -> {dst}: estimated capacities "
          f"PLC {capacities['plc'] / 1e6:.1f} Mbps, "
          f"WiFi {capacities['wifi'] / 1e6:.1f} Mbps")
    print()
    print(f"{'mode':<14} {'throughput':>12} {'stability (CV)':>15}")
    for mode in ("wifi", "plc", "round-robin", "hybrid"):
        result = device.run_saturated(mode, t, duration=60.0)
        series = result.throughput
        cv = series.std / max(series.mean, 1e-9)
        print(f"{mode:<14} {series.mean / 1e6:>9.1f} Mbps {cv:>14.3f}")

    # Packet-level check: reordering across two paths must not explode
    # jitter (the paper verifies this with its Click implementation).
    stats = device.run_packet_level("hybrid", t, duration=2.0)
    print()
    print(f"reorder buffer: {stats.delivered} packets delivered, "
          f"{stats.reordered_arrivals} arrived out of order, "
          f"{stats.holes_flushed} holes flushed, "
          f"jitter {stats.jitter_s() * 1e6:.0f} µs")


if __name__ == "__main__":
    main()
