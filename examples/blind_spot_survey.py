#!/usr/bin/env python3
"""Coverage survey: where does PLC rescue WiFi blind spots? (§4.1)

Sweeps every same-board station pair through the campaign engine, measuring
short saturated tests on both media, and prints the coverage census the
paper reports: pairs served by both, by PLC only (WiFi blind spots), by
WiFi only, or by neither. The survey itself runs as a resumable campaign —
rerunning against the same artifact file would skip completed pairs.

Run:  python examples/blind_spot_survey.py
"""

import tempfile
from pathlib import Path

from repro.campaign import read_artifacts, survey_campaign
from repro.testbed import build_preset_testbed


def main() -> None:
    testbed = build_preset_testbed("office", seed=7)
    pairs = testbed.same_board_pairs()

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "blind_spots.jsonl"
        stats = survey_campaign("office", [7], out, pairs=pairs,
                                workers=0, duration_s=2.0, interval_s=0.5)
        _, tasks = read_artifacts(out)

    print(f"surveyed {stats.completed} same-board directed pairs in "
          f"{stats.wall_seconds:.1f} s")

    census = {"both": [], "plc-only": [], "wifi-only": [], "neither": []}
    for task in tasks:
        row = task.records[0]
        plc_ok = row["plc_mean_mbps"] > 1.0
        wifi_ok = row["wifi_mean_mbps"] > 1.0
        key = ("both" if plc_ok and wifi_ok else
               "plc-only" if plc_ok else
               "wifi-only" if wifi_ok else "neither")
        census[key].append(row)

    total = sum(len(v) for v in census.values())
    print(f"{total} same-board directed pairs:")
    for key, rows in census.items():
        print(f"  {key:<10} {len(rows):4d}  ({100 * len(rows) / total:.0f}%)")

    print("\nWiFi blind spots rescued by PLC (air distance, PLC rate):")
    rescued = sorted(census["plc-only"],
                     key=lambda r: -r["air_distance_m"])[:10]
    for row in rescued:
        print(f"  {row['src']:>2} -> {row['dst']:<2}  "
              f"{row['air_distance_m']:4.0f} m   "
              f"{row['plc_mean_mbps']:5.1f} Mbps "
              f"(WiFi: {row['wifi_mean_mbps']:.1f})")


if __name__ == "__main__":
    main()
