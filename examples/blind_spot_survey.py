#!/usr/bin/env python3
"""Coverage survey: where does PLC rescue WiFi blind spots? (§4.1)

Sweeps every station pair, measures short saturated tests on both media and
prints the coverage census the paper reports: pairs served by both, by PLC
only (WiFi blind spots), by WiFi only, or by neither.

Run:  python examples/blind_spot_survey.py
"""

import numpy as np

from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start
from repro.units import MBPS


def mean_throughput(link, t, samples=10, step=0.5):
    return float(np.mean([link.throughput_bps(t + k * step)
                          for k in range(samples)]))


def main() -> None:
    testbed = build_testbed(seed=7)
    t = working_hours_start()

    census = {"both": [], "plc-only": [], "wifi-only": [], "neither": []}
    for i, j in testbed.same_board_pairs():
        plc = mean_throughput(testbed.plc_link(i, j), t) / MBPS
        wifi = mean_throughput(testbed.wifi_link(i, j), t) / MBPS
        plc_ok, wifi_ok = plc > 1.0, wifi > 1.0
        key = ("both" if plc_ok and wifi_ok else
               "plc-only" if plc_ok else
               "wifi-only" if wifi_ok else "neither")
        census[key].append((i, j, plc, wifi,
                            testbed.air_distance(i, j)))

    total = sum(len(v) for v in census.values())
    print(f"{total} same-board directed pairs:")
    for key, rows in census.items():
        print(f"  {key:<10} {len(rows):4d}  ({100 * len(rows) / total:.0f}%)")

    print("\nWiFi blind spots rescued by PLC (air distance, PLC rate):")
    for i, j, plc, wifi, dist in sorted(census["plc-only"],
                                        key=lambda r: -r[4])[:10]:
        print(f"  {i:>2} -> {j:<2}  {dist:4.0f} m   {plc:5.1f} Mbps "
              f"(WiFi: {wifi:.1f})")


if __name__ == "__main__":
    main()
