#!/usr/bin/env python3
"""Quickstart: build the testbed, measure one PLC link the paper's way.

Walks the core measurement loop of the paper on a single link:

1. build the simulated 19-station testbed (§3.1);
2. read the link metrics the toolkit exposes (Table 2): average BLE by
   management message, PBerr, saturated throughput;
3. sniff SoF delimiters and estimate capacity by invariance-scale averaging
   (§6.1, §7.1);
4. check the BLE ≈ 1.7·T relationship (Fig. 15) on this link.

Run:  python examples/quickstart.py
"""

from repro.core.capacity import estimate_capacity_from_sofs
from repro.plc.mm import MmClient
from repro.plc.sniffer import capture_saturated
from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start
from repro.traffic.iperf import run_udp_test
from repro.units import MBPS


def main() -> None:
    testbed = build_testbed(seed=7)
    t = working_hours_start()
    src, dst = 3, 8  # the paper's Fig. 4 "good link"

    link = testbed.plc_link(src, dst)
    mm = MmClient(testbed.networks[testbed.board_of(src)])

    print(f"Link {src} -> {dst}")
    print(f"  cable distance : {testbed.cable_distance(src, dst):.0f} m")
    print(f"  air distance   : {testbed.air_distance(src, dst):.0f} m")

    # Table 2 measurement paths.
    avg_ble = mm.int6krate(str(src), str(dst), t)
    pb_err = mm.ampstat(str(src), str(dst), t + 0.1)
    print(f"  int6krate BLE  : {avg_ble:.1f} Mbps")
    print(f"  ampstat PBerr  : {pb_err:.4f}")

    series = run_udp_test(link, t, duration=30.0, report_interval=0.1)
    print(f"  iperf UDP      : {series.mean / MBPS:.1f} Mbps "
          f"(std {series.std / MBPS:.2f})")

    # Capacity estimation from frame headers (§7.1).
    sofs = capture_saturated(link, t, duration=1.0,
                             src=str(src), dst=str(dst))
    estimate = estimate_capacity_from_sofs(sofs)
    print(f"  SoF capture    : {len(sofs)} frames, slot-averaged BLE "
          f"{estimate.capacity_mbps:.1f} Mbps")

    # Fig. 15's rule of thumb.
    ratio = estimate.capacity_bps / series.mean
    print(f"  BLE / T ratio  : {ratio:.2f}  (paper: ~1.7)")


if __name__ == "__main__":
    main()
