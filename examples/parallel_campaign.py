#!/usr/bin/env python3
"""The campaign engine: fan a measurement grid across worker processes.

Builds a small experiment grid (every directed pair of the mini3 preset ×
two seeds), runs it twice — once inline, once on a two-worker process
pool — and shows the two runs produce byte-identical artifacts: results
depend only on the spec, never on scheduling. A third run against the
existing artifact file demonstrates resume (everything is skipped).

Run:  python examples/parallel_campaign.py
"""

import tempfile
from pathlib import Path

from repro.campaign import run_campaign, survey_specs
from repro.testbed import build_preset_testbed


def main() -> None:
    testbed = build_preset_testbed("mini3", seed=7)
    pairs = testbed.same_board_pairs()
    specs = survey_specs("mini3", [7, 8], pairs,
                         duration_s=2.0, interval_s=0.5)
    print(f"grid: {len(pairs)} pairs x 2 seeds = {len(specs)} tasks")

    with tempfile.TemporaryDirectory() as tmp:
        inline_path = Path(tmp) / "inline.jsonl"
        pooled_path = Path(tmp) / "pooled.jsonl"

        inline = run_campaign(specs, inline_path, workers=0)
        print(f"inline: {inline.completed} tasks in "
              f"{inline.wall_seconds:.2f} s")

        pooled = run_campaign(specs, pooled_path, workers=2)
        print(f"2 workers: {pooled.completed} tasks in "
              f"{pooled.wall_seconds:.2f} s "
              f"(utilisation {pooled.utilisation():.0%})")

        identical = inline_path.read_bytes() == pooled_path.read_bytes()
        print(f"artifacts byte-identical across worker counts: {identical}")

        resumed = run_campaign(specs, pooled_path, workers=0)
        print(f"rerun: resumed {resumed.resumed}, "
              f"recomputed {resumed.completed}")


if __name__ == "__main__":
    main()
