#!/usr/bin/env python3
"""Characterise-then-simulate: the paper's two-metric abstraction (§2.2).

"The MAC and PHY layers can be modeled using only two metrics: PBerr and
BLE_s." This example measures three links of the physical testbed, fits the
two-metric model to each, and shows the synthetic links reproducing the
originals' throughput statistics — then reruns a probing-policy experiment
entirely on the abstraction (no power grid, no OFDM, no CSMA).

Run:  python examples/two_metric_simulation.py
"""

import numpy as np

from repro.core.probing import AdaptiveProbingPolicy
from repro.core.two_metric_model import (
    TwoMetricLinkModel,
    compare_models,
    fit_two_metric_model,
)
from repro.testbed import build_testbed
from repro.testbed.experiments import night_start
from repro.units import MBPS


def main() -> None:
    testbed = build_testbed(seed=7)
    t = night_start()

    print(f"{'link':<8} {'physical':>16} {'synthetic':>16} {'U-ETX P/S'}")
    models = {}
    for (i, j) in [(13, 14), (2, 7), (11, 4)]:
        link = testbed.plc_link(i, j)
        params = fit_two_metric_model(link, t, duration=45.0)
        model = TwoMetricLinkModel(params, testbed.streams,
                                   name=f"fit-{i}-{j}")
        models[(i, j)] = model
        stats = compare_models(link, model, t + 60.0, duration=45.0)
        print(f"{i}-{j:<6} "
              f"{stats['physical_mean_bps'] / MBPS:7.1f}±"
              f"{stats['physical_std_bps'] / MBPS:<5.1f} "
              f"{stats['synthetic_mean_bps'] / MBPS:9.1f}±"
              f"{stats['synthetic_std_bps'] / MBPS:<5.1f} "
              f"{stats['physical_u_etx']:.2f}/{stats['synthetic_u_etx']:.2f}")

    # A policy experiment on the abstraction alone: classify and schedule.
    policy = AdaptiveProbingPolicy()
    print("\nprobing schedules derived from the synthetic links:")
    for (i, j), model in models.items():
        interval = policy.interval_for(model.avg_ble_bps(t))
        print(f"  {i}-{j}: probe every {interval:g} s")


if __name__ == "__main__":
    main()
