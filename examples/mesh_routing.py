#!/usr/bin/env python3
"""Hybrid mesh routing: seamless connectivity across the whole floor (§4.3).

The testbed's two distribution boards split PLC into two networks, and the
wings are too far apart for direct WiFi — yet the paper argues a hybrid
mesh should connect everything. This example fills an IEEE 1905 metric
table from testbed measurements, routes every cross-board pair with the
ETT-based hybrid router, and shows routes that alternate media (ref [17]).

Run:  python examples/mesh_routing.py
"""

from repro.hybrid.ieee1905 import AbstractionLayer
from repro.hybrid.routing import HybridMeshRouter, populate_from_testbed
from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start


def main() -> None:
    testbed = build_testbed(seed=7)
    t = working_hours_start()

    layer = AbstractionLayer()
    populate_from_testbed(layer, testbed, t)
    router = HybridMeshRouter(layer)

    print(f"1905 table: {len(layer)} link-metric records")
    reachable = set(router.reachable_pairs())
    total = len(testbed.all_pairs())
    print(f"routable ordered pairs: {len(reachable)}/{total}")
    print()

    print("cross-board routes (PLC cannot cross the boards directly):")
    for (src, dst) in [(0, 15), (5, 12), (11, 18)]:
        path = router.best_path(str(src), str(dst))
        if path is None:
            print(f"  {src} -> {dst}: unreachable")
            continue
        hops = " -> ".join(
            f"{h.dst}[{h.medium}]" for h in path.hops)
        note = " (alternates media)" if path.alternates_media else ""
        print(f"  {src} -> {hops}: ETT {path.total_ett_s * 1e3:.2f} ms"
              f"{note}")

    print()
    print("a bad direct link vs its routed alternative:")
    direct = layer.get("11", "4", "plc")
    path = router.best_path("11", "4")
    print(f"  direct PLC capacity: "
          f"{direct.capacity_bps / 1e6:.1f} Mbps (ETX {direct.etx:.1f})")
    hops = " -> ".join(f"{h.dst}[{h.medium}]" for h in path.hops)
    print(f"  routed: 11 -> {hops}  (ETT {path.total_ett_s * 1e3:.2f} ms)")


if __name__ == "__main__":
    main()
