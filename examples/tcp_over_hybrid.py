#!/usr/bin/env python3
"""TCP over PLC vs WiFi: variance and asymmetry in action.

The paper remarks that PLC's low throughput variance "can be beneficial for
TCP" (§4.1) and warns that PLC's asymmetry hits bidirectional traffic
(Table 3). This example quantifies both with the transport model: TCP
efficiency (TCP/UDP ratio) across media, and the cost of a degraded reverse
(ACK) path.

Run:  python examples/tcp_over_hybrid.py
"""

import numpy as np

from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start
from repro.transport import TcpPathModel
from repro.units import MBPS


def main() -> None:
    testbed = build_testbed(seed=7)
    t = working_hours_start()

    print("TCP efficiency by medium (same station pairs):")
    print(f"{'pair':<8} {'medium':<6} {'UDP cap':>9} {'TCP':>9} "
          f"{'eff':>5} {'RTT':>8}")
    for (i, j) in [(0, 2), (1, 3), (13, 14)]:
        for medium in ("plc", "wifi"):
            if medium == "plc":
                fwd = testbed.plc_link(i, j)
                rev = testbed.plc_link(j, i)
            else:
                fwd = testbed.wifi_link(i, j)
                rev = testbed.wifi_link(j, i)
            p = TcpPathModel(fwd, rev).predict(t)
            print(f"{i}-{j:<6} {medium:<6} "
                  f"{p.udp_capacity_bps / MBPS:8.1f}M "
                  f"{p.throughput_bps / MBPS:8.1f}M "
                  f"{p.efficiency:5.2f} {p.rtt_s * 1e3:6.1f}ms")

    print("\nasymmetry tax: good forward link, varying reverse path:")
    fwd = testbed.plc_link(0, 1)
    for label, rev in [("good reverse (1->0)", testbed.plc_link(1, 0)),
                       ("bad reverse (11->4)", testbed.plc_link(11, 4))]:
        p = TcpPathModel(fwd, rev).predict(t)
        print(f"  {label:<22} TCP {p.throughput_bps / MBPS:6.1f} Mbps "
              f"(RTT {p.rtt_s * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
