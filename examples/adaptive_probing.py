#!/usr/bin/env python3
"""Quality-adaptive probing across the whole network (§7.3, Fig. 19).

Classifies every link of one AVLN by its measured BLE, derives the paper's
adaptive probing schedule (bad links every 5 s, average 8x slower, good 16x
slower), reports the probing-overhead reduction versus probing everything
at 5 s, and audits each schedule against the Table 3 guidelines.

Run:  python examples/adaptive_probing.py
"""

from collections import Counter

from repro.core.classification import classify_ble
from repro.core.guidelines import LinkState, audit_schedule, recommend
from repro.core.probing import (
    AdaptiveProbingPolicy,
    FixedProbingPolicy,
    overhead_reduction,
)
from repro.testbed import build_testbed
from repro.testbed.experiments import night_start
from repro.units import MBPS


def main() -> None:
    testbed = build_testbed(seed=7)
    t = night_start()
    network = testbed.networks["B1"]

    bles = {}
    for src, dst in network.directed_pairs():
        link = network.link(src, dst)
        if link.is_connected(t):
            bles[(src, dst)] = link.avg_ble_bps(t)

    classes = Counter(classify_ble(b).value for b in bles.values())
    print(f"B1 links classified: {dict(classes)}")

    adaptive = AdaptiveProbingPolicy()
    baseline = FixedProbingPolicy(5.0)
    reduction = overhead_reduction(adaptive, baseline,
                                   list(bles.values()))
    print(f"probing overhead reduction vs per-5s: {100 * reduction:.0f}% "
          f"(paper: 32%)")
    print()

    print(f"{'link':<8} {'BLE':>7} {'class':<8} {'interval':>9} "
          f"{'violations'}")
    for (src, dst), ble in sorted(bles.items())[:12]:
        rev = network.link(dst, src).avg_ble_bps(t)
        rec = recommend(LinkState(ble_fwd_bps=ble, ble_rev_bps=rev))
        violations = audit_schedule(
            rec.schedule, unicast=rec.unicast,
            averages_over_slots=rec.average_over_slots,
            probes_both_directions=rec.probe_both_directions,
            link_quality=classify_ble(ble))
        print(f"{src}->{dst:<5} {ble / MBPS:>6.0f}M "
              f"{classify_ble(ble).value:<8} "
              f"{rec.schedule.interval_s:>8.0f}s "
              f"{len(violations)}")


if __name__ == "__main__":
    main()
