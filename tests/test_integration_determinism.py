"""End-to-end determinism: identical seeds replay identical experiments."""

import numpy as np

from repro.core.capacity import ProbingCapacitySession
from repro.plc.sniffer import capture_probe_flow, capture_saturated
from repro.testbed import build_testbed
from repro.testbed.experiments import working_hours_start


def test_metric_sampling_replays_exactly():
    t = working_hours_start()
    a = build_testbed(seed=99)
    b = build_testbed(seed=99)
    for (i, j) in [(0, 1), (11, 4), (15, 18)]:
        la, lb = a.plc_link(i, j), b.plc_link(i, j)
        for k in range(5):
            assert la.avg_ble_bps(t + k) == lb.avg_ble_bps(t + k)
            assert la.pb_err(t + k) == lb.pb_err(t + k)
            assert la.throughput_bps(t + k) == lb.throughput_bps(t + k)


def test_sof_captures_replay_exactly():
    t = working_hours_start()
    a = build_testbed(seed=99)
    b = build_testbed(seed=99)
    sofs_a = capture_saturated(a.plc_link(0, 1), t, 0.3)
    sofs_b = capture_saturated(b.plc_link(0, 1), t, 0.3)
    assert [(s.timestamp, s.ble_bps, s.slot) for s in sofs_a] == \
        [(s.timestamp, s.ble_bps, s.slot) for s in sofs_b]


def test_probe_flow_with_seeded_rng_replays():
    t = working_hours_start()
    tb = build_testbed(seed=99)
    link = tb.plc_link(2, 7)
    sofs_a = capture_probe_flow(link, t, 10.0, 0.075,
                                rng=np.random.default_rng(5))
    sofs_b = capture_probe_flow(link, t, 10.0, 0.075,
                                rng=np.random.default_rng(5))
    assert len(sofs_a) == len(sofs_b)
    assert all(x.timestamp == y.timestamp
               for x, y in zip(sofs_a, sofs_b))


def test_estimation_sessions_replay_exactly():
    t = working_hours_start()
    a = build_testbed(seed=99)
    b = build_testbed(seed=99)
    est_a = a.networks["B1"].estimator("0", "1")
    est_b = b.networks["B1"].estimator("0", "1")
    trace_a = ProbingCapacitySession(est_a, 1300, 10).run(
        t, 500, sample_interval=100)
    trace_b = ProbingCapacitySession(est_b, 1300, 10).run(
        t, 500, sample_interval=100)
    assert [e.capacity_bps for e in trace_a] == \
        [e.capacity_bps for e in trace_b]


def test_wifi_states_replay_exactly():
    t = working_hours_start()
    a = build_testbed(seed=99)
    b = build_testbed(seed=99)
    wa, wb = a.wifi_link(3, 8), b.wifi_link(3, 8)
    for k in range(20):
        assert wa.throughput_bps(t + 0.13 * k) == \
            wb.throughput_bps(t + 0.13 * k)
