"""Accuracy-vs-overhead machinery (Fig. 19)."""

import numpy as np
import pytest

from repro.core.estimation_error import (
    compare_policies,
    estimation_errors_for_interval,
    evaluate_policy,
)
from repro.core.metrics import MetricSeries
from repro.core.probing import AdaptiveProbingPolicy, FixedProbingPolicy
from repro.units import MBPS


def _trace(mean_mbps, sigma_mbps, seed=0, duration=600.0,
           correlation_s=10.0):
    """Mean-reverting BLE trace: drifts over ~``correlation_s`` so slower
    probing genuinely loses accuracy (white noise would not)."""
    rng = np.random.default_rng(seed)
    times = np.arange(0, duration, 0.05)
    dt = 0.05
    theta = 1.0 / correlation_s
    step = sigma_mbps * np.sqrt(2 * theta * dt)
    values = np.empty(len(times))
    values[0] = mean_mbps
    noise = rng.standard_normal(len(times))
    for k in range(1, len(times)):
        values[k] = (values[k - 1]
                     + theta * (mean_mbps - values[k - 1]) * dt
                     + step * noise[k])
    return MetricSeries(times, np.maximum(values * MBPS, 0.0))


def test_constant_trace_has_zero_error():
    times = np.arange(0, 100, 0.05)
    series = MetricSeries(times, np.full_like(times, 80 * MBPS))
    errors = estimation_errors_for_interval(series, 5.0)
    assert len(errors) > 0
    assert (errors == 0).all()


def test_error_grows_with_interval_on_drifting_trace():
    times = np.arange(0, 200, 0.05)
    values = (50 + 0.2 * times) * MBPS  # steady drift
    series = MetricSeries(times, values)
    fast = estimation_errors_for_interval(series, 5.0).mean()
    slow = estimation_errors_for_interval(series, 80.0).mean()
    assert slow > 10 * fast


def test_interval_validation():
    series = _trace(50, 1)
    with pytest.raises(ValueError):
        estimation_errors_for_interval(series, 0.0)
    with pytest.raises(ValueError):
        estimation_errors_for_interval(MetricSeries([0.0], [1.0]), 1.0)


def test_evaluate_policy_accumulates_links():
    traces = {"a": _trace(30, 4, seed=1), "b": _trace(120, 0.3, seed=2)}
    result = evaluate_policy(FixedProbingPolicy(5.0), traces, "fast")
    assert result.overhead_bps > 0
    assert len(result.errors_bps) > 0
    cdf = result.error_cdf(np.array([0.0, 1e12]))
    assert cdf[-1] == 1.0
    assert (np.diff(cdf) >= 0).all()


def test_compare_policies_reproduces_fig19_shape():
    """Adaptive ≈ fast accuracy at much lower overhead; slow is worst."""
    traces = {
        "bad-1": _trace(30, 5, seed=3),
        "bad-2": _trace(45, 4, seed=4),
        "avg-1": _trace(80, 1.5, seed=5),
        "good-1": _trace(120, 0.3, seed=6),
        "good-2": _trace(140, 0.2, seed=7),
    }
    results = compare_policies(traces)
    ours, fast, slow = results["ours"], results["fast"], results["slow"]
    assert ours.overhead_bps < 0.8 * fast.overhead_bps
    assert ours.percentile_bps(90) < slow.percentile_bps(90)
    # Accuracy within striking distance of the fast baseline.
    assert ours.percentile_bps(90) < 2.5 * fast.percentile_bps(90)
