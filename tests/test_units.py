"""Unit constants and conversions."""

from repro import units


def test_mains_cycle_is_20ms_at_50hz():
    assert units.MAINS_CYCLE == 0.02
    assert units.HALF_MAINS_CYCLE == 0.01


def test_beacon_period_is_two_mains_cycles():
    assert units.BEACON_PERIOD == 2 * units.MAINS_CYCLE
    assert abs(units.BEACON_PERIOD - 0.040) < 1e-12


def test_rate_conversions_roundtrip():
    assert units.mbps(units.bits_per_second(42.0)) == 42.0
    assert units.bits_per_second(1.0) == 1e6


def test_calendar_constants():
    assert units.DAY == 24 * units.HOUR
    assert units.WEEK == 7 * units.DAY
