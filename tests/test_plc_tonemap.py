"""Tone maps and their update dynamics."""

import numpy as np
import pytest

from repro.plc.tonemap import ToneMapProcess, generate_tone_map
from repro.sim.clock import MainsClock
from repro.units import MBPS

NIGHT = MainsClock.at(day=2, hour=23.5)


def _channel(testbed, src, dst):
    link = testbed.plc_link(src, dst)
    assert link is not None
    return link.channel


def test_tone_map_embeds_definition_1(testbed):
    ch = _channel(testbed, 0, 1)
    tm = generate_tone_map(ch, NIGHT, tmi=1)
    per_slot = tm.ble_per_slot_bps()
    assert per_slot.shape == (6,)
    # Recompute Definition 1 by hand for slot 0.
    expected = (tm.bits[:, 0].sum() * tm.fec_rate * (1 - tm.pb_err)
                / tm.symbol_duration_s)
    assert per_slot[0] == pytest.approx(expected)


def test_tone_map_ids_increase(testbed):
    ch = _channel(testbed, 0, 1)
    process = ToneMapProcess(ch, start_time=NIGHT)
    process.advance(NIGHT + 40.0)
    tmis = [u.tmi for u in process.updates]
    assert tmis == sorted(tmis)
    assert len(set(tmis)) == len(tmis)


def test_expiry_forces_update_within_30s(testbed):
    ch = _channel(testbed, 0, 1)
    process = ToneMapProcess(ch, start_time=NIGHT)
    process.advance(NIGHT + 65.0)
    # Whatever the drift, at least two more tone maps in 65 s (30 s expiry).
    assert len(process.updates) >= 3
    ages = np.diff([u.time for u in process.updates])
    assert (ages <= ch.spec.tone_map_expiry_s + 0.1).all()


def test_bad_link_updates_more_often_than_good(testbed, t_night):
    good = ToneMapProcess(_channel(testbed, 15, 18), start_time=t_night)
    bad = ToneMapProcess(_channel(testbed, 11, 4), start_time=t_night)
    good.advance(t_night + 60.0)
    bad.advance(t_night + 60.0)
    assert len(bad.updates) > 2 * len(good.updates)


def test_advance_backwards_rejected(testbed):
    process = ToneMapProcess(_channel(testbed, 0, 1), start_time=NIGHT)
    with pytest.raises(ValueError):
        process.advance(NIGHT - 1.0)


def test_ble_trace_matches_updates(testbed, t_night):
    process = ToneMapProcess(_channel(testbed, 11, 4), start_time=t_night)
    process.advance(t_night + 30.0)
    trace = process.ble_trace()
    assert trace.shape == (len(process.updates), 2)
    assert (np.diff(trace[:, 0]) > 0).all()


def test_interarrivals_positive(testbed, t_night):
    process = ToneMapProcess(_channel(testbed, 11, 4), start_time=t_night)
    process.advance(t_night + 30.0)
    alphas = process.ble_update_interarrivals()
    assert (alphas > 0).all()


def test_realized_pb_error_in_unit_interval(testbed, t_night):
    process = ToneMapProcess(_channel(testbed, 2, 7), start_time=t_night)
    p = process.realized_pb_error(t_night + 1.0)
    assert 0.0 <= p <= 1.0
