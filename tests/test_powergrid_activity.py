"""Human-activity model: schedules, determinism, the 9 pm event."""

import numpy as np
import pytest

from repro.powergrid.activity import (
    LIGHTS_OFF_HOUR,
    LIGHTS_ON_HOUR,
    OfficeActivityModel,
)
from repro.powergrid.appliances import ApplianceInstance
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams
from repro.units import DAY, HOUR, MINUTE


@pytest.fixture()
def model():
    return OfficeActivityModel(RandomStreams(seed=3))


def _mk(kind, name="a1"):
    return ApplianceInstance.make(name, kind, "outlet-0")


def test_always_on_is_always_on(model):
    fridge = _mk("fridge")
    for t in np.linspace(0, 7 * DAY, 50):
        assert model.is_on(fridge, float(t))


def test_lighting_follows_building_schedule(model):
    light = _mk("fluorescent_lighting")
    monday_noon = MainsClock.at(day=0, hour=12)
    monday_late = MainsClock.at(day=0, hour=LIGHTS_OFF_HOUR + 0.5)
    monday_early = MainsClock.at(day=0, hour=LIGHTS_ON_HOUR - 1.0)
    assert model.is_on(light, monday_noon)
    assert not model.is_on(light, monday_late)
    assert not model.is_on(light, monday_early)


def test_lights_off_event_is_building_wide(model):
    # Every weekday fixture is off at 21:30 (Fig. 12's 9 pm cut).
    lights = [_mk("fluorescent_lighting", f"L{k}") for k in range(10)]
    t = MainsClock.at(day=2, hour=21.5)
    assert not any(model.is_on(light, t) for light in lights)


def test_office_gear_mostly_on_weekdays_off_weekends(model):
    pcs = [_mk("desktop_pc", f"pc{k}") for k in range(40)]
    weekday = MainsClock.at(day=1, hour=11)
    weekend = MainsClock.at(day=5, hour=11)
    on_weekday = sum(model.is_on(p, weekday) for p in pcs)
    on_weekend = sum(model.is_on(p, weekend) for p in pcs)
    assert on_weekday > 0.7 * len(pcs)
    assert on_weekend < 0.3 * len(pcs)


def test_overnight_fraction_keeps_some_pcs_on(model):
    pcs = [_mk("desktop_pc", f"pc{k}") for k in range(60)]
    night = MainsClock.at(day=1, hour=3)
    on = sum(model.is_on(p, night) for p in pcs)
    assert 0 < on < 0.35 * len(pcs)


def test_intermittent_duty_cycle_is_respected(model):
    micro = _mk("microwave")
    times = np.arange(MainsClock.at(day=1, hour=8),
                      MainsClock.at(day=1, hour=18), MINUTE)
    duty = np.mean([model.is_on(micro, float(t)) for t in times])
    assert duty < 0.15  # catalog duty cycle is 3 %


def test_intermittent_quieter_at_night(model):
    printer = _mk("printer")
    day_times = np.arange(MainsClock.at(day=1, hour=9),
                          MainsClock.at(day=1, hour=17), MINUTE)
    night_times = np.arange(MainsClock.at(day=1, hour=0),
                            MainsClock.at(day=1, hour=6), MINUTE)
    day_duty = np.mean([model.is_on(printer, float(t)) for t in day_times])
    night_duty = np.mean([model.is_on(printer, float(t))
                          for t in night_times])
    assert night_duty <= day_duty


def test_state_is_deterministic_and_order_independent(model):
    pc = _mk("desktop_pc")
    t1 = MainsClock.at(day=3, hour=10.25)
    t2 = MainsClock.at(day=3, hour=15.75)
    forward = (model.is_on(pc, t1), model.is_on(pc, t2))
    fresh = OfficeActivityModel(RandomStreams(seed=3))
    backward = (fresh.is_on(pc, t2), fresh.is_on(pc, t1))
    assert forward == (backward[1], backward[0])


def test_switching_times_bracket_actual_transitions(model):
    light = _mk("fluorescent_lighting")
    t0 = MainsClock.at(day=1, hour=0)
    times = model.switching_times(light, t0, t0 + DAY)
    assert len(times) == 2  # on in the morning, off at 21:00
    for ts in times:
        assert model.is_on(light, ts - 2.0) != model.is_on(light, ts + 2.0)


def test_active_count_tracks_population(model):
    apps = [_mk("desktop_pc", f"p{k}") for k in range(10)]
    apps += [_mk("fridge", f"f{k}") for k in range(3)]
    noon = MainsClock.at(day=1, hour=12)
    count = model.active_count(apps, noon)
    assert 3 <= count <= 13
