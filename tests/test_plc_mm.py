"""Management-message API: rate limit, metric reads, device control."""

import pytest

from repro.plc.mm import MM_MIN_INTERVAL_S, MmClient, MmRateLimitError


def test_int6krate_returns_slot_averaged_ble(testbed, t_work):
    mm = MmClient(testbed.networks["B1"])
    ble = mm.int6krate("0", "1", t_work)
    link = testbed.plc_link(0, 1)
    assert ble == pytest.approx(link.avg_ble_bps(t_work) / 1e6, rel=0.05)


def test_ble_per_slot_has_six_entries(testbed, t_work):
    mm = MmClient(testbed.networks["B1"])
    slots = mm.ble_per_slot("0", "1", t_work)
    assert len(slots) == 6
    assert all(b >= 0 for b in slots)


def test_ampstat_returns_probability(testbed, t_work):
    mm = MmClient(testbed.networks["B1"])
    p = mm.ampstat("0", "1", t_work)
    assert 0.0 <= p <= 1.0


def test_rate_limit_enforced_per_station(testbed, t_work):
    """§6.2: 50 ms is the fastest usable MM polling rate."""
    mm = MmClient(testbed.networks["B1"])
    mm.int6krate("0", "1", t_work)
    with pytest.raises(MmRateLimitError):
        mm.int6krate("0", "1", t_work + 0.01)
    # A different station is a different device: no conflict.
    mm.int6krate("2", "3", t_work + 0.01)
    # And after the floor, fine again.
    mm.int6krate("0", "1", t_work + MM_MIN_INTERVAL_S)


def test_rate_limit_can_be_disabled(testbed, t_work):
    mm = MmClient(testbed.networks["B1"], enforce_rate_limit=False)
    mm.int6krate("0", "1", t_work)
    mm.int6krate("0", "1", t_work + 0.001)  # no error
    assert mm.log.count == 2


def test_reset_device_clears_estimators(testbed, t_work):
    net = testbed.networks["B1"]
    est = net.estimator("0", "1")
    est.observe_clean_pbs(t_work, 100_000)
    assert est.margin_db < 2.0
    MmClient(net).reset_device("1")
    assert est.margin_db == pytest.approx(6.0)


def test_estimated_capacity_reads_estimator_state(testbed, t_work):
    net = testbed.networks["B1"]
    mm = MmClient(net)
    net.estimator("2", "4").reset()
    fresh = mm.estimated_capacity("2", "4", t_work)
    net.estimator("2", "4").observe_clean_pbs(t_work, 500_000)
    converged = mm.estimated_capacity("2", "4", t_work + 1.0)
    assert converged > fresh


def test_set_cco_via_mm(testbed):
    mm = MmClient(testbed.networks["B1"])
    mm.set_cco("3")
    assert testbed.networks["B1"].cco.station_id == "3"
    mm.set_cco("11")  # restore the paper's pinning for other tests
