"""Channel-estimation dynamics: convergence, persistence, pathologies."""

import numpy as np
import pytest

from repro.core.capacity import ProbingCapacitySession
from repro.plc.channel_estimation import ChannelEstimator
from repro.units import MBPS


from repro.plc.channel import PlcChannel
from repro.plc.spec import HPAV
from repro.powergrid.activity import OfficeActivityModel
from repro.powergrid.appliances import ApplianceInstance
from repro.powergrid.load import ElectricalLoad
from repro.powergrid.topology import GridTopology, Outlet
from repro.sim.random import RandomStreams


def _static_channel(noise_gap_m: float = 14.0) -> PlcChannel:
    """A channel whose environment never changes (always-on appliances),
    so multi-hour estimation dynamics are tested against a fixed target.

    ``noise_gap_m``: cable distance from the noise source to the receiver —
    closer means a worse link.
    """
    g = GridTopology()
    g.add_outlet(Outlet("j0", (0, 0), "B"))
    g.add_outlet(Outlet("j1", (10, 0), "B"))
    g.add_outlet(Outlet("a", (0, 2), "B"))
    g.add_outlet(Outlet("b", (10, 2), "B"))
    g.add_outlet(Outlet("noise", (5, 3), "B"))
    g.add_cable("j0", "j1", 10.0)
    g.add_cable("j0", "a", 3.0)
    g.add_cable("j1", "b", 3.0)
    g.add_cable("j1", "noise", max(noise_gap_m - 3.0, 0.5))
    apps = [ApplianceInstance.make("lab", "lab_equipment", "noise"),
            ApplianceInstance.make("fridge", "fridge", "noise")]
    load = ElectricalLoad(g, apps, OfficeActivityModel(RandomStreams(11)))
    return PlcChannel(load, "a", "b", HPAV, RandomStreams(11))


@pytest.fixture()
def estimator():
    from repro.plc.channel_estimation import ChannelEstimator
    return ChannelEstimator(_static_channel(), RandomStreams(12))


def test_margin_shrinks_with_observations(estimator, t_work):
    m0 = estimator.margin_db
    estimator.observe_clean_pbs(t_work, 50_000)
    assert estimator.margin_db < m0 / 3


def test_reset_restores_initial_margin(estimator, t_work):
    estimator.observe_clean_pbs(t_work, 50_000)
    estimator.reset()
    assert estimator.margin_db == pytest.approx(6.0)


def test_estimate_approaches_converged_value(estimator, t_work):
    target = estimator.converged_capacity_bps(t_work)
    start = estimator.estimated_capacity_bps(t_work)
    estimator.observe_clean_pbs(t_work, 500_000)
    end = estimator.estimated_capacity_bps(t_work)
    assert start < end <= target * 1.02
    assert end > 0.9 * target


def test_faster_probing_converges_faster(estimator, t_work):
    """Fig. 16: the convergence rate tracks received PBs per second."""
    results = {}
    for rate in (1, 50):
        estimator.reset()
        session = ProbingCapacitySession(estimator, payload_bytes=1300,
                                         packets_per_second=rate)
        trace = session.run(t_work, 2000, sample_interval=2000)
        results[rate] = trace[-1].capacity_bps
    assert results[50] > results[1]


def test_estimation_state_survives_pause(estimator, t_work):
    """Fig. 17: pausing probes does not regress the estimate."""
    session = ProbingCapacitySession(estimator, payload_bytes=1300,
                                     packets_per_second=20)
    trace = session.run(t_work, 4000, sample_interval=100,
                        pauses=[(t_work + 2300, t_work + 2300 + 420)])
    values = {round(e.time - t_work): e.capacity_bps for e in trace}
    before_pause = values[2300]
    after_pause = values[2800]
    assert after_pause >= before_pause * 0.98


def test_one_pb_probes_pin_at_r1sym(t_work):
    """Fig. 18: ≤520 B probes at 1 pkt/s stop at R_1sym on fast links."""
    from repro.plc.channel_estimation import ChannelEstimator
    est = ChannelEstimator(_static_channel(noise_gap_m=40.0),
                           RandomStreams(12))
    # The paper's "520 B" counts the 8 B PB header: 512 B of payload is
    # the largest probe that still fits one physical block.
    session = ProbingCapacitySession(est, payload_bytes=512,
                                     packets_per_second=1)
    trace = session.run(t_work, 60000, sample_interval=5000)
    final = trace[-1].capacity_bps
    r1sym = est.spec.one_symbol_rate_bps
    assert final == pytest.approx(r1sym, rel=0.02)
    assert est.converged_capacity_bps(t_work) > 1.2 * r1sym


def test_multi_pb_probes_escape_the_pin(t_work):
    """Fig. 18: 521 B (2 PBs) probes converge past R_1sym."""
    from repro.plc.channel_estimation import ChannelEstimator
    est = ChannelEstimator(_static_channel(noise_gap_m=40.0),
                           RandomStreams(12))
    session = ProbingCapacitySession(est, payload_bytes=513,
                                     packets_per_second=1)
    trace = session.run(t_work, 60000, sample_interval=5000)
    assert trace[-1].capacity_bps > 1.05 * est.spec.one_symbol_rate_bps


def test_short_frame_collisions_depress_estimate(estimator, t_work):
    estimator.observe_clean_pbs(t_work, 1_000_000)
    clean = estimator.estimated_capacity_bps(t_work)
    for k in range(40):
        estimator.observe_frame(t_work + k, 3, collided=True)
    assert estimator.estimated_capacity_bps(t_work + 40) < 0.9 * clean


def test_long_frame_collisions_do_not(estimator, t_work):
    estimator.observe_clean_pbs(t_work, 1_000_000)
    clean = estimator.estimated_capacity_bps(t_work)
    for k in range(40):
        estimator.observe_frame(t_work + k, 60, collided=True)
    assert estimator.estimated_capacity_bps(t_work + 40) == pytest.approx(
        clean, rel=0.02)


def test_av500_overreacts_to_bursty_errors(t_work):
    """§6.2's vendor quirk (Fig. 10, link 18-15)."""
    from repro.plc.channel_estimation import ChannelEstimator
    est = ChannelEstimator(_static_channel(), RandomStreams(12),
                           overreact_to_bursts=True)
    est.observe_clean_pbs(t_work, 1_000_000)
    baseline = est.estimated_capacity_bps(t_work)
    est.observe_frame(t_work, 3, collided=True)
    collapsed = est.estimated_capacity_bps(t_work + 0.5)
    assert collapsed < 0.3 * baseline  # collapse to near-ROBO floor
    recovered = est.estimated_capacity_bps(t_work + 30.0)
    assert recovered > 0.8 * baseline


def test_diagnostics_expose_state(estimator, t_work):
    estimator.observe_probe_packet(t_work, 1500)
    d = estimator.diagnostics()
    assert d.pbs_observed == 3
    assert d.margin_db > 0
    assert not d.one_symbol_pinned


def test_observe_rejects_bad_inputs(estimator, t_work):
    with pytest.raises(ValueError):
        estimator.observe_frame(t_work, 0)
    with pytest.raises(ValueError):
        estimator.observe_clean_pbs(t_work, 0)
