"""A day in the life of the hybrid stack: every layer working together.

Build the 1905 table by probing per the Table 3 guidelines, route with it,
bond the best pair, persist the campaign — the workflow a real hybrid
implementation would run on top of this library.
"""

import numpy as np
import pytest

from repro.analysis.traces import Campaign, load_campaign, save_campaign
from repro.core.classification import classify_ble
from repro.core.guidelines import LinkState, audit_schedule, recommend
from repro.core.metrics import LinkMetricRecord
from repro.hybrid import AbstractionLayer, HybridDevice, HybridMeshRouter
from repro.hybrid.routing import populate_from_testbed
from repro.units import MBPS


@pytest.fixture(scope="module")
def layer(testbed, t_work):
    layer = AbstractionLayer(staleness_limit_s=300.0)
    populate_from_testbed(layer, testbed, t_work)
    return layer


def test_metric_table_is_complete(layer, testbed):
    # Every same-board pair has a PLC record; every pair has a WiFi one.
    assert len(layer) == len(testbed.same_board_pairs()) + len(
        testbed.all_pairs())


def test_guidelines_hold_for_every_probed_link(layer, testbed, t_work):
    violations_total = 0
    for (i, j) in testbed.same_board_pairs()[::7]:
        record = layer.get(str(i), str(j), "plc")
        reverse = layer.get(str(j), str(i), "plc")
        rec = recommend(LinkState(ble_fwd_bps=record.capacity_bps * 1.7,
                                  ble_rev_bps=reverse.capacity_bps * 1.7))
        violations = audit_schedule(
            rec.schedule, unicast=rec.unicast,
            averages_over_slots=rec.average_over_slots,
            probes_both_directions=rec.probe_both_directions,
            link_quality=classify_ble(record.capacity_bps * 1.7))
        violations_total += len(violations)
    assert violations_total == 0


def test_staleness_limit_ages_the_table(layer, t_work):
    fresh = layer.get("0", "1", "plc", now=t_work + 10.0)
    stale = layer.get("0", "1", "plc", now=t_work + 3600.0)
    assert fresh is not None
    assert stale is None


def test_router_and_bond_agree_on_the_best_medium(layer, testbed, t_work):
    router = HybridMeshRouter(layer)
    path = router.best_path("0", "1")
    assert path is not None and len(path) == 1
    device = HybridDevice(testbed.plc_link(0, 1), testbed.wifi_link(0, 1),
                          testbed.streams)
    capacities = device.estimate_capacities_bps(t_work)
    assert path.hops[0].medium == max(capacities, key=capacities.get)


def test_campaign_roundtrip_preserves_the_table(layer, tmp_path):
    campaign = Campaign(name="table-dump")
    for (src, dst, medium) in layer.links():
        campaign.add(layer.get(src, dst, medium))
    path = tmp_path / "table.jsonl"
    save_campaign(campaign, path)
    reloaded = load_campaign(path)
    assert len(reloaded) == len(layer)
    rebuilt = AbstractionLayer()
    for record in reloaded.records:
        rebuilt.update(record)
    assert rebuilt.links() == layer.links()


def test_bonded_pair_beats_best_single_medium(layer, testbed, t_work):
    device = HybridDevice(testbed.plc_link(0, 2), testbed.wifi_link(0, 2),
                          testbed.streams)
    hybrid = device.run_saturated("hybrid", t_work, 10.0).mean_mbps
    best_single = max(
        device.run_saturated("plc", t_work, 10.0).mean_mbps,
        device.run_saturated("wifi", t_work, 10.0).mean_mbps)
    assert hybrid > best_single
