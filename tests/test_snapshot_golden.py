"""The snapshot wire format: golden document, refusal battery, store.

Mirrors ``tests/test_bench_schema.py``: the checked-in golden under
``tests/golden/snapshot_runner.json`` freezes the exact document a
paused canonical run serialises to — any unintentional payload or
header change shows up as a golden diff, and an *intentional* change
forces a deliberate ``--update-golden`` (and, for shape changes, a
``SNAPSHOT_VERSION`` bump). The refusal battery pins the other half of
the contract: unversioned, foreign, future or corrupt blobs are
refused loudly, never half-restored into a "deterministic" run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.compile import checkout_testbed
from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import build_scenario
from repro.obs.metrics import MetricsRegistry
from repro.snapshot import (
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotIntegrityError,
    SnapshotStore,
    SnapshotVersionError,
    content_hash,
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    write_snapshot,
)

GOLDEN = Path(__file__).parent / "golden" / "snapshot_runner.json"

#: The canonical paused run the golden freezes: mini3-mixed on seed 7,
#: paused 37 s into a 120 s horizon starting Wednesday 2 pm.
PRESET, SEED = "mini3", 7
T0 = 2 * 24 * 3600.0 + 14 * 3600.0
HORIZON_S, PAUSE_AT_S = 120.0, 37.0


def _paused_runner():
    runner = ScenarioRunner(checkout_testbed(PRESET, seed=SEED),
                            metrics=MetricsRegistry())
    scenario = build_scenario("mini3-mixed", T0)
    results = runner.run(scenario, horizon_s=HORIZON_S,
                         until_s=T0 + PAUSE_AT_S)
    assert runner.paused
    return runner, scenario, results


# --- the golden document ------------------------------------------------------


def test_golden_snapshot_document(golden):
    runner, scenario, results = _paused_runner()
    document = json.loads(dump_snapshot(runner.snapshot(scenario,
                                                        results)))
    golden("snapshot_runner.json", document)


def test_golden_file_is_a_loadable_snapshot_and_resumes():
    """The checked-in golden is itself a valid wire blob (the conftest
    golden writer and ``dump_snapshot`` share one canonical JSON form):
    loading it and resuming on a fresh world completes the run."""
    snap = read_snapshot(GOLDEN)
    assert snap.kind == "scenario-runner"
    runner = ScenarioRunner(checkout_testbed(PRESET, seed=SEED),
                            metrics=MetricsRegistry())
    scenario = build_scenario("mini3-mixed", T0)
    results = runner.resume(scenario, snap)
    assert not runner.paused
    assert set(results) == {f.name for f in scenario.flows}

    # On the platform that generated the golden this is the full
    # determinism contract: identical to the never-paused run.
    straight = ScenarioRunner(checkout_testbed(PRESET, seed=SEED),
                              metrics=MetricsRegistry())
    reference = straight.run(scenario, horizon_s=HORIZON_S)
    assert {n: r.to_dict() for n, r in results.items()} == \
        {n: r.to_dict() for n, r in reference.items()}


def test_dump_is_canonical_and_roundtrip_stable():
    runner, scenario, results = _paused_runner()
    snap = runner.snapshot(scenario, results)
    blob = dump_snapshot(snap)
    assert blob.endswith("\n")
    assert dump_snapshot(load_snapshot(blob)) == blob
    header = json.loads(blob)
    assert header["format"] == "repro-snapshot"
    assert header["version"] == SNAPSHOT_VERSION
    assert header["content_hash"] == content_hash(snap.payload)


# --- the refusal battery ------------------------------------------------------


def _valid_document():
    return json.loads(dump_snapshot(Snapshot(kind="scenario-runner",
                                             payload={"t": 1.5})))


def test_refuses_non_json():
    with pytest.raises(ValueError, match="not a JSON document"):
        load_snapshot("definitely not json{")


def test_refuses_non_object_top_level():
    with pytest.raises(ValueError, match="top level must be an object"):
        load_snapshot("[1, 2, 3]")


def test_refuses_unversioned_blob():
    blob = _valid_document()
    del blob["format"]
    with pytest.raises(SnapshotVersionError,
                       match="refusing to guess at an unversioned"):
        load_snapshot(json.dumps(blob))


def test_refuses_foreign_format():
    blob = _valid_document()
    blob["format"] = "repro-bench"
    with pytest.raises(SnapshotVersionError,
                       match="not a repro-snapshot document"):
        load_snapshot(json.dumps(blob))


def test_refuses_future_version():
    blob = _valid_document()
    blob["version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(SnapshotVersionError,
                       match="refusing to restore across versions"):
        load_snapshot(json.dumps(blob))


def test_refuses_missing_kind_and_payload():
    blob = _valid_document()
    del blob["kind"]
    with pytest.raises(SnapshotVersionError, match="no 'kind'"):
        load_snapshot(json.dumps(blob))
    blob = _valid_document()
    blob["payload"] = "not-a-dict"
    with pytest.raises(SnapshotVersionError, match="no 'payload'"):
        load_snapshot(json.dumps(blob))


def test_refuses_corrupt_content_hash():
    blob = _valid_document()
    blob["payload"]["t"] = 2.5  # hand-edit after hashing
    with pytest.raises(SnapshotIntegrityError,
                       match="content hash mismatch"):
        load_snapshot(json.dumps(blob))


def test_refuses_nan_payloads():
    with pytest.raises(ValueError):
        dump_snapshot(Snapshot(kind="k", payload={"x": float("nan")}))


def test_resume_refuses_wrong_kind_and_quantum():
    runner, scenario, results = _paused_runner()
    snap = runner.snapshot(scenario, results)
    fresh = ScenarioRunner(checkout_testbed(PRESET, seed=SEED),
                           metrics=MetricsRegistry())
    with pytest.raises(ValueError, match="cannot resume"):
        fresh.resume(scenario, Snapshot(kind="hybrid-device",
                                        payload=snap.payload))
    mismatched = ScenarioRunner(checkout_testbed(PRESET, seed=SEED),
                                quantum_s=0.25,
                                metrics=MetricsRegistry())
    with pytest.raises(ValueError, match="quantum_s"):
        mismatched.resume(scenario, snap)


# --- atomic writes and the checkpoint store -----------------------------------


def test_write_snapshot_is_atomic(tmp_path):
    path = tmp_path / "deep" / "nested" / "snap.json"
    snap = Snapshot(kind="scenario-runner", payload={"t": 3.0})
    write_snapshot(path, snap)
    assert read_snapshot(path).payload == {"t": 3.0}
    leftovers = [p for p in path.parent.iterdir() if p != path]
    assert not leftovers, f"temp files left behind: {leftovers}"


def test_store_roundtrip_and_chain_adjacency(tmp_path):
    store = SnapshotStore(tmp_path / "ckpt")
    key = "scenario/mini3/s7/abcdef123456"
    for index in range(3):
        store.save(key, index, Snapshot(kind="scenario-slice",
                                        payload={"slice": index}))
    assert store.load(key, 1).payload == {"slice": 1}
    names = sorted(p.name for p in (tmp_path / "ckpt").iterdir())
    assert len(names) == 3
    # One hashed prefix per task: the chain sorts ls-adjacent.
    assert len({n.split("-")[0] for n in names}) == 1


def test_store_latest_index_skips_corrupt_checkpoints(tmp_path):
    store = SnapshotStore(tmp_path / "ckpt")
    key = "scenario/mini3/s7/abcdef123456"
    store.save(key, 0, Snapshot(kind="scenario-slice", payload={"k": 0}))
    store.save(key, 2, Snapshot(kind="scenario-slice", payload={"k": 2}))
    assert store.latest_index(key, max_index=8) == 2
    # Corrupt the newest: crash-resume falls back to the older one.
    store.path_for(key, 2).write_text("{torn", encoding="utf-8")
    assert store.latest_index(key, max_index=8) == 0
    store.path_for(key, 0).write_text("{torn", encoding="utf-8")
    assert store.latest_index(key, max_index=8) is None
