"""PLC network management: AVLNs, CCo, station membership."""

import pytest

from repro.plc.network import PlcNetwork
from repro.plc.station import PlcStation


def test_first_station_becomes_cco(testbed):
    net = PlcNetwork("AVLN-test", testbed.load, testbed.streams)
    s0 = net.add_station(PlcStation("a", testbed.sites[0].outlet_id))
    assert net.cco is s0
    assert s0.is_cco


def test_static_cco_pinning(testbed):
    """§3.1: the paper pins CCos at 11 (B1) and 15 (B2)."""
    assert testbed.networks["B1"].cco.station_id == "11"
    assert testbed.networks["B2"].cco.station_id == "15"


def test_duplicate_station_rejected(testbed):
    net = PlcNetwork("AVLN-dup", testbed.load, testbed.streams)
    net.add_station(PlcStation("a", testbed.sites[0].outlet_id))
    with pytest.raises(ValueError):
        net.add_station(PlcStation("a", testbed.sites[1].outlet_id))


def test_unknown_outlet_rejected(testbed):
    net = PlcNetwork("AVLN-x", testbed.load, testbed.streams)
    with pytest.raises(KeyError):
        net.add_station(PlcStation("a", "no-such-outlet"))


def test_cross_network_links_refused(testbed):
    """Different encryption keys: no cross-AVLN communication (§3.1)."""
    with pytest.raises(KeyError):
        # Station 15 lives in B2, unknown to B1's network.
        testbed.networks["B1"].link("0", "15")
    assert testbed.plc_link(0, 15) is None


def test_link_is_cached_and_directed(testbed):
    net = testbed.networks["B1"]
    fwd1 = net.link("0", "1")
    fwd2 = net.link("0", "1")
    rev = net.link("1", "0")
    assert fwd1 is fwd2
    assert rev is not fwd1


def test_directed_pairs_count(testbed):
    assert len(testbed.networks["B1"].directed_pairs()) == 12 * 11
    assert len(testbed.networks["B2"].directed_pairs()) == 7 * 6


def test_estimator_lives_at_receiver(testbed):
    net = testbed.networks["B1"]
    est = net.estimator("0", "1")
    assert "0" in net.station("1").estimators
    assert net.estimator("0", "1") is est


def test_dynamic_cco_election_prefers_central_station(testbed, t_night):
    net = PlcNetwork("AVLN-elect", testbed.load, testbed.streams)
    for idx in (12, 13, 14):
        net.add_station(PlcStation(str(idx),
                                   testbed.sites[idx].outlet_id))
    winner = net.elect_cco(t_night)
    assert winner in ("12", "13", "14")
    assert net.cco.station_id == winner


def test_station_leave_clears_membership():
    s = PlcStation("a", "outlet")
    s.join("net-1")
    assert s.network_key == "net-1"
    s.leave()
    assert s.network_key is None
    assert not s.is_cco


def test_can_communicate_requires_shared_key():
    a = PlcStation("a", "o1")
    b = PlcStation("b", "o2")
    a.join("k1")
    b.join("k2")
    assert not a.can_communicate_with(b)
    b.join("k1")
    assert a.can_communicate_with(b)
    assert not a.can_communicate_with(a)
