"""TCP model over hybrid links (the paper's §4.1/Table 3 TCP remarks)."""

import numpy as np
import pytest

from repro.transport.tcp import (
    TcpPathModel,
    padhye_throughput_bps,
)
from repro.units import MBPS


def test_padhye_formula_sanity():
    # 10 ms RTT, 1 % loss: ~1.22·MSS/(RTT·sqrt(p)) ≈ 10 Mbps for MSS 1448.
    t = padhye_throughput_bps(1448, 0.010, 0.01)
    assert 5 * MBPS < t < 15 * MBPS
    # Less loss, more throughput; longer RTT, less throughput.
    assert padhye_throughput_bps(1448, 0.010, 0.001) > t
    assert padhye_throughput_bps(1448, 0.050, 0.01) < t
    with pytest.raises(ValueError):
        padhye_throughput_bps(1448, 0.0, 0.01)
    with pytest.raises(ValueError):
        padhye_throughput_bps(1448, 0.01, 0.0)


def test_rtt_includes_both_directions(testbed, t_work):
    fwd = testbed.plc_link(0, 1)
    rev = testbed.plc_link(1, 0)
    model = TcpPathModel(fwd, rev)
    rtt = model.rtt_s(t_work)
    assert 0.002 < rtt < 0.2  # milliseconds-to-tens-of-ms (bufferbloat)


def test_bad_reverse_link_throttles_forward_tcp(testbed, t_work):
    """Table 3's asymmetry warning: the ACK path matters."""
    fwd = testbed.plc_link(0, 1)          # good forward link
    good_rev = testbed.plc_link(1, 0)
    bad_rev = testbed.plc_link(11, 4)     # dead-at-work reverse path
    symmetric = TcpPathModel(fwd, good_rev).predict(t_work)
    asymmetric = TcpPathModel(fwd, bad_rev).predict(t_work)
    assert asymmetric.rtt_s > symmetric.rtt_s
    assert asymmetric.throughput_bps < symmetric.throughput_bps


def test_plc_tcp_efficiency_beats_wifi_at_similar_capacity(testbed, t_work):
    """§4.1: PLC's low variance is 'beneficial for TCP'.

    Compare TCP efficiency (TCP/UDP ratio) on a PLC pair and a WiFi pair
    with broadly similar capacities: the jitterier WiFi path loses more.
    """
    import numpy as np

    def mean_thr(link):
        return float(np.mean([link.throughput_bps(t_work + k * 0.5,
                                                   measured=False)
                              for k in range(20)]))

    # A WiFi pair in its variable (rate-adapting) regime...
    wifi_pair = next((i, j) for i, j in testbed.same_board_pairs()
                     if 15e6 < mean_thr(testbed.wifi_link(i, j)) < 55e6)
    target = mean_thr(testbed.wifi_link(*wifi_pair))
    # ... and a PLC pair of broadly similar capacity.
    plc_pair = next((i, j) for i, j in testbed.same_board_pairs()
                    if abs(mean_thr(testbed.plc_link(i, j)) - target)
                    < 0.35 * target)
    plc = TcpPathModel(testbed.plc_link(*plc_pair),
                       testbed.plc_link(*plc_pair[::-1])).predict(t_work)
    wifi = TcpPathModel(testbed.wifi_link(*wifi_pair),
                        testbed.wifi_link(*wifi_pair[::-1])).predict(t_work)
    assert plc.efficiency > wifi.efficiency
    assert plc.efficiency > 0.5


def test_prediction_capped_by_capacity(testbed, t_work):
    model = TcpPathModel(testbed.plc_link(13, 14),
                         testbed.plc_link(14, 13))
    prediction = model.predict(t_work)
    assert prediction.throughput_bps <= 0.95 * prediction.udp_capacity_bps
    assert 0.0 < prediction.loss < 0.5


def test_works_with_two_metric_abstraction(streams, t_work):
    """The transport layer runs on the §2.2 abstraction unchanged."""
    from repro.core.two_metric_model import (
        TwoMetricLinkModel,
        TwoMetricParameters,
    )
    params = TwoMetricParameters(
        slot_ble_bps=tuple([100 * MBPS] * 6), jitter_sigma_rel=0.01,
        jitter_hold_s=2.0, pb_err_base=0.01, pb_err_spread=0.2)
    fwd = TwoMetricLinkModel(params, streams, name="f")
    rev = TwoMetricLinkModel(params, streams, name="r")
    prediction = TcpPathModel(fwd, rev).predict(t_work)
    assert prediction.throughput_bps > 10 * MBPS
