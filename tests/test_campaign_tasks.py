"""Task-registry lifecycle and per-kind parameter validation.

PR 7 made the registry a first-class, reversible surface
(:func:`unregister_task`, :func:`temporary_task_kind`) and gave every
built-in kind a declared parameter schema so a misspelled key fails the
campaign up front instead of silently running a default.  The static
scan at the bottom enforces the compile-plane discipline the ruff
TID251 ban states for CI: shipping task executors never build testbeds
from scratch.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.campaign import ExperimentSpec, run_campaign
from repro.campaign.engine import CampaignEngine, EngineConfig
from repro.campaign.tasks import (
    TASK_KIND_INFO,
    TASK_REGISTRY,
    TaskOutput,
    execute_spec,
    register_task,
    temporary_task_kind,
    unregister_task,
    validate_task_params,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _noop_task(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    return TaskOutput(records=[{"ok": True}])


# --- registry lifecycle -------------------------------------------------------


def test_unregister_task_removes_kind_and_schema():
    register_task("throwaway_kind", params=("x",))(_noop_task)
    assert "throwaway_kind" in TASK_REGISTRY
    assert "throwaway_kind" in TASK_KIND_INFO
    unregister_task("throwaway_kind")
    assert "throwaway_kind" not in TASK_REGISTRY
    assert "throwaway_kind" not in TASK_KIND_INFO


def test_unregister_task_is_noop_for_unknown_kind():
    unregister_task("never_registered_kind")  # must not raise


def test_duplicate_registration_still_rejected():
    with temporary_task_kind("dup_kind", _noop_task):
        with pytest.raises(ValueError, match="dup_kind"):
            register_task("dup_kind")(_noop_task)


def test_temporary_task_kind_registers_and_cleans_up():
    assert "scoped_kind" not in TASK_REGISTRY
    with temporary_task_kind("scoped_kind", _noop_task,
                             params=("idx",)) as fn:
        assert fn is _noop_task
        assert TASK_REGISTRY["scoped_kind"] is _noop_task
        spec = ExperimentSpec.make("scoped_kind", "mini3", 7, idx=1)
        out = execute_spec(spec)
        assert out.records == [{"ok": True}]
    assert "scoped_kind" not in TASK_REGISTRY
    assert "scoped_kind" not in TASK_KIND_INFO


def test_temporary_task_kind_cleans_up_on_exception():
    with pytest.raises(RuntimeError):
        with temporary_task_kind("scoped_kind", _noop_task):
            raise RuntimeError("boom")
    assert "scoped_kind" not in TASK_REGISTRY


def test_temporary_task_kind_runs_through_engine(tmp_path):
    with temporary_task_kind("scoped_kind", _noop_task,
                             params=("idx",)):
        specs = [ExperimentSpec.make("scoped_kind", "mini3", s, idx=s)
                 for s in (1, 2)]
        stats = run_campaign(specs, tmp_path / "scoped.jsonl", workers=0)
        assert stats.completed == 2
    assert "scoped_kind" not in TASK_REGISTRY


# --- parameter validation -----------------------------------------------------


def test_misspelled_durration_s_rejected_with_suggestion():
    """Regression: a survey sweep once misspelled ``duration_s`` and
    silently ran the 30 s default per task.  The schema now rejects it
    up front, naming the intended key."""
    with pytest.raises(ValueError) as err:
        validate_task_params(
            "survey_pair",
            {"src": 0, "dst": 1, "durration_s": 5.0})
    message = str(err.value)
    assert "durration_s" in message
    assert "did you mean 'duration_s'?" in message


def test_unknown_key_without_close_match_lists_recognised_keys():
    with pytest.raises(ValueError, match="recognised keys"):
        validate_task_params("rng_probe", {"zzz": 1})


def test_missing_required_param_rejected():
    with pytest.raises(ValueError, match="missing required"):
        validate_task_params("survey_pair", {"src": 0})


def test_undeclared_schema_skips_validation():
    with temporary_task_kind("adhoc_kind", _noop_task):  # params=None
        validate_task_params("adhoc_kind", {"anything": "goes"})
    validate_task_params("totally_unknown_kind", {"x": 1})


def test_execute_spec_validates_params():
    spec = ExperimentSpec.make("rng_probe", "mini3", 7, drawz=3)
    with pytest.raises(ValueError, match="did you mean 'draws'"):
        execute_spec(spec)


def test_engine_rejects_bad_params_before_running(tmp_path):
    spec = ExperimentSpec.make("survey_pair", "mini3", 7, src=0, dst=1,
                               durration_s=5.0)
    with pytest.raises(ValueError, match="durration_s"):
        CampaignEngine([spec], tmp_path / "bad.jsonl",
                       config=EngineConfig(workers=0))


def test_engine_leaves_unknown_kinds_to_runtime(tmp_path):
    """Unknown *kinds* are a runtime failure (quarantined), not an
    init-time validation error — chaos tests rely on that."""
    spec = ExperimentSpec.make("no_such_kind", "mini3", 7)
    stats = run_campaign([spec], tmp_path / "unknown.jsonl", workers=0,
                         retries=0, max_failures=1)
    assert stats.failed == 1


# --- compile-plane discipline (mirror of the ruff TID251 ban) -----------------


def test_no_scratch_testbed_builds_outside_the_compile_plane():
    """Shipping code checks worlds out of the compile cache; the only
    legitimate ``build_preset_testbed`` call sites are the compile plane
    itself, its definition, and the package re-export."""
    allowed = {
        SRC / "compile.py",            # the compile plane's build entry
        SRC / "testbed" / "builder.py",  # the definition
        SRC / "testbed" / "__init__.py",  # package re-export
    }
    pattern = re.compile(r"\bbuild_preset_testbed\b")
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in allowed:
            continue
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            if pattern.search(line) and not line.lstrip().startswith("#"):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}")
    assert not offenders, (
        "direct build_preset_testbed use outside the compile plane "
        f"(use repro.compile.checkout_testbed): {offenders}")
