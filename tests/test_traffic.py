"""Traffic generators and the iperf meter."""

import numpy as np
import pytest

from repro.traffic.generators import (
    CbrFlow,
    FileTransfer,
    SaturatedUdpFlow,
    burst_schedule,
    packets_for_times,
)
from repro.medium.link import BatchSamplingMixin, LinkSample
from repro.traffic.iperf import completion_time_s, run_udp_test
from repro.traffic.packet import Packet
from repro.units import MBPS


class _StepLink(BatchSamplingMixin):
    """Deterministic stub link: rate ``rates[k]`` during second ``k``
    (the last rate persists), noise-free. Exercises the iperf meter's
    integration without any channel model behind it."""

    medium = "plc"
    name = "step-stub"

    def __init__(self, rates):
        self._rates = [float(r) for r in rates]

    def _rate(self, t: float) -> float:
        k = min(max(int(t), 0), len(self._rates) - 1)
        return self._rates[k]

    def capacity_bps(self, t: float) -> float:
        return self._rate(t)

    def throughput_bps(self, t: float, measured: bool = True) -> float:
        return self._rate(t)

    def is_connected(self, t: float) -> bool:
        return self._rate(t) > 0

    def sample(self, t: float, measured: bool = True) -> LinkSample:
        rate = self._rate(t)
        return LinkSample(time=float(t), capacity_bps=rate,
                          throughput_bps=rate, loss=0.0)


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(seq=-1)
    with pytest.raises(ValueError):
        Packet(seq=0, size_bytes=0)
    p = Packet(seq=0, created_at=1.0)
    assert p.latency is None
    p.delivered_at = 1.5
    assert p.latency == pytest.approx(0.5)


def test_cbr_flow_packet_times():
    flow = CbrFlow(rate_bps=150e3, packet_bytes=1500)
    assert flow.packet_interval_s == pytest.approx(0.08)
    times = flow.packet_times(10.0, 1.0)
    assert len(times) == 12
    assert times[0] == 10.0
    with pytest.raises(ValueError):
        CbrFlow(rate_bps=0.0)


def test_file_transfer_packet_count():
    ft = FileTransfer(size_bytes=600 * 10 ** 6)
    assert ft.n_packets == 400000
    with pytest.raises(ValueError):
        FileTransfer(size_bytes=0)


def test_burst_schedule_preserves_rate():
    bursts = burst_schedule(150e3, burst_packets=20, packet_bytes=1500,
                            t_start=0.0, duration=60.0)
    total_packets = sum(len(b) for b in bursts)
    plain = CbrFlow(rate_bps=150e3).packet_times(0.0, 60.0)
    assert total_packets == pytest.approx(len(plain), rel=0.1)
    assert all(len(b) == 20 for b in bursts)


def test_packets_for_times_sequence():
    packets = list(packets_for_times([0.0, 0.1], 1500, "f", seq_start=5))
    assert [p.seq for p in packets] == [5, 6]
    assert packets[1].created_at == 0.1


def test_run_udp_test_matches_link_mean(testbed, t_work):
    link = testbed.plc_link(0, 1)
    series = run_udp_test(link, t_work, 10.0, 0.1)
    assert len(series) == 100
    direct = np.mean([link.throughput_bps(t_work + k * 0.1)
                      for k in range(100)])
    assert series.mean == pytest.approx(direct, rel=0.1)
    with pytest.raises(ValueError):
        run_udp_test(link, t_work, 0.0)


def test_completion_time_inverse_to_rate(testbed, t_work):
    fast = testbed.plc_link(13, 14)
    slow = testbed.plc_link(11, 4)
    size = 50 * 10 ** 6
    t_fast = completion_time_s(fast, t_work, size)
    rate = fast.throughput_bps(t_work, measured=False)
    assert t_fast == pytest.approx(size * 8 / rate, rel=0.2)
    # A much slower link takes much longer (or never completes).
    try:
        t_slow = completion_time_s(slow, t_work, size, max_time_s=3600.0)
        assert t_slow > 2 * t_fast
    except RuntimeError:
        pass  # dead during working hours — acceptable for the bad link


def test_completion_time_validates_size(testbed, t_work):
    with pytest.raises(ValueError):
        completion_time_s(testbed.plc_link(0, 1), t_work, 0)


def test_completion_time_slow_link_interpolates_exactly():
    # 10 bits at a constant 0.4 bps must take exactly 25 s. The old
    # final-step interpolation divided by max(rate, 1.0), so any link
    # slower than 1 bps under-reported its completion time (here: 24.4 s).
    link = _StepLink([0.4])
    done = completion_time_s(link, 0.0, size_bytes=10 / 8)
    assert done == pytest.approx(25.0)


def test_completion_time_near_zero_final_step():
    # 10.25 bits: 10 move in the first second, the rest at 0.5 bps —
    # half of the second step, so completion is at exactly 1.5 s.
    link = _StepLink([10.0, 0.5])
    done = completion_time_s(link, 0.0, size_bytes=10.25 / 8)
    assert done == pytest.approx(1.5)


def test_completion_time_dead_link_raises():
    with pytest.raises(RuntimeError):
        completion_time_s(_StepLink([0.0]), 0.0, 1.0, max_time_s=60.0)


def test_saturated_flow_descriptor():
    flow = SaturatedUdpFlow()
    assert flow.packet_bytes == 1500
