"""Traffic generators and the iperf meter."""

import numpy as np
import pytest

from repro.traffic.generators import (
    CbrFlow,
    FileTransfer,
    SaturatedUdpFlow,
    burst_schedule,
    packets_for_times,
)
from repro.traffic.iperf import completion_time_s, run_udp_test
from repro.traffic.packet import Packet
from repro.units import MBPS


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(seq=-1)
    with pytest.raises(ValueError):
        Packet(seq=0, size_bytes=0)
    p = Packet(seq=0, created_at=1.0)
    assert p.latency is None
    p.delivered_at = 1.5
    assert p.latency == pytest.approx(0.5)


def test_cbr_flow_packet_times():
    flow = CbrFlow(rate_bps=150e3, packet_bytes=1500)
    assert flow.packet_interval_s == pytest.approx(0.08)
    times = flow.packet_times(10.0, 1.0)
    assert len(times) == 12
    assert times[0] == 10.0
    with pytest.raises(ValueError):
        CbrFlow(rate_bps=0.0)


def test_file_transfer_packet_count():
    ft = FileTransfer(size_bytes=600 * 10 ** 6)
    assert ft.n_packets == 400000
    with pytest.raises(ValueError):
        FileTransfer(size_bytes=0)


def test_burst_schedule_preserves_rate():
    bursts = burst_schedule(150e3, burst_packets=20, packet_bytes=1500,
                            t_start=0.0, duration=60.0)
    total_packets = sum(len(b) for b in bursts)
    plain = CbrFlow(rate_bps=150e3).packet_times(0.0, 60.0)
    assert total_packets == pytest.approx(len(plain), rel=0.1)
    assert all(len(b) == 20 for b in bursts)


def test_packets_for_times_sequence():
    packets = list(packets_for_times([0.0, 0.1], 1500, "f", seq_start=5))
    assert [p.seq for p in packets] == [5, 6]
    assert packets[1].created_at == 0.1


def test_run_udp_test_matches_link_mean(testbed, t_work):
    link = testbed.plc_link(0, 1)
    series = run_udp_test(link, t_work, 10.0, 0.1)
    assert len(series) == 100
    direct = np.mean([link.throughput_bps(t_work + k * 0.1)
                      for k in range(100)])
    assert series.mean == pytest.approx(direct, rel=0.1)
    with pytest.raises(ValueError):
        run_udp_test(link, t_work, 0.0)


def test_completion_time_inverse_to_rate(testbed, t_work):
    fast = testbed.plc_link(13, 14)
    slow = testbed.plc_link(11, 4)
    size = 50 * 10 ** 6
    t_fast = completion_time_s(fast, t_work, size)
    rate = fast.throughput_bps(t_work, measured=False)
    assert t_fast == pytest.approx(size * 8 / rate, rel=0.2)
    # A much slower link takes much longer (or never completes).
    try:
        t_slow = completion_time_s(slow, t_work, size, max_time_s=3600.0)
        assert t_slow > 2 * t_fast
    except RuntimeError:
        pass  # dead during working hours — acceptable for the bad link


def test_completion_time_validates_size(testbed, t_work):
    with pytest.raises(ValueError):
        completion_time_s(testbed.plc_link(0, 1), t_work, 0)


def test_saturated_flow_descriptor():
    flow = SaturatedUdpFlow()
    assert flow.packet_bytes == 1500
