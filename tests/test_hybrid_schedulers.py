"""Packet schedulers and the fluid goodput law."""

import numpy as np
import pytest

from repro.hybrid.schedulers import (
    CapacityProportionalScheduler,
    RoundRobinScheduler,
    fluid_goodput_bps,
)
from repro.sim.random import RandomStreams


def test_proportional_pick_follows_capacities():
    rng = RandomStreams(4).get("sched")
    sched = CapacityProportionalScheduler(rng)
    caps = {"plc": 30e6, "wifi": 90e6}
    picks = [sched.pick(caps) for _ in range(4000)]
    wifi_share = picks.count("wifi") / len(picks)
    assert wifi_share == pytest.approx(0.75, abs=0.03)


def test_proportional_split_exact_counts():
    rng = RandomStreams(4).get("sched2")
    sched = CapacityProportionalScheduler(rng)
    split = sched.split({"plc": 25e6, "wifi": 75e6}, 100)
    assert split["wifi"] + split["plc"] == 100
    assert split["wifi"] == 75


def test_proportional_requires_positive_capacity():
    rng = RandomStreams(4).get("sched3")
    sched = CapacityProportionalScheduler(rng)
    with pytest.raises(ValueError):
        sched.pick({"plc": 0.0, "wifi": 0.0})


def test_round_robin_alternates():
    sched = RoundRobinScheduler()
    caps = {"plc": 1.0, "wifi": 99.0}
    picks = [sched.pick(caps) for _ in range(4)]
    assert picks == ["plc", "wifi", "plc", "wifi"]
    split = sched.split(caps, 10)
    assert split == {"plc": 5, "wifi": 5}


def test_round_robin_requires_media():
    with pytest.raises(ValueError):
        RoundRobinScheduler().pick({})


def test_fluid_goodput_proportional_reaches_sum():
    """§7.4: capacity-proportional split delivers ~the sum of capacities."""
    caps = {"plc": 35e6, "wifi": 25e6}
    total = sum(caps.values())
    fractions = {m: c / total for m, c in caps.items()}
    assert fluid_goodput_bps(fractions, caps) == pytest.approx(total)


def test_fluid_goodput_round_robin_is_twice_min():
    """§7.4: round-robin bottlenecks at 2 × min capacity."""
    caps = {"plc": 35e6, "wifi": 10e6}
    goodput = fluid_goodput_bps({"plc": 0.5, "wifi": 0.5}, caps)
    assert goodput == pytest.approx(2 * 10e6)


def test_fluid_goodput_validates_fractions():
    with pytest.raises(ValueError):
        fluid_goodput_bps({"plc": 0.7, "wifi": 0.7}, {"plc": 1.0,
                                                      "wifi": 1.0})
