"""Shared fixtures: one testbed per session, canonical measurement times,
and the golden-trace comparison harness (``--update-golden`` regenerates
the frozen reference outputs under ``tests/golden/``)."""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.sim.random import RandomStreams
from repro.testbed import build_testbed
from repro.testbed.experiments import night_start, working_hours_start

GOLDEN_DIR = Path(__file__).parent / "golden"

# Hypothesis settings profiles. Property tests rely on these instead of
# per-test ``@settings`` boilerplate: ``dev`` (the default) keeps local
# runs fast; ``ci`` is deterministic (``derandomize``) and never flakes
# on shared-runner timing (``deadline=None``). Select with
# ``HYPOTHESIS_PROFILE=ci pytest ...``. Tests whose *examples* are
# expensive (e.g. whole campaign runs) still pin ``max_examples`` down
# locally — a cost decision, not environment tuning.
settings.register_profile(
    "dev", max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "ci", max_examples=50, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: Tolerances for golden comparisons: tight enough to catch any numeric
#: drift in the metric pipeline, loose enough to forgive libm/BLAS
#: last-bit differences across platforms.
GOLDEN_RTOL = 1e-9
GOLDEN_ATOL = 1e-6


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the golden reference files under tests/golden/ "
             "instead of comparing against them")


def _assert_close(actual, expected, path: str) -> None:
    """Recursive numeric comparison with the golden tolerances."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys differ: {sorted(actual)} vs {sorted(expected)}")
        for key in expected:
            _assert_close(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, (list, tuple)), f"{path}: expected list"
        assert len(actual) == len(expected), (
            f"{path}: length {len(actual)} != {len(expected)}")
        for k, (a, e) in enumerate(zip(actual, expected)):
            _assert_close(a, e, f"{path}[{k}]")
    elif isinstance(expected, bool) or expected is None:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, (int, float)):
        assert np.isclose(float(actual), float(expected),
                          rtol=GOLDEN_RTOL, atol=GOLDEN_ATOL), (
            f"{path}: {actual!r} != {expected!r} "
            f"(rtol={GOLDEN_RTOL}, atol={GOLDEN_ATOL})")
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


def _rows_to_csv(rows) -> str:
    if not rows:
        # An empty golden is legitimate (e.g. a filter that matches
        # nothing); without a first row there are no fieldnames, so the
        # file is just empty text and DictReader round-trips it to [].
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=sorted(rows[0]))
    writer.writeheader()
    for row in rows:
        writer.writerow({k: repr(v) if isinstance(v, float) else v
                         for k, v in sorted(row.items())})
    return buf.getvalue()


@pytest.fixture()
def golden(request):
    """Compare ``data`` against a frozen reference, or regenerate it.

    ``golden("name.json", data)`` — nested dict/list/number structure,
    compared with tight tolerances. ``golden("name.csv", rows)`` — a list
    of flat dicts, rendered as CSV. Run ``pytest --update-golden`` after
    an *intentional* numeric change to refresh the references.
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, data) -> None:
        path = GOLDEN_DIR / name
        if name.endswith(".csv"):
            rows = [dict(sorted(r.items())) for r in data]
            if update:
                GOLDEN_DIR.mkdir(exist_ok=True)
                path.write_text(_rows_to_csv(rows), encoding="utf-8")
                return
            assert path.exists(), (
                f"golden file {name} missing — run "
                f"`pytest --update-golden` to create it")
            reader = csv.DictReader(io.StringIO(
                path.read_text(encoding="utf-8")))
            expected = [
                {k: json.loads(v) if _numeric(v) else v
                 for k, v in row.items()} for row in reader]
            actual = [{k: v for k, v in row.items()} for row in rows]
            _assert_close(actual, expected, name)
        else:
            if update:
                GOLDEN_DIR.mkdir(exist_ok=True)
                path.write_text(
                    json.dumps(data, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")
                return
            assert path.exists(), (
                f"golden file {name} missing — run "
                f"`pytest --update-golden` to create it")
            expected = json.loads(path.read_text(encoding="utf-8"))
            _assert_close(data, expected, name)

    return check


def _numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


@pytest.fixture(scope="session")
def testbed():
    """The 19-station HPAV testbed (expensive parts are lazy)."""
    return build_testbed(seed=7)


@pytest.fixture(scope="session")
def t_work():
    """Wednesday 2 pm — 'during working hours' (§4.1)."""
    return working_hours_start()


@pytest.fixture(scope="session")
def t_night():
    """Wednesday 11:30 pm — quiet hours (§6.2 protocol)."""
    return night_start()


@pytest.fixture()
def streams():
    return RandomStreams(seed=1234)
