"""Shared fixtures: one testbed per session, canonical measurement times."""

from __future__ import annotations

import pytest

from repro.sim.random import RandomStreams
from repro.testbed import build_testbed
from repro.testbed.experiments import night_start, working_hours_start


@pytest.fixture(scope="session")
def testbed():
    """The 19-station HPAV testbed (expensive parts are lazy)."""
    return build_testbed(seed=7)


@pytest.fixture(scope="session")
def t_work():
    """Wednesday 2 pm — 'during working hours' (§4.1)."""
    return working_hours_start()


@pytest.fixture(scope="session")
def t_night():
    """Wednesday 11:30 pm — quiet hours (§6.2 protocol)."""
    return night_start()


@pytest.fixture()
def streams():
    return RandomStreams(seed=1234)
