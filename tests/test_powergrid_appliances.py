"""Appliance catalog: impedance, noise profiles, schedules."""

import numpy as np
import pytest

from repro.powergrid.appliances import (
    APPLIANCE_CATALOG,
    ApplianceInstance,
    LINE_IMPEDANCE,
    ScheduleClass,
    catalog_names,
)


def test_catalog_covers_all_schedule_classes():
    classes = {a.schedule for a in APPLIANCE_CATALOG.values()}
    assert classes == set(ScheduleClass)


def test_reflection_coefficient_bounds():
    for appliance in APPLIANCE_CATALOG.values():
        for on in (True, False):
            gamma = appliance.reflection_coefficient(on)
            assert 0.0 <= gamma < 1.0


def test_matched_impedance_reflects_nothing():
    fridge = APPLIANCE_CATALOG["fridge"]
    # Construct the coefficient directly from the formula.
    z = fridge.impedance_on
    expected = abs((z - LINE_IMPEDANCE) / (z + LINE_IMPEDANCE))
    assert fridge.reflection_coefficient(True) == pytest.approx(expected)


def test_powered_on_changes_reflection_for_switching_loads():
    led = APPLIANCE_CATALOG["led_lighting"]
    assert led.reflection_coefficient(True) != led.reflection_coefficient(
        False)


def test_slot_multipliers_normalised_to_mean_one():
    for appliance in APPLIANCE_CATALOG.values():
        m = appliance.slot_noise_multipliers()
        assert len(m) == 6
        assert np.isclose(m.mean(), 1.0)
        assert (m > 0).all()


def test_mains_synchronous_profiles_vary_across_slots():
    # At least the lighting/printer classes must be slot-dependent (§6.1).
    fluorescent = APPLIANCE_CATALOG["fluorescent_lighting"]
    m = fluorescent.slot_noise_multipliers()
    assert m.max() / m.min() > 2.0


def test_instance_factory_validates_kind():
    with pytest.raises(KeyError):
        ApplianceInstance.make("x", "toaster-oven", "outlet-1")
    inst = ApplianceInstance.make("x", "microwave", "outlet-1")
    assert inst.kind.name == "microwave"


def test_catalog_names_sorted_and_complete():
    names = catalog_names()
    assert list(names) == sorted(APPLIANCE_CATALOG)


def test_intermittent_appliances_declare_duty_cycle():
    for appliance in APPLIANCE_CATALOG.values():
        if appliance.schedule is ScheduleClass.INTERMITTENT:
            assert 0.0 < appliance.duty_cycle < 1.0
