"""Time-sliced campaign execution: byte-identity and crash-resume.

The tentpole contract: splitting a long-horizon scenario task into K
checkpointed slices (``slice_horizon_s``) changes *nothing* about the
finalized artifact — not at any K, not on any backend, not after a
crash anywhere in the run. These tests pin the engine mechanics the
``diff_slice_equivalence`` oracle sweeps more broadly: chain
scheduling, checkpoint placement, crash-resume from both the artifact
and the checkpoint store, and refusal of mismatched or corrupt
checkpoint chains (reusing the truncate-the-artifact kill harness from
``test_campaign_properties.py``).
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.campaign import ExperimentSpec, run_campaign
from repro.snapshot import snapshot_dir_for

pytestmark = pytest.mark.slow

PRESET = "mini3"
HORIZON_S = 120.0
SLICE_HORIZON_S = 30.0  # -> 4 slices per scenario task
NUM_SLICES = 4


def _specs():
    """Two sliceable scenario tasks plus ride-along unsliced kinds."""
    return (
        [ExperimentSpec.make("scenario", PRESET, seed,
                             scenario="mini3-mixed",
                             horizon_s=HORIZON_S)
         for seed in (7, 8)]
        + [ExperimentSpec.make("rng_probe", PRESET, 7, idx=k, draws=4)
           for k in range(2)]
        + [ExperimentSpec.make("survey_pair", PRESET, 7, src=0, dst=1,
                               duration_s=2.0, interval_s=0.5)])


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """One straight and one sliced clean run, shared by every test."""
    base = tmp_path_factory.mktemp("slicing")
    straight = base / "straight.jsonl"
    run_campaign(_specs(), straight, workers=0, resume=False)

    sliced = base / "sliced.jsonl"
    events = []
    stats = run_campaign(
        _specs(), sliced, workers=0, resume=False,
        slice_horizon_s=SLICE_HORIZON_S,
        progress=lambda event, detail, s: events.append(event))
    assert stats.completed == len(_specs())
    return {
        "reference": straight.read_bytes(),
        "sliced_path": sliced,
        "sliced_bytes": sliced.read_bytes(),
        "checkpoints": snapshot_dir_for(sliced),
        "slice_events": events.count("slice"),
    }


def test_sliced_artifact_matches_straight(runs):
    assert runs["sliced_bytes"] == runs["reference"]


def test_intermediate_slices_checkpoint_to_the_sidecar_dir(runs):
    ckpt_dir = runs["checkpoints"]
    assert ckpt_dir.is_dir()
    files = sorted(p.name for p in ckpt_dir.glob("*.json"))
    # Two scenario tasks, up to NUM_SLICES-1 intermediate checkpoints
    # each (fewer when the scenario completes early inside a slice).
    assert files
    assert len({name.split("-")[0] for name in files}) == 2
    # Each task chained through at least one intermediate pause.
    assert runs["slice_events"] >= 2


def test_control_side_channel_never_reaches_the_artifact(runs):
    lines = runs["sliced_bytes"].decode("utf-8").splitlines()
    for line in lines:
        record = json.loads(line)
        assert "control" not in record
        spec = record.get("spec") or {}
        # Final results are rewritten to the original task identity.
        assert spec.get("kind") != "scenario_slice"


def test_sliced_process_backend_matches_straight(tmp_path):
    out = tmp_path / "pooled.jsonl"
    stats = run_campaign(_specs(), out, workers=2, backend="process",
                         resume=False,
                         slice_horizon_s=SLICE_HORIZON_S)
    assert stats.completed == len(_specs())
    ref = tmp_path / "straight.jsonl"
    run_campaign(_specs(), ref, workers=0, resume=False)
    assert out.read_bytes() == ref.read_bytes()


@pytest.mark.parametrize("kill_after,torn", [(0, False), (1, True),
                                             (2, False), (4, True)])
def test_resume_after_kill_matches_uninterrupted_run(runs, tmp_path,
                                                     kill_after, torn):
    """Kill a sliced campaign mid-task (the truncate-the-artifact
    harness): keep ``kill_after`` finalized lines, maybe a torn partial
    line, and the full checkpoint sidecar — the finalized artifact
    after resume is byte-identical to the uninterrupted run."""
    lines = runs["sliced_bytes"].decode("utf-8").splitlines(keepends=True)
    survived = "".join(lines[: 1 + kill_after])
    if torn and 1 + kill_after < len(lines):
        tail = lines[1 + kill_after]
        survived += tail[: max(1, len(tail) // 2)]
    victim = tmp_path / "victim.jsonl"
    victim.write_text(survived)
    shutil.copytree(runs["checkpoints"], snapshot_dir_for(victim))

    events = []
    stats = run_campaign(
        _specs(), victim, workers=0, slice_horizon_s=SLICE_HORIZON_S,
        progress=lambda event, detail, s: events.append(event))
    assert stats.resumed == kill_after
    assert victim.read_bytes() == runs["reference"]
    # Interrupted scenario tasks restart from their newest on-disk
    # checkpoint, not from scratch: strictly fewer intermediate pauses
    # than the clean sliced run needed.
    if kill_after < len(_specs()):
        assert events.count("slice") < runs["slice_events"]


def test_resume_without_checkpoints_recomputes_from_scratch(runs,
                                                            tmp_path):
    """A crash that also lost the checkpoint sidecar still finalizes
    byte-identically — every slice chain just restarts at zero."""
    lines = runs["sliced_bytes"].decode("utf-8").splitlines(keepends=True)
    victim = tmp_path / "victim.jsonl"
    victim.write_text(lines[0])  # header only: no task completed
    events = []
    run_campaign(_specs(), victim, workers=0,
                 slice_horizon_s=SLICE_HORIZON_S,
                 progress=lambda event, detail, s: events.append(event))
    assert victim.read_bytes() == runs["reference"]
    assert events.count("slice") == runs["slice_events"]


def test_corrupt_newest_checkpoint_falls_back(runs, tmp_path):
    """A torn checkpoint (killed mid-``os.replace`` window) is skipped:
    resume restores the older slice and the artifact stays identical."""
    victim = tmp_path / "victim.jsonl"
    victim.write_text(
        runs["sliced_bytes"].decode("utf-8").splitlines(keepends=True)[0])
    ckpts = snapshot_dir_for(victim)
    shutil.copytree(runs["checkpoints"], ckpts)
    for path in sorted(ckpts.glob("*.json"))[-1:]:
        path.write_text("{torn", encoding="utf-8")
    run_campaign(_specs(), victim, workers=0,
                 slice_horizon_s=SLICE_HORIZON_S)
    assert victim.read_bytes() == runs["reference"]


def test_mismatched_slicing_plan_ignores_stale_checkpoints(runs,
                                                           tmp_path):
    """Checkpoints from a different ``--slice-horizon`` belong to a
    different chain: they are refused (not half-reused) and the run
    still finalizes byte-identically."""
    victim = tmp_path / "victim.jsonl"
    victim.write_text(
        runs["sliced_bytes"].decode("utf-8").splitlines(keepends=True)[0])
    shutil.copytree(runs["checkpoints"], snapshot_dir_for(victim))
    run_campaign(_specs(), victim, workers=0,
                 slice_horizon_s=40.0)  # 3 slices, not 4
    assert victim.read_bytes() == runs["reference"]


def test_cli_slice_horizon_flag_plumbs_through(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cli.jsonl"
    code = main(["campaign", "--kind", "scenario", "--preset", PRESET,
                 "--scenarios", "mini3-mixed", "--seeds", "7",
                 "--horizon", "60", "--workers", "0",
                 "--slice-horizon", "20", "--quiet",
                 "--out", str(out)])
    assert code == 0
    ref = tmp_path / "ref.jsonl"
    run_campaign([ExperimentSpec.make("scenario", PRESET, 7,
                                      scenario="mini3-mixed", day=2,
                                      hour=14.0, horizon_s=60.0)],
                 ref, name="scenario-mini3", workers=0, resume=False)
    assert out.read_bytes() == ref.read_bytes()
    assert snapshot_dir_for(out).is_dir()
