"""Capacity estimation from SoFs and MMs (§7.1)."""

import numpy as np
import pytest

from repro.core.capacity import (
    estimate_capacity_from_sofs,
    estimate_capacity_mbps,
    predict_throughput,
)
from repro.plc.sniffer import capture_saturated
from repro.plc.spec import HPAV
from repro.units import MBPS


def test_sof_estimate_matches_link_average(testbed, t_work):
    link = testbed.plc_link(0, 1)
    sofs = capture_saturated(link, t_work, 1.0)
    estimate = estimate_capacity_from_sofs(sofs)
    truth = link.avg_ble_bps(t_work)
    assert estimate.capacity_bps == pytest.approx(truth, rel=0.1)
    assert estimate.method == "sof-slot-average"
    assert estimate.n_samples == len(sofs)


def test_estimate_requires_sofs():
    with pytest.raises(ValueError):
        estimate_capacity_from_sofs([])


def test_slot_averaging_beats_naive_on_biased_sampling(testbed, t_work):
    """§6.1: uneven slot sampling biases the naive estimator."""
    link = testbed.plc_link(11, 4)  # strong slot structure (noisy room)
    sofs = capture_saturated(link, t_work + 9 * 3600, 1.0)  # night
    # Bias the capture: keep only frames from the two noisiest slots, plus
    # a couple of samples of the others so both estimators see all slots.
    per_slot = link.ble_per_slot_bps(t_work + 9 * 3600)
    noisy_slots = set(np.argsort(per_slot)[:2])
    biased = [s for s in sofs if s.slot in noisy_slots]
    biased += [s for s in sofs if s.slot not in noisy_slots][:4]
    fair = estimate_capacity_from_sofs(biased, slot_average=True)
    naive = estimate_capacity_from_sofs(biased, slot_average=False)
    truth = float(np.mean(per_slot))
    assert abs(fair.capacity_bps - truth) < abs(naive.capacity_bps - truth)


def test_estimate_capacity_mbps_shorthand(testbed, t_work):
    link = testbed.plc_link(0, 1)
    sofs = capture_saturated(link, t_work, 0.5)
    assert estimate_capacity_mbps(sofs) == pytest.approx(
        estimate_capacity_from_sofs(sofs).capacity_bps / MBPS)


def test_predict_throughput_applies_mac_chain():
    pred = predict_throughput(100 * MBPS, HPAV)
    assert pred.throughput_bps == pytest.approx(100 * MBPS / 1.7, rel=0.03)
    assert pred.throughput_mbps == pred.throughput_bps / MBPS


def test_probing_session_validates_inputs(testbed):
    from repro.core.capacity import ProbingCapacitySession
    est = testbed.networks["B1"].estimator("0", "1")
    with pytest.raises(ValueError):
        ProbingCapacitySession(est, packets_per_second=0)
    with pytest.raises(ValueError):
        ProbingCapacitySession(est, burst_packets=0)
