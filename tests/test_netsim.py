"""Network-level scenario simulation."""

import numpy as np
import pytest

from repro.netsim import FlowRequest, Scenario, ScenarioRunner
from repro.units import MBPS


def test_flow_request_validation():
    with pytest.raises(ValueError):
        FlowRequest("f", 0, 0, 0.0, duration_s=1.0)          # src == dst
    with pytest.raises(ValueError):
        FlowRequest("f", 0, 1, 0.0, kind="torrent")
    with pytest.raises(ValueError):
        FlowRequest("f", 0, 1, 0.0, kind="cbr", duration_s=1.0)
    with pytest.raises(ValueError):
        FlowRequest("f", 0, 1, 0.0, kind="file")
    with pytest.raises(ValueError):
        FlowRequest("f", 0, 1, 0.0, kind="saturated")        # no duration


def test_scenario_rejects_duplicate_names():
    scenario = Scenario("s")
    scenario.add(FlowRequest("f", 0, 1, 0.0, duration_s=1.0))
    with pytest.raises(ValueError):
        scenario.add(FlowRequest("f", 2, 3, 0.0, duration_s=1.0))


def test_single_saturated_flow_gets_full_link(testbed, t_work):
    scenario = Scenario("solo").add(FlowRequest(
        "solo", 0, 1, t_work, kind="saturated", duration_s=20.0))
    results = ScenarioRunner(testbed).run(scenario)
    solo = results["solo"]
    expected = testbed.plc_link(0, 1).throughput_bps(t_work, measured=False)
    assert solo.mean_rate_bps == pytest.approx(expected, rel=0.2)
    assert solo.finished


def test_same_domain_flows_share_airtime(testbed, t_work):
    """Two saturated PLC flows on one board each get roughly half."""
    scenario = (Scenario("pair")
                .add(FlowRequest("a", 0, 1, t_work, duration_s=20.0))
                .add(FlowRequest("b", 2, 3, t_work, duration_s=20.0)))
    results = ScenarioRunner(testbed).run(scenario)
    solo = testbed.plc_link(0, 1).throughput_bps(t_work, measured=False)
    assert results["a"].mean_rate_bps == pytest.approx(solo / 2, rel=0.3)


def test_cross_board_plc_flows_do_not_interfere(testbed, t_work):
    """B1 and B2 are separate contention domains (§3.1)."""
    scenario = (Scenario("boards")
                .add(FlowRequest("b1", 0, 1, t_work, duration_s=20.0))
                .add(FlowRequest("b2", 13, 14, t_work, duration_s=20.0)))
    results = ScenarioRunner(testbed).run(scenario)
    solo_b1 = testbed.plc_link(0, 1).throughput_bps(t_work, measured=False)
    assert results["b1"].mean_rate_bps == pytest.approx(solo_b1, rel=0.2)


def test_cbr_leftover_goes_to_saturated_flow(testbed, t_work):
    """Work conservation: a 1 Mbps CBR barely dents a saturated peer."""
    scenario = (Scenario("mix")
                .add(FlowRequest("bulk", 0, 1, t_work, duration_s=20.0))
                .add(FlowRequest("probe", 2, 3, t_work, kind="cbr",
                                 rate_bps=1 * MBPS, duration_s=20.0)))
    results = ScenarioRunner(testbed).run(scenario)
    solo = testbed.plc_link(0, 1).throughput_bps(t_work, measured=False)
    assert results["probe"].mean_rate_bps == pytest.approx(1 * MBPS,
                                                           rel=0.05)
    assert results["bulk"].mean_rate_bps > 0.75 * solo


def test_file_flow_completes_and_frees_the_medium(testbed, t_work):
    size = 20e6  # 20 MB
    scenario = (Scenario("file")
                .add(FlowRequest("dl", 0, 1, t_work, kind="file",
                                 size_bytes=size))
                .add(FlowRequest("bg", 2, 3, t_work, duration_s=40.0)))
    runner = ScenarioRunner(testbed)
    results = runner.run(scenario, horizon_s=120.0)
    dl = results["dl"]
    assert dl.finished
    assert dl.delivered_bytes == pytest.approx(size)
    # Background flow speeds up after the download finishes.
    loads = [q.domain_load.get("plc:B1", 0) for q in runner.log]
    assert max(loads) == 2 and loads[-1] == 1


def test_hybrid_flow_uses_both_media(testbed, t_work):
    scenario = Scenario("h").add(FlowRequest(
        "bond", 0, 1, t_work, medium="hybrid", duration_s=20.0))
    results = ScenarioRunner(testbed).run(scenario)
    plc_only = testbed.plc_link(0, 1).throughput_bps(t_work,
                                                     measured=False)
    assert results["bond"].mean_rate_bps > plc_only


def test_dead_link_starves(testbed, t_work):
    scenario = Scenario("dead").add(FlowRequest(
        "x", 11, 4, t_work, duration_s=10.0))       # dead at work hours
    results = ScenarioRunner(testbed).run(scenario)
    assert results["x"].starved_quanta > 0
    assert results["x"].mean_rate_mbps < 1.0


def test_runner_quantum_validation(testbed):
    with pytest.raises(ValueError):
        ScenarioRunner(testbed, quantum_s=0.0)


def test_results_export_to_campaign(testbed, t_work, tmp_path):
    from repro.analysis.traces import load_campaign, save_campaign
    from repro.netsim.runner import results_to_campaign

    scenario = (Scenario("exp")
                .add(FlowRequest("a", 0, 1, t_work, duration_s=5.0))
                .add(FlowRequest("b", 13, 14, t_work, duration_s=5.0)))
    results = ScenarioRunner(testbed).run(scenario)
    campaign = results_to_campaign(results, name="exp")
    assert len(campaign) == 2
    path = tmp_path / "scenario.jsonl"
    save_campaign(campaign, path)
    assert len(load_campaign(path)) == 2


def test_late_start_scenario_stops_at_end_plus_slack(testbed):
    """Regression: the default horizon used to be double-offset — an
    absolute deadline (``end_time() + 60``) treated as relative to the
    first start, so a scenario starting at t0 ran until
    ``t0 + end_time() + 60`` whenever t0 > 0."""
    t0 = 300.0
    scenario = (Scenario("late")
                .add(FlowRequest("sat", 0, 1, t0, duration_s=10.0))
                .add(FlowRequest("big", 2, 3, t0, kind="file",
                                 size_bytes=1e13)))   # never completes
    runner = ScenarioRunner(testbed)
    runner.run(scenario)
    last = runner.log[-1].time
    assert last < scenario.end_time() + 60.0
    assert last >= scenario.end_time() + 60.0 - 2 * runner.quantum_s


def test_hybrid_cbr_excess_is_not_minted_into_both_domains(testbed, t_work):
    """Regression: a hybrid CBR flow's excess was credited *in full* to
    both its PLC and WiFi domains, letting a saturated neighbour exceed
    its own link capacity. Excess must be returned as per-medium airtime."""
    scenario = (Scenario("mint")
                .add(FlowRequest("cbr", 0, 1, t_work, kind="cbr",
                                 medium="hybrid", rate_bps=0.5 * MBPS,
                                 duration_s=10.0))
                .add(FlowRequest("sat_plc", 2, 3, t_work, duration_s=10.0))
                .add(FlowRequest("sat_wifi", 4, 5, t_work, medium="wifi",
                                 duration_s=10.0)))
    runner = ScenarioRunner(testbed, check_invariants=True)
    results = runner.run(scenario)
    plc_cap = testbed.plc_link(2, 3).throughput_bps(t_work, measured=False)
    wifi_cap = testbed.wifi_link(4, 5).throughput_bps(t_work,
                                                      measured=False)
    # No flow may beat its own link capacity (20% slack for channel drift).
    assert results["sat_plc"].mean_rate_bps <= 1.2 * plc_cap
    assert results["sat_wifi"].mean_rate_bps <= 1.2 * wifi_cap
    assert runner.stats.invariant_violations == 0
    assert runner.stats.max_domain_airtime <= 1.0 + 1e-6


def test_runner_stats_report_cache_hits_and_utilisation(testbed, t_work):
    scenario = Scenario("obs").add(FlowRequest(
        "solo", 0, 1, t_work, duration_s=20.0))
    runner = ScenarioRunner(testbed)
    runner.run(scenario)
    stats = runner.stats
    assert stats.quanta == 40
    assert stats.cache.hit_rate > 0.5          # 5 s window, 0.5 s quantum
    assert stats.cache.misses > 0
    util = stats.domain_utilisation()
    assert util["plc:B1"] == pytest.approx(1.0)
    assert stats.to_dict()["quanta"] == 40


def test_campaign_export_records_runner_stats(testbed, t_work):
    from repro.netsim.runner import results_to_campaign

    scenario = Scenario("prov").add(FlowRequest(
        "solo", 0, 1, t_work, duration_s=5.0))
    runner = ScenarioRunner(testbed)
    results = runner.run(scenario)
    campaign = results_to_campaign(results, name="prov",
                                   stats=runner.stats)
    assert "cache_hit_rate=" in campaign.description
    assert "quanta=10" in campaign.description


def test_many_flows_share_one_domain(testbed, t_work):
    """Five saturated flows on B1: each gets ~a fifth of its solo rate."""
    scenario = Scenario("five")
    pairs = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]
    for k, (i, j) in enumerate(pairs):
        scenario.add(FlowRequest(f"f{k}", i, j, t_work, duration_s=10.0))
    results = ScenarioRunner(testbed).run(scenario)
    for k, (i, j) in enumerate(pairs):
        solo = testbed.plc_link(i, j).throughput_bps(t_work,
                                                     measured=False)
        share = results[f"f{k}"].mean_rate_bps
        assert share == pytest.approx(solo / 5, rel=0.4)
