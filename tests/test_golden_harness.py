"""Golden-harness regression tests.

The CSV renderer used to crash with an IndexError when a test produced
zero rows (``rows[0]`` for the fieldnames); an empty golden is legitimate
— e.g. a filter that matches nothing — and must round-trip as an empty
file."""

from __future__ import annotations

import csv
import io

import tests.conftest as conftest


def test_rows_to_csv_accepts_empty_rows():
    assert conftest._rows_to_csv([]) == ""


def test_empty_csv_text_roundtrips_to_no_rows():
    text = conftest._rows_to_csv([])
    assert list(csv.DictReader(io.StringIO(text))) == []


def test_nonempty_rows_still_render_with_header():
    text = conftest._rows_to_csv([{"b": 1, "a": 2.5}])
    lines = text.splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "2.5,1"


def test_golden_fixture_compares_empty_csv(tmp_path, monkeypatch, golden):
    monkeypatch.setattr(conftest, "GOLDEN_DIR", tmp_path)
    (tmp_path / "empty.csv").write_text(
        conftest._rows_to_csv([]), encoding="utf-8")
    golden("empty.csv", [])  # must not raise
