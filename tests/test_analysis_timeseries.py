"""Timescale-detection tools (§6's structure, recovered from data)."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    autocorrelation,
    autocorrelation_time_s,
    cusum_changepoints,
    detect_periodicity_s,
)
from repro.core.metrics import MetricSeries
from repro.plc.sniffer import capture_saturated
from repro.units import HALF_MAINS_CYCLE


def test_autocorrelation_of_white_noise_decays():
    rng = np.random.default_rng(0)
    acf = autocorrelation(rng.standard_normal(2000), max_lag=20)
    assert acf[0] == pytest.approx(1.0)
    assert abs(acf[5]) < 0.1


def test_autocorrelation_validation():
    with pytest.raises(ValueError):
        autocorrelation([1.0, 2.0], max_lag=1)
    with pytest.raises(ValueError):
        autocorrelation([1.0, 2.0, 3.0, 4.0], max_lag=10)


def test_autocorrelation_time_tracks_process_memory():
    rng = np.random.default_rng(1)
    times = np.arange(0, 200, 0.1)

    def ou(tau):
        x = np.zeros(len(times))
        for k in range(1, len(times)):
            x[k] = x[k - 1] * (1 - 0.1 / tau) + rng.standard_normal() * 0.3
        return MetricSeries(times, x)

    fast = autocorrelation_time_s(ou(0.5))
    slow = autocorrelation_time_s(ou(8.0))
    assert slow > 3 * fast


def test_detect_mains_periodicity_from_sofs(testbed, t_work):
    """The invariance scale is discoverable: 10 ms wins the periodogram."""
    link = testbed.plc_link(0, 4)   # strong slot structure at work hours
    sofs = capture_saturated(link, t_work, 0.6)
    times = [s.timestamp for s in sofs]
    values = [s.ble_bps for s in sofs]
    candidates = [0.004, 0.007, HALF_MAINS_CYCLE, 0.013, 0.017, 0.023]
    period, score = detect_periodicity_s(times, values, candidates)
    assert period == HALF_MAINS_CYCLE
    assert score > 0.5


def test_detect_periodicity_validation():
    with pytest.raises(ValueError):
        detect_periodicity_s([0, 1], [1.0, 2.0], [0.5])
    with pytest.raises(ValueError):
        detect_periodicity_s(list(range(20)), [1.0] * 20, [0.5])


def test_cusum_finds_a_step():
    times = np.arange(0, 100, 0.5)
    rng = np.random.default_rng(2)
    values = 50.0 + 0.2 * rng.standard_normal(len(times))
    values[times >= 60] += 8.0   # upward regime shift at t=60
    cps = cusum_changepoints(MetricSeries(times, values))
    assert len(cps) >= 1
    first = cps[0]
    assert first.direction == +1
    assert 59.0 < first.time < 65.0


def test_cusum_quiet_series_reports_nothing():
    times = np.arange(0, 50, 0.5)
    rng = np.random.default_rng(3)
    values = 80.0 + 0.3 * rng.standard_normal(len(times))
    assert cusum_changepoints(MetricSeries(times, values)) == []


def test_cusum_detects_lights_off_event(testbed):
    """The 9 pm event of Fig. 12 is recoverable by changepoint detection."""
    from repro.testbed.experiments import long_run_series
    from repro.sim.clock import MainsClock
    t0 = MainsClock.at(day=1, hour=19.0)
    series = long_run_series(testbed, 0, 3, t0, 4 * 3600.0, interval=60.0)
    cps = cusum_changepoints(series, threshold_sigmas=6.0)
    lights_off = MainsClock.at(day=1, hour=21.0)
    assert any(abs(cp.time - lights_off) < 1800.0 and cp.direction == +1
               for cp in cps)
