"""ETX metrics: broadcast vs unicast (§8.1)."""

import numpy as np
import pytest

from repro.core.etx import (
    BroadcastProbeResult,
    measure_u_etx,
    run_broadcast_probes,
    u_etx_from_sofs,
    u_etx_predicted_from_pb_err,
)
from repro.plc.frames import SofDelimiter


def test_broadcast_result_arithmetic():
    r = BroadcastProbeResult(probes_sent=1000, probes_lost=10)
    assert r.loss_rate == pytest.approx(0.01)
    assert r.etx == pytest.approx(1000 / 990)
    dead = BroadcastProbeResult(probes_sent=5, probes_lost=5)
    assert dead.etx == float("inf")


def test_broadcast_probes_show_tiny_losses_regardless_of_quality(
        testbed, t_night):
    """§8.1's point: ROBO broadcast loss says nothing about quality."""
    rng = np.random.default_rng(1)
    results = {}
    for (i, j) in [(13, 14), (0, 3), (2, 7)]:
        link = testbed.plc_link(i, j)
        results[(i, j)] = run_broadcast_probes(
            link, t_night, 500.0, 0.1, rng)
    for r in results.values():
        assert r.loss_rate < 0.02


def test_broadcast_probe_interval_validated(testbed, t_night):
    rng = np.random.default_rng(1)
    with pytest.raises(ValueError):
        run_broadcast_probes(testbed.plc_link(0, 1), t_night, 1.0, 0.0, rng)


def _sof(t, retx):
    return SofDelimiter(timestamp=t, src="a", dst="b", tmi=1, ble_bps=1e8,
                        slot=0, n_pbs=3, duration_s=1e-3,
                        is_retransmission=retx)


def test_u_etx_from_sofs_counts_attempt_groups():
    # Packets: 1 tx, 3 tx, 2 tx → U-ETX = 2.0.
    sofs = [_sof(0.0, False),
            _sof(0.075, False), _sof(0.077, True), _sof(0.079, True),
            _sof(0.150, False), _sof(0.152, True)]
    u, std, n = u_etx_from_sofs(sofs)
    assert n == 3
    assert u == pytest.approx(2.0)
    assert std > 0


def test_u_etx_requires_frames():
    with pytest.raises(ValueError):
        u_etx_from_sofs([])


def test_measured_u_etx_tracks_pb_err(testbed, t_night):
    """Fig. 22: U-ETX rises with PBerr, near-1 for good links."""
    rng = np.random.default_rng(2)
    good = measure_u_etx(testbed.plc_link(13, 14), t_night, 60.0, rng)
    bad = measure_u_etx(testbed.plc_link(11, 4), t_night, 60.0, rng)
    assert good.u_etx < 1.2
    assert bad.u_etx > good.u_etx
    assert bad.mean_pb_err > good.mean_pb_err
    # Variance grows with U-ETX (the paper's error bars).
    assert bad.std >= good.std


def test_analytic_u_etx_matches_mechanism():
    assert u_etx_predicted_from_pb_err(0.0) == 1.0
    assert u_etx_predicted_from_pb_err(0.2) > 1.0
    # 1500 B → 3 PBs: worse than a single-PB packet at the same PBerr.
    assert (u_etx_predicted_from_pb_err(0.2, payload_bytes=1500)
            > u_etx_predicted_from_pb_err(0.2, payload_bytes=500))
