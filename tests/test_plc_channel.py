"""PLC channel model: attenuation, noise, asymmetry, jitter."""

import numpy as np
import pytest

from repro.plc.channel import PlcChannel
from repro.plc.spec import HPAV
from repro.powergrid.activity import OfficeActivityModel
from repro.powergrid.appliances import ApplianceInstance
from repro.powergrid.load import ElectricalLoad
from repro.powergrid.topology import GridTopology, Outlet
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams

NOON = MainsClock.at(day=1, hour=12)
NIGHT = MainsClock.at(day=1, hour=23.8)


def _bare_cable_load(length_m: float = 70.0):
    """Two stations on a long cable, nothing else — §5's isolated test."""
    g = GridTopology()
    g.add_outlet(Outlet("a", (0, 0), "B"))
    g.add_outlet(Outlet("b", (length_m, 0), "B"))
    g.add_cable("a", "b", length_m)
    return ElectricalLoad(g, [], OfficeActivityModel(RandomStreams(1)))


def _loaded_grid():
    g = GridTopology()
    g.add_outlet(Outlet("board", (0, 0), "B", is_board=True))
    for k in range(4):
        g.add_outlet(Outlet(f"j{k}", (5 + 6 * k, 0), "B"))
        g.add_cable("board" if k == 0 else f"j{k-1}", f"j{k}", 6.0)
        g.add_outlet(Outlet(f"o{k}", (5 + 6 * k, 2), "B"))
        g.add_cable(f"j{k}", f"o{k}", 3.0)
    apps = [
        ApplianceInstance.make("lab", "lab_equipment", "o1"),
        ApplianceInstance.make("fridge", "fridge", "o2"),
        ApplianceInstance.make("light", "fluorescent_lighting", "o2"),
    ]
    return ElectricalLoad(g, apps, OfficeActivityModel(RandomStreams(1)))


def test_bare_cable_keeps_near_max_snr():
    """§5: 70 m of unloaded cable costs almost nothing."""
    load = _bare_cable_load(70.0)
    ch = PlcChannel(load, "a", "b", HPAV, RandomStreams(3))
    assert ch.mean_snr_db(NOON) > 40.0


def test_src_equals_dst_rejected():
    load = _bare_cable_load()
    with pytest.raises(ValueError):
        PlcChannel(load, "a", "a", HPAV, RandomStreams(3))


def test_disconnected_outlets_are_unusable():
    g = GridTopology()
    g.add_outlet(Outlet("a", (0, 0), "B"))
    g.add_outlet(Outlet("b", (10, 0), "B"))
    load = ElectricalLoad(g, [], OfficeActivityModel(RandomStreams(1)))
    ch = PlcChannel(load, "a", "b", HPAV, RandomStreams(3))
    assert not ch.is_usable(NOON)
    assert (ch.path_loss_db(NOON) >= 150).all()


def test_appliances_degrade_the_channel():
    bare = PlcChannel(_bare_cable_load(30.0), "a", "b", HPAV,
                      RandomStreams(3))
    loaded = PlcChannel(_loaded_grid(), "o0", "o3", HPAV, RandomStreams(3))
    assert loaded.mean_snr_db(NOON) < bare.mean_snr_db(NOON) - 5.0


def test_snr_grid_shape():
    ch = PlcChannel(_loaded_grid(), "o0", "o3", HPAV, RandomStreams(3))
    snr = ch.snr_db(NOON)
    assert snr.shape == (HPAV.num_carriers, HPAV.num_slots)


def test_channel_is_frequency_selective():
    ch = PlcChannel(_loaded_grid(), "o0", "o3", HPAV, RandomStreams(3))
    loss = ch.path_loss_db(NOON)
    assert loss.max() - loss.min() > 5.0  # multipath notches


def test_receiver_local_noise_creates_asymmetry():
    """Noise sits next to o1: receiving AT o1 is worse (§5)."""
    load = _loaded_grid()
    streams = RandomStreams(3)
    towards_noise = PlcChannel(load, "o3", "o1", HPAV, streams, name="fwd")
    away = PlcChannel(load, "o1", "o3", HPAV, streams, name="rev")
    assert towards_noise.mean_snr_db(NOON) < away.mean_snr_db(NOON) - 3.0


def test_noise_varies_per_slot():
    ch = PlcChannel(_loaded_grid(), "o0", "o1", HPAV, RandomStreams(3))
    noise = ch.noise_psd_dbm_hz(NOON)
    slot_means = noise.mean(axis=0)
    assert slot_means.max() - slot_means.min() > 0.5


def test_jitter_sigma_tracks_noise_dominance():
    load = _loaded_grid()
    noisy = PlcChannel(load, "o3", "o1", HPAV, RandomStreams(3))
    quiet = PlcChannel(load, "o3", "o0", HPAV, RandomStreams(3))
    s_noisy = noisy.jitter_state(NOON)
    s_quiet = quiet.jitter_state(NOON)
    assert s_noisy.sigma_db > s_quiet.sigma_db
    assert s_noisy.hold_time_s < s_quiet.hold_time_s


def test_jitter_is_piecewise_constant():
    ch = PlcChannel(_loaded_grid(), "o0", "o1", HPAV, RandomStreams(3))
    state = ch.jitter_state(NOON)
    t0 = NOON - (NOON % state.hold_time_s)
    j1, _ = ch.jitter_db(t0 + 0.001)
    j2, _ = ch.jitter_db(t0 + 0.002)
    assert np.allclose(j1, j2)


def test_jitter_changes_across_hold_intervals():
    ch = PlcChannel(_loaded_grid(), "o0", "o1", HPAV, RandomStreams(3))
    state = ch.jitter_state(NOON)
    j1, _ = ch.jitter_db(NOON)
    j2, _ = ch.jitter_db(NOON + 3 * state.hold_time_s)
    assert not np.allclose(j1, j2)


def test_path_loss_reacts_to_appliance_switching():
    """Random scale (§6.3): the transfer function changes with the load."""
    load = _loaded_grid()
    ch = PlcChannel(load, "o0", "o3", HPAV, RandomStreams(3))
    day = ch.path_loss_db(NOON)       # fluorescent on (weekday noon)
    night = ch.path_loss_db(NIGHT)    # lights off after 21:00
    assert not np.allclose(day, night)


def test_direction_loss_is_stable_per_link():
    load = _loaded_grid()
    ch1 = PlcChannel(load, "o0", "o3", HPAV, RandomStreams(3), name="L")
    ch2 = PlcChannel(load, "o0", "o3", HPAV, RandomStreams(3), name="L")
    assert ch1._direction_loss_db == ch2._direction_loss_db
