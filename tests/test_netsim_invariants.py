"""Work-conservation property tests over randomized scenarios.

The fluid runner's two-pass allocation must never hand out more than one
unit of airtime per contention domain per quantum, whatever mix of
saturated / CBR / file flows on PLC / WiFi / hybrid media a scenario
throws at it. These tests generate scenarios from fixed seeds and run
with ``check_invariants=True`` so any violation raises immediately.
"""

import random

import pytest

from repro.netsim import FlowRequest, Scenario, ScenarioRunner
from repro.units import MBPS

B1_PAIRS = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11)]
B2_PAIRS = [(13, 14), (15, 16), (17, 18)]
MEDIA = ["plc", "wifi", "hybrid"]
KINDS = ["saturated", "cbr", "file"]


def _random_scenario(seed: int, t0: float) -> Scenario:
    rnd = random.Random(seed)
    scenario = Scenario(f"rand-{seed}")
    for k in range(rnd.randint(3, 7)):
        i, j = rnd.choice(B1_PAIRS + B2_PAIRS)
        if rnd.random() < 0.5:
            i, j = j, i
        kind = rnd.choice(KINDS)
        kwargs = {"kind": kind, "medium": rnd.choice(MEDIA)}
        if kind == "file":
            kwargs["size_bytes"] = rnd.uniform(1e6, 2e7)
        else:
            kwargs["duration_s"] = rnd.uniform(2.0, 6.0)
            if kind == "cbr":
                kwargs["rate_bps"] = rnd.uniform(0.2, 30.0) * MBPS
        scenario.add(FlowRequest(f"f{k}", i, j,
                                 t0 + rnd.uniform(0.0, 3.0), **kwargs))
    return scenario


@pytest.mark.parametrize("seed", range(6))
def test_random_scenarios_conserve_domain_airtime(testbed, t_work, seed):
    scenario = _random_scenario(seed, t_work)
    runner = ScenarioRunner(testbed, check_invariants=True)
    results = runner.run(scenario, horizon_s=15.0)

    stats = runner.stats
    assert stats.quanta > 0
    assert stats.invariant_violations == 0
    assert stats.max_domain_airtime <= 1.0 + 1e-6
    for utilisation in stats.domain_utilisation().values():
        assert 0.0 <= utilisation <= 1.0 + 1e-6

    for result in results.values():
        request = result.request
        # CBR flows never exceed their offered rate.
        if request.kind == "cbr" and result.active_time_s > 0:
            assert result.mean_rate_bps <= request.rate_bps * (1 + 1e-9)
        # Finished file flows delivered exactly their payload.
        if request.kind == "file" and result.finished:
            assert result.delivered_bytes == pytest.approx(
                request.size_bytes)
        assert result.delivered_bytes >= 0.0
