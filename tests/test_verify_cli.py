"""CLI tests for ``repro verify`` and ``repro campaign --check``:
error paths, exit codes, report/bench emission, and the replay flow."""

from __future__ import annotations

import json

import pytest

from repro.bench.schema import read_document
from repro.campaign.spec import ExperimentSpec
from repro.cli import main
from repro.verify.fuzzer import ScenarioFuzzer
from repro.verify.report import read_report

SEED = 7


# --- argument & artifact error paths ------------------------------------------


def test_unknown_suite_rejected_by_parser(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["verify", "--suite", "bogus"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_replay_of_missing_artifact_fails(tmp_path, capsys):
    rc = main(["verify", "--replay", str(tmp_path / "nope.json")])
    assert rc == 1
    assert "cannot replay" in capsys.readouterr().err


def test_replay_of_malformed_artifact_fails(tmp_path, capsys):
    path = tmp_path / "garbage.json"
    path.write_text(json.dumps({"format": "wrong"}), encoding="utf-8")
    rc = main(["verify", "--replay", str(path)])
    assert rc == 1
    assert "cannot replay" in capsys.readouterr().err


def test_report_to_unwritable_path_fails(tmp_path, capsys):
    # A zero-case fuzz run is the cheapest way to reach the report
    # writer; the missing parent directory makes the write fail.
    rc = main(["verify", "--suite", "fuzz", "--max-cases", "0",
               "--report", str(tmp_path / "no" / "such" / "dir" / "r.jsonl"),
               "--repro-dir", str(tmp_path / "failures")])
    assert rc == 1
    assert "cannot write" in capsys.readouterr().err


# --- failing-check exit code via replay ---------------------------------------


def _planted_repro(tmp_path):
    """A replayable artifact for a case that fails under the planted
    legacy-horizon bug (the runner option rides inside the spec)."""
    spec = ExperimentSpec.make(
        "verify_case", "mini3", SEED, case="scenario", index=0,
        t0=64, n_flows=2, huge_file=True, delta_s=4.0,
        legacy_default_horizon=True)
    fuzzer = ScenarioFuzzer(root_seed=SEED,
                            repro_dir=tmp_path / "failures")
    return fuzzer.write_repro(spec, failures=[])


def test_replay_exits_nonzero_when_checks_fail(tmp_path, capsys):
    path = _planted_repro(tmp_path)
    rc = main(["verify", "--replay", str(path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL oracle.default_horizon" in out
    assert "replayed verify_case/mini3" in out


# --- suite run with report + bench emission -----------------------------------


@pytest.mark.slow
def test_smoke_suite_writes_report_and_bench(tmp_path, capsys,
                                             monkeypatch):
    report_path = tmp_path / "verify.jsonl"
    bench_path = tmp_path / "BENCH_verify.json"
    monkeypatch.setenv("BENCH_VERIFY_JSON", str(bench_path))
    rc = main(["verify", "--suite", "smoke", "--seed", str(SEED),
               "--report", str(report_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "checks passed" in out

    header, results = read_report(report_path)
    assert header["suite"] == "smoke"
    assert results and all(r.passed for r in results)

    # The timing record rides in the unified repro-bench schema.
    doc = read_document(bench_path)
    result = doc.results["verify.smoke"]
    assert result.min_s > 0
    assert result.metrics["failed"] == 0.0
    assert "verify" in result.tags


@pytest.mark.fuzz
def test_fuzz_suite_honours_max_cases(tmp_path, capsys):
    rc = main(["verify", "--suite", "fuzz", "--max-cases", "2",
               "--seed", str(SEED),
               "--repro-dir", str(tmp_path / "failures")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "suite 'fuzz'" in out


# --- campaign --check ---------------------------------------------------------


_CAMPAIGN_ARGS = ["campaign", "--kind", "scenario", "--preset", "mini3",
                  "--scenarios", "mini3-mixed", "--horizon", "60",
                  "--workers", "0", "--quiet"]


def _run_scenario_campaign(tmp_path, capsys):
    path = tmp_path / "campaign.jsonl"
    rc = main(_CAMPAIGN_ARGS + ["--out", str(path)])
    capsys.readouterr()
    assert rc == 0
    return path


def test_campaign_check_passes_on_clean_artifact(tmp_path, capsys):
    path = _run_scenario_campaign(tmp_path, capsys)
    # Resume is the default: the re-run only sweeps the finished artifact.
    rc = main(_CAMPAIGN_ARGS + ["--out", str(path), "--check"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "satisfy all invariants" in out


def test_campaign_check_flags_tampered_stats(tmp_path, capsys):
    path = _run_scenario_campaign(tmp_path, capsys)
    lines = path.read_text(encoding="utf-8").splitlines()
    task = json.loads(lines[1])
    task["stats"] = {"quanta": 1, "invariant_violations": 3,
                     "max_domain_airtime": 2.0,
                     "domain_airtime": {"plc": 9.0},
                     "domain_quanta": {"plc": 1}}
    lines[1] = json.dumps(task, sort_keys=True,
                          separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    rc = main(_CAMPAIGN_ARGS + ["--out", str(path), "--check"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "invariant violation(s)" in err
    assert "artifact.runner_stats" in err


def test_campaign_check_rejects_missing_file(tmp_path, capsys):
    from repro.cli import _check_artifact

    assert _check_artifact(str(tmp_path / "absent.jsonl")) == 1
    assert "cannot check" in capsys.readouterr().err
